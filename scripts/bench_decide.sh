#!/usr/bin/env bash
# Decide-latency benchmark for the fused K-agent inference path. Used by
# CI (.github/workflows/ci.yml, bench-decide job) and local runs.
#
# bench_decide sweeps the agent count (4/16/64/128) and measures p50/p99
# decide latency of the fused batched path, the fully per-agent reference
# loop, and the fixed-point SafeFallback tier, asserting bit-identity,
# zero steady-state allocations and (full mode) a >= 2x fused speedup at
# K=64. The report lands in results/BENCH_decide.json.
#
# Usage:
#   scripts/bench_decide.sh            full run + regression check against
#                                      results/BENCH_decide.baseline.json
#   scripts/bench_decide.sh --smoke    reduced samples, no baseline check
#                                      (smoke p99s are too noisy for the
#                                      1.5x tolerance to be meaningful)
set -euo pipefail

cd "$(dirname "$0")/.."

mkdir -p results

echo "== bench_decide: building release binary =="
cargo build --release --offline -p twig-bench --bin bench_decide

if [ "${1:-}" = "--smoke" ]; then
    echo "== bench_decide: smoke sweep (results/BENCH_decide.json) =="
    ./target/release/bench_decide --smoke results/BENCH_decide.json
else
    echo "== bench_decide: full sweep + baseline check (results/BENCH_decide.json) =="
    ./target/release/bench_decide \
        --baseline results/BENCH_decide.baseline.json \
        results/BENCH_decide.json
fi

echo "bench_decide.sh: passed"
