#!/usr/bin/env sh
# Perf smoke for the parallel fleet + zero-allocation hot path. Used by
# both CI (.github/workflows/ci.yml, smoke job) and local runs.
#
# 1. bench_fleet times a compressed fig01 workload serially and at
#    --jobs 2 / --jobs 4, asserts bit-identical outputs and zero
#    steady-state heap allocations, and writes results/BENCH_fleet.json.
#    Speedup floors (1.2x @ 2 jobs, 1.5x @ 4 jobs) are enforced only when
#    the host has that many cores; the measurements are always recorded.
# 2. A reduced-epoch (--smoke) fig01 run exercises the real experiment
#    path end to end; its output lands in results/ for the CI artifact.
# 3. The chaos suite (--smoke, fixed seed, --jobs 2) runs the seeded
#    crash/restart/corruption schedules — torn writes, generation
#    fallback, cold start, agent quarantine — asserting its invariants
#    internally; the report lands in results/chaos_report.txt.
# 4. The timing suite (--smoke, fixed seed, --jobs 2) runs the seeded
#    timing-chaos schedules — phase-latency spikes, stale PMC windows,
#    actuator stalls, clock faults — against the deadline-aware epoch
#    scheduler, asserting graceful degradation (no panics, bounded
#    ladder, zero stale actuations) internally; the report lands in
#    results/timing_report.txt.
# 5. The cluster suite (--smoke, fixed seed, --jobs 2) runs the seeded
#    fleet-failure schedules — server crashes, coordinator blackouts,
#    partitions, stalled and corrupted migrations — against the Twig-D
#    control plane, asserting request conservation, bounded failover,
#    zero stale actuations and telemetry/stats consistency internally;
#    the report lands in results/cluster_report.txt.
# 6. The scenario corpus (fixed seed, --jobs 2) parses, runs and asserts
#    all shipped scenarios/*.scn files — load shapes, service churn,
#    fault/timing plans, cluster failover, digest-checked determinism —
#    via the twig-scenario runner; the PASS/FAIL report lands in
#    results/scenario_report.txt. scnfmt --check keeps the corpus
#    byte-canonical first.
# 7. The platform suite (--smoke, fixed seed, --jobs 2) drives the Linux
#    actuation backend against a fault-injecting fake sysfs — write
#    rejections, torn writes, governor clamps, stale/garbage counter
#    files, flapping permissions — asserting the reconciliation ladder
#    (read-back verify, bounded retries, divergence routed to degraded
#    mode) and sim-backend bit-identity internally; the report lands in
#    results/platform_report.txt.
# 8. The federate suite (--smoke, fixed seed, --jobs 2) runs the seeded
#    weight-exchange schedules — corrupt payload storms, Byzantine
#    nodes, straggler quorums, mid-round partitions — against the
#    federation plane, asserting exact screening-ladder accounting,
#    rollback on poisoned merges, round-abort with weights untouched,
#    and the cluster-scale policy-transfer result internally; the
#    report lands in results/federate_report.txt.
# 9. bench_decide (--smoke, via scripts/bench_decide.sh) sweeps the agent
#    count and asserts the fused inference path is bit-identical to the
#    per-agent loop and allocation-free; results/BENCH_decide.json. The
#    baseline latency-regression check runs only in the full (CI
#    bench-decide job) mode.
set -eu

cd "$(dirname "$0")/.."

mkdir -p results

echo "== bench_smoke: building release binaries =="
cargo build --release --offline -p twig-bench --bin bench_fleet --bin fig01_pmc_vs_ipc --bin chaos --bin timing --bin cluster --bin scenario --bin platform --bin federate
cargo build --release --offline -p twig-scenario --bin scnfmt

echo "== bench_smoke: fleet perf smoke (results/BENCH_fleet.json) =="
./target/release/bench_fleet results/BENCH_fleet.json

echo "== bench_smoke: fig01 smoke run (results/fig01_smoke.txt) =="
./target/release/fig01_pmc_vs_ipc --smoke --jobs 2 | tee results/fig01_smoke.txt

echo "== bench_smoke: chaos suite (results/chaos_report.txt) =="
./target/release/chaos --smoke --seed 42 --jobs 2 | tee results/chaos_report.txt

echo "== bench_smoke: timing suite (results/timing_report.txt) =="
./target/release/timing --smoke --seed 42 --jobs 2 | tee results/timing_report.txt

echo "== bench_smoke: cluster suite (results/cluster_report.txt) =="
./target/release/cluster --smoke --seed 42 --jobs 2 | tee results/cluster_report.txt

echo "== bench_smoke: scenario corpus (results/scenario_report.txt) =="
./target/release/scnfmt --check scenarios/*.scn
./target/release/scenario --seed 42 --jobs 2 | tee results/scenario_report.txt

echo "== bench_smoke: platform suite (results/platform_report.txt) =="
./target/release/platform --smoke --seed 42 --jobs 2 | tee results/platform_report.txt

echo "== bench_smoke: federate suite (results/federate_report.txt) =="
./target/release/federate --smoke --seed 42 --jobs 2 | tee results/federate_report.txt

echo "== bench_smoke: decide-latency smoke (results/BENCH_decide.json) =="
bash scripts/bench_decide.sh --smoke

echo "bench_smoke: all steps passed"
