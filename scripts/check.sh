#!/usr/bin/env sh
# Tier-1 gate: everything must pass offline (the workspace has no external
# dependencies — see DESIGN.md §6). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline -- -D warnings
