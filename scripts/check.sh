#!/usr/bin/env bash
# Tier-1 gate: everything must pass offline (the workspace has no external
# dependencies — see DESIGN.md §6). Run from the repo root.
#
# bash (not POSIX sh) so `pipefail` is available: a step that pipes through
# a filter must fail on the producer's status, not the filter's.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

step() {
    name="$1"
    shift
    # Explicit status capture: run under `if` so `set -e` doesn't abort the
    # gate mid-way — every step reports PASS/FAIL and the worst status wins.
    local status=0
    if "$@"; then
        status=0
    else
        status=$?
    fi
    if [ "$status" -eq 0 ]; then
        echo "PASS: $name"
    else
        echo "FAIL: $name (exit $status)"
        fail=1
    fi
}

# The committed decide-latency baseline must exist and carry the keys the
# bench's regression check reads — schema drift here would silently turn
# the CI bench-decide gate into a no-op.
check_bench_baseline() {
    local baseline="results/BENCH_decide.baseline.json"
    [ -f "$baseline" ] || {
        echo "missing $baseline"
        return 1
    }
    local key
    for key in \
        schema_version \
        k4_fused_p50_us \
        k16_fused_p50_us \
        k64_fused_p50_us \
        k128_fused_p50_us \
        speedup_k64 \
        fused_bit_identical \
        fused_steady_state_allocations; do
        grep -q "\"$key\":" "$baseline" || {
            echo "$baseline is missing key \"$key\" (bench schema drift)"
            return 1
        }
    done
}

# Every suite report bench_smoke.sh tees into results/ must actually be
# there once any report exists — a suite silently dropped from the script
# (or a renamed report file) would otherwise vanish from the CI artifact
# without failing anything. On a fresh clone (no reports yet) this passes:
# the guard checks manifest completeness, not that the suites have run.
check_report_manifest() {
    local ok=0 report
    local expected
    expected=$(grep -o 'results/[a-z_]*_report\.txt' scripts/bench_smoke.sh | sort -u)
    [ -n "$expected" ] || {
        echo "scripts/bench_smoke.sh tees no results/*_report.txt — manifest guard is stale"
        return 1
    }
    # shellcheck disable=SC2144
    ls results/*_report.txt >/dev/null 2>&1 || return 0
    for report in $expected; do
        [ -f "$report" ] || {
            echo "$report is referenced by scripts/bench_smoke.sh but missing from results/"
            ok=1
        }
    done
    return "$ok"
}

# Every workspace crate must forbid unsafe code at the crate root. A grep
# guard rather than a compile check so a missing attribute fails loudly
# even on crates whose code happens to contain no unsafe today.
check_forbid_unsafe() {
    local ok=0 lib
    for lib in src/lib.rs crates/*/src/lib.rs; do
        grep -q '^#!\[forbid(unsafe_code)\]$' "$lib" || {
            echo "$lib is missing #![forbid(unsafe_code)]"
            ok=1
        }
    done
    return "$ok"
}

step "fmt"            cargo fmt --all -- --check
step "build"          cargo build --release --offline --workspace
step "test"           cargo test -q --offline --workspace
step "clippy"         cargo clippy --offline --workspace --all-targets -- -D warnings
step "bench-baseline" check_bench_baseline
step "report-manifest" check_report_manifest
step "forbid-unsafe"  check_forbid_unsafe

if [ "$fail" -ne 0 ]; then
    echo "check.sh: FAILED"
    exit 1
fi
echo "check.sh: all steps passed"
