#!/usr/bin/env sh
# Tier-1 gate: everything must pass offline (the workspace has no external
# dependencies — see DESIGN.md §6). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

fail=0

step() {
    name="$1"
    shift
    if "$@"; then
        echo "PASS: $name"
    else
        echo "FAIL: $name"
        fail=1
    fi
}

step "fmt"    cargo fmt --all -- --check
step "build"  cargo build --release --offline --workspace
step "test"   cargo test -q --offline --workspace
step "clippy" cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$fail" -ne 0 ]; then
    echo "check.sh: FAILED"
    exit 1
fi
echo "check.sh: all steps passed"
