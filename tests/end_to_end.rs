//! End-to-end integration: Twig learning against the simulator, compared
//! with the static baseline, across the public API of the façade crate.

use twig::baselines::StaticMapping;
use twig::manager::{TaskManager, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, DvfsLadder, EpochReport, Server, ServerConfig};

fn drive(server: &mut Server, manager: &mut dyn TaskManager, epochs: u64) -> Vec<EpochReport> {
    (0..epochs)
        .map(|_| {
            let a = manager.decide().expect("decide");
            let r = server.step(&a).expect("step");
            manager.observe(&r).expect("observe");
            r
        })
        .collect()
}

#[test]
fn twig_meets_qos_and_saves_energy_vs_static() {
    let spec = catalog::masstree();
    let learn = 700u64;
    let measure = 200usize;

    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 42).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    let mut twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::new(0.1, 0.01, learn * 3 / 5, learn))
        .train_steps_per_epoch(3)
        .seed(7)
        .build()
        .unwrap();
    let reports = drive(&mut server, &mut twig, learn + measure as u64);
    let tail = &reports[reports.len() - measure..];
    let met = tail
        .iter()
        .filter(|r| r.services[0].p99_ms <= spec.qos_ms)
        .count();
    let twig_energy: f64 = tail.iter().map(|r| r.true_power_w).sum();
    assert!(
        met as f64 / measure as f64 > 0.85,
        "twig QoS guarantee too low: {met}/{measure}"
    );

    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 42).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    let mut stat = StaticMapping::new(vec![spec], 18, DvfsLadder::default()).unwrap();
    let reports = drive(&mut server, &mut stat, 100 + measure as u64);
    let tail = &reports[reports.len() - measure..];
    let static_energy: f64 = tail.iter().map(|r| r.true_power_w).sum();

    assert!(
        twig_energy < static_energy,
        "twig ({twig_energy:.0} J) should beat static ({static_energy:.0} J)"
    );
}

#[test]
fn twig_c_manages_colocated_pair() {
    let specs = vec![catalog::moses(), catalog::masstree()];
    let mut server = Server::new(ServerConfig::default(), specs.clone(), 5).unwrap();
    server.set_load_fraction(0, 0.4).unwrap();
    server.set_load_fraction(1, 0.2).unwrap();
    let learn = 600u64;
    let mut twig = TwigBuilder::new()
        .services(specs.clone())
        .epsilon(EpsilonSchedule::new(0.1, 0.01, learn * 3 / 5, learn))
        .train_steps_per_epoch(3)
        .seed(8)
        .build()
        .unwrap();
    assert_eq!(twig.name(), "twig-c");
    let reports = drive(&mut server, &mut twig, learn + 150);
    let tail = &reports[reports.len() - 150..];
    for (i, spec) in specs.iter().enumerate() {
        let met = tail
            .iter()
            .filter(|r| r.services[i].p99_ms <= spec.qos_ms)
            .count();
        assert!(
            met > 110,
            "{}: colocated QoS too low ({met}/150)",
            spec.name
        );
    }
}

#[test]
fn learning_reduces_violations_over_time() {
    let spec = catalog::xapian();
    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 9).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    let learn = 700u64;
    let mut twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::new(0.1, 0.01, learn * 3 / 5, learn))
        .train_steps_per_epoch(3)
        .seed(10)
        .build()
        .unwrap();
    let reports = drive(&mut server, &mut twig, learn + 100);
    let early = &reports[..200];
    let late = &reports[reports.len() - 200..];
    let violations = |rs: &[EpochReport]| {
        rs.iter()
            .filter(|r| r.services[0].p99_ms > spec.qos_ms)
            .count()
    };
    assert!(
        violations(late) <= violations(early),
        "late violations {} should not exceed early {}",
        violations(late),
        violations(early)
    );
}
