//! Telemetry must be a pure observer: attaching the subsystem — whether the
//! zero-cost no-op sink or the full in-memory recorder — must not perturb
//! the simulation, the learner's RNG streams, or any decision. With the
//! same seed, every epoch report is bit-identical across the three modes.

use twig::manager::TwigBuilder;
use twig::sim::{catalog, EpochReport, Server, ServerConfig};
use twig::telemetry::Telemetry;

const EPOCHS: u64 = 30;

fn run(telemetry: Option<Telemetry>) -> Vec<EpochReport> {
    let specs = vec![catalog::masstree(), catalog::moses()];
    let mut server = Server::new(ServerConfig::default(), specs.clone(), 11).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    server.set_load_fraction(1, 0.4).unwrap();
    let mut twig = TwigBuilder::new().services(specs).seed(23).build().unwrap();
    if let Some(tl) = telemetry {
        server.set_telemetry(tl.clone());
        twig.set_telemetry(tl);
    }
    (0..EPOCHS)
        .map(|_| {
            let actions = twig.decide().unwrap();
            let report = server.step(&actions).unwrap();
            twig.observe(&report).unwrap();
            report
        })
        .collect()
}

/// Bitwise comparison of everything float-valued plus the discrete state.
fn assert_bit_identical(a: &[EpochReport], b: &[EpochReport], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: epoch count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.time_s, y.time_s, "{label}: time");
        assert_eq!(x.power_w.to_bits(), y.power_w.to_bits(), "{label}: power");
        assert_eq!(
            x.true_power_w.to_bits(),
            y.true_power_w.to_bits(),
            "{label}: true power"
        );
        assert_eq!(
            x.energy_j.to_bits(),
            y.energy_j.to_bits(),
            "{label}: energy"
        );
        assert_eq!(x.migrations, y.migrations, "{label}: migrations");
        for (s, t) in x.services.iter().zip(&y.services) {
            assert_eq!(s.core_count, t.core_count, "{label}: cores ({})", s.name);
            assert_eq!(s.freq, t.freq, "{label}: freq ({})", s.name);
            assert_eq!(
                s.p99_ms.to_bits(),
                t.p99_ms.to_bits(),
                "{label}: p99 ({})",
                s.name
            );
            assert_eq!(s.completed, t.completed, "{label}: completed ({})", s.name);
            for (u, v) in s.pmcs.as_array().iter().zip(t.pmcs.as_array().iter()) {
                assert_eq!(u.to_bits(), v.to_bits(), "{label}: pmc ({})", s.name);
            }
        }
    }
}

#[test]
fn telemetry_never_perturbs_the_run() {
    let baseline = run(None);
    let noop = run(Some(Telemetry::enabled()));
    let recorder_tl = Telemetry::recorder();
    let recorded = run(Some(recorder_tl.clone()));

    assert_bit_identical(&baseline, &noop, "no-op sink");
    assert_bit_identical(&baseline, &recorded, "recorder sink");

    // And the recorder really did observe the run it left untouched.
    let snapshot = recorder_tl.metrics().unwrap();
    assert_eq!(snapshot.counter("sim.epochs"), EPOCHS);
    assert_eq!(
        recorder_tl.spans().len() as u64 + recorder_tl.spans_dropped(),
        EPOCHS
    );
}
