//! Integration of the transfer-learning path across manager, agent and
//! simulator (the Figure 8/9 mechanism).

use twig::manager::{Twig, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, Server, ServerConfig, ServiceSpec};

fn train(spec: &ServiceSpec, learn: u64, seed: u64) -> Twig {
    let mut twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::new(0.1, 0.01, learn * 3 / 5, learn))
        .train_steps_per_epoch(2)
        .seed(seed)
        .build()
        .unwrap();
    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], seed).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    for _ in 0..learn {
        let a = twig.decide().unwrap();
        let r = server.step(&a).unwrap();
        twig.observe(&r).unwrap();
    }
    twig
}

#[test]
fn transfer_preserves_trunk_and_resets_heads() {
    let mut twig = train(&catalog::masstree(), 300, 1);
    let trunk_before = twig.agent().trunk_weights();
    twig.transfer_service(0, catalog::xapian()).unwrap();
    assert_eq!(twig.agent().trunk_weights(), trunk_before);
    assert_eq!(twig.config().services[0].name, "xapian");
}

#[test]
fn transferred_manager_operates_the_new_service() {
    let mut twig = train(&catalog::masstree(), 500, 2);
    twig.transfer_service(0, catalog::moses()).unwrap();
    let spec = catalog::moses();
    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 3).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    let mut met = 0;
    let total = 300;
    for _ in 0..total {
        let a = twig.decide().unwrap();
        let r = server.step(&a).unwrap();
        if r.services[0].p99_ms <= spec.qos_ms {
            met += 1;
        }
        twig.observe(&r).unwrap();
    }
    assert!(
        met as f64 / total as f64 > 0.6,
        "post-transfer QoS too low: {met}/{total}"
    );
}

#[test]
fn transfer_resumes_at_low_exploration() {
    let mut twig = train(&catalog::masstree(), 300, 4);
    twig.transfer_service(0, catalog::img_dnn()).unwrap();
    // Post-transfer ε resumes at the exploitation end of phase 1, not 1.0.
    assert!(twig.epsilon() <= 0.1 + 1e-9, "epsilon {}", twig.epsilon());
}

#[test]
fn reset_exploration_restarts_schedule() {
    let mut twig = train(&catalog::masstree(), 200, 5);
    assert!(twig.epsilon() < 1.0);
    twig.reset_exploration();
    assert_eq!(twig.epsilon(), 1.0);
}
