//! Cross-crate integration of every task manager behind the common
//! `TaskManager` trait.

use twig::baselines::{
    Heracles, HeraclesConfig, Hipster, HipsterConfig, Parties, PartiesConfig, StaticMapping,
};
use twig::manager::{TaskManager, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, DvfsLadder, Server, ServerConfig};

fn single_service_managers() -> Vec<Box<dyn TaskManager>> {
    let spec = catalog::img_dnn();
    let dvfs = DvfsLadder::default();
    vec![
        Box::new(StaticMapping::new(vec![spec.clone()], 18, dvfs.clone()).unwrap()),
        Box::new(Heracles::new(spec.clone(), 18, dvfs.clone(), HeraclesConfig::default()).unwrap()),
        Box::new(Hipster::new(spec.clone(), 18, dvfs, HipsterConfig::default()).unwrap()),
        Box::new(
            TwigBuilder::new()
                .services(vec![spec])
                .epsilon(EpsilonSchedule::scaled(100))
                .seed(1)
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn every_single_service_manager_produces_valid_assignments() {
    let cfg = ServerConfig::default();
    for mut manager in single_service_managers() {
        let mut server = Server::new(cfg.clone(), vec![catalog::img_dnn()], 3).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        for _ in 0..30 {
            let assignments = manager.decide().unwrap();
            assert_eq!(assignments.len(), 1, "{}", manager.name());
            let a = &assignments[0];
            assert!(
                (1..=18).contains(&a.core_count()),
                "{}: {} cores",
                manager.name(),
                a.core_count()
            );
            assert!(cfg.dvfs.index_of(a.freq).is_ok(), "{}", manager.name());
            let report = server.step(&assignments).unwrap();
            manager.observe(&report).unwrap();
        }
    }
}

#[test]
fn colocated_managers_share_the_socket() {
    let specs = vec![catalog::masstree(), catalog::moses()];
    let cfg = ServerConfig::default();
    let managers: Vec<Box<dyn TaskManager>> = vec![
        Box::new(StaticMapping::new(specs.clone(), 18, cfg.dvfs.clone()).unwrap()),
        Box::new(
            Parties::new(
                specs.clone(),
                18,
                cfg.dvfs.clone(),
                PartiesConfig::default(),
            )
            .unwrap(),
        ),
        Box::new(
            TwigBuilder::new()
                .services(specs.clone())
                .epsilon(EpsilonSchedule::scaled(100))
                .seed(2)
                .build()
                .unwrap(),
        ),
    ];
    for mut manager in managers {
        let mut server = Server::new(cfg.clone(), specs.clone(), 4).unwrap();
        server.set_load_fraction(0, 0.3).unwrap();
        server.set_load_fraction(1, 0.5).unwrap();
        for _ in 0..25 {
            let assignments = manager.decide().unwrap();
            assert_eq!(assignments.len(), 2, "{}", manager.name());
            let report = server.step(&assignments).unwrap();
            assert_eq!(report.services.len(), 2);
            manager.observe(&report).unwrap();
        }
    }
}

#[test]
fn managers_have_distinct_names() {
    let names: Vec<String> = single_service_managers()
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        names.len(),
        "duplicate manager names: {names:?}"
    );
}

#[test]
fn heracles_lockout_visible_through_trait() {
    // Trip the main controller via high load and confirm the full-socket
    // allocation appears at the trait level.
    let spec = catalog::masstree();
    let heracles = Heracles::new(
        spec.clone(),
        18,
        DvfsLadder::default(),
        HeraclesConfig::default(),
    )
    .unwrap();
    let mut server = Server::new(ServerConfig::default(), vec![spec], 6).unwrap();
    server.set_load_fraction(0, 0.95).unwrap();
    let mut manager: Box<dyn TaskManager> = Box::new(heracles.clone());
    for _ in 0..5 {
        let a = manager.decide().unwrap();
        let r = server.step(&a).unwrap();
        manager.observe(&r).unwrap();
    }
    let a = manager.decide().unwrap();
    assert_eq!(a[0].core_count(), 18);
    heracles.migrations(); // silence unused original
}
