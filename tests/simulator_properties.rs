//! Cross-crate property tests: the invariants the learning stack relies on
//! must hold at the integration boundary between `twig-sim` and
//! `twig-core`. Each test sweeps a deterministic sample of the input space
//! (seeded in-repo RNG, no external generators).

use twig::manager::SystemMonitor;
use twig::sim::{catalog, Assignment, CoreId, Frequency, Server, ServerConfig};
use twig::stats::rng::{Rng, Xoshiro256};

/// Monitor states stay in [0, 1] for any reachable simulator output.
#[test]
fn monitor_states_always_normalised() {
    let mut rng = Xoshiro256::seed_from_u64(0x51a7e5);
    for _ in 0..16 {
        let load = rng.next_f64();
        let cores = rng.range_usize_inclusive(1, 18);
        let dvfs_idx = rng.range_usize(0, 9);
        let seed = rng.next_u64() % 50;
        let cfg = ServerConfig::default();
        let freq = cfg.dvfs.frequency_at(dvfs_idx).unwrap();
        let mut server = Server::new(cfg, vec![catalog::moses()], seed).unwrap();
        server.set_load_fraction(0, load).unwrap();
        let mut monitor = SystemMonitor::new(1, 5, 18).unwrap();
        let a = vec![Assignment::first_n(cores, freq)];
        for _ in 0..8 {
            let r = server.step(&a).unwrap();
            monitor.update(0, &r.services[0].pmcs).unwrap();
            let state = monitor.state(0).unwrap();
            assert_eq!(state.len(), twig::sim::NUM_COUNTERS);
            for &v in &state {
                assert!((0.0..=1.0).contains(&v), "state value {v}");
            }
        }
    }
}

/// Energy accumulates monotonically and power stays within the socket's
/// physical envelope.
#[test]
fn power_within_physical_envelope() {
    let mut rng = Xoshiro256::seed_from_u64(0xe17e);
    for _ in 0..16 {
        let cores = rng.range_usize_inclusive(1, 18);
        let seed = rng.next_u64() % 50;
        let cfg = ServerConfig::default();
        let peak = cfg.power.stress_peak_power(cfg.cores);
        let mut server = Server::new(cfg, vec![catalog::img_dnn()], seed).unwrap();
        server.set_load_fraction(0, 0.7).unwrap();
        let a = vec![Assignment::first_n(cores, Frequency::from_mhz(2000))];
        let mut last_energy = 0.0;
        for _ in 0..6 {
            let r = server.step(&a).unwrap();
            assert!(r.true_power_w > 0.0);
            assert!(
                r.true_power_w <= peak * 1.01,
                "power {} vs peak {peak}",
                r.true_power_w
            );
            assert!(r.energy_j > last_energy);
            last_energy = r.energy_j;
        }
    }
}

/// More resources never hurt steady-state tail latency (on average over a
/// window, same seed).
#[test]
fn more_cores_never_hurt() {
    for seed in 0u64..16 {
        let cfg = ServerConfig::default();
        let freq = cfg.dvfs.max();
        let mut p99 = Vec::new();
        for cores in [4usize, 18] {
            let mut server = Server::new(cfg.clone(), vec![catalog::xapian()], seed).unwrap();
            server.set_load_fraction(0, 0.6).unwrap();
            let a = vec![Assignment::first_n(cores, freq)];
            let mut sum = 0.0;
            for e in 0..30 {
                let r = server.step(&a).unwrap();
                if e >= 10 {
                    sum += r.services[0].p99_ms;
                }
            }
            p99.push(sum / 20.0);
        }
        assert!(
            p99[1] <= p99[0] * 1.1,
            "seed {seed}: 18 cores {} vs 4 cores {}",
            p99[1],
            p99[0]
        );
    }
}

#[test]
fn disjoint_core_sets_see_shared_cache_pressure() {
    // Two colocated services on disjoint cores still interfere through the
    // shared LLC/bandwidth — the effect Twig-C exists to manage.
    let cfg = ServerConfig::default();
    let freq = cfg.dvfs.max();
    let specs = vec![catalog::masstree(), catalog::moses()];
    let mut server = Server::new(cfg, specs, 7).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    server.set_load_fraction(1, 0.9).unwrap();
    let assignments = vec![
        Assignment::new((0..9).map(CoreId).collect(), freq),
        Assignment::new((9..18).map(CoreId).collect(), freq),
    ];
    let mut masstree_p99 = 0.0;
    for e in 0..40 {
        let r = server.step(&assignments).unwrap();
        if e >= 20 {
            masstree_p99 += r.services[0].p99_ms / 20.0;
        }
    }
    // Without interference masstree at 50% load on 9 cores sits near 1 ms;
    // moses at 90% load pushes bandwidth pressure well past the knee.
    assert!(
        masstree_p99 > 1.1,
        "expected interference-inflated p99, got {masstree_p99:.2} ms"
    );
}
