//! Integration of agent checkpointing: a trained policy survives a
//! round-trip through a flat checkpoint and keeps steering the simulator.

use twig::rl::{MaBdq, MaBdqConfig, MultiTransition};
use twig::sim::{catalog, Assignment, CoreId, Frequency, Server, ServerConfig};

fn small_config() -> MaBdqConfig {
    MaBdqConfig {
        state_dim: twig::sim::NUM_COUNTERS,
        branches: vec![18, 9],
        trunk_hidden: vec![32, 24],
        head_hidden: 16,
        dropout: 0.0,
        batch_size: 16,
        buffer_capacity: 4096,
        seed: 13,
        ..MaBdqConfig::default()
    }
}

/// Trains an agent briefly against the simulator, checkpointing after.
fn train_against_simulator(agent: &mut MaBdq) {
    let cfg = ServerConfig::default();
    let mut server = Server::new(cfg.clone(), vec![catalog::masstree()], 13).unwrap();
    server.set_load_fraction(0, 0.5).unwrap();
    let mut state = vec![vec![0.0f32; twig::sim::NUM_COUNTERS]];
    let maxima = twig::sim::pmc::calibration_maxima(cfg.cores).unwrap();
    for step in 0..120u64 {
        let eps = (1.0 - step as f64 / 80.0).max(0.1);
        let actions = agent.select_actions(&state, eps).unwrap();
        let cores = actions[0][0] + 1;
        let freq: Frequency = cfg.dvfs.frequency_at(actions[0][1]).unwrap();
        let assignment = Assignment::new((0..cores).map(CoreId).collect(), freq);
        let report = server.step(std::slice::from_ref(&assignment)).unwrap();
        let svc = &report.services[0];
        let next: Vec<f32> = svc
            .pmcs
            .as_array()
            .iter()
            .zip(&maxima)
            .map(|(&v, &m)| (v / m) as f32)
            .collect();
        let reward = if svc.p99_ms <= catalog::masstree().qos_ms {
            1.0
        } else {
            -1.0
        };
        agent
            .observe(MultiTransition {
                states: state.clone(),
                actions,
                rewards: vec![reward],
                next_states: vec![next.clone()],
            })
            .unwrap();
        agent.train_step().unwrap();
        state = vec![next];
    }
}

#[test]
fn checkpoint_transfers_policy_between_processes() {
    let mut trained = MaBdq::new(small_config()).unwrap();
    train_against_simulator(&mut trained);
    let checkpoint = trained.save_checkpoint();

    // A "new process": fresh agent from the same config, restored weights.
    let mut restored = MaBdq::new(MaBdqConfig {
        seed: 99,
        ..small_config()
    })
    .unwrap();
    restored.load_checkpoint(&checkpoint).unwrap();

    // Greedy decisions must agree everywhere we probe.
    for i in 0..10 {
        let state = vec![vec![0.05 * i as f32; twig::sim::NUM_COUNTERS]];
        let a = trained.select_actions(&state, 0.0).unwrap();
        let b = restored.select_actions(&state, 0.0).unwrap();
        assert_eq!(a, b, "policies diverge at probe {i}");
    }
}

#[test]
fn checkpoint_shape_mismatch_rejected() {
    let trained = MaBdq::new(small_config()).unwrap();
    let checkpoint = trained.save_checkpoint();
    let mut other = MaBdq::new(MaBdqConfig {
        trunk_hidden: vec![16, 8],
        ..small_config()
    })
    .unwrap();
    assert!(matches!(
        other.load_checkpoint(&checkpoint),
        Err(twig::rl::RlError::CheckpointMismatch { .. })
    ));
}

#[test]
fn checkpoint_branch_permutation_rejected() {
    // `[18, 9]` and `[9, 18]` heads hold the same total parameter count, so
    // a raw length check would accept the transplant and silently swap the
    // cores and DVFS action spaces. The per-section shape validation must
    // reject it with the structured mismatch error instead.
    let donor = MaBdq::new(small_config()).unwrap();
    let checkpoint = donor.save_checkpoint();
    let mut permuted = MaBdq::new(MaBdqConfig {
        branches: vec![9, 18],
        ..small_config()
    })
    .unwrap();
    assert!(matches!(
        permuted.load_checkpoint(&checkpoint),
        Err(twig::rl::RlError::CheckpointMismatch { .. })
    ));
}
