//! Fault tolerance: ride out a misbehaving platform with the safety governor.
//!
//! Arms the simulator's fault-injection layer (corrupted performance
//! counters, rejected actuations) against a Twig-S manager wrapped in the
//! [`SafetyGovernor`], then disarms it and watches QoS recover. The
//! governor validates every decision, substitutes the last-known-good
//! assignment when the inner manager stumbles, and routes epochs with
//! corrupted telemetry around the learner so it never trains on garbage.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use twig::manager::{GovernorConfig, SafetyGovernor, TaskManager, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, FaultConfig, FaultPlan, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::masstree();
    let cfg = ServerConfig::default();
    let mut server = Server::new(cfg.clone(), vec![spec.clone()], 42)?;
    server.set_load_fraction(0, 0.5)?;

    let learn = 600;
    let twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(7)
        .build()?;
    let mut gov = SafetyGovernor::new(
        twig,
        GovernorConfig {
            services: vec![spec.clone()],
            cores: cfg.cores,
            dvfs: cfg.dvfs.clone(),
            ..GovernorConfig::default()
        },
    )?;
    println!("manager: {}", gov.name());

    let phase = |server: &mut Server, gov: &mut SafetyGovernor<_>, label: &str, epochs: u64| {
        let mut met = 0u64;
        for _ in 0..epochs {
            let actions = gov.decide().expect("decide");
            let report = server.step(&actions).expect("step");
            if report.services[0].p99_ms <= spec.qos_ms {
                met += 1;
            }
            gov.observe(&report).expect("observe");
        }
        println!(
            "{label:<10} {epochs:>4} epochs | QoS met {:>5.1} % | governor: {} fallbacks, {} degraded epochs, {} watchdog trips",
            100.0 * met as f64 / epochs as f64,
            gov.stats().fallback_decisions,
            gov.stats().degraded_epochs,
            gov.stats().watchdog_trips,
        );
    };

    phase(&mut server, &mut gov, "learn", learn);

    // 15% of PMC readings corrupted (NaN/Inf/zero/stale) and 10% of
    // actuations silently rejected by the platform.
    server.set_fault_plan(FaultPlan::new(
        FaultConfig {
            pmc_corrupt_rate: 0.15,
            actuation_reject_rate: 0.10,
            ..FaultConfig::default()
        },
        1234,
    )?);
    phase(&mut server, &mut gov, "faulted", 100);

    server.clear_fault_plan();
    phase(&mut server, &mut gov, "recovered", 100);
    Ok(())
}
