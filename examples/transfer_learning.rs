//! Transfer learning: adapt a trained Twig manager to a brand-new service.
//!
//! Twig pre-trains on Masstree, then the operator deploys Xapian in its
//! place. Instead of re-learning from scratch, Twig keeps the trunk's
//! shared representation and re-initialises only the final network layers
//! (Section IV). The example prints the post-swap QoS ramp with and without
//! transfer.
//!
//! Run with: `cargo run --release --example transfer_learning`

use twig::manager::{Twig, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, Server, ServerConfig, ServiceSpec};

fn qos_ramp(
    twig: &mut Twig,
    spec: &ServiceSpec,
    epochs: u64,
    bucket: usize,
    seed: u64,
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], seed)?;
    server.set_load_fraction(0, 0.5)?;
    let mut series = Vec::new();
    let mut met = 0usize;
    for epoch in 1..=epochs {
        let a = twig.decide()?;
        let r = server.step(&a)?;
        if r.services[0].p99_ms <= spec.qos_ms {
            met += 1;
        }
        twig.observe(&r)?;
        if (epoch as usize).is_multiple_of(bucket) {
            series.push(100.0 * met as f64 / bucket as f64);
            met = 0;
        }
    }
    Ok(series)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let learn = 800u64;
    let bucket = 80usize;

    // Pre-train on masstree.
    let mut donor = TwigBuilder::new()
        .services(vec![catalog::masstree()])
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(3)
        .build()?;
    println!("pre-training on masstree for {learn} epochs…");
    qos_ramp(&mut donor, &catalog::masstree(), learn, bucket, 42)?;

    // Swap masstree -> xapian with transfer.
    let mut transferred = donor.clone();
    transferred.transfer_service(0, catalog::xapian())?;
    let with_transfer = qos_ramp(&mut transferred, &catalog::xapian(), learn, bucket, 43)?;

    // Learn xapian from scratch for comparison.
    let mut scratch = TwigBuilder::new()
        .services(vec![catalog::xapian()])
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(4)
        .build()?;
    let from_scratch = qos_ramp(&mut scratch, &catalog::xapian(), learn, bucket, 43)?;

    println!("\nQoS guarantee per {bucket}-epoch bucket after deploying xapian:");
    println!("bucket  transfer  scratch");
    for (i, (t, s)) in with_transfer.iter().zip(&from_scratch).enumerate() {
        println!("{i:6}  {t:7.1}%  {s:6.1}%");
    }
    let ramp = |series: &[f64]| series.iter().position(|&q| q >= 80.0);
    println!(
        "\nbuckets to 80% QoS: transfer {:?}, scratch {:?}",
        ramp(&with_transfer),
        ramp(&from_scratch)
    );
    Ok(())
}
