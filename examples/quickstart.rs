//! Quickstart: manage one latency-critical service with Twig-S.
//!
//! Builds the simulated 18-core server hosting Masstree at 50 % load,
//! attaches a Twig manager with a compressed learning schedule, runs the
//! decide → step → observe loop, and prints how QoS guarantee and power
//! evolve as the agent learns.
//!
//! Run with: `cargo run --release --example quickstart`

use twig::manager::TwigBuilder;
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::masstree();
    println!(
        "service {} | max load {} RPS | p99 target {} ms",
        spec.name, spec.max_load_rps, spec.qos_ms
    );

    let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 42)?;
    server.set_load_fraction(0, 0.5)?;

    let learn = 800;
    let mut twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(7)
        .build()?;

    let mut met = 0usize;
    let mut power_sum = 0.0;
    let window = 100;
    println!("\n  epoch  eps    QoS-met%  avg power (W)  cores  freq");
    for epoch in 1..=(learn + 400) {
        let assignments = twig.decide()?;
        let report = server.step(&assignments)?;
        let svc = &report.services[0];
        if svc.p99_ms <= spec.qos_ms {
            met += 1;
        }
        power_sum += report.true_power_w;
        if epoch % window == 0 {
            println!(
                "  {epoch:5}  {:.2}   {:7.1}   {:12.1}   {:4}  {}",
                twig.epsilon(),
                100.0 * met as f64 / window as f64,
                power_sum / window as f64,
                svc.core_count,
                svc.freq,
            );
            met = 0;
            power_sum = 0.0;
        }
        twig.observe(&report)?;
    }
    println!(
        "\ndone: {} gradient steps, {} buffered transitions",
        twig.agent().steps(),
        twig.agent().buffer_len()
    );
    Ok(())
}
