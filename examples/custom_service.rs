//! Bring your own workload: define a custom service model and let Twig
//! manage it — no Twig changes needed, because the manager is service-
//! agnostic (it only ever sees hardware counters).
//!
//! The example models an "inference gateway": moderately CPU-heavy
//! requests, modest memory traffic, a 3.5 ms p99 target. It validates the
//! spec, probes platform capacity, and runs Twig-S under a diurnal load.
//!
//! Run with: `cargo run --release --example custom_service`

use twig::manager::TwigBuilder;
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, Assignment, LoadGenerator, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start from a catalog entry and customise — ServiceSpec is a plain
    // data structure.
    let mut spec = catalog::xapian();
    spec.name = "inference-gateway".into();
    spec.max_load_rps = 1500.0;
    spec.qos_ms = 3.5;
    spec.work_cpu_ms = 2.6;
    spec.work_mem_ms = 0.6;
    spec.demand_cv = 0.6;
    spec.bw_demand_frac = 0.2;
    spec.validate()?;

    // Probe: can the platform sustain the declared max load at full
    // resources?
    let cfg = ServerConfig::default();
    let mut probe = Server::new(cfg.clone(), vec![spec.clone()], 1)?;
    probe.set_load_fraction(0, 1.0)?;
    let full = vec![Assignment::first_n(cfg.cores, cfg.dvfs.max())];
    let mut worst: f64 = 0.0;
    for e in 0..60 {
        let r = probe.step(&full)?;
        if e >= 20 {
            worst = worst.max(r.services[0].p99_ms);
        }
    }
    println!(
        "capacity probe: worst p99 {:.2} ms at {} RPS with full resources (target {} ms)",
        worst, spec.max_load_rps, spec.qos_ms
    );
    if worst > spec.qos_ms {
        println!("warning: declared max load is beyond platform capacity");
    }

    // Manage it under a diurnal load curve.
    let learn = 800u64;
    let mut server = Server::new(cfg, vec![spec.clone()], 2)?;
    server.set_load_generator(0, LoadGenerator::diurnal(0.15, 0.85, 400)?)?;
    let mut twig = TwigBuilder::new()
        .services(vec![spec.clone()])
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(5)
        .build()?;

    let mut met = 0usize;
    let mut energy = 0.0;
    let window = 400;
    for epoch in 1..=(learn + 800) {
        let a = twig.decide()?;
        let r = server.step(&a)?;
        if r.services[0].p99_ms <= spec.qos_ms {
            met += 1;
        }
        energy += r.true_power_w;
        twig.observe(&r)?;
        if epoch % window == 0 {
            println!(
                "epochs {:4}-{epoch:4}: QoS met {:5.1}%  avg power {:5.1} W",
                epoch - window + 1,
                100.0 * met as f64 / window as f64,
                energy / window as f64
            );
            met = 0;
            energy = 0.0;
        }
    }
    Ok(())
}
