//! Colocation: Twig-C vs PARTIES on the paper's most interesting pair.
//!
//! Moses is cache- and bandwidth-hungry; Masstree barely uses bandwidth
//! but is extremely sensitive to interference on it (Section V-B2). This
//! example colocates them (Masstree 20 %, Moses 60 %), runs both managers,
//! and prints the side-by-side QoS/energy/migration summary of Figure 12.
//!
//! Run with: `cargo run --release --example colocate_pair`

use twig::baselines::{Parties, PartiesConfig};
use twig::manager::{TaskManager, TwigBuilder};
use twig::rl::EpsilonSchedule;
use twig::sim::{catalog, Server, ServerConfig};

struct Outcome {
    qos: Vec<f64>,
    energy: f64,
    migrations: usize,
}

fn run(
    manager: &mut dyn TaskManager,
    epochs: u64,
    window: u64,
    seed: u64,
) -> Result<Outcome, Box<dyn std::error::Error + Send + Sync>> {
    let specs = vec![catalog::masstree(), catalog::moses()];
    let mut server = Server::new(ServerConfig::default(), specs.clone(), seed)?;
    server.set_load_fraction(0, 0.2)?;
    server.set_load_fraction(1, 0.6)?;
    let mut reports = Vec::new();
    for _ in 0..epochs {
        let a = manager.decide()?;
        let r = server.step(&a)?;
        manager.observe(&r)?;
        reports.push(r);
    }
    let tail = &reports[reports.len() - window as usize..];
    let qos = (0..2)
        .map(|i| {
            100.0
                * tail
                    .iter()
                    .filter(|r| r.services[i].p99_ms <= specs[i].qos_ms)
                    .count() as f64
                / tail.len() as f64
        })
        .collect();
    Ok(Outcome {
        qos,
        energy: tail.iter().map(|r| r.true_power_w).sum(),
        migrations: tail.iter().map(|r| r.migrations).sum(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let specs = vec![catalog::masstree(), catalog::moses()];
    let learn = 1200u64;
    let window = 300u64;

    let mut twig = TwigBuilder::new()
        .services(specs.clone())
        .epsilon(EpsilonSchedule::scaled(learn))
        .seed(11)
        .build()?;
    let twig_result = run(&mut twig, learn + window, window, 42)?;

    let mut parties = Parties::new(
        specs,
        18,
        ServerConfig::default().dvfs,
        PartiesConfig::default(),
    )?;
    let parties_result = run(&mut parties, 150 + window, window, 42)?;

    println!("masstree @ 20% + moses @ 60%, {window}-epoch measurement window\n");
    println!("manager   masstree QoS  moses QoS  energy (J)  migrations");
    for (name, o) in [("twig-c", &twig_result), ("parties", &parties_result)] {
        println!(
            "{name:9} {:10.1}%  {:8.1}%  {:10.0}  {:10}",
            o.qos[0], o.qos[1], o.energy, o.migrations
        );
    }
    println!(
        "\ntwig-c energy vs parties: {:+.1}%",
        100.0 * (twig_result.energy / parties_result.energy - 1.0)
    );
    Ok(())
}
