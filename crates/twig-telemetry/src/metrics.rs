use crate::TelemetryError;
use std::collections::BTreeMap;

/// A histogram with log-scaled fixed buckets over `[lo, hi)`.
///
/// Latency- and loss-style metrics span orders of magnitude; equal-width
/// bins either blur the small values or truncate the large ones. Here each
/// bucket is a constant *ratio* wider than the previous one
/// (`buckets_per_decade` buckets per ×10), so relative resolution is
/// uniform across the range. Quantile queries interpolate geometrically
/// within the winning bucket; the unit tests cross-check them against
/// [`twig_stats::percentile`] on the raw samples.
///
/// Non-finite samples are counted (`nonfinite`) but never recorded — a NaN
/// must not poison a summary the control loop's operators rely on.
///
/// # Examples
///
/// ```
/// let mut h = twig_telemetry::LogHistogram::new(0.001, 1000.0, 8).unwrap();
/// for v in [0.5, 1.0, 2.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(50.0).unwrap();
/// assert!(p50 > 0.5 && p50 < 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nonfinite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// Creates a histogram over `[lo, hi)` with `buckets_per_decade` buckets
    /// per factor of ten.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::InvalidConfig`] when `lo <= 0`, `hi <= lo`
    /// or `buckets_per_decade == 0`.
    pub fn new(lo: f64, hi: f64, buckets_per_decade: usize) -> Result<Self, TelemetryError> {
        let bounds_ok = lo.is_finite() && hi.is_finite() && lo > 0.0 && hi > lo;
        if !bounds_ok || buckets_per_decade == 0 {
            return Err(TelemetryError::InvalidConfig {
                detail: format!("log histogram [{lo}, {hi}) x{buckets_per_decade}/decade"),
            });
        }
        let growth = 10f64.powf(1.0 / buckets_per_decade as f64);
        let buckets = ((hi / lo).log10() * buckets_per_decade as f64)
            .ceil()
            .max(1.0) as usize;
        Ok(LogHistogram {
            lo,
            growth,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            nonfinite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    /// The default layout for control-loop metrics: 0.1 µs to 10⁷ ms with 8
    /// buckets per decade (< 15 % relative bucket width, 88 buckets).
    pub fn for_timings() -> Self {
        Self::new(1e-4, 1e7, 8).expect("static layout is valid")
    }

    /// Records one sample. Values below `lo` (including zero and negatives)
    /// land in a dedicated underflow bucket, values at or above `hi` in an
    /// overflow bucket; both still count toward quantiles as range ends.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < self.lo {
            self.underflow += 1;
        } else {
            let idx = (value / self.lo).log10() / self.growth.log10();
            let idx = idx as usize;
            if idx >= self.counts.len() {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Finite samples recorded.
    pub fn count(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Non-finite samples rejected.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Sum of the finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the finite samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Smallest finite sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest finite sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// The `p`-th quantile estimate (`p` in `0..=100`), interpolated
    /// geometrically within the winning bucket and clamped to the observed
    /// min/max. `None` when empty or `p` is out of range.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 100.0 {
            return Some(self.max);
        }
        let target = p / 100.0 * (total as f64 - 1.0);
        let mut cum = self.underflow as f64;
        let clamp = |v: f64| v.clamp(self.min, self.max);
        if target < cum {
            return Some(self.min);
        }
        let mut bucket_lo = self.lo;
        for &c in &self.counts {
            if c > 0 && target < cum + c as f64 {
                let frac = (target - cum + 0.5) / c as f64;
                return Some(clamp(bucket_lo * self.growth.powf(frac.clamp(0.0, 1.0))));
            }
            cum += c as f64;
            bucket_lo *= self.growth;
        }
        Some(self.max)
    }

    /// Collapses the histogram into a fixed summary for export.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            nonfinite: self.nonfinite,
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            p50: self.quantile(50.0).unwrap_or(0.0),
            p95: self.quantile(95.0).unwrap_or(0.0),
            p99: self.quantile(99.0).unwrap_or(0.0),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::for_timings()
    }
}

/// Fixed-size digest of a [`LogHistogram`] (what sinks export).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Finite samples recorded.
    pub count: u64,
    /// Non-finite samples rejected.
    pub nonfinite: u64,
    /// Mean of the finite samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Named counters, gauges and histograms with deterministic (sorted)
/// iteration order.
///
/// Counters only go up (events: governor trips, rejected transitions);
/// gauges hold the latest value (ε, buffer occupancy, socket power);
/// histograms digest distributions (phase latencies, loss, p99).
///
/// # Examples
///
/// ```
/// let mut m = twig_telemetry::MetricsRegistry::new();
/// m.counter_add("governor.trips", 1);
/// m.gauge_set("twig.epsilon", 0.1);
/// m.record("rl.loss", 0.25);
/// assert_eq!(m.counter("governor.trips"), 1);
/// assert_eq!(m.gauge("twig.epsilon"), Some(0.1));
/// assert_eq!(m.histogram("rl.loss").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` into histogram `name` (created with the
    /// [`LogHistogram::for_timings`] layout on first use).
    pub fn record(&mut self, name: &str, value: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LogHistogram::for_timings();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of counter `name` (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Every counter whose name starts with `prefix`, name-sorted.
    ///
    /// This is the audit surface for subsystems that mirror their own
    /// stats structs into a counter namespace (`ckpt.*`, `cluster.*`, …):
    /// a suite can diff the full namespace against the struct instead of
    /// spot-checking individual names.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Histogram `name`, if any value was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// A point-in-time copy of everything, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], name-sorted for
/// deterministic export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, digest)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Every counter whose name starts with `prefix`, name-sorted — the
    /// snapshot-side twin of [`MetricsRegistry::counters_with_prefix`].
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram digest by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn counters_with_prefix_returns_sorted_namespace() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("cluster.failovers", 2);
        reg.counter_add("cluster.bounced", 7);
        reg.counter_add("clusterx.other", 1);
        reg.counter_add("ckpt.saves", 3);
        assert_eq!(
            reg.counters_with_prefix("cluster."),
            vec![
                ("cluster.bounced".to_string(), 7),
                ("cluster.failovers".to_string(), 2),
            ]
        );
        assert!(reg.counters_with_prefix("missing.").is_empty());
        assert_eq!(
            reg.snapshot().counters_with_prefix("cluster."),
            reg.counters_with_prefix("cluster.")
        );
    }

    #[test]
    fn rejects_degenerate_layouts() {
        assert!(LogHistogram::new(0.0, 1.0, 4).is_err());
        assert!(LogHistogram::new(-1.0, 1.0, 4).is_err());
        assert!(LogHistogram::new(1.0, 1.0, 4).is_err());
        assert!(LogHistogram::new(0.1, 10.0, 0).is_err());
        assert!(LogHistogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bucket_edges_grow_by_constant_ratio() {
        let h = LogHistogram::new(1.0, 1000.0, 1).unwrap();
        // 3 decades, 1 bucket per decade.
        assert_eq!(h.counts.len(), 3);
        assert!((h.growth - 10.0).abs() < 1e-12);
    }

    #[test]
    fn samples_land_in_the_right_decade() {
        let mut h = LogHistogram::new(1.0, 1000.0, 1).unwrap();
        h.record(2.0); // decade [1, 10)
        h.record(20.0); // decade [10, 100)
        h.record(200.0); // decade [100, 1000)
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
    }

    #[test]
    fn underflow_overflow_and_nonfinite_are_segregated() {
        let mut h = LogHistogram::new(1.0, 100.0, 2).unwrap();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e9);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.underflow, 2);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.nonfinite(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_match_twig_stats_percentiles_within_bucket_resolution() {
        // The histogram's quantile must agree with the exact order
        // statistic (twig-stats on the raw samples) to within one bucket's
        // relative width — that is the whole point of log bucketing.
        let mut rng = Xoshiro256::seed_from_u64(0x7e1e);
        for trial in 0..20 {
            let mut h = LogHistogram::new(1e-3, 1e4, 16).unwrap();
            let n = rng.range_usize(50, 2000);
            let mut samples: Vec<f64> = (0..n)
                .map(|_| 10f64.powf(rng.range_f64(-2.0, 3.0)))
                .collect();
            for &s in &samples {
                h.record(s);
            }
            let rel_width = 10f64.powf(1.0 / 16.0);
            for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                let exact = twig_stats::percentile(&mut samples, p).unwrap();
                let est = h.quantile(p).unwrap();
                let ratio = est / exact;
                assert!(
                    ratio < rel_width * rel_width && ratio > 1.0 / (rel_width * rel_width),
                    "trial {trial} p{p}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut rng = Xoshiro256::seed_from_u64(0xbead);
        let mut h = LogHistogram::for_timings();
        for _ in 0..500 {
            h.record(rng.range_f64(0.01, 100.0));
        }
        let mut prev = 0.0;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let q = h.quantile(p).unwrap();
            assert!(q >= prev, "quantiles must be monotone in p");
            assert!(q >= h.min().unwrap() && q <= h.max().unwrap());
            prev = q;
        }
        assert_eq!(h.quantile(0.0).unwrap(), h.min().unwrap());
        assert_eq!(h.quantile(100.0).unwrap(), h.max().unwrap());
    }

    #[test]
    fn quantile_edge_cases() {
        let h = LogHistogram::for_timings();
        assert_eq!(h.quantile(50.0), None, "empty histogram");
        let mut h = LogHistogram::for_timings();
        h.record(3.0);
        assert_eq!(h.quantile(0.0), Some(3.0));
        assert_eq!(h.quantile(100.0), Some(3.0));
        assert_eq!(h.quantile(101.0), None);
        assert_eq!(h.quantile(-1.0), None);
    }

    #[test]
    fn summary_digest_is_consistent() {
        let mut h = LogHistogram::for_timings();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn registry_counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 2.0);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.0));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.counter_add("a", 1);
        m.record("h", 5.0);
        m.gauge_set("mid", 0.5);
        let s = m.snapshot();
        assert_eq!(s.counters[0].0, "a");
        assert_eq!(s.counters[1].0, "z");
        assert_eq!(s.counter("z"), 1);
        assert_eq!(s.gauge("mid"), Some(0.5));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert!(s.histogram("nope").is_none());
    }
}
