use std::time::Instant;

/// Number of phases in a control-loop epoch.
pub const NUM_PHASES: usize = 6;

/// The phases of one Twig decision epoch, in pipeline order.
///
/// `decide()` covers the first three (read counters, run the networks, map
/// actions to an assignment), the platform covers actuation, and
/// `observe()` covers the last two (reward computation + experience push,
/// then gradient steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading and normalising the PMC state vectors.
    PmcRead,
    /// Forward pass of the per-service Q-networks + action selection.
    Inference,
    /// Translating joint actions into a core/DVFS assignment.
    Mapping,
    /// Applying the assignment on the platform (simulated epoch step).
    Actuation,
    /// Reward computation and replay-buffer insertion.
    RewardUpdate,
    /// Minibatch gradient steps on the online network.
    LearnStep,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::PmcRead,
        Phase::Inference,
        Phase::Mapping,
        Phase::Actuation,
        Phase::RewardUpdate,
        Phase::LearnStep,
    ];

    /// Stable snake_case name, used for metric keys and export columns.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PmcRead => "pmc_read",
            Phase::Inference => "inference",
            Phase::Mapping => "mapping",
            Phase::Actuation => "actuation",
            Phase::RewardUpdate => "reward_update",
            Phase::LearnStep => "learn_step",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::PmcRead => 0,
            Phase::Inference => 1,
            Phase::Mapping => 2,
            Phase::Actuation => 3,
            Phase::RewardUpdate => 4,
            Phase::LearnStep => 5,
        }
    }
}

/// Wall-clock time spent in each [`Phase`] of one epoch, in milliseconds.
///
/// A span is assembled cooperatively: the manager records its phases from
/// `decide()`/`observe()`, the platform records actuation from its step —
/// all against the same epoch number, merged by the telemetry handle.
///
/// # Examples
///
/// ```
/// use twig_telemetry::{EpochSpan, Phase};
///
/// let mut span = EpochSpan::new(3);
/// span.add(Phase::Inference, 0.25);
/// span.add(Phase::Inference, 0.25);
/// assert_eq!(span.get(Phase::Inference), 0.5);
/// assert_eq!(span.total_ms(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSpan {
    /// The decision epoch this span describes.
    pub epoch: u64,
    phase_ms: [f64; NUM_PHASES],
}

impl EpochSpan {
    /// Creates an empty span for `epoch`.
    pub fn new(epoch: u64) -> Self {
        EpochSpan {
            epoch,
            phase_ms: [0.0; NUM_PHASES],
        }
    }

    /// Adds `ms` to `phase` (accumulates across calls within the epoch).
    pub fn add(&mut self, phase: Phase, ms: f64) {
        self.phase_ms[phase.index()] += ms;
    }

    /// Milliseconds recorded for `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.phase_ms[phase.index()]
    }

    /// Total milliseconds across all phases.
    pub fn total_ms(&self) -> f64 {
        self.phase_ms.iter().sum()
    }
}

/// Measures elapsed wall-clock time between laps — but only when armed.
///
/// A disarmed stopwatch never touches [`Instant::now`] and always reports
/// zero, so the disabled-telemetry hot path pays nothing and, crucially,
/// never perturbs anything: timing reads feed only the telemetry layer,
/// keeping simulation outputs bit-identical whether telemetry is on or off.
///
/// # Examples
///
/// ```
/// use twig_telemetry::Stopwatch;
///
/// let mut off = Stopwatch::disarmed();
/// assert_eq!(off.lap_ms(), 0.0);
/// let mut on = Stopwatch::armed();
/// assert!(on.lap_ms() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// A stopwatch that measures real time.
    pub fn armed() -> Self {
        Stopwatch {
            last: Some(Instant::now()),
        }
    }

    /// A stopwatch that always reports zero and never reads the clock.
    pub fn disarmed() -> Self {
        Stopwatch { last: None }
    }

    /// Milliseconds since the previous lap (or since arming), then restarts
    /// the lap. Always `0.0` when disarmed.
    pub fn lap_ms(&mut self) -> f64 {
        match self.last {
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                now.duration_since(prev).as_secs_f64() * 1e3
            }
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_cover_the_array_in_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "pmc_read",
                "inference",
                "mapping",
                "actuation",
                "reward_update",
                "learn_step"
            ]
        );
    }

    #[test]
    fn span_accumulates_per_phase() {
        let mut span = EpochSpan::new(9);
        span.add(Phase::PmcRead, 1.0);
        span.add(Phase::PmcRead, 0.5);
        span.add(Phase::LearnStep, 2.0);
        assert_eq!(span.epoch, 9);
        assert_eq!(span.get(Phase::PmcRead), 1.5);
        assert_eq!(span.get(Phase::Inference), 0.0);
        assert_eq!(span.total_ms(), 3.5);
    }

    #[test]
    fn disarmed_stopwatch_reports_zero_forever() {
        let mut sw = Stopwatch::disarmed();
        assert_eq!(sw.lap_ms(), 0.0);
        assert_eq!(sw.lap_ms(), 0.0);
    }

    #[test]
    fn armed_stopwatch_reports_nonnegative_laps() {
        let mut sw = Stopwatch::armed();
        let a = sw.lap_ms();
        let b = sw.lap_ms();
        assert!(a >= 0.0 && b >= 0.0);
    }
}
