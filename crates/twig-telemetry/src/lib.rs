//! Zero-dependency tracing and metrics for the Twig control loop.
//!
//! The Twig paper argues the manager's viability through overhead
//! accounting (Table III): every phase of the 1 s decision epoch must fit
//! comfortably inside the epoch. This crate makes that accounting — and
//! the rest of the loop's runtime behaviour (governor trips, learner
//! health, QoS slack, fault-injection events) — continuously observable
//! without adding any external dependency or perturbing the simulation.
//!
//! # Architecture
//!
//! - [`MetricsRegistry`] — named counters, gauges and log-scaled
//!   histograms ([`LogHistogram`]) with p50/p95/p99 queries.
//! - [`EpochSpan`] — per-epoch wall-clock phase timings (PMC read →
//!   inference → mapping → actuation → reward update → learn step),
//!   assembled cooperatively by manager and platform, kept in a bounded
//!   [`RingBuffer`].
//! - [`Sink`] — pluggable output: [`NoopSink`] (default), [`MemorySink`]
//!   (recorder), [`JsonlSink`] / [`CsvSink`] (streaming exporters built on
//!   the in-repo [`json`] serializer).
//! - [`Telemetry`] — the cheap, cloneable handle threaded through
//!   `twig-sim`, `twig-core` and `twig-rl`.
//!
//! # The disabled path costs nothing
//!
//! [`Telemetry::disabled`] is a `None` — every instrumentation call
//! short-circuits on one branch, allocates nothing, and never reads the
//! clock ([`Stopwatch::disarmed`]). Timing reads feed only this layer, so
//! simulation outputs and RNG streams are bit-identical with telemetry
//! disabled, enabled with the no-op sink, or enabled with a recorder
//! (asserted by the workspace determinism tests).
//!
//! # Examples
//!
//! ```
//! use twig_telemetry::{Phase, Telemetry};
//!
//! let tl = Telemetry::recorder();
//! tl.counter_add("governor.trips", 1);
//! tl.gauge_set("twig.epsilon", 0.08);
//! tl.record("rl.loss", 0.31);
//! tl.phase_add(0, Phase::Inference, 0.4);
//! tl.phase_add(1, Phase::Inference, 0.5); // epoch 0's span completes
//! tl.flush().unwrap();
//! let m = tl.metrics().unwrap();
//! assert_eq!(m.counter("governor.trips"), 1);
//! assert_eq!(tl.spans().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod json;
mod metrics;
mod ring;
mod sink;
mod span;

pub use error::TelemetryError;
pub use metrics::{HistogramSummary, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use ring::RingBuffer;
pub use sink::{snapshot_to_jsonl, span_to_json, CsvSink, JsonlSink, MemorySink, NoopSink, Sink};
pub use span::{EpochSpan, Phase, Stopwatch, NUM_PHASES};

use std::cell::RefCell;
use std::rc::Rc;

/// Default bound on the span ring buffer (epochs of history kept).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Inner {
    registry: RefCell<MetricsRegistry>,
    spans: RefCell<RingBuffer<EpochSpan>>,
    current: RefCell<Option<EpochSpan>>,
    sink: RefCell<Box<dyn Sink>>,
}

/// The instrumentation handle threaded through the control loop.
///
/// Cloning is cheap (an `Rc` bump) and clones share state, so the
/// simulator, manager and learner can all write into one registry. The
/// handle is single-threaded by design — the control loop it instruments
/// is a single 1 s-epoch loop.
///
/// [`Telemetry::disabled`] (also the `Default`) is inert: every method is
/// a no-op returning zero/`None`, with no allocation and no clock reads.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<Inner>>,
}

impl Telemetry {
    /// The inert handle: all instrumentation short-circuits.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle discarding spans into [`NoopSink`] — metrics and
    /// the ring buffer still accumulate for later inspection.
    pub fn enabled() -> Self {
        Self::with_sink(DEFAULT_SPAN_CAPACITY, Box::new(NoopSink))
    }

    /// An enabled handle recording every span into a [`MemorySink`].
    pub fn recorder() -> Self {
        Self::with_sink(DEFAULT_SPAN_CAPACITY, Box::new(MemorySink::new()))
    }

    /// An enabled handle with a custom sink and span-ring capacity.
    pub fn with_sink(span_capacity: usize, sink: Box<dyn Sink>) -> Self {
        Telemetry {
            inner: Some(Rc::new(Inner {
                registry: RefCell::new(MetricsRegistry::new()),
                spans: RefCell::new(RingBuffer::new(span_capacity)),
                current: RefCell::new(None),
                sink: RefCell::new(sink),
            })),
        }
    }

    /// `true` when instrumentation calls actually record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().counter_add(name, delta);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().gauge_set(name, value);
        }
    }

    /// Records `value` into histogram `name`.
    pub fn record(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().record(name, value);
        }
    }

    /// Current value of counter `name` (zero when disabled or untouched).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.registry.borrow().counter(name),
            None => 0,
        }
    }

    /// Current value of gauge `name` (`None` when disabled or unset).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.registry.borrow().gauge(name))
    }

    /// A stopwatch: armed when enabled, inert ([`Stopwatch::disarmed`])
    /// when disabled, so the hot path never reads the clock.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.inner.is_some() {
            Stopwatch::armed()
        } else {
            Stopwatch::disarmed()
        }
    }

    /// Adds `ms` to `phase` of `epoch`'s span.
    ///
    /// Spans are assembled incrementally: contributions for the same epoch
    /// (from the manager's `decide`/`observe` and the platform's step)
    /// merge into one [`EpochSpan`]; the first contribution for a
    /// *different* epoch completes the open span, pushing it into the ring
    /// buffer and the sink. Each phase's time also feeds a
    /// `phase_ms.<name>` histogram.
    pub fn phase_add(&self, epoch: u64, phase: Phase, ms: f64) {
        let Some(inner) = &self.inner else { return };
        let mut current = inner.current.borrow_mut();
        match current.as_mut() {
            Some(span) if span.epoch == epoch => span.add(phase, ms),
            _ => {
                if let Some(done) = current.take() {
                    inner.spans.borrow_mut().push(done);
                    inner.sink.borrow_mut().record_span(&done);
                }
                let mut span = EpochSpan::new(epoch);
                span.add(phase, ms);
                *current = Some(span);
            }
        }
        inner
            .registry
            .borrow_mut()
            .record(&format!("phase_ms.{}", phase.name()), ms);
    }

    /// Completes the open span (if any) and flushes the sink with a final
    /// metrics snapshot. Idempotent; `Ok(())` when disabled.
    pub fn flush(&self) -> Result<(), TelemetryError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(done) = inner.current.borrow_mut().take() {
            inner.spans.borrow_mut().push(done);
            inner.sink.borrow_mut().record_span(&done);
        }
        let snapshot = inner.registry.borrow().snapshot();
        inner.sink.borrow_mut().flush(&snapshot)
    }

    /// A point-in-time metrics snapshot (`None` when disabled).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner
            .as_ref()
            .map(|inner| inner.registry.borrow().snapshot())
    }

    /// The retained spans, oldest → newest, including the still-open one.
    /// Empty when disabled.
    pub fn spans(&self) -> Vec<EpochSpan> {
        match &self.inner {
            Some(inner) => {
                let mut out = inner.spans.borrow().to_vec();
                if let Some(open) = *inner.current.borrow() {
                    out.push(open);
                }
                out
            }
            None => Vec::new(),
        }
    }

    /// Spans evicted from the ring buffer so far (zero when disabled).
    pub fn spans_dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.spans.borrow().dropped(),
            None => 0,
        }
    }

    /// Runs `f` against the sink — for draining a recorder after a run:
    ///
    /// ```
    /// use twig_telemetry::{MemorySink, Telemetry};
    ///
    /// let tl = Telemetry::recorder();
    /// tl.phase_add(0, twig_telemetry::Phase::Mapping, 0.1);
    /// tl.flush().unwrap();
    /// let n = tl.with_sink_mut(|s| {
    ///     s.as_any_mut().downcast_mut::<MemorySink>().map_or(0, |m| m.spans.len())
    /// });
    /// assert_eq!(n, Some(1));
    /// ```
    ///
    /// Returns `None` when disabled.
    pub fn with_sink_mut<R>(&self, f: impl FnOnce(&mut dyn Sink) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(inner.sink.borrow_mut().as_mut()))
    }

    /// Writes the full trace (all retained spans, then the metrics
    /// snapshot) as JSON Lines. Does nothing when disabled.
    pub fn export_jsonl(&self, w: &mut dyn std::io::Write) -> Result<(), TelemetryError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        for span in self.spans() {
            writeln!(w, "{}", span_to_json(&span))?;
        }
        let snapshot = inner.registry.borrow().snapshot();
        w.write_all(snapshot_to_jsonl(&snapshot).as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tl = Telemetry::disabled();
        assert!(!tl.is_enabled());
        tl.counter_add("c", 1);
        tl.gauge_set("g", 1.0);
        tl.record("h", 1.0);
        tl.phase_add(0, Phase::PmcRead, 1.0);
        assert_eq!(tl.counter("c"), 0);
        assert_eq!(tl.gauge("g"), None);
        assert!(tl.metrics().is_none());
        assert!(tl.spans().is_empty());
        assert!(tl.flush().is_ok());
    }

    #[test]
    fn clones_share_state() {
        let tl = Telemetry::enabled();
        let clone = tl.clone();
        clone.counter_add("shared", 2);
        tl.counter_add("shared", 3);
        assert_eq!(tl.counter("shared"), 5);
    }

    #[test]
    fn spans_complete_on_epoch_rollover() {
        let tl = Telemetry::enabled();
        tl.phase_add(0, Phase::PmcRead, 1.0);
        tl.phase_add(0, Phase::Inference, 2.0);
        tl.phase_add(1, Phase::PmcRead, 3.0);
        let spans = tl.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].epoch, 0);
        assert_eq!(spans[0].get(Phase::Inference), 2.0);
        assert_eq!(spans[1].epoch, 1);
        // Only epoch 0 is complete; epoch 1 is still open.
        tl.flush().unwrap();
        assert_eq!(tl.spans().len(), 2);
        let m = tl.metrics().unwrap();
        assert_eq!(m.histogram("phase_ms.pmc_read").unwrap().count, 2);
    }

    #[test]
    fn flush_is_idempotent() {
        let tl = Telemetry::enabled();
        tl.phase_add(0, Phase::Mapping, 0.5);
        tl.flush().unwrap();
        tl.flush().unwrap();
        assert_eq!(tl.spans().len(), 1);
    }

    #[test]
    fn ring_buffer_bounds_span_history() {
        let tl = Telemetry::with_sink(4, Box::new(NoopSink));
        for epoch in 0..10 {
            tl.phase_add(epoch, Phase::Actuation, 1.0);
        }
        tl.flush().unwrap();
        let spans = tl.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.first().unwrap().epoch, 6);
        assert_eq!(spans.last().unwrap().epoch, 9);
        assert_eq!(tl.spans_dropped(), 6);
    }

    #[test]
    fn export_jsonl_covers_spans_and_metrics() {
        let tl = Telemetry::enabled();
        tl.phase_add(0, Phase::LearnStep, 2.0);
        tl.counter_add("c", 1);
        tl.flush().unwrap();
        let mut buf = Vec::new();
        tl.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().any(|l| l.contains(r#""kind":"span""#)));
        assert!(text.lines().any(|l| l.contains(r#""kind":"counter""#)));
        assert!(text.lines().any(|l| l.contains(r#""kind":"histogram""#)));
    }

    #[test]
    fn stopwatch_armed_only_when_enabled() {
        let mut off = Telemetry::disabled().stopwatch();
        assert_eq!(off.lap_ms(), 0.0);
        let mut on = Telemetry::enabled().stopwatch();
        assert!(on.lap_ms() >= 0.0);
    }
}
