//! A deliberately tiny JSON writer — just enough to emit telemetry
//! records as JSON Lines without pulling `serde` into an offline build.
//! Supports objects of scalars plus nested objects and arrays (used by
//! the scenario engine's machine-readable emissions).

use std::fmt::Write as _;

/// Builds one JSON object as a `String`, key by key.
///
/// # Examples
///
/// ```
/// let mut o = twig_telemetry::json::JsonObject::new();
/// o.field_u64("epoch", 3);
/// o.field_f64("loss", 0.25);
/// o.field_str("kind", "span");
/// assert_eq!(o.finish(), r#"{"epoch":3,"loss":0.25,"kind":"span"}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    out: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            out: String::from("{"),
        }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    /// Adds an unsigned-integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.out, "{}:{}", quoted(key), value);
        self
    }

    /// Adds a float field. Non-finite values (which JSON cannot represent)
    /// are emitted as `null`.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.out, "{}:{}", quoted(key), FloatRepr(value));
        } else {
            let _ = write!(self.out, "{}:null", quoted(key));
        }
        self
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.out, "{}:{}", quoted(key), quoted(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        let _ = write!(self.out, "{}:{}", quoted(key), value);
        self
    }

    /// Adds a nested object field, built by the closure.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut o = twig_telemetry::json::JsonObject::new();
    /// o.field_object("inner", |i| {
    ///     i.field_u64("n", 1);
    /// });
    /// assert_eq!(o.finish(), r#"{"inner":{"n":1}}"#);
    /// ```
    pub fn field_object(&mut self, key: &str, build: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.sep();
        let mut inner = JsonObject::new();
        build(&mut inner);
        let _ = write!(self.out, "{}:{}", quoted(key), inner.finish());
        self
    }

    /// Adds a nested array field, built by the closure.
    pub fn field_array(&mut self, key: &str, build: impl FnOnce(&mut JsonArray)) -> &mut Self {
        self.sep();
        let mut inner = JsonArray::new();
        build(&mut inner);
        let _ = write!(self.out, "{}:{}", quoted(key), inner.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Builds one JSON array as a `String`, element by element.
///
/// # Examples
///
/// ```
/// let mut a = twig_telemetry::json::JsonArray::new();
/// a.push_u64(1).push_str("two").push_bool(true);
/// assert_eq!(a.finish(), r#"[1,"two",true]"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonArray {
    out: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            out: String::from("["),
        }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    /// Appends an unsigned integer.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends a float; non-finite values become `null`.
    pub fn push_f64(&mut self, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.out, "{}", FloatRepr(value));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Appends a string (escaped).
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.out.push_str(&quoted(value));
        self
    }

    /// Appends a boolean.
    pub fn push_bool(&mut self, value: bool) -> &mut Self {
        self.sep();
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends a nested object, built by the closure.
    pub fn push_object(&mut self, build: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.sep();
        let mut inner = JsonObject::new();
        build(&mut inner);
        self.out.push_str(&inner.finish());
        self
    }

    /// Appends a nested array, built by the closure.
    pub fn push_array(&mut self, build: impl FnOnce(&mut JsonArray)) -> &mut Self {
        self.sep();
        let mut inner = JsonArray::new();
        build(&mut inner);
        self.out.push_str(&inner.finish());
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push(']');
        self.out
    }
}

/// `f64` formatter that always round-trips: shortest representation that
/// parses back to the same value, with a `.0` suffix kept off (JSON numbers
/// need no decimal point).
struct FloatRepr(f64);

impl std::fmt::Display for FloatRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Rust's default `Display` for f64 is already the shortest
        // round-trip representation.
        write!(f, "{}", self.0)
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let mut o = JsonObject::new();
        o.field_str("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(o.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("nan", f64::NAN).field_f64("inf", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -0.0] {
            let mut o = JsonObject::new();
            o.field_f64("v", v);
            let s = o.finish();
            let body = s.trim_start_matches(r#"{"v":"#).trim_end_matches('}');
            let parsed: f64 = body.parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn bool_fields_emit_literals() {
        let mut o = JsonObject::new();
        o.field_bool("yes", true).field_bool("no", false);
        assert_eq!(o.finish(), r#"{"yes":true,"no":false}"#);
    }

    #[test]
    fn nested_objects_and_arrays_compose() {
        let mut o = JsonObject::new();
        o.field_str("name", "run");
        o.field_array("services", |a| {
            a.push_object(|s| {
                s.field_str("id", "masstree").field_f64("qos", 99.5);
            });
            a.push_object(|s| {
                s.field_str("id", "moses").field_bool("ok", false);
            });
        });
        o.field_object("meta", |m| {
            m.field_array("tags", |t| {
                t.push_str("a").push_u64(2).push_array(|inner| {
                    inner.push_bool(true);
                });
            });
        });
        assert_eq!(
            o.finish(),
            r#"{"name":"run","services":[{"id":"masstree","qos":99.5},{"id":"moses","ok":false}],"meta":{"tags":["a",2,[true]]}}"#
        );
    }

    #[test]
    fn empty_array_and_nonfinite_entries() {
        assert_eq!(JsonArray::new().finish(), "[]");
        let mut a = JsonArray::new();
        a.push_f64(f64::NAN).push_f64(0.25);
        assert_eq!(a.finish(), "[null,0.25]");
    }
}
