/// A fixed-capacity ring buffer: pushing beyond capacity overwrites the
/// oldest element. Used to bound the memory of span traces — a long run
/// keeps only its most recent history, like a flight recorder.
///
/// # Examples
///
/// ```
/// let mut ring = twig_telemetry::RingBuffer::new(3);
/// for i in 0..5 {
///     ring.push(i);
/// }
/// assert_eq!(ring.len(), 3);
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
/// assert_eq!(ring.dropped(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` elements. A zero capacity
    /// is clamped to 1 (an unbuffered recorder is never useful).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends `value`, overwriting the oldest element when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of elements held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements evicted to make room (total pushes minus capacity, once
    /// wrapped).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Drops all elements (the eviction counter is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl<T: Clone> RingBuffer<T> {
    /// The held elements oldest → newest, as an owned vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut ring = RingBuffer::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(7);
        ring.push(8);
        assert_eq!(ring.to_vec(), vec![8]);
    }

    #[test]
    fn fills_without_wrapping() {
        let mut ring = RingBuffer::new(4);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.to_vec(), vec![1, 2]);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.to_vec(), vec![7, 8, 9]);
        // Another push continues the rotation.
        ring.push(10);
        assert_eq!(ring.to_vec(), vec![8, 9, 10]);
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        let mut ring = RingBuffer::new(3);
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.to_vec(), vec![0, 1, 2]);
        ring.push(3);
        assert_eq!(ring.to_vec(), vec![1, 2, 3]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn clear_resets_contents_not_eviction_count() {
        let mut ring = RingBuffer::new(2);
        for i in 0..5 {
            ring.push(i);
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 3);
        ring.push(42);
        assert_eq!(ring.to_vec(), vec![42]);
    }

    #[test]
    fn iter_order_matches_push_order_across_many_wraps() {
        let mut ring = RingBuffer::new(7);
        for i in 0..1000 {
            ring.push(i);
        }
        let got = ring.to_vec();
        assert_eq!(got, (993..1000).collect::<Vec<_>>());
    }
}
