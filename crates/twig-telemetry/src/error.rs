use std::fmt;

/// Errors of the telemetry subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A constructor was given a degenerate parameter.
    InvalidConfig {
        /// What was wrong.
        detail: String,
    },
    /// An exporter failed to write its output.
    Export {
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::InvalidConfig { detail } => {
                write!(f, "invalid telemetry config: {detail}")
            }
            TelemetryError::Export { detail } => write!(f, "telemetry export failed: {detail}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Export {
            detail: e.to_string(),
        }
    }
}
