use crate::json::JsonObject;
use crate::metrics::MetricsSnapshot;
use crate::span::{EpochSpan, Phase};
use crate::TelemetryError;
use std::fmt::Debug;
use std::io::Write;

/// Destination for completed spans and end-of-run metric snapshots.
///
/// Sinks are called from inside the control loop, so implementations must
/// be cheap and must never panic on I/O trouble — errors are surfaced from
/// [`flush`](Sink::flush), while [`record_span`](Sink::record_span) buffers
/// failures silently (a broken trace file must not crash a running
/// manager; the error is reported at flush time).
pub trait Sink: Debug {
    /// Called once per completed epoch span.
    fn record_span(&mut self, span: &EpochSpan);

    /// Called when the owner flushes: write the final snapshot and any
    /// buffered output.
    fn flush(&mut self, snapshot: &MetricsSnapshot) -> Result<(), TelemetryError>;

    /// Concrete-type recovery, so a recorder's contents can be drained
    /// after a run (`sink.as_any_mut().downcast_mut::<MemorySink>()`).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The default sink: discards everything. Keeping the trait object a no-op
/// (rather than making the sink optional) keeps the enabled hot path
/// branch-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record_span(&mut self, _span: &EpochSpan) {}

    fn flush(&mut self, _snapshot: &MetricsSnapshot) -> Result<(), TelemetryError> {
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// In-memory recorder: keeps every span and the last flushed snapshot.
/// The test-and-report sink — drive a run, then inspect what happened.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Every span recorded, in arrival order.
    pub spans: Vec<EpochSpan>,
    /// The snapshot from the most recent flush, if any.
    pub last_snapshot: Option<MetricsSnapshot>,
}

impl MemorySink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemorySink {
    fn record_span(&mut self, span: &EpochSpan) {
        self.spans.push(*span);
    }

    fn flush(&mut self, snapshot: &MetricsSnapshot) -> Result<(), TelemetryError> {
        self.last_snapshot = Some(snapshot.clone());
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Streams records as JSON Lines: one `{"kind":"span",...}` object per
/// epoch, then `counter`/`gauge`/`histogram` objects at flush.
///
/// Write errors during the run are held and returned from the next
/// [`flush`](Sink::flush).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Debug> {
    writer: W,
    deferred: Option<TelemetryError>,
}

impl<W: Write + Debug> JsonlSink<W> {
    /// Wraps `writer` (e.g. a `BufWriter<File>` or `Vec<u8>`).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            deferred: None,
        }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, line: &str) {
        if self.deferred.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.deferred = Some(e.into());
        }
    }
}

/// Renders one span as a JSON object.
pub fn span_to_json(span: &EpochSpan) -> String {
    let mut o = JsonObject::new();
    o.field_str("kind", "span").field_u64("epoch", span.epoch);
    for p in Phase::ALL {
        o.field_f64(&format!("{}_ms", p.name()), span.get(p));
    }
    o.field_f64("total_ms", span.total_ms());
    o.finish()
}

/// Renders a metrics snapshot as JSON Lines (one object per metric).
pub fn snapshot_to_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let mut o = JsonObject::new();
        o.field_str("kind", "counter")
            .field_str("name", name)
            .field_u64("value", *value);
        out.push_str(&o.finish());
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        let mut o = JsonObject::new();
        o.field_str("kind", "gauge")
            .field_str("name", name)
            .field_f64("value", *value);
        out.push_str(&o.finish());
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let mut o = JsonObject::new();
        o.field_str("kind", "histogram")
            .field_str("name", name)
            .field_u64("count", h.count)
            .field_f64("mean", h.mean)
            .field_f64("min", h.min)
            .field_f64("max", h.max)
            .field_f64("p50", h.p50)
            .field_f64("p95", h.p95)
            .field_f64("p99", h.p99);
        out.push_str(&o.finish());
        out.push('\n');
    }
    out
}

impl<W: Write + Debug + 'static> Sink for JsonlSink<W> {
    fn record_span(&mut self, span: &EpochSpan) {
        let line = span_to_json(span);
        self.write_line(&line);
    }

    fn flush(&mut self, snapshot: &MetricsSnapshot) -> Result<(), TelemetryError> {
        for line in snapshot_to_jsonl(snapshot).lines() {
            self.write_line(line);
        }
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Streams spans as CSV rows (header written lazily before the first row).
/// Metric snapshots do not fit a single rectangular schema, so `flush`
/// only flushes the writer; pair with [`JsonlSink`] when metrics are
/// needed too.
#[derive(Debug)]
pub struct CsvSink<W: Write + Debug> {
    writer: W,
    wrote_header: bool,
    deferred: Option<TelemetryError>,
}

impl<W: Write + Debug> CsvSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            wrote_header: false,
            deferred: None,
        }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, line: &str) {
        if self.deferred.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.deferred = Some(e.into());
        }
    }
}

impl<W: Write + Debug + 'static> Sink for CsvSink<W> {
    fn record_span(&mut self, span: &EpochSpan) {
        if !self.wrote_header {
            self.wrote_header = true;
            let mut header = String::from("epoch");
            for p in Phase::ALL {
                header.push(',');
                header.push_str(p.name());
                header.push_str("_ms");
            }
            header.push_str(",total_ms");
            self.write_line(&header);
        }
        let mut row = span.epoch.to_string();
        for p in Phase::ALL {
            row.push(',');
            row.push_str(&format!("{}", span.get(p)));
        }
        row.push_str(&format!(",{}", span.total_ms()));
        self.write_line(&row);
    }

    fn flush(&mut self, _snapshot: &MetricsSnapshot) -> Result<(), TelemetryError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_span() -> EpochSpan {
        let mut s = EpochSpan::new(2);
        s.add(Phase::PmcRead, 0.5);
        s.add(Phase::LearnStep, 1.5);
        s
    }

    #[test]
    fn memory_sink_records_everything() {
        let mut sink = MemorySink::new();
        sink.record_span(&sample_span());
        sink.record_span(&EpochSpan::new(3));
        let mut m = MetricsRegistry::new();
        m.counter_add("c", 7);
        sink.flush(&m.snapshot()).unwrap();
        assert_eq!(sink.spans.len(), 2);
        assert_eq!(sink.spans[0].epoch, 2);
        assert_eq!(sink.last_snapshot.as_ref().unwrap().counter("c"), 7);
    }

    #[test]
    fn jsonl_sink_emits_valid_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_span(&sample_span());
        let mut m = MetricsRegistry::new();
        m.counter_add("governor.trips", 1);
        m.gauge_set("twig.epsilon", 0.5);
        m.record("rl.loss", 0.25);
        sink.flush(&m.snapshot()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].starts_with(r#"{"kind":"span","epoch":2,"#));
        assert!(lines[0].contains(r#""pmc_read_ms":0.5"#));
        assert!(lines[0].contains(r#""total_ms":2"#));
        assert!(lines[1].contains(r#""kind":"counter""#) && lines[1].contains("governor.trips"));
        assert!(lines[2].contains(r#""kind":"gauge""#) && lines[2].contains("0.5"));
        assert!(lines[3].contains(r#""kind":"histogram""#) && lines[3].contains(r#""count":1"#));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn csv_sink_writes_header_once() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record_span(&sample_span());
        sink.record_span(&sample_span());
        sink.flush(&MetricsRegistry::new().snapshot()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "epoch,pmc_read_ms,inference_ms,mapping_ms,actuation_ms,reward_update_ms,learn_step_ms,total_ms"
        );
        assert_eq!(lines[1], "2,0.5,0,0,0,0,1.5,2");
    }

    /// A writer that always fails, to exercise error deferral.
    #[derive(Debug)]
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_defers_write_errors_to_flush() {
        let mut sink = JsonlSink::new(BrokenWriter);
        sink.record_span(&sample_span()); // must not panic
        let err = sink.flush(&MetricsRegistry::new().snapshot()).unwrap_err();
        assert!(matches!(err, TelemetryError::Export { .. }));
    }
}
