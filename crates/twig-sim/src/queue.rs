use std::collections::VecDeque;
use twig_stats::rng::Rng;

/// FCFS request queue of one service.
///
/// Requests arrive as a Poisson process and are served one at a time by the
/// service's *aggregate* core allocation (the gang/fork-join model described
/// in `DESIGN.md`): the per-request duration passed to
/// [`run_epoch`](Self::run_epoch) already folds in core count, DVFS and
/// interference via [`ServiceSpec::request_duration_ms`]. State (backlog,
/// in-flight request) carries across epochs, so a manager decision that
/// under-provisions one second is still paying for it the next.
///
/// [`ServiceSpec::request_duration_ms`]: crate::ServiceSpec::request_duration_ms
///
/// # Examples
///
/// ```
/// use twig_stats::rng::Xoshiro256;
/// use twig_sim::ServiceQueue;
///
/// let mut q = ServiceQueue::new();
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// // One epoch: 1000 RPS with 0.3 ms requests — lightly loaded.
/// let stats = q.run_epoch(0.0, 1.0, 1000.0, 0.3, 0.5, &mut rng);
/// assert!(stats.completed > 800);
/// assert!(stats.busy_s < 0.6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceQueue {
    backlog: VecDeque<f64>,
    free_at: f64,
    in_flight: Option<InFlight>,
    dropped_total: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    arrival: f64,
    completion: f64,
}

/// Maximum queued requests before new arrivals are dropped; sustained
/// overload keeps the queue saturated rather than consuming unbounded
/// memory, and drops are reported so callers can fold them into the tail.
const BACKLOG_CAP: usize = 50_000;

/// Per-epoch results of [`ServiceQueue::run_epoch`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochQueueStats {
    /// Latencies (ms) of the requests that *completed* during the epoch.
    pub latencies_ms: Vec<f64>,
    /// Number of completed requests.
    pub completed: usize,
    /// Arrivals dropped because the backlog was saturated.
    pub dropped: u64,
    /// Seconds the (aggregate) server was busy within the epoch.
    pub busy_s: f64,
    /// Requests still queued at the end of the epoch.
    pub queue_len: usize,
    /// Requests that arrived during the epoch.
    pub arrivals: usize,
    /// Requests abandoned by their clients after waiting `timeout_s`.
    pub timed_out: u64,
}

impl ServiceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all queue state.
    pub fn reset(&mut self) {
        self.backlog.clear();
        self.free_at = 0.0;
        self.in_flight = None;
    }

    /// Current backlog length.
    pub fn queue_len(&self) -> usize {
        self.backlog.len()
    }

    /// Total arrivals ever dropped due to backlog saturation.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Simulates the interval `[t0, t1)`.
    ///
    /// `arrival_rate` is in requests/second, `mean_duration_ms` is the mean
    /// per-request service time under the *current* resource allocation and
    /// interference, and `cv` the lognormal coefficient of variation of the
    /// per-request work.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0` or any parameter is negative/NaN.
    pub fn run_epoch<R: Rng>(
        &mut self,
        t0: f64,
        t1: f64,
        arrival_rate: f64,
        mean_duration_ms: f64,
        cv: f64,
        rng: &mut R,
    ) -> EpochQueueStats {
        self.run_epoch_with_timeout(
            t0,
            t1,
            arrival_rate,
            mean_duration_ms,
            cv,
            f64::INFINITY,
            rng,
        )
    }

    /// Like [`run_epoch`](Self::run_epoch), but requests that have waited
    /// longer than `timeout_s` are abandoned by their client: the server
    /// skips them, and each is recorded as one `timeout_s` latency sample
    /// (a guaranteed QoS violation) in `timed_out`. This bounds how long an
    /// under-provisioning mistake can poison the queue — exactly what a real
    /// load generator's client timeouts do.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0` or any parameter is negative/NaN.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch_with_timeout<R: Rng>(
        &mut self,
        t0: f64,
        t1: f64,
        arrival_rate: f64,
        mean_duration_ms: f64,
        cv: f64,
        timeout_s: f64,
        rng: &mut R,
    ) -> EpochQueueStats {
        assert!(t1 > t0, "epoch [{t0}, {t1}) is empty");
        assert!(
            arrival_rate >= 0.0 && mean_duration_ms >= 0.0 && cv >= 0.0 && timeout_s > 0.0,
            "negative queue parameters"
        );
        let mut stats = EpochQueueStats::default();

        // Arrivals for this epoch (Poisson process).
        if arrival_rate > 0.0 {
            let mut t = t0 + exponential(arrival_rate, rng);
            while t < t1 {
                if self.backlog.len() < BACKLOG_CAP {
                    self.backlog.push_back(t);
                    stats.arrivals += 1;
                } else {
                    stats.dropped += 1;
                    self.dropped_total += 1;
                }
                t += exponential(arrival_rate, rng);
            }
        }

        // Busy time carried over from a request started in a prior epoch.
        if self.free_at > t0 {
            stats.busy_s += self.free_at.min(t1) - t0;
        }

        // The request left in service at the previous epoch boundary.
        if let Some(inflight) = self.in_flight {
            if inflight.completion <= t1 {
                stats
                    .latencies_ms
                    .push((inflight.completion - inflight.arrival) * 1000.0);
                self.in_flight = None;
            }
        }

        // Serve the backlog in FCFS order.
        if mean_duration_ms.is_finite() && mean_duration_ms > 0.0 {
            while let Some(&arrival) = self.backlog.front() {
                let start = arrival.max(self.free_at);
                if start >= t1 {
                    break;
                }
                // Client gave up: skip the request at no serving cost.
                if start - arrival > timeout_s {
                    self.backlog.pop_front();
                    stats.timed_out += 1;
                    continue;
                }
                let duration_s = lognormal(mean_duration_ms, cv, rng) / 1000.0;
                let completion = start + duration_s;
                self.backlog.pop_front();
                self.free_at = completion;
                stats.busy_s += completion.min(t1) - start;
                if completion <= t1 {
                    stats.latencies_ms.push((completion - arrival) * 1000.0);
                } else {
                    self.in_flight = Some(InFlight {
                        arrival,
                        completion,
                    });
                    break;
                }
            }
        }

        // Clients whose requests are still queued past the timeout abandon
        // them even if the server never reached them.
        while let Some(&arrival) = self.backlog.front() {
            if t1 - arrival > timeout_s {
                self.backlog.pop_front();
                stats.timed_out += 1;
            } else {
                break;
            }
        }

        stats.completed = stats.latencies_ms.len();
        stats.queue_len = self.backlog.len();
        stats.busy_s = stats.busy_s.min(t1 - t0);
        stats
    }
}

/// Samples an exponential inter-arrival gap with the given rate.
fn exponential<R: Rng>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
    -u.ln() / rate
}

/// Samples a lognormal value with the given mean and coefficient of
/// variation (standard Box-Muller under the hood).
fn lognormal<R: Rng>(mean: f64, cv: f64, rng: &mut R) -> f64 {
    if cv == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    let z = standard_normal(rng);
    (mu + sigma2.sqrt() * z).exp()
}

/// Samples a standard normal via Box-Muller.
pub(crate) fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.range_f64(f64::EPSILON, 1.0);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::Xoshiro256;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn light_load_latency_close_to_service_time() {
        let mut q = ServiceQueue::new();
        let mut r = rng(7);
        let mut all = Vec::new();
        for e in 0..20 {
            let s = q.run_epoch(e as f64, e as f64 + 1.0, 200.0, 0.5, 0.3, &mut r);
            all.extend(s.latencies_ms);
        }
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        // Utilisation is 10%, so latency is dominated by service time.
        assert!((mean - 0.5).abs() < 0.15, "mean latency {mean}");
    }

    #[test]
    fn heavy_load_builds_queue_and_latency() {
        let mut q = ServiceQueue::new();
        let mut r = rng(8);
        let mut last = EpochQueueStats::default();
        for e in 0..30 {
            // 1.5x overload: 1500 RPS of 1ms requests.
            last = q.run_epoch(e as f64, e as f64 + 1.0, 1500.0, 1.0, 0.3, &mut r);
        }
        assert!(
            last.queue_len > 5000,
            "queue should grow: {}",
            last.queue_len
        );
        let max_latency = last.latencies_ms.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_latency > 1000.0,
            "latency should blow up: {max_latency}"
        );
    }

    #[test]
    fn utilisation_matches_offered_load() {
        let mut q = ServiceQueue::new();
        let mut r = rng(9);
        let mut busy = 0.0;
        let epochs = 50;
        for e in 0..epochs {
            let s = q.run_epoch(e as f64, e as f64 + 1.0, 1000.0, 0.5, 0.5, &mut r);
            busy += s.busy_s;
        }
        let util = busy / epochs as f64;
        assert!((util - 0.5).abs() < 0.05, "util {util}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut q = ServiceQueue::new();
        let mut r = rng(1);
        let s = q.run_epoch(0.0, 1.0, 0.0, 1.0, 0.5, &mut r);
        assert_eq!(s.arrivals, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.busy_s, 0.0);
    }

    #[test]
    fn infinite_duration_starves_queue() {
        let mut q = ServiceQueue::new();
        let mut r = rng(2);
        let s = q.run_epoch(0.0, 1.0, 100.0, f64::INFINITY, 0.5, &mut r);
        assert_eq!(s.completed, 0);
        assert!(s.queue_len > 50);
    }

    #[test]
    fn in_flight_request_completes_next_epoch() {
        let mut q = ServiceQueue::new();
        let mut r = rng(3);
        // One long request (~500 ms) arriving early in epoch 0 at low rate.
        let s0 = q.run_epoch(0.0, 1.0, 3.0, 800.0, 0.0, &mut r);
        let s1 = q.run_epoch(1.0, 2.0, 0.0, 800.0, 0.0, &mut r);
        // Some requests complete across the boundary.
        assert!(s0.completed + s1.completed >= 1);
        assert!(s1.busy_s > 0.0 || s0.busy_s > 0.9);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = ServiceQueue::new();
        let mut r = rng(4);
        q.run_epoch(0.0, 1.0, 2000.0, 5.0, 0.5, &mut r);
        assert!(q.queue_len() > 0);
        q.reset();
        assert_eq!(q.queue_len(), 0);
        let s = q.run_epoch(5.0, 6.0, 0.0, 1.0, 0.5, &mut r);
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn backlog_cap_drops_arrivals() {
        let mut q = ServiceQueue::new();
        let mut r = rng(5);
        let mut dropped = 0;
        for e in 0..100 {
            let s = q.run_epoch(e as f64, e as f64 + 1.0, 5000.0, 100.0, 0.2, &mut r);
            dropped += s.dropped;
        }
        assert!(dropped > 0, "cap never hit");
        assert_eq!(q.dropped_total(), dropped);
        assert!(q.queue_len() <= BACKLOG_CAP);
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let mut r = rng(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| lognormal(2.0, 0.8, &mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "lognormal mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(10);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
