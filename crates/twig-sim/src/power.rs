use crate::queue::standard_normal;
use crate::Frequency;
use twig_stats::rng::Rng;

/// Socket power model and RAPL-style readout.
///
/// Ground truth follows the standard CMOS decomposition: a fixed uncore/idle
/// component, per-core static (leakage) power that grows with the supply
/// voltage of the core's DVFS state, and per-core dynamic power
/// `c · f · V(f)² · utilisation`. Parked cores (hot-unplugged by the mapper,
/// as the paper does for unused cores) draw only a small residual. The
/// *measurement* exposed to managers adds Gaussian noise, mimicking the
/// RAPL register the paper polls (Section IV).
///
/// Defaults approximate the paper's Xeon E5-2695v4 socket: ~25 W idle,
/// ~120 W (the TDP) with all 18 cores busy at 2.0 GHz.
///
/// # Examples
///
/// ```
/// use twig_sim::{Frequency, PowerModel};
///
/// let m = PowerModel::default();
/// let f_max = Frequency::from_mhz(2000);
/// let idle = m.socket_power(&[]);
/// let busy = m.socket_power(&(0..18).map(|_| (f_max, 1.0)).collect::<Vec<_>>());
/// assert!(busy > idle + 50.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Socket power with every core parked, in watts.
    pub idle_w: f64,
    /// Static (leakage) power of an active core at minimum voltage, in watts.
    pub core_static_w: f64,
    /// Dynamic-power coefficient: watts per GHz at V = 1 and 100 % load.
    pub dyn_coeff: f64,
    /// Residual draw of a parked core, in watts.
    pub parked_core_w: f64,
    /// Supply voltage at the lowest DVFS state.
    pub v_min: f64,
    /// Supply voltage at the highest DVFS state.
    pub v_max: f64,
    /// Lowest frequency of the platform (for the voltage curve).
    pub f_min: Frequency,
    /// Highest frequency of the platform (for the voltage curve).
    pub f_max: Frequency,
    /// Standard deviation of the RAPL measurement noise, in watts.
    pub noise_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            idle_w: 25.0,
            core_static_w: 0.9,
            dyn_coeff: 1.7,
            parked_core_w: 0.15,
            v_min: 0.75,
            v_max: 1.05,
            f_min: Frequency::from_mhz(1200),
            f_max: Frequency::from_mhz(2000),
            noise_w: 0.8,
        }
    }
}

impl PowerModel {
    /// Supply voltage at frequency `f` (linear between `v_min` and `v_max`).
    pub fn voltage(&self, f: Frequency) -> f64 {
        let lo = self.f_min.ghz();
        let hi = self.f_max.ghz();
        if hi <= lo {
            return self.v_max;
        }
        let t = ((f.ghz() - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }

    /// Power of one active core at frequency `f` and utilisation `util`.
    pub fn core_power(&self, f: Frequency, util: f64) -> f64 {
        let v = self.voltage(f);
        let v_ratio = v / self.v_min;
        let static_w = self.core_static_w * v_ratio * v_ratio;
        let dynamic_w = self.dyn_coeff * f.ghz() * v * v * util.clamp(0.0, 1.0);
        static_w + dynamic_w
    }

    /// Ground-truth socket power. `active_cores` lists each *active* core's
    /// frequency and utilisation; cores not listed are parked.
    pub fn socket_power(&self, active_cores: &[(Frequency, f64)]) -> f64 {
        let active: f64 = active_cores
            .iter()
            .map(|&(f, util)| self.core_power(f, util))
            .sum();
        self.idle_w + active
    }

    /// Ground-truth socket power when `total_cores` cores exist and the
    /// remainder are parked.
    pub fn socket_power_with_parked(
        &self,
        active_cores: &[(Frequency, f64)],
        total_cores: usize,
    ) -> f64 {
        let parked = total_cores.saturating_sub(active_cores.len()) as f64;
        self.socket_power(active_cores) + parked * self.parked_core_w
    }

    /// A noisy RAPL-style measurement of `truth`.
    pub fn rapl_reading<R: Rng>(&self, truth: f64, rng: &mut R) -> f64 {
        (truth + self.noise_w * standard_normal(rng)).max(0.0)
    }

    /// The "maximum system power" reference the paper obtains by running a
    /// no-memory-access stress microbenchmark on every core at the highest
    /// DVFS setting (used to normalise Twig's power reward).
    pub fn stress_peak_power(&self, total_cores: usize) -> f64 {
        let cores: Vec<(Frequency, f64)> = (0..total_cores).map(|_| (self.f_max, 1.0)).collect();
        self.socket_power(&cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn tdp_scale_is_sane() {
        let m = PowerModel::default();
        let peak = m.stress_peak_power(18);
        assert!((100.0..140.0).contains(&peak), "peak {peak} W");
        assert!((m.idle_w - 25.0).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_frequency() {
        let m = PowerModel::default();
        let mut prev = 0.0;
        for mhz in (1200..=2000).step_by(100) {
            let p = m.core_power(Frequency::from_mhz(mhz), 1.0);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn power_monotone_in_utilisation() {
        let m = PowerModel::default();
        let f = Frequency::from_mhz(1800);
        assert!(m.core_power(f, 0.2) < m.core_power(f, 0.9));
    }

    #[test]
    fn parked_cores_cost_less_than_idle_active() {
        let m = PowerModel::default();
        let f = m.f_min;
        let one_active_idle = m.socket_power_with_parked(&[(f, 0.0)], 18);
        let all_parked = m.socket_power_with_parked(&[], 18);
        assert!(all_parked < one_active_idle);
    }

    #[test]
    fn rapl_reading_centred_on_truth() {
        let m = PowerModel::default();
        let mut rng = Xoshiro256::seed_from_u64(0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| m.rapl_reading(80.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 80.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn voltage_clamped_to_range() {
        let m = PowerModel::default();
        assert_eq!(m.voltage(Frequency::from_mhz(500)), m.v_min);
        assert_eq!(m.voltage(Frequency::from_mhz(3000)), m.v_max);
    }

    #[test]
    fn socket_power_nonnegative_and_additive() {
        let mut rng = Xoshiro256::seed_from_u64(0x50c);
        for _ in 0..200 {
            let n_active = rng.range_usize(0, 18);
            let mhz = 1200 + 100 * rng.range_usize_inclusive(0, 8) as u32;
            let util = rng.next_f64();
            let m = PowerModel::default();
            let f = Frequency::from_mhz(mhz);
            let cores: Vec<(Frequency, f64)> = (0..n_active).map(|_| (f, util)).collect();
            let p = m.socket_power_with_parked(&cores, 18);
            assert!(p >= m.idle_w);
            // Adding one more active core increases power.
            let mut more = cores.clone();
            more.push((f, util));
            assert!(m.socket_power_with_parked(&more, 18) > p);
        }
    }
}
