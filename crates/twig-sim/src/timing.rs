//! Seeded, deterministic *timing*-fault injection for the epoch loop.
//!
//! The [`fault`](crate::fault) module corrupts *what* the manager observes;
//! this module corrupts *when*. Real control loops miss their deadline
//! because PMC reads stall behind perf multiplexing, a learning step
//! overruns, sysfs actuation blocks, or the timebase itself misbehaves
//! (NTP skew, virtualised clocks going backwards or freezing). A
//! [`TimingFaultPlan`] draws one [`EpochTimings`] record per epoch — phase
//! latencies plus clock misbehaviour — which the experiment driver feeds
//! into a `twig_core::SimClock` around the deadline scheduler.
//!
//! Like [`FaultPlan`](crate::FaultPlan), the plan owns its **own** RNG
//! stream with a fixed per-epoch draw order, so:
//!
//! 1. the same seed reproduces the identical timing sequence for any
//!    manager under test, and
//! 2. a plan whose every rate and latency is zero draws nothing and leaves
//!    a run bit-identical to one with no plan installed.
//!
//! Timing faults never perturb the workload simulation itself — a stalled
//! actuation makes the *manager* late, not the simulated requests faster.

use crate::SimError;
use twig_stats::rng::{Rng, Xoshiro256};

/// Per-epoch timing-fault probabilities, base latencies and magnitudes.
/// All-zero by default: the default configuration injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingFaultConfig {
    /// Baseline duration of the PMC read phase, ms.
    pub pmc_base_ms: f64,
    /// Probability, per epoch, that the PMC read spikes.
    pub pmc_spike_rate: f64,
    /// Extra latency added to a spiked PMC read, ms.
    pub pmc_spike_ms: f64,
    /// Probability, per epoch, that the delivered PMC window is old (a
    /// backlogged collector handing out a previous interval).
    pub pmc_stale_rate: f64,
    /// Age of a stale window, ms (how long ago it was captured).
    pub pmc_stale_age_ms: f64,
    /// Baseline duration of the inference phase, ms.
    pub inference_base_ms: f64,
    /// Probability, per epoch, that inference spikes.
    pub inference_spike_rate: f64,
    /// Extra latency added to a spiked inference, ms.
    pub inference_spike_ms: f64,
    /// Baseline duration of one learning micro-batch chunk, ms.
    pub learn_chunk_base_ms: f64,
    /// Probability, per epoch, that every learn chunk this epoch spikes.
    pub learn_spike_rate: f64,
    /// Extra latency per spiked learn chunk, ms.
    pub learn_spike_ms: f64,
    /// Baseline duration of one actuation attempt, ms.
    pub actuation_base_ms: f64,
    /// Probability, per epoch, that actuation attempts stall.
    pub actuation_stall_rate: f64,
    /// Extra latency per stalled actuation attempt, ms.
    pub actuation_stall_ms: f64,
    /// Upper bound on uniform clock jitter added per epoch, ms.
    pub clock_jitter_ms: f64,
    /// Probability, per epoch, of a backward clock jump (NTP step / VM
    /// migration skew).
    pub clock_skew_rate: f64,
    /// Size of a backward clock jump, ms.
    pub clock_skew_ms: f64,
    /// Probability, per epoch, that the clock freezes for the whole epoch.
    pub clock_stuck_rate: f64,
}

impl Default for TimingFaultConfig {
    fn default() -> Self {
        TimingFaultConfig {
            pmc_base_ms: 0.0,
            pmc_spike_rate: 0.0,
            pmc_spike_ms: 0.0,
            pmc_stale_rate: 0.0,
            pmc_stale_age_ms: 0.0,
            inference_base_ms: 0.0,
            inference_spike_rate: 0.0,
            inference_spike_ms: 0.0,
            learn_chunk_base_ms: 0.0,
            learn_spike_rate: 0.0,
            learn_spike_ms: 0.0,
            actuation_base_ms: 0.0,
            actuation_stall_rate: 0.0,
            actuation_stall_ms: 0.0,
            clock_jitter_ms: 0.0,
            clock_skew_rate: 0.0,
            clock_skew_ms: 0.0,
            clock_stuck_rate: 0.0,
        }
    }
}

impl TimingFaultConfig {
    /// `true` when at least one draw can fire (any rate or latency > 0).
    pub fn enabled(&self) -> bool {
        let rates = [
            self.pmc_spike_rate,
            self.pmc_stale_rate,
            self.inference_spike_rate,
            self.learn_spike_rate,
            self.actuation_stall_rate,
            self.clock_skew_rate,
            self.clock_stuck_rate,
        ];
        let latencies = [
            self.pmc_base_ms,
            self.inference_base_ms,
            self.learn_chunk_base_ms,
            self.actuation_base_ms,
            self.clock_jitter_ms,
        ];
        rates.iter().any(|&r| r > 0.0) || latencies.iter().any(|&l| l > 0.0)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a rate is outside `[0, 1]`
    /// or a latency/magnitude is negative or non-finite.
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, rate) in [
            ("pmc_spike_rate", self.pmc_spike_rate),
            ("pmc_stale_rate", self.pmc_stale_rate),
            ("inference_spike_rate", self.inference_spike_rate),
            ("learn_spike_rate", self.learn_spike_rate),
            ("actuation_stall_rate", self.actuation_stall_rate),
            ("clock_skew_rate", self.clock_skew_rate),
            ("clock_stuck_rate", self.clock_stuck_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig {
                    detail: format!("timing {label} = {rate} outside [0, 1]"),
                });
            }
        }
        for (label, ms) in [
            ("pmc_base_ms", self.pmc_base_ms),
            ("pmc_spike_ms", self.pmc_spike_ms),
            ("pmc_stale_age_ms", self.pmc_stale_age_ms),
            ("inference_base_ms", self.inference_base_ms),
            ("inference_spike_ms", self.inference_spike_ms),
            ("learn_chunk_base_ms", self.learn_chunk_base_ms),
            ("learn_spike_ms", self.learn_spike_ms),
            ("actuation_base_ms", self.actuation_base_ms),
            ("actuation_stall_ms", self.actuation_stall_ms),
            ("clock_jitter_ms", self.clock_jitter_ms),
            ("clock_skew_ms", self.clock_skew_ms),
        ] {
            if !ms.is_finite() || ms < 0.0 {
                return Err(SimError::InvalidConfig {
                    detail: format!("timing {label} = {ms} must be non-negative and finite"),
                });
            }
        }
        Ok(())
    }
}

/// One epoch's drawn phase latencies and clock misbehaviour, consumed by a
/// timing-experiment driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochTimings {
    /// Duration of the PMC read phase this epoch, ms.
    pub pmc_read_ms: f64,
    /// Age of the delivered PMC window, ms (0 = fresh this interval).
    pub pmc_window_age_ms: f64,
    /// Duration of the inference phase this epoch, ms.
    pub inference_ms: f64,
    /// Duration of each learning micro-batch chunk this epoch, ms.
    pub learn_chunk_ms: f64,
    /// Duration of each actuation attempt this epoch, ms.
    pub actuation_attempt_ms: f64,
    /// Extra clock jitter to spread across the epoch, ms.
    pub clock_jitter_ms: f64,
    /// Backward clock jump to apply this epoch, ms (0 = none).
    pub clock_skew_ms: f64,
    /// The clock is frozen for this entire epoch.
    pub clock_stuck: bool,
}

impl EpochTimings {
    /// All-zero timings: every phase instantaneous, clock perfectly behaved.
    pub fn zero() -> Self {
        EpochTimings {
            pmc_read_ms: 0.0,
            pmc_window_age_ms: 0.0,
            inference_ms: 0.0,
            learn_chunk_ms: 0.0,
            actuation_attempt_ms: 0.0,
            clock_jitter_ms: 0.0,
            clock_skew_ms: 0.0,
            clock_stuck: false,
        }
    }
}

/// A deterministic timing-fault schedule, driven by its own seeded RNG.
///
/// Install on a server with
/// [`Server::set_timing_plan`](crate::Server::set_timing_plan); the server
/// memoizes exactly one [`draw_epoch`](Self::draw_epoch) per simulated
/// epoch. Draws happen in a fixed order (PMC spike, PMC staleness,
/// inference spike, learn spike, actuation stall, jitter, skew, stuck), so
/// the same seed yields the same timing sequence regardless of what the
/// manager under test decides.
#[derive(Debug, Clone)]
pub struct TimingFaultPlan {
    config: TimingFaultConfig,
    rng: Xoshiro256,
}

impl TimingFaultPlan {
    /// Creates a plan from a configuration and a seed for its private RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid rates or latencies.
    pub fn new(config: TimingFaultConfig, seed: u64) -> Result<Self, SimError> {
        config.validate()?;
        Ok(TimingFaultPlan {
            config,
            rng: Xoshiro256::seed_from_u64(seed),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TimingFaultConfig {
        &self.config
    }

    /// `true` when at least one draw can fire.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Draws one epoch's timings. Every guarded draw consumes RNG state
    /// only when its rate is non-zero, so an all-zero configuration never
    /// touches the stream and stays bit-identical to no plan at all.
    pub fn draw_epoch(&mut self) -> EpochTimings {
        let c = &self.config;
        let fire = |rng: &mut Xoshiro256, rate: f64| rate > 0.0 && rng.next_bool(rate);
        let pmc_spiked = fire(&mut self.rng, c.pmc_spike_rate);
        let pmc_stale = fire(&mut self.rng, c.pmc_stale_rate);
        let inference_spiked = fire(&mut self.rng, c.inference_spike_rate);
        let learn_spiked = fire(&mut self.rng, c.learn_spike_rate);
        let actuation_stalled = fire(&mut self.rng, c.actuation_stall_rate);
        let jitter = if c.clock_jitter_ms > 0.0 {
            self.rng.range_f64(0.0, c.clock_jitter_ms)
        } else {
            0.0
        };
        let skewed = fire(&mut self.rng, c.clock_skew_rate);
        let stuck = fire(&mut self.rng, c.clock_stuck_rate);
        EpochTimings {
            pmc_read_ms: c.pmc_base_ms + if pmc_spiked { c.pmc_spike_ms } else { 0.0 },
            pmc_window_age_ms: if pmc_stale { c.pmc_stale_age_ms } else { 0.0 },
            inference_ms: c.inference_base_ms
                + if inference_spiked {
                    c.inference_spike_ms
                } else {
                    0.0
                },
            learn_chunk_ms: c.learn_chunk_base_ms
                + if learn_spiked { c.learn_spike_ms } else { 0.0 },
            actuation_attempt_ms: c.actuation_base_ms
                + if actuation_stalled {
                    c.actuation_stall_ms
                } else {
                    0.0
                },
            clock_jitter_ms: jitter,
            clock_skew_ms: if skewed { c.clock_skew_ms } else { 0.0 },
            clock_stuck: stuck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled_and_valid() {
        let c = TimingFaultConfig::default();
        assert!(!c.enabled());
        c.validate().unwrap();
        let mut plan = TimingFaultPlan::new(c, 0).unwrap();
        assert!(!plan.enabled());
        for _ in 0..5 {
            assert_eq!(plan.draw_epoch(), EpochTimings::zero());
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        for bad_rate in [-0.1, 1.5, f64::NAN] {
            let c = TimingFaultConfig {
                learn_spike_rate: bad_rate,
                ..TimingFaultConfig::default()
            };
            assert!(c.validate().is_err(), "rate {bad_rate} should be rejected");
        }
        for bad_ms in [-1.0, f64::INFINITY, f64::NAN] {
            let c = TimingFaultConfig {
                actuation_stall_ms: bad_ms,
                ..TimingFaultConfig::default()
            };
            assert!(c.validate().is_err(), "latency {bad_ms} should be rejected");
        }
    }

    #[test]
    fn same_seed_reproduces_timing_sequence() {
        let config = TimingFaultConfig {
            pmc_base_ms: 5.0,
            pmc_spike_rate: 0.3,
            pmc_spike_ms: 200.0,
            pmc_stale_rate: 0.2,
            pmc_stale_age_ms: 1500.0,
            inference_base_ms: 10.0,
            inference_spike_rate: 0.3,
            inference_spike_ms: 400.0,
            learn_chunk_base_ms: 20.0,
            learn_spike_rate: 0.4,
            learn_spike_ms: 300.0,
            actuation_base_ms: 8.0,
            actuation_stall_rate: 0.3,
            actuation_stall_ms: 250.0,
            clock_jitter_ms: 25.0,
            clock_skew_rate: 0.1,
            clock_skew_ms: 500.0,
            clock_stuck_rate: 0.1,
        };
        let run = |seed: u64| {
            let mut plan = TimingFaultPlan::new(config.clone(), seed).unwrap();
            (0..100).map(|_| plan.draw_epoch()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
        // Every injector fires at least once over 100 epochs at these rates.
        let trace = run(11);
        assert!(trace.iter().any(|t| t.pmc_read_ms > 100.0));
        assert!(trace.iter().any(|t| t.pmc_window_age_ms > 0.0));
        assert!(trace.iter().any(|t| t.inference_ms > 100.0));
        assert!(trace.iter().any(|t| t.learn_chunk_ms > 100.0));
        assert!(trace.iter().any(|t| t.actuation_attempt_ms > 100.0));
        assert!(trace.iter().any(|t| t.clock_skew_ms > 0.0));
        assert!(trace.iter().any(|t| t.clock_stuck));
        // Base latencies always present even when nothing fires.
        assert!(trace.iter().all(|t| t.pmc_read_ms >= 5.0));
        assert!(trace.iter().all(|t| t.clock_jitter_ms >= 0.0));
    }

    #[test]
    fn base_latencies_without_rates_are_constant() {
        let config = TimingFaultConfig {
            pmc_base_ms: 3.0,
            inference_base_ms: 7.0,
            learn_chunk_base_ms: 11.0,
            actuation_base_ms: 2.0,
            ..TimingFaultConfig::default()
        };
        assert!(config.enabled());
        let mut plan = TimingFaultPlan::new(config, 1).unwrap();
        for _ in 0..10 {
            let t = plan.draw_epoch();
            assert_eq!(t.pmc_read_ms, 3.0);
            assert_eq!(t.inference_ms, 7.0);
            assert_eq!(t.learn_chunk_ms, 11.0);
            assert_eq!(t.actuation_attempt_ms, 2.0);
            assert_eq!(t.pmc_window_age_ms, 0.0);
            assert!(!t.clock_stuck);
        }
    }
}
