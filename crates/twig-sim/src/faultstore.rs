//! Seeded fault injection for checkpoint storage.
//!
//! The checkpoint path fails differently from telemetry or actuation: a
//! crash mid-write tears the payload, ageing media flips bits, a full or
//! failing filesystem truncates files, and a wedged writer silently stops
//! producing new generations so only stale state survives. This module
//! models those failures as deterministic corruptions of the *payload about
//! to be written*, so a chaos harness can interpose a [`StoreFaultPlan`]
//! between a manager's serializer and a
//! `CheckpointStore`-style sink and then assert that the recovery ladder
//! climbs back to a good generation.
//!
//! Like [`FaultPlan`](crate::FaultPlan), a plan owns its own RNG stream:
//! the same seed reproduces the identical corruption schedule regardless of
//! the manager under test, and every channel is drawn on every call so the
//! schedule does not shift when individual rates are toggled.
//!
//! # Examples
//!
//! ```
//! use twig_sim::{StoreFaultConfig, StoreFaultKind, StoreFaultPlan};
//!
//! # fn main() -> Result<(), twig_sim::SimError> {
//! let mut plan = StoreFaultPlan::new(
//!     StoreFaultConfig { bit_flip_rate: 1.0, ..StoreFaultConfig::default() },
//!     7,
//! )?;
//! let mut payload = vec![0u8; 64];
//! assert_eq!(plan.corrupt_write(&mut payload), Some(StoreFaultKind::BitFlip));
//! # Ok(())
//! # }
//! ```

use crate::SimError;
use twig_stats::rng::{Rng, Xoshiro256};

/// Per-write fault probabilities for checkpoint storage. All rates default
/// to zero: the default configuration corrupts nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreFaultConfig {
    /// Probability, per write, that the payload is torn: only a random
    /// prefix (at least one byte, never the whole payload) reaches disk —
    /// a crash between `write` and `fsync` on a store without atomic
    /// rename, or a torn rename on a non-journalled filesystem.
    pub torn_write_rate: f64,
    /// Probability, per write, that exactly one bit of the payload is
    /// flipped (media corruption or a DMA error).
    pub bit_flip_rate: f64,
    /// Probability, per write, that the payload is truncated below the
    /// codec's minimum header size (a full filesystem cutting the file
    /// short).
    pub truncate_rate: f64,
    /// Probability, per write, that the write is silently dropped and only
    /// older generations survive (a wedged or crashed writer).
    pub stale_rate: f64,
}

impl StoreFaultConfig {
    /// `true` when at least one corruption channel can fire.
    pub fn enabled(&self) -> bool {
        self.torn_write_rate > 0.0
            || self.bit_flip_rate > 0.0
            || self.truncate_rate > 0.0
            || self.stale_rate > 0.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a rate is outside `[0, 1]`
    /// or not finite.
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, rate) in [
            ("torn_write_rate", self.torn_write_rate),
            ("bit_flip_rate", self.bit_flip_rate),
            ("truncate_rate", self.truncate_rate),
            ("stale_rate", self.stale_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig {
                    detail: format!("store fault {label} = {rate} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// How one checkpoint write was corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// Only a prefix of the payload reached disk.
    TornWrite,
    /// Exactly one bit of the payload was flipped.
    BitFlip,
    /// The payload was cut below the codec's minimum header size.
    Truncate,
    /// The write was dropped entirely: the caller must skip it and leave
    /// older generations in place.
    Stale,
}

/// A deterministic checkpoint-corruption schedule, driven by its own
/// seeded RNG stream.
///
/// Interpose [`corrupt_write`](StoreFaultPlan::corrupt_write) between
/// serializing a checkpoint and handing it to the store. Draws happen in a
/// fixed order per call (torn, bit flip, truncate, stale — all four drawn
/// even when their rates are zero), and the first winning channel applies,
/// so the same seed yields the same corruption sequence for any rate
/// combination.
#[derive(Debug, Clone)]
pub struct StoreFaultPlan {
    config: StoreFaultConfig,
    rng: Xoshiro256,
}

impl StoreFaultPlan {
    /// Creates a plan from a configuration and a seed for its private RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid rates.
    pub fn new(config: StoreFaultConfig, seed: u64) -> Result<Self, SimError> {
        config.validate()?;
        Ok(StoreFaultPlan {
            config,
            rng: Xoshiro256::seed_from_u64(seed),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &StoreFaultConfig {
        &self.config
    }

    /// `true` when at least one corruption channel can fire.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Possibly corrupts one checkpoint payload in place, returning what
    /// happened. [`StoreFaultKind::Stale`] leaves the payload intact — the
    /// caller must *not* write it (the generation never lands on disk).
    pub fn corrupt_write(&mut self, payload: &mut Vec<u8>) -> Option<StoreFaultKind> {
        // One uniform draw per channel on every call (not `next_bool`,
        // which skips the draw at rate 0 or 1): toggling one rate must not
        // shift the schedule of the others.
        let torn = self.rng.next_f64() < self.config.torn_write_rate;
        let flip = self.rng.next_f64() < self.config.bit_flip_rate;
        let truncate = self.rng.next_f64() < self.config.truncate_rate;
        let stale = self.rng.next_f64() < self.config.stale_rate;

        if torn && payload.len() > 1 {
            let keep = self.rng.range_usize(1, payload.len());
            payload.truncate(keep);
            return Some(StoreFaultKind::TornWrite);
        }
        if flip && !payload.is_empty() {
            let byte = self.rng.range_usize(0, payload.len());
            let bit = self.rng.range_usize(0, 8);
            payload[byte] ^= 1u8 << bit;
            return Some(StoreFaultKind::BitFlip);
        }
        if truncate {
            let cap = payload.len().min(16);
            payload.truncate(self.rng.range_usize(0, cap.max(1)));
            return Some(StoreFaultKind::Truncate);
        }
        if stale {
            return Some(StoreFaultKind::Stale);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        (0..128u8).collect()
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let c = StoreFaultConfig::default();
        assert!(!c.enabled());
        c.validate().unwrap();
        assert!(!StoreFaultPlan::new(c, 0).unwrap().enabled());
    }

    #[test]
    fn invalid_rates_rejected() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = StoreFaultConfig {
                torn_write_rate: bad,
                ..StoreFaultConfig::default()
            };
            assert!(c.validate().is_err(), "rate {bad} should be rejected");
            assert!(StoreFaultPlan::new(c, 0).is_err());
        }
    }

    #[test]
    fn zero_rates_never_touch_the_payload() {
        let mut plan = StoreFaultPlan::new(StoreFaultConfig::default(), 1).unwrap();
        let mut p = payload();
        for _ in 0..100 {
            assert_eq!(plan.corrupt_write(&mut p), None);
            assert_eq!(p, payload(), "payload must stay bit-identical");
        }
    }

    #[test]
    fn same_seed_reproduces_corruption_sequence() {
        let config = StoreFaultConfig {
            torn_write_rate: 0.3,
            bit_flip_rate: 0.3,
            truncate_rate: 0.2,
            stale_rate: 0.2,
        };
        let run = |seed: u64| {
            let mut plan = StoreFaultPlan::new(config.clone(), seed).unwrap();
            (0..60)
                .map(|_| {
                    let mut p = payload();
                    let kind = plan.corrupt_write(&mut p);
                    (kind, p)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should differ");
    }

    #[test]
    fn torn_write_keeps_a_strict_nonempty_prefix() {
        let mut plan = StoreFaultPlan::new(
            StoreFaultConfig {
                torn_write_rate: 1.0,
                ..StoreFaultConfig::default()
            },
            2,
        )
        .unwrap();
        for _ in 0..50 {
            let original = payload();
            let mut p = original.clone();
            assert_eq!(plan.corrupt_write(&mut p), Some(StoreFaultKind::TornWrite));
            assert!(!p.is_empty() && p.len() < original.len());
            assert_eq!(p[..], original[..p.len()], "a prefix, not a rewrite");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut plan = StoreFaultPlan::new(
            StoreFaultConfig {
                bit_flip_rate: 1.0,
                ..StoreFaultConfig::default()
            },
            3,
        )
        .unwrap();
        for _ in 0..50 {
            let original = payload();
            let mut p = original.clone();
            assert_eq!(plan.corrupt_write(&mut p), Some(StoreFaultKind::BitFlip));
            let flipped: u32 = p
                .iter()
                .zip(&original)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1);
        }
    }

    #[test]
    fn truncate_cuts_below_header_size() {
        let mut plan = StoreFaultPlan::new(
            StoreFaultConfig {
                truncate_rate: 1.0,
                ..StoreFaultConfig::default()
            },
            4,
        )
        .unwrap();
        for _ in 0..50 {
            let mut p = payload();
            assert_eq!(plan.corrupt_write(&mut p), Some(StoreFaultKind::Truncate));
            assert!(p.len() < 16, "below the codec's minimum header size");
        }
    }

    #[test]
    fn stale_leaves_payload_intact() {
        let mut plan = StoreFaultPlan::new(
            StoreFaultConfig {
                stale_rate: 1.0,
                ..StoreFaultConfig::default()
            },
            5,
        )
        .unwrap();
        let mut p = payload();
        assert_eq!(plan.corrupt_write(&mut p), Some(StoreFaultKind::Stale));
        assert_eq!(p, payload(), "stale drops the write, not the bytes");
    }

    #[test]
    fn channels_apply_in_fixed_precedence() {
        // All channels armed: torn wins every time.
        let mut plan = StoreFaultPlan::new(
            StoreFaultConfig {
                torn_write_rate: 1.0,
                bit_flip_rate: 1.0,
                truncate_rate: 1.0,
                stale_rate: 1.0,
            },
            6,
        )
        .unwrap();
        let mut p = payload();
        assert_eq!(plan.corrupt_write(&mut p), Some(StoreFaultKind::TornWrite));
        // A 1-byte payload cannot tear or stay non-degenerate under a
        // flip-less tear, so the ladder falls through to the bit flip.
        let mut tiny = vec![0xAAu8];
        assert_eq!(plan.corrupt_write(&mut tiny), Some(StoreFaultKind::BitFlip));
        assert_ne!(tiny, vec![0xAAu8]);
        // An empty payload can only truncate (a no-op) — never panic.
        let mut empty = Vec::new();
        assert_eq!(
            plan.corrupt_write(&mut empty),
            Some(StoreFaultKind::Truncate)
        );
    }
}
