//! Synthesis of the 11 Table-I performance-monitoring counters.
//!
//! The paper gathers these per-thread via libpfm4 and sums them per service;
//! the simulator generates them per service per epoch from the underlying
//! simulated activity (busy time, work completed, contention) plus
//! multiplicative measurement noise. The *managers never see the simulator's
//! internals* — only these counters, tail latency and power — so the learning
//! problem has the same structure as on real hardware: the counters jointly
//! encode load, frequency, parallelism and interference, while any single
//! ratio (such as IPC) is confounded.

use crate::queue::standard_normal;
use crate::{ServiceSpec, SimError};
use std::fmt;
use std::ops::Index;
use twig_stats::rng::Rng;

/// Number of hardware counters tracked (Table I).
pub const NUM_COUNTERS: usize = 11;

/// The 11 performance counters of Table I, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CounterId {
    UnhaltedCoreCycles,
    InstructionRetired,
    PerfCountHwCpuCycles,
    UnhaltedReferenceCycles,
    UopsRetired,
    BranchInstructionsRetired,
    MispredictedBranchRetired,
    PerfCountHwBranchMisses,
    LlcMisses,
    PerfCountHwCacheL1d,
    PerfCountHwCacheL1i,
}

impl CounterId {
    /// All counters in Table I order.
    pub const ALL: [CounterId; NUM_COUNTERS] = [
        CounterId::UnhaltedCoreCycles,
        CounterId::InstructionRetired,
        CounterId::PerfCountHwCpuCycles,
        CounterId::UnhaltedReferenceCycles,
        CounterId::UopsRetired,
        CounterId::BranchInstructionsRetired,
        CounterId::MispredictedBranchRetired,
        CounterId::PerfCountHwBranchMisses,
        CounterId::LlcMisses,
        CounterId::PerfCountHwCacheL1d,
        CounterId::PerfCountHwCacheL1i,
    ];

    /// Zero-based index in Table I order.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("counter in ALL")
    }

    /// The libpfm-style event name used in Table I.
    pub fn event_name(self) -> &'static str {
        match self {
            CounterId::UnhaltedCoreCycles => "UNHALTED_CORE_CYCLES",
            CounterId::InstructionRetired => "INSTRUCTION_RETIRED",
            CounterId::PerfCountHwCpuCycles => "PERF_COUNT_HW_CPU_CYCLES",
            CounterId::UnhaltedReferenceCycles => "UNHALTED_REFERENCE_CYCLES",
            CounterId::UopsRetired => "UOPS_RETIRED",
            CounterId::BranchInstructionsRetired => "BRANCH_INSTRUCTIONS_RETIRED",
            CounterId::MispredictedBranchRetired => "MISPREDICTED_BRANCH_RETIRED",
            CounterId::PerfCountHwBranchMisses => "PERF_COUNT_HW_BRANCH_MISSES",
            CounterId::LlcMisses => "LLC_MISSES",
            CounterId::PerfCountHwCacheL1d => "PERF_COUNT_HW_CACHE_L1D",
            CounterId::PerfCountHwCacheL1i => "PERF_COUNT_HW_CACHE_L1I",
        }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.event_name())
    }
}

/// One epoch's raw counter values for one service (summed over its threads,
/// as the paper's system monitor does).
///
/// # Examples
///
/// ```
/// use twig_sim::{CounterId, PmcSample};
///
/// let mut s = PmcSample::zero();
/// s.set(CounterId::LlcMisses, 1.0e6);
/// assert_eq!(s[CounterId::LlcMisses], 1.0e6);
/// assert_eq!(s.as_array().len(), twig_sim::NUM_COUNTERS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmcSample {
    values: [f64; NUM_COUNTERS],
}

impl PmcSample {
    /// All-zero sample.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a sample from raw values in Table I order.
    pub fn from_array(values: [f64; NUM_COUNTERS]) -> Self {
        PmcSample { values }
    }

    /// The raw values in Table I order.
    pub fn as_array(&self) -> &[f64; NUM_COUNTERS] {
        &self.values
    }

    /// Sets one counter value.
    pub fn set(&mut self, counter: CounterId, value: f64) {
        self.values[counter.index()] = value;
    }

    /// Instructions-per-cycle derived from this sample (the baseline signal
    /// the paper shows to be insufficient in Figure 1).
    pub fn ipc(&self) -> f64 {
        let cycles = self[CounterId::UnhaltedCoreCycles];
        if cycles <= 0.0 {
            return 0.0;
        }
        self[CounterId::InstructionRetired] / cycles
    }
}

impl Index<CounterId> for PmcSample {
    type Output = f64;

    fn index(&self, counter: CounterId) -> &f64 {
        &self.values[counter.index()]
    }
}

/// The per-epoch activity summary the simulator feeds the synthesiser.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Activity {
    /// Core-seconds of busy CPU time weighted by relative frequency
    /// (`Σ share × f_rel × busy`), i.e. work actually executed.
    pub weighted_busy_core_s: f64,
    /// Plain busy core-seconds (`Σ share × busy`), for reference cycles.
    pub busy_core_s: f64,
    /// Milliseconds of CPU-bound work completed this epoch.
    pub cpu_work_ms: f64,
    /// Milliseconds of memory-bound work completed this epoch.
    pub mem_work_ms: f64,
    /// Cache overcommitment factor (0 = LLC fits everything).
    pub cache_pressure: f64,
    /// Highest core clock in GHz among the service's cores.
    pub clock_ghz: f64,
}

/// Relative standard deviation of the multiplicative measurement noise.
const NOISE_SD: f64 = 0.03;

/// Synthesises one epoch's Table-I counters for a service.
///
/// See the module docs for the modelling rationale. The mapping is:
/// cycle counters come from (frequency-weighted) busy time; instruction-side
/// counters from completed work scaled by the service's instruction mix;
/// LLC misses from memory-bound work inflated by cache pressure.
pub fn synthesize<R: Rng>(spec: &ServiceSpec, activity: &Activity, rng: &mut R) -> PmcSample {
    let mut noisy = |v: f64| (v * (1.0 + NOISE_SD * standard_normal(rng))).max(0.0);

    let cycles = activity.weighted_busy_core_s * 2.0e9; // f_rel 1.0 = 2.0 GHz
    let ref_cycles = activity.busy_core_s * 2.0e9;
    // Memory-bound work retires instructions slowly (roughly 1/4 the rate).
    let instr = activity.cpu_work_ms * spec.instructions_per_ms
        + activity.mem_work_ms * spec.instructions_per_ms * 0.25;
    let branches = instr * spec.branch_frac;
    let br_miss = branches * spec.branch_miss_rate * (1.0 + 0.3 * activity.cache_pressure);
    let llc = activity.mem_work_ms * spec.llc_miss_per_mem_ms * (1.0 + activity.cache_pressure);

    let mut s = PmcSample::zero();
    s.set(CounterId::UnhaltedCoreCycles, noisy(cycles));
    s.set(CounterId::InstructionRetired, noisy(instr));
    s.set(CounterId::PerfCountHwCpuCycles, noisy(cycles));
    s.set(CounterId::UnhaltedReferenceCycles, noisy(ref_cycles));
    s.set(CounterId::UopsRetired, noisy(instr * spec.uops_per_instr));
    s.set(CounterId::BranchInstructionsRetired, noisy(branches));
    s.set(CounterId::MispredictedBranchRetired, noisy(br_miss));
    s.set(CounterId::PerfCountHwBranchMisses, noisy(br_miss));
    s.set(CounterId::LlcMisses, noisy(llc));
    s.set(
        CounterId::PerfCountHwCacheL1d,
        noisy(instr * spec.l1d_per_instr),
    );
    s.set(
        CounterId::PerfCountHwCacheL1i,
        noisy(instr * spec.l1i_per_instr),
    );
    s
}

/// Per-counter maxima used for feature scaling, mirroring the paper's
/// calibration microbenchmarks: a CPU-stress kernel for counters 1–5, a
/// branch-stress kernel for 6–8 and the STREAM benchmark for 9–11
/// (Section IV). Maxima are for `cores` cores busy for one second at the
/// top DVFS setting.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `cores == 0`.
pub fn calibration_maxima(cores: usize) -> Result<[f64; NUM_COUNTERS], SimError> {
    if cores == 0 {
        return Err(SimError::InvalidConfig {
            detail: "zero cores".into(),
        });
    }
    let n = cores as f64;
    let cycles = n * 2.0e9;
    // The CPU stress kernel retires ~3 IPC of trivial arithmetic.
    let instr_max = cycles * 3.0;
    // The branch kernel's mix: half its instructions are branches, ~25%
    // mispredicted on the unsorted data.
    let branch_max = cycles * 1.0 * 0.5;
    let branch_miss_max = branch_max * 0.25;
    // STREAM saturates the memory system.
    let llc_max = n * 3.0e8;
    Ok([
        cycles,          // UNHALTED_CORE_CYCLES
        instr_max,       // INSTRUCTION_RETIRED
        cycles,          // PERF_COUNT_HW_CPU_CYCLES
        cycles,          // UNHALTED_REFERENCE_CYCLES
        instr_max * 1.4, // UOPS_RETIRED
        branch_max,      // BRANCH_INSTRUCTIONS_RETIRED
        branch_miss_max, // MISPREDICTED_BRANCH_RETIRED
        branch_miss_max, // PERF_COUNT_HW_BRANCH_MISSES
        llc_max,         // LLC_MISSES
        instr_max * 0.6, // PERF_COUNT_HW_CACHE_L1D
        instr_max * 1.1, // PERF_COUNT_HW_CACHE_L1I
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use twig_stats::rng::Xoshiro256;

    fn activity() -> Activity {
        Activity {
            weighted_busy_core_s: 4.0,
            busy_core_s: 5.0,
            cpu_work_ms: 3000.0,
            mem_work_ms: 1200.0,
            cache_pressure: 0.5,
            clock_ghz: 1.8,
        }
    }

    #[test]
    fn counter_ids_unique_and_ordered() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(CounterId::ALL.len(), NUM_COUNTERS);
    }

    #[test]
    fn event_names_match_table1() {
        assert_eq!(
            CounterId::UnhaltedCoreCycles.event_name(),
            "UNHALTED_CORE_CYCLES"
        );
        assert_eq!(CounterId::LlcMisses.to_string(), "LLC_MISSES");
    }

    #[test]
    fn synthesis_is_nonnegative_and_scales_with_activity() {
        let spec = catalog::masstree();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let base = synthesize(&spec, &activity(), &mut rng);
        for &v in base.as_array() {
            assert!(v >= 0.0);
        }
        let mut double = activity();
        double.cpu_work_ms *= 2.0;
        double.mem_work_ms *= 2.0;
        double.weighted_busy_core_s *= 2.0;
        double.busy_core_s *= 2.0;
        let bigger = synthesize(&spec, &double, &mut rng);
        assert!(bigger[CounterId::InstructionRetired] > base[CounterId::InstructionRetired]);
        assert!(bigger[CounterId::LlcMisses] > base[CounterId::LlcMisses]);
    }

    #[test]
    fn cache_pressure_inflates_llc_misses() {
        let spec = catalog::moses();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let calm = synthesize(
            &spec,
            &Activity {
                cache_pressure: 0.0,
                ..activity()
            },
            &mut rng,
        );
        let hot = synthesize(
            &spec,
            &Activity {
                cache_pressure: 1.0,
                ..activity()
            },
            &mut rng,
        );
        assert!(hot[CounterId::LlcMisses] > calm[CounterId::LlcMisses] * 1.5);
    }

    #[test]
    fn ipc_zero_without_cycles() {
        assert_eq!(PmcSample::zero().ipc(), 0.0);
    }

    #[test]
    fn idle_activity_gives_zero_counters() {
        let spec = catalog::xapian();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let s = synthesize(&spec, &Activity::default(), &mut rng);
        for &v in s.as_array() {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn maxima_dominate_realistic_samples() {
        // A service flat-out on 9 cores for a second must stay below the
        // 18-core calibration maxima in every counter.
        let spec = catalog::moses();
        let mut rng = Xoshiro256::seed_from_u64(4);
        let act = Activity {
            weighted_busy_core_s: 9.0,
            busy_core_s: 9.0,
            cpu_work_ms: 9.0 * 1000.0 * 0.6,
            mem_work_ms: 9.0 * 1000.0 * 0.4,
            cache_pressure: 1.0,
            clock_ghz: 2.0,
        };
        let s = synthesize(&spec, &act, &mut rng);
        let maxima = calibration_maxima(18).unwrap();
        for (i, (&v, &m)) in s.as_array().iter().zip(&maxima).enumerate() {
            assert!(v <= m, "counter {i}: {v} > max {m}");
        }
    }

    #[test]
    fn maxima_reject_zero_cores() {
        assert!(calibration_maxima(0).is_err());
    }
}
