use crate::SimError;

/// Deterministic load trajectory for one service, as a fraction of its
/// maximum load over simulated time.
///
/// The paper's experiments use three shapes:
///
/// - **fixed** load at 20 / 50 / 80 % (Figures 5, 13);
/// - a **step-wise monotonic** profile that multiplies the load by a change
///   factor every period until it reaches a maximum, then divides back down
///   (Figure 10: change factor 20 %, 200 s steps);
/// - a **diurnal** pattern "common in data centres" (Section V-B).
///
/// # Examples
///
/// ```
/// use twig_sim::LoadGenerator;
///
/// let fixed = LoadGenerator::fixed(0.5).unwrap();
/// assert_eq!(fixed.fraction_at(1234), 0.5);
///
/// let step = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
/// assert!(step.fraction_at(0) < step.fraction_at(2000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadGenerator {
    /// Constant fraction of the maximum load.
    Fixed {
        /// The load fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Step-wise monotonic profile (Figure 10): starting at `min`, the load
    /// is multiplied by `change_factor` every `period_s` seconds until it
    /// reaches `max`, then multiplied by the reciprocal back down to `min`,
    /// and so on.
    Step {
        /// Minimum load fraction.
        min: f64,
        /// Maximum load fraction.
        max: f64,
        /// Multiplicative change applied at each step (> 1).
        change_factor: f64,
        /// Seconds between load changes.
        period_s: u64,
    },
    /// Sinusoidal diurnal pattern between `min` and `max` with the given
    /// period.
    Diurnal {
        /// Minimum load fraction.
        min: f64,
        /// Maximum load fraction.
        max: f64,
        /// Seconds per full day/night cycle.
        period_s: u64,
    },
}

impl LoadGenerator {
    /// Creates a constant-load generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `fraction` is outside
    /// `[0, 1]`.
    pub fn fixed(fraction: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(SimError::InvalidConfig {
                detail: format!("load fraction {fraction} outside [0, 1]"),
            });
        }
        Ok(LoadGenerator::Fixed { fraction })
    }

    /// Creates a step-wise monotonic generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// `min > max`, a change factor not greater than 1, or a zero period.
    pub fn step(min: f64, max: f64, change_factor: f64, period_s: u64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || min > max {
            return Err(SimError::InvalidConfig {
                detail: format!("step load range [{min}, {max}]"),
            });
        }
        if change_factor <= 1.0 || min <= 0.0 {
            return Err(SimError::InvalidConfig {
                detail: format!("step change factor {change_factor} with min {min}"),
            });
        }
        if period_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero step period".into(),
            });
        }
        Ok(LoadGenerator::Step {
            min,
            max,
            change_factor,
            period_s,
        })
    }

    /// Creates a diurnal generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// `min > max`, or a zero period.
    pub fn diurnal(min: f64, max: f64, period_s: u64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || min > max {
            return Err(SimError::InvalidConfig {
                detail: format!("diurnal load range [{min}, {max}]"),
            });
        }
        if period_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero diurnal period".into(),
            });
        }
        Ok(LoadGenerator::Diurnal { min, max, period_s })
    }

    /// Load fraction at simulated second `t`.
    pub fn fraction_at(&self, t: u64) -> f64 {
        match *self {
            LoadGenerator::Fixed { fraction } => fraction,
            LoadGenerator::Step {
                min,
                max,
                change_factor,
                period_s,
            } => {
                // Number of up-steps to get from min to max.
                let steps_up = ((max / min).ln() / change_factor.ln()).ceil().max(1.0) as u64;
                let cycle = 2 * steps_up;
                let phase = (t / period_s) % cycle;
                let level = if phase < steps_up {
                    phase
                } else {
                    cycle - phase
                };
                (min * change_factor.powi(level as i32)).min(max)
            }
            LoadGenerator::Diurnal { min, max, period_s } => {
                let theta = 2.0 * std::f64::consts::PI * (t % period_s) as f64 / period_s as f64;
                let mid = (min + max) / 2.0;
                let amp = (max - min) / 2.0;
                mid - amp * theta.cos()
            }
        }
    }
}

impl Default for LoadGenerator {
    fn default() -> Self {
        LoadGenerator::Fixed { fraction: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn fixed_is_constant() {
        let g = LoadGenerator::fixed(0.8).unwrap();
        for t in [0, 100, 99999] {
            assert_eq!(g.fraction_at(t), 0.8);
        }
    }

    #[test]
    fn fixed_rejects_out_of_range() {
        assert!(LoadGenerator::fixed(-0.1).is_err());
        assert!(LoadGenerator::fixed(1.1).is_err());
    }

    #[test]
    fn step_reaches_max_and_returns() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
        let series: Vec<f64> = (0..40).map(|i| g.fraction_at(i * 200)).collect();
        let peak = series.iter().cloned().fold(0.0, f64::max);
        let trough = series.iter().cloned().fold(2.0, f64::min);
        assert!((peak - 1.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.2).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn step_changes_only_at_period_boundaries() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
        assert_eq!(g.fraction_at(0), g.fraction_at(199));
        assert_ne!(g.fraction_at(0), g.fraction_at(200));
    }

    #[test]
    fn step_validation() {
        assert!(LoadGenerator::step(0.5, 0.2, 1.2, 100).is_err()); // min > max
        assert!(LoadGenerator::step(0.2, 1.0, 1.0, 100).is_err()); // factor <= 1
        assert!(LoadGenerator::step(0.0, 1.0, 1.2, 100).is_err()); // min == 0
        assert!(LoadGenerator::step(0.2, 1.0, 1.2, 0).is_err()); // period 0
    }

    #[test]
    fn diurnal_starts_at_min_peaks_mid_cycle() {
        let g = LoadGenerator::diurnal(0.2, 0.8, 86_400).unwrap();
        assert!((g.fraction_at(0) - 0.2).abs() < 1e-9);
        assert!((g.fraction_at(43_200) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn all_generators_stay_in_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(0x10ad);
        for _ in 0..500 {
            let t = rng.next_u64() % 1_000_000;
            let gens = [
                LoadGenerator::fixed(0.37).unwrap(),
                LoadGenerator::step(0.2, 0.9, 1.25, 150).unwrap(),
                LoadGenerator::diurnal(0.1, 0.95, 3600).unwrap(),
            ];
            for g in gens {
                let f = g.fraction_at(t);
                assert!((0.0..=1.0).contains(&f), "{g:?} at {t} -> {f}");
            }
        }
    }

    #[test]
    fn step_average_symmetric_over_cycle() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 100).unwrap();
        // A full cycle repeats.
        let steps_up = ((1.0f64 / 0.2).ln() / 1.2f64.ln()).ceil() as u64;
        let cycle = 2 * steps_up * 100;
        for t in 1u64..500 {
            assert_eq!(g.fraction_at(t), g.fraction_at(t + cycle));
        }
    }
}
