use crate::SimError;

/// Deterministic load trajectory for one service, as a fraction of its
/// maximum load over simulated time.
///
/// The paper's experiments use three shapes:
///
/// - **fixed** load at 20 / 50 / 80 % (Figures 5, 13);
/// - a **step-wise monotonic** profile that multiplies the load by a change
///   factor every period until it reaches a maximum, then divides back down
///   (Figure 10: change factor 20 %, 200 s steps);
/// - a **diurnal** pattern "common in data centres" (Section V-B).
///
/// The scenario engine adds four more composable shapes on top of those:
/// a linear **ramp**, a **flash crowd** (ramp up, hold, ramp down), a
/// periodic square-wave **burst** (phase-shifted copies model correlated
/// or anti-correlated bursts across services), and **replay** of an inline
/// trace table.
///
/// # Examples
///
/// ```
/// use twig_sim::LoadGenerator;
///
/// let fixed = LoadGenerator::fixed(0.5).unwrap();
/// assert_eq!(fixed.fraction_at(1234), 0.5);
///
/// let step = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
/// assert!(step.fraction_at(0) < step.fraction_at(2000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadGenerator {
    /// Constant fraction of the maximum load.
    Fixed {
        /// The load fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Step-wise monotonic profile (Figure 10): starting at `min`, the load
    /// is multiplied by `change_factor` every `period_s` seconds until it
    /// reaches `max`, then multiplied by the reciprocal back down to `min`,
    /// and so on.
    Step {
        /// Minimum load fraction.
        min: f64,
        /// Maximum load fraction.
        max: f64,
        /// Multiplicative change applied at each step (> 1).
        change_factor: f64,
        /// Seconds between load changes.
        period_s: u64,
    },
    /// Sinusoidal diurnal pattern between `min` and `max` with the given
    /// period.
    Diurnal {
        /// Minimum load fraction.
        min: f64,
        /// Maximum load fraction.
        max: f64,
        /// Seconds per full day/night cycle.
        period_s: u64,
    },
    /// Linear ramp: `from` until `start_s`, then a straight line to `to`
    /// over `duration_s` seconds, then constant at `to`.
    Ramp {
        /// Load fraction before the ramp.
        from: f64,
        /// Load fraction after the ramp.
        to: f64,
        /// Second at which the ramp begins.
        start_s: u64,
        /// Seconds the ramp takes (> 0).
        duration_s: u64,
    },
    /// Flash crowd: `base` load, then at `start_s` a linear surge to `peak`
    /// over `ramp_s` seconds, held for `hold_s` seconds, then a symmetric
    /// linear decay back to `base`.
    FlashCrowd {
        /// Steady-state load fraction outside the crowd.
        base: f64,
        /// Load fraction at the top of the surge.
        peak: f64,
        /// Second at which the surge begins.
        start_s: u64,
        /// Seconds of linear ramp on each side of the hold (> 0).
        ramp_s: u64,
        /// Seconds the peak is held.
        hold_s: u64,
    },
    /// Periodic square-wave burst: `peak` for the first `duty_s` seconds of
    /// every `period_s`-second cycle (shifted by `phase_s`), `base`
    /// otherwise. Two services sharing `period_s`/`phase_s` burst together;
    /// offsetting `phase_s` models anti-correlated bursts.
    Burst {
        /// Load fraction between bursts.
        base: f64,
        /// Load fraction during a burst.
        peak: f64,
        /// Seconds per burst cycle (> 0).
        period_s: u64,
        /// Seconds of each cycle spent at `peak` (in `1..period_s`).
        duty_s: u64,
        /// Phase shift in seconds (< `period_s`).
        phase_s: u64,
    },
    /// Replay of an inline trace table: entry `i` of `table` is the load
    /// fraction for seconds `[i * dwell_s, (i + 1) * dwell_s)`; the table
    /// wraps cyclically.
    Replay {
        /// Load fractions, each in `[0, 1]`; non-empty.
        table: Vec<f64>,
        /// Seconds each table entry is held (> 0).
        dwell_s: u64,
    },
}

impl LoadGenerator {
    /// Creates a constant-load generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `fraction` is outside
    /// `[0, 1]`.
    pub fn fixed(fraction: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(SimError::InvalidConfig {
                detail: format!("load fraction {fraction} outside [0, 1]"),
            });
        }
        Ok(LoadGenerator::Fixed { fraction })
    }

    /// Creates a step-wise monotonic generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// `min > max`, a change factor not greater than 1, or a zero period.
    pub fn step(min: f64, max: f64, change_factor: f64, period_s: u64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || min > max {
            return Err(SimError::InvalidConfig {
                detail: format!("step load range [{min}, {max}]"),
            });
        }
        if change_factor <= 1.0 || min <= 0.0 {
            return Err(SimError::InvalidConfig {
                detail: format!("step change factor {change_factor} with min {min}"),
            });
        }
        if period_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero step period".into(),
            });
        }
        Ok(LoadGenerator::Step {
            min,
            max,
            change_factor,
            period_s,
        })
    }

    /// Creates a diurnal generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// `min > max`, or a zero period.
    pub fn diurnal(min: f64, max: f64, period_s: u64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || min > max {
            return Err(SimError::InvalidConfig {
                detail: format!("diurnal load range [{min}, {max}]"),
            });
        }
        if period_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero diurnal period".into(),
            });
        }
        Ok(LoadGenerator::Diurnal { min, max, period_s })
    }

    /// Creates a linear-ramp generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`
    /// or a zero duration. `from > to` is allowed (a ramp down).
    pub fn ramp(from: f64, to: f64, start_s: u64, duration_s: u64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&to) {
            return Err(SimError::InvalidConfig {
                detail: format!("ramp load range [{from}, {to}]"),
            });
        }
        if duration_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero ramp duration".into(),
            });
        }
        Ok(LoadGenerator::Ramp {
            from,
            to,
            start_s,
            duration_s,
        })
    }

    /// Creates a flash-crowd generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// `peak < base`, or a zero ramp.
    pub fn flash_crowd(
        base: f64,
        peak: f64,
        start_s: u64,
        ramp_s: u64,
        hold_s: u64,
    ) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&base) || !(0.0..=1.0).contains(&peak) || peak < base {
            return Err(SimError::InvalidConfig {
                detail: format!("flash crowd range [{base}, {peak}]"),
            });
        }
        if ramp_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero flash crowd ramp".into(),
            });
        }
        Ok(LoadGenerator::FlashCrowd {
            base,
            peak,
            start_s,
            ramp_s,
            hold_s,
        })
    }

    /// Creates a periodic square-wave burst generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fractions outside `[0, 1]`,
    /// a zero period, a duty cycle not in `1..period_s`, or a phase not
    /// smaller than the period.
    pub fn burst(
        base: f64,
        peak: f64,
        period_s: u64,
        duty_s: u64,
        phase_s: u64,
    ) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&base) || !(0.0..=1.0).contains(&peak) {
            return Err(SimError::InvalidConfig {
                detail: format!("burst load range [{base}, {peak}]"),
            });
        }
        if period_s == 0 || duty_s == 0 || duty_s >= period_s {
            return Err(SimError::InvalidConfig {
                detail: format!("burst duty {duty_s}s of period {period_s}s"),
            });
        }
        if phase_s >= period_s {
            return Err(SimError::InvalidConfig {
                detail: format!("burst phase {phase_s}s >= period {period_s}s"),
            });
        }
        Ok(LoadGenerator::Burst {
            base,
            peak,
            period_s,
            duty_s,
            phase_s,
        })
    }

    /// Creates a trace-replay generator from an inline table.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty table, a table
    /// entry outside `[0, 1]` (or non-finite), or a zero dwell.
    pub fn replay(table: Vec<f64>, dwell_s: u64) -> Result<Self, SimError> {
        if table.is_empty() {
            return Err(SimError::InvalidConfig {
                detail: "empty replay table".into(),
            });
        }
        if let Some((i, &bad)) = table
            .iter()
            .enumerate()
            .find(|(_, f)| !f.is_finite() || !(0.0..=1.0).contains(*f))
        {
            return Err(SimError::InvalidConfig {
                detail: format!("replay table entry {i} is {bad}, outside [0, 1]"),
            });
        }
        if dwell_s == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero replay dwell".into(),
            });
        }
        Ok(LoadGenerator::Replay { table, dwell_s })
    }

    /// Load fraction at simulated second `t`.
    pub fn fraction_at(&self, t: u64) -> f64 {
        match *self {
            LoadGenerator::Fixed { fraction } => fraction,
            LoadGenerator::Ramp {
                from,
                to,
                start_s,
                duration_s,
            } => {
                if t <= start_s {
                    from
                } else if t >= start_s + duration_s {
                    to
                } else {
                    let frac = (t - start_s) as f64 / duration_s as f64;
                    from + (to - from) * frac
                }
            }
            LoadGenerator::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
            } => {
                let up_done = start_s + ramp_s;
                let hold_done = up_done + hold_s;
                let down_done = hold_done + ramp_s;
                if t <= start_s || t >= down_done {
                    base
                } else if t < up_done {
                    base + (peak - base) * (t - start_s) as f64 / ramp_s as f64
                } else if t < hold_done {
                    peak
                } else {
                    peak - (peak - base) * (t - hold_done) as f64 / ramp_s as f64
                }
            }
            LoadGenerator::Burst {
                base,
                peak,
                period_s,
                duty_s,
                phase_s,
            } => {
                if (t + phase_s) % period_s < duty_s {
                    peak
                } else {
                    base
                }
            }
            LoadGenerator::Replay { ref table, dwell_s } => {
                table[((t / dwell_s) as usize) % table.len()]
            }
            LoadGenerator::Step {
                min,
                max,
                change_factor,
                period_s,
            } => {
                // Number of up-steps to get from min to max.
                let steps_up = ((max / min).ln() / change_factor.ln()).ceil().max(1.0) as u64;
                let cycle = 2 * steps_up;
                let phase = (t / period_s) % cycle;
                let level = if phase < steps_up {
                    phase
                } else {
                    cycle - phase
                };
                (min * change_factor.powi(level as i32)).min(max)
            }
            LoadGenerator::Diurnal { min, max, period_s } => {
                let theta = 2.0 * std::f64::consts::PI * (t % period_s) as f64 / period_s as f64;
                let mid = (min + max) / 2.0;
                let amp = (max - min) / 2.0;
                mid - amp * theta.cos()
            }
        }
    }
}

impl Default for LoadGenerator {
    fn default() -> Self {
        LoadGenerator::Fixed { fraction: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn fixed_is_constant() {
        let g = LoadGenerator::fixed(0.8).unwrap();
        for t in [0, 100, 99999] {
            assert_eq!(g.fraction_at(t), 0.8);
        }
    }

    #[test]
    fn fixed_rejects_out_of_range() {
        assert!(LoadGenerator::fixed(-0.1).is_err());
        assert!(LoadGenerator::fixed(1.1).is_err());
    }

    #[test]
    fn step_reaches_max_and_returns() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
        let series: Vec<f64> = (0..40).map(|i| g.fraction_at(i * 200)).collect();
        let peak = series.iter().cloned().fold(0.0, f64::max);
        let trough = series.iter().cloned().fold(2.0, f64::min);
        assert!((peak - 1.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.2).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn step_changes_only_at_period_boundaries() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 200).unwrap();
        assert_eq!(g.fraction_at(0), g.fraction_at(199));
        assert_ne!(g.fraction_at(0), g.fraction_at(200));
    }

    #[test]
    fn step_validation() {
        assert!(LoadGenerator::step(0.5, 0.2, 1.2, 100).is_err()); // min > max
        assert!(LoadGenerator::step(0.2, 1.0, 1.0, 100).is_err()); // factor <= 1
        assert!(LoadGenerator::step(0.0, 1.0, 1.2, 100).is_err()); // min == 0
        assert!(LoadGenerator::step(0.2, 1.0, 1.2, 0).is_err()); // period 0
    }

    #[test]
    fn diurnal_starts_at_min_peaks_mid_cycle() {
        let g = LoadGenerator::diurnal(0.2, 0.8, 86_400).unwrap();
        assert!((g.fraction_at(0) - 0.2).abs() < 1e-9);
        assert!((g.fraction_at(43_200) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn ramp_is_piecewise_linear() {
        let g = LoadGenerator::ramp(0.2, 0.8, 100, 60).unwrap();
        assert_eq!(g.fraction_at(0), 0.2);
        assert_eq!(g.fraction_at(100), 0.2);
        assert!((g.fraction_at(130) - 0.5).abs() < 1e-9);
        assert_eq!(g.fraction_at(160), 0.8);
        assert_eq!(g.fraction_at(99_999), 0.8);
    }

    #[test]
    fn ramp_down_is_allowed() {
        let g = LoadGenerator::ramp(0.9, 0.1, 0, 100).unwrap();
        assert!(g.fraction_at(10) > g.fraction_at(90));
    }

    #[test]
    fn ramp_validation() {
        assert!(LoadGenerator::ramp(-0.1, 0.5, 0, 10).is_err());
        assert!(LoadGenerator::ramp(0.1, 1.5, 0, 10).is_err());
        assert!(LoadGenerator::ramp(0.1, 0.5, 0, 0).is_err());
    }

    #[test]
    fn flash_crowd_surges_holds_and_decays() {
        let g = LoadGenerator::flash_crowd(0.3, 0.9, 50, 10, 20).unwrap();
        assert_eq!(g.fraction_at(0), 0.3);
        assert_eq!(g.fraction_at(50), 0.3);
        assert!((g.fraction_at(55) - 0.6).abs() < 1e-9);
        assert_eq!(g.fraction_at(60), 0.9);
        assert_eq!(g.fraction_at(79), 0.9);
        assert!((g.fraction_at(85) - 0.6).abs() < 1e-9);
        assert_eq!(g.fraction_at(90), 0.3);
        assert_eq!(g.fraction_at(99_999), 0.3);
    }

    #[test]
    fn flash_crowd_validation() {
        assert!(LoadGenerator::flash_crowd(0.9, 0.3, 0, 10, 10).is_err()); // peak < base
        assert!(LoadGenerator::flash_crowd(0.3, 1.1, 0, 10, 10).is_err());
        assert!(LoadGenerator::flash_crowd(0.3, 0.9, 0, 0, 10).is_err()); // zero ramp
    }

    #[test]
    fn burst_phase_correlates_and_anticorrelates() {
        let a = LoadGenerator::burst(0.2, 0.8, 60, 30, 0).unwrap();
        let b = LoadGenerator::burst(0.2, 0.8, 60, 30, 0).unwrap();
        let c = LoadGenerator::burst(0.2, 0.8, 60, 30, 30).unwrap();
        for t in 0..240 {
            assert_eq!(a.fraction_at(t), b.fraction_at(t));
            assert_ne!(a.fraction_at(t), c.fraction_at(t));
        }
    }

    #[test]
    fn burst_validation() {
        assert!(LoadGenerator::burst(0.2, 0.8, 0, 1, 0).is_err()); // zero period
        assert!(LoadGenerator::burst(0.2, 0.8, 60, 0, 0).is_err()); // zero duty
        assert!(LoadGenerator::burst(0.2, 0.8, 60, 60, 0).is_err()); // duty == period
        assert!(LoadGenerator::burst(0.2, 0.8, 60, 30, 60).is_err()); // phase >= period
        assert!(LoadGenerator::burst(0.2, 1.2, 60, 30, 0).is_err());
    }

    #[test]
    fn replay_wraps_cyclically() {
        let g = LoadGenerator::replay(vec![0.1, 0.5, 0.9], 10).unwrap();
        assert_eq!(g.fraction_at(0), 0.1);
        assert_eq!(g.fraction_at(9), 0.1);
        assert_eq!(g.fraction_at(10), 0.5);
        assert_eq!(g.fraction_at(25), 0.9);
        assert_eq!(g.fraction_at(30), 0.1); // wrapped
        assert_eq!(g.fraction_at(45), 0.5);
    }

    #[test]
    fn replay_validation() {
        assert!(LoadGenerator::replay(vec![], 10).is_err());
        assert!(LoadGenerator::replay(vec![0.5, 1.2], 10).is_err());
        assert!(LoadGenerator::replay(vec![0.5, f64::NAN], 10).is_err());
        assert!(LoadGenerator::replay(vec![0.5], 0).is_err());
    }

    #[test]
    fn all_generators_stay_in_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(0x10ad);
        for _ in 0..500 {
            let t = rng.next_u64() % 1_000_000;
            let gens = [
                LoadGenerator::fixed(0.37).unwrap(),
                LoadGenerator::step(0.2, 0.9, 1.25, 150).unwrap(),
                LoadGenerator::diurnal(0.1, 0.95, 3600).unwrap(),
                LoadGenerator::ramp(0.1, 0.9, 500, 300).unwrap(),
                LoadGenerator::flash_crowd(0.2, 1.0, 1000, 50, 200).unwrap(),
                LoadGenerator::burst(0.15, 0.85, 120, 40, 60).unwrap(),
                LoadGenerator::replay(vec![0.0, 0.3, 1.0, 0.6], 30).unwrap(),
            ];
            for g in gens {
                let f = g.fraction_at(t);
                assert!((0.0..=1.0).contains(&f), "{g:?} at {t} -> {f}");
            }
        }
    }

    #[test]
    fn step_average_symmetric_over_cycle() {
        let g = LoadGenerator::step(0.2, 1.0, 1.2, 100).unwrap();
        // A full cycle repeats.
        let steps_up = ((1.0f64 / 0.2).ln() / 1.2f64.ln()).ceil() as u64;
        let cycle = 2 * steps_up * 100;
        for t in 1u64..500 {
            assert_eq!(g.fraction_at(t), g.fraction_at(t + cycle));
        }
    }
}
