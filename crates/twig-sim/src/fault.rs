//! Seeded, deterministic fault injection for the simulated platform.
//!
//! Real deployments see telemetry and actuation failures the paper's
//! evaluation never exercises: perf counters return garbage or go stale,
//! sysfs DVFS writes are rejected or clamped by the platform, the RAPL
//! meter glitches, and cores are taken offline by the OS or firmware. This
//! module injects those faults into [`Server::step`](crate::Server::step)
//! so task managers can be hardened and evaluated against them.
//!
//! A [`FaultPlan`] owns its **own** RNG stream, seeded independently of the
//! server's workload RNG. Two consequences:
//!
//! 1. the same plan seed reproduces the identical fault sequence for any
//!    manager under test, and
//! 2. a plan whose every rate is zero leaves the server's outputs
//!    bit-identical to a run with no plan installed at all (the workload
//!    stream is never perturbed).
//!
//! # Examples
//!
//! ```
//! use twig_sim::{catalog, Assignment, FaultConfig, FaultPlan, Server, ServerConfig};
//!
//! # fn main() -> Result<(), twig_sim::SimError> {
//! let cfg = ServerConfig::default();
//! let freq = cfg.dvfs.max();
//! let mut server = Server::new(cfg, vec![catalog::masstree()], 42)?;
//! server.set_fault_plan(FaultPlan::new(
//!     FaultConfig { pmc_corrupt_rate: 0.5, ..FaultConfig::default() },
//!     7,
//! )?);
//! let report = server.step(&[Assignment::first_n(9, freq)])?;
//! // The report says whether this epoch's telemetry can be trusted.
//! let _ = report.telemetry.degraded();
//! # Ok(())
//! # }
//! ```

use crate::pmc::{PmcSample, NUM_COUNTERS};
use crate::{CoreId, DvfsLadder, Frequency, SimError};
use std::collections::BTreeSet;
use twig_stats::rng::{Rng, Xoshiro256};

/// Per-epoch fault probabilities and magnitudes. All rates default to zero:
/// the default configuration injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability, per service per epoch, that the PMC sample delivered to
    /// the manager is corrupted (NaN, +∞, all-zero or a stale repeat of the
    /// previous epoch, chosen uniformly).
    pub pmc_corrupt_rate: f64,
    /// Telemetry latency: PMC samples are delivered this many epochs late
    /// (0 = fresh). Models a slow or backlogged collection pipeline.
    pub telemetry_delay_epochs: usize,
    /// Probability, per service per epoch, that the platform rejects the
    /// requested assignment outright and keeps the previous epoch's
    /// actually-applied assignment.
    pub actuation_reject_rate: f64,
    /// Probability, per service per epoch, that the requested DVFS setting
    /// is clamped one ladder step down (a governor or thermal limiter
    /// overriding the request). Applied independently of rejection.
    pub dvfs_clamp_rate: f64,
    /// Probability, per epoch, that the RAPL-style power reading glitches:
    /// it returns zero or a 10x spike (never affects true power or energy
    /// accounting).
    pub power_glitch_rate: f64,
    /// Probability, per epoch, that one currently-online core goes offline.
    pub core_fail_rate: f64,
    /// Probability, per epoch, that one currently-offline core comes back.
    pub core_repair_rate: f64,
    /// Upper bound on simultaneously offline cores.
    pub max_offline_cores: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            pmc_corrupt_rate: 0.0,
            telemetry_delay_epochs: 0,
            actuation_reject_rate: 0.0,
            dvfs_clamp_rate: 0.0,
            power_glitch_rate: 0.0,
            core_fail_rate: 0.0,
            core_repair_rate: 0.0,
            max_offline_cores: 0,
        }
    }
}

impl FaultConfig {
    /// `true` when at least one injector can fire.
    pub fn enabled(&self) -> bool {
        self.pmc_corrupt_rate > 0.0
            || self.telemetry_delay_epochs > 0
            || self.actuation_reject_rate > 0.0
            || self.dvfs_clamp_rate > 0.0
            || self.power_glitch_rate > 0.0
            || (self.core_fail_rate > 0.0 && self.max_offline_cores > 0)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a rate is outside `[0, 1]`
    /// or not finite.
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, rate) in [
            ("pmc_corrupt_rate", self.pmc_corrupt_rate),
            ("actuation_reject_rate", self.actuation_reject_rate),
            ("dvfs_clamp_rate", self.dvfs_clamp_rate),
            ("power_glitch_rate", self.power_glitch_rate),
            ("core_fail_rate", self.core_fail_rate),
            ("core_repair_rate", self.core_repair_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig {
                    detail: format!("fault {label} = {rate} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// How a PMC sample was corrupted this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmcFaultKind {
    /// Every counter replaced with NaN.
    Nan,
    /// Every counter replaced with +∞.
    Inf,
    /// Every counter replaced with zero (a dropped read).
    Zero,
    /// The previous epoch's sample delivered again (a stuck collector).
    Stale,
}

/// What actually happened to one service's requested assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedAssignment {
    /// The cores the platform actually ran the service on this epoch.
    pub cores: Vec<CoreId>,
    /// The DVFS setting actually applied.
    pub freq: Frequency,
    /// The platform rejected the request and kept the previous assignment.
    pub rejected: bool,
    /// The requested DVFS setting was clamped down a ladder step.
    pub clamped: bool,
    /// Requested cores dropped because they were offline this epoch.
    pub cores_lost_offline: usize,
}

impl AppliedAssignment {
    /// An identity record: the request was applied verbatim.
    pub fn verbatim(cores: Vec<CoreId>, freq: Frequency) -> Self {
        AppliedAssignment {
            cores,
            freq,
            rejected: false,
            clamped: false,
            cores_lost_offline: 0,
        }
    }

    /// `true` when the applied assignment differs from the request.
    pub fn diverged(&self) -> bool {
        self.rejected || self.clamped || self.cores_lost_offline > 0
    }
}

/// Per-epoch telemetry-health summary attached to every
/// [`EpochReport`](crate::EpochReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryHealth {
    /// Per service: how the delivered PMC sample was corrupted, if at all.
    pub pmc_faults: Vec<Option<PmcFaultKind>>,
    /// How many epochs late the delivered PMC samples are.
    pub delayed_epochs: usize,
    /// The power reading glitched this epoch.
    pub power_glitched: bool,
    /// Cores offline this epoch.
    pub offline_cores: usize,
}

impl TelemetryHealth {
    /// A clean bill of health for `services` services.
    pub fn clean(services: usize) -> Self {
        TelemetryHealth {
            pmc_faults: vec![None; services],
            delayed_epochs: 0,
            power_glitched: false,
            offline_cores: 0,
        }
    }

    /// `true` when any telemetry channel is unreliable this epoch.
    pub fn degraded(&self) -> bool {
        self.delayed_epochs > 0
            || self.power_glitched
            || self.pmc_faults.iter().any(Option::is_some)
    }

    /// `true` when service `index`'s PMC sample is corrupted.
    pub fn service_degraded(&self, index: usize) -> bool {
        self.pmc_faults.get(index).is_some_and(Option::is_some)
    }
}

/// A deterministic fault schedule, driven by its own seeded RNG stream.
///
/// Install on a server with
/// [`Server::set_fault_plan`](crate::Server::set_fault_plan). Draws happen
/// in a fixed order each epoch (core health, then per-service actuation in
/// service order, then per-service telemetry, then power), so the same
/// seed yields the same fault sequence regardless of the manager's
/// decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Xoshiro256,
    offline: BTreeSet<CoreId>,
}

impl FaultPlan {
    /// Creates a plan from a configuration and a seed for its private RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid rates.
    pub fn new(config: FaultConfig, seed: u64) -> Result<Self, SimError> {
        config.validate()?;
        Ok(FaultPlan {
            config,
            rng: Xoshiro256::seed_from_u64(seed),
            offline: BTreeSet::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// `true` when at least one injector can fire.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Cores currently offline.
    pub fn offline_cores(&self) -> &BTreeSet<CoreId> {
        &self.offline
    }

    /// Epoch prologue: evolve the core-health state (at most one failure
    /// and one repair per epoch).
    pub(crate) fn begin_epoch(&mut self, total_cores: usize) {
        if self.config.core_repair_rate > 0.0
            && !self.offline.is_empty()
            && self.rng.next_bool(self.config.core_repair_rate)
        {
            let victims: Vec<CoreId> = self.offline.iter().copied().collect();
            let back = victims[self.rng.range_usize(0, victims.len())];
            self.offline.remove(&back);
        }
        if self.config.core_fail_rate > 0.0
            && self.offline.len()
                < self
                    .config
                    .max_offline_cores
                    .min(total_cores.saturating_sub(1))
            && self.rng.next_bool(self.config.core_fail_rate)
        {
            let online: Vec<CoreId> = (0..total_cores)
                .map(CoreId)
                .filter(|c| !self.offline.contains(c))
                .collect();
            if online.len() > 1 {
                let victim = online[self.rng.range_usize(0, online.len())];
                self.offline.insert(victim);
            }
        }
    }

    /// Resolves one service's requested assignment against this epoch's
    /// faults. `last_applied` is what actually ran the previous epoch (used
    /// when the request is rejected). A service that requested at least one
    /// core always keeps at least one, even if every requested core is
    /// offline.
    pub(crate) fn actuate(
        &mut self,
        requested_cores: &[CoreId],
        requested_freq: Frequency,
        last_applied: Option<&AppliedAssignment>,
        dvfs: &DvfsLadder,
    ) -> AppliedAssignment {
        let rejected = self.config.actuation_reject_rate > 0.0
            && self.rng.next_bool(self.config.actuation_reject_rate);
        let clamped =
            self.config.dvfs_clamp_rate > 0.0 && self.rng.next_bool(self.config.dvfs_clamp_rate);

        let (mut cores, mut freq) = if rejected {
            match last_applied {
                Some(prev) => (prev.cores.clone(), prev.freq),
                // Nothing to fall back to on the first epoch: the request
                // goes through (a reject against no prior state is a no-op).
                None => (requested_cores.to_vec(), requested_freq),
            }
        } else {
            (requested_cores.to_vec(), requested_freq)
        };

        if clamped {
            if let Ok(idx) = dvfs.index_of(freq) {
                if idx > 0 {
                    freq = dvfs.frequency_at(idx - 1).unwrap_or(freq);
                }
            }
        }

        let before = cores.len();
        if !self.offline.is_empty() {
            cores.retain(|c| !self.offline.contains(c));
            if cores.is_empty() && before > 0 {
                // Never strand a service with zero cores: the first
                // requested core is treated as still reachable.
                cores.push(requested_cores.first().copied().unwrap_or(CoreId(0)));
            }
        }
        AppliedAssignment {
            cores_lost_offline: before - cores.len().min(before),
            cores,
            freq,
            rejected: rejected && last_applied.is_some(),
            clamped,
        }
    }

    /// Possibly corrupts one service's PMC sample in place. `previous` is
    /// the sample the manager saw last epoch (for stale-repeat faults).
    pub(crate) fn corrupt_pmcs(
        &mut self,
        sample: &mut PmcSample,
        previous: &PmcSample,
    ) -> Option<PmcFaultKind> {
        if self.config.pmc_corrupt_rate <= 0.0 || !self.rng.next_bool(self.config.pmc_corrupt_rate)
        {
            return None;
        }
        let kind = match self.rng.range_usize(0, 4) {
            0 => PmcFaultKind::Nan,
            1 => PmcFaultKind::Inf,
            2 => PmcFaultKind::Zero,
            _ => PmcFaultKind::Stale,
        };
        let value = match kind {
            PmcFaultKind::Nan => f64::NAN,
            PmcFaultKind::Inf => f64::INFINITY,
            PmcFaultKind::Zero => 0.0,
            PmcFaultKind::Stale => {
                *sample = *previous;
                return Some(kind);
            }
        };
        *sample = PmcSample::from_array([value; NUM_COUNTERS]);
        Some(kind)
    }

    /// Possibly replaces the power-meter reading (zero or a 10x spike).
    /// Returns `(reading, glitched)`.
    pub(crate) fn glitch_power(&mut self, measured: f64) -> (f64, bool) {
        if self.config.power_glitch_rate <= 0.0
            || !self.rng.next_bool(self.config.power_glitch_rate)
        {
            return (measured, false);
        }
        let reading = if self.rng.next_bool(0.5) {
            0.0
        } else {
            measured * 10.0
        };
        (reading, true)
    }

    /// How many epochs late PMC telemetry arrives.
    pub(crate) fn telemetry_delay(&self) -> usize {
        self.config.telemetry_delay_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> DvfsLadder {
        DvfsLadder::default()
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let c = FaultConfig::default();
        assert!(!c.enabled());
        c.validate().unwrap();
        assert!(!FaultPlan::new(c, 0).unwrap().enabled());
    }

    #[test]
    fn invalid_rates_rejected() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = FaultConfig {
                pmc_corrupt_rate: bad,
                ..FaultConfig::default()
            };
            assert!(c.validate().is_err(), "rate {bad} should be rejected");
        }
    }

    #[test]
    fn same_seed_reproduces_fault_sequence() {
        let config = FaultConfig {
            pmc_corrupt_rate: 0.4,
            actuation_reject_rate: 0.3,
            dvfs_clamp_rate: 0.2,
            power_glitch_rate: 0.3,
            core_fail_rate: 0.3,
            core_repair_rate: 0.2,
            max_offline_cores: 4,
            ..FaultConfig::default()
        };
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(config.clone(), seed).unwrap();
            let cores: Vec<CoreId> = (0..8).map(CoreId).collect();
            let mut trace = Vec::new();
            let mut sample = PmcSample::from_array([1.0; NUM_COUNTERS]);
            let prev = PmcSample::from_array([2.0; NUM_COUNTERS]);
            let mut last = None;
            for _ in 0..50 {
                plan.begin_epoch(18);
                let applied = plan.actuate(&cores, ladder().max(), last.as_ref(), &ladder());
                let fault = plan.corrupt_pmcs(&mut sample, &prev);
                let (reading, glitched) = plan.glitch_power(100.0);
                trace.push((
                    applied.clone(),
                    fault,
                    reading.to_bits(),
                    glitched,
                    plan.offline_cores().len(),
                ));
                last = Some(applied);
            }
            trace
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should differ");
    }

    #[test]
    fn rejection_keeps_last_applied() {
        let config = FaultConfig {
            actuation_reject_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config, 1).unwrap();
        let first: Vec<CoreId> = (0..4).map(CoreId).collect();
        let a1 = plan.actuate(&first, ladder().max(), None, &ladder());
        // No prior state: the first request goes through un-rejected.
        assert!(!a1.rejected);
        assert_eq!(a1.cores, first);
        let second: Vec<CoreId> = (4..10).map(CoreId).collect();
        let a2 = plan.actuate(&second, ladder().min(), Some(&a1), &ladder());
        assert!(a2.rejected);
        assert_eq!(a2.cores, first, "rejected request keeps previous cores");
        assert_eq!(
            a2.freq,
            ladder().max(),
            "rejected request keeps previous freq"
        );
    }

    #[test]
    fn clamp_steps_down_one_dvfs_level() {
        let config = FaultConfig {
            dvfs_clamp_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config, 2).unwrap();
        let cores = vec![CoreId(0)];
        let a = plan.actuate(&cores, ladder().max(), None, &ladder());
        assert!(a.clamped);
        let max_idx = ladder().len() - 1;
        assert_eq!(a.freq, ladder().frequency_at(max_idx - 1).unwrap());
        // Already at the bottom: clamp is a no-op on frequency.
        let a = plan.actuate(&cores, ladder().min(), None, &ladder());
        assert_eq!(a.freq, ladder().min());
    }

    #[test]
    fn offline_cores_filtered_but_never_all() {
        let config = FaultConfig {
            core_fail_rate: 1.0,
            max_offline_cores: 18,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config, 3).unwrap();
        for _ in 0..40 {
            plan.begin_epoch(18);
        }
        // One failure per epoch, capped below the socket size.
        assert!(!plan.offline_cores().is_empty());
        assert!(plan.offline_cores().len() < 18);
        // A service whose every requested core is offline keeps one.
        let requested: Vec<CoreId> = plan.offline_cores().iter().copied().collect();
        let a = plan.actuate(&requested, ladder().max(), None, &ladder());
        assert!(!a.cores.is_empty());
    }

    #[test]
    fn pmc_corruption_covers_all_kinds() {
        let config = FaultConfig {
            pmc_corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config, 4).unwrap();
        let prev = PmcSample::from_array([7.0; NUM_COUNTERS]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let mut sample = PmcSample::from_array([1.0; NUM_COUNTERS]);
            let kind = plan.corrupt_pmcs(&mut sample, &prev).expect("rate 1.0");
            match kind {
                PmcFaultKind::Nan => assert!(sample.as_array()[0].is_nan()),
                PmcFaultKind::Inf => {
                    assert!(sample.as_array()[0].is_infinite());
                }
                PmcFaultKind::Zero => assert_eq!(sample.as_array()[0], 0.0),
                PmcFaultKind::Stale => assert_eq!(sample, prev),
            }
            seen.insert(format!("{kind:?}"));
        }
        assert_eq!(seen.len(), 4, "all four corruption kinds should occur");
    }

    #[test]
    fn power_glitch_zero_or_spike() {
        let config = FaultConfig {
            power_glitch_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config, 5).unwrap();
        for _ in 0..50 {
            let (reading, glitched) = plan.glitch_power(80.0);
            assert!(glitched);
            assert!(reading == 0.0 || (reading - 800.0).abs() < 1e-9);
        }
    }

    #[test]
    fn telemetry_health_flags() {
        let mut h = TelemetryHealth::clean(2);
        assert!(!h.degraded());
        assert!(!h.service_degraded(0));
        h.pmc_faults[1] = Some(PmcFaultKind::Nan);
        assert!(h.degraded());
        assert!(h.service_degraded(1));
        assert!(!h.service_degraded(0));
        let mut h = TelemetryHealth::clean(1);
        h.power_glitched = true;
        assert!(h.degraded());
        let mut h = TelemetryHealth::clean(1);
        h.delayed_epochs = 2;
        assert!(h.degraded());
    }
}
