//! Discrete-event multicore server simulator for the Twig reproduction.
//!
//! The paper evaluates Twig on a real dual-socket Xeon E5-2695v4 running
//! Tailbench services, measuring tail latency from service logs, power via
//! RAPL and performance counters via libpfm4. This crate substitutes that
//! testbed with a simulator exposing *exactly the same observables and
//! actuators* a user-space task manager sees:
//!
//! - **Actuators** — per-service core allocations and per-core DVFS settings
//!   ([`Assignment`], applied through [`Server::step`]); unused cores are
//!   parked at the lowest DVFS state.
//! - **Observables** — per-service p99 tail latency (from a queueing model
//!   of request processing), the 11 Table-I performance counters (from
//!   [`pmc`]), and noisy socket-level RAPL-style power (from [`PowerModel`]).
//!
//! The service models in [`catalog`] are calibrated so the qualitative
//! behaviours the paper's analysis relies on hold: CPU-bound work speeds up
//! with frequency, memory-bound work does not; colocated services contend
//! for memory bandwidth and cache capacity (Masstree is bandwidth-*sensitive*
//! while Moses is bandwidth-*hungry*); remapping cores incurs migration
//! penalties, so oscillating managers hurt their own tail latency.
//!
//! # Examples
//!
//! ```
//! use twig_sim::{catalog, Assignment, CoreId, Server, ServerConfig};
//!
//! # fn main() -> Result<(), twig_sim::SimError> {
//! let config = ServerConfig::default();
//! let max_freq = config.dvfs.max();
//! let mut server = Server::new(config, vec![catalog::masstree()], 42)?;
//! server.set_load_fraction(0, 0.5)?;
//! let assignment = Assignment::new((0..9).map(CoreId).collect(), max_freq);
//! let report = server.step(&[assignment])?;
//! assert!(report.services[0].p99_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cores;
mod error;
pub mod fault;
pub mod faultstore;
mod load;
pub mod pmc;
mod power;
mod queue;
mod server;
mod service;
pub mod timing;

pub mod catalog;

pub use cores::{CoreId, DvfsLadder, Frequency};
pub use error::SimError;
pub use fault::{AppliedAssignment, FaultConfig, FaultPlan, PmcFaultKind, TelemetryHealth};
pub use faultstore::{StoreFaultConfig, StoreFaultKind, StoreFaultPlan};
pub use load::LoadGenerator;
pub use pmc::{CounterId, PmcSample, NUM_COUNTERS};
pub use power::PowerModel;
pub use queue::{EpochQueueStats, ServiceQueue};
pub use server::{Assignment, CorePlan, EpochReport, Server, ServerConfig, ServiceEpoch};
pub use service::ServiceSpec;
pub use timing::{EpochTimings, TimingFaultConfig, TimingFaultPlan};
