use crate::fault::{AppliedAssignment, FaultPlan, TelemetryHealth};
use crate::pmc::{self, Activity, PmcSample};
use crate::queue::ServiceQueue;
use crate::timing::{EpochTimings, TimingFaultPlan};
use crate::{CoreId, DvfsLadder, Frequency, LoadGenerator, PowerModel, ServiceSpec, SimError};
use std::collections::{BTreeSet, VecDeque};
use twig_stats::rng::Xoshiro256;
use twig_telemetry::{Phase, Telemetry};

/// Platform configuration of the simulated socket.
///
/// Defaults model the paper's testbed: one 18-core Xeon E5-2695v4 socket
/// (the other socket runs the load clients, per the Tailbench loopback
/// methodology), DVFS from 1.2 to 2.0 GHz, and a 45 MiB LLC.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Number of physical cores available to services.
    pub cores: usize,
    /// The DVFS ladder.
    pub dvfs: DvfsLadder,
    /// Last-level-cache capacity in MiB.
    pub llc_mb: f64,
    /// Total-bandwidth utilisation above which memory contention sets in.
    pub bw_knee: f64,
    /// Fractional request slowdown per remapped core for the epoch
    /// following a core-allocation change (migration cost).
    pub migration_penalty: f64,
    /// Client-side request timeout in seconds: queued requests older than
    /// this are abandoned and counted as hard QoS violations. Bounds how
    /// long an under-provisioning mistake can poison the queue.
    pub request_timeout_s: f64,
    /// The socket power model.
    pub power: PowerModel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 18,
            dvfs: DvfsLadder::default(),
            llc_mb: 45.0,
            bw_knee: 0.5,
            migration_penalty: 0.12,
            request_timeout_s: 2.0,
            power: PowerModel::default(),
        }
    }
}

impl ServerConfig {
    /// Platform variant of the default socket: `cores` cores on `dvfs`,
    /// with the LLC scaled proportionally (2.5 MiB per core, matching
    /// the default 18-core / 45 MiB part). The heterogeneous-fleet
    /// constructor for cluster simulations.
    ///
    /// # Examples
    ///
    /// ```
    /// use twig_sim::{DvfsLadder, ServerConfig};
    ///
    /// let ladder = DvfsLadder::new(1200, 100, 7).unwrap();
    /// let cfg = ServerConfig::with_platform(12, ladder);
    /// assert_eq!(cfg.cores, 12);
    /// assert_eq!(cfg.llc_mb, 30.0);
    /// assert_eq!(cfg.dvfs.max().mhz(), 1800);
    /// cfg.validate().unwrap();
    /// ```
    pub fn with_platform(cores: usize, dvfs: DvfsLadder) -> Self {
        ServerConfig {
            cores,
            llc_mb: 2.5 * cores as f64,
            dvfs,
            ..ServerConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero cores, a non-positive
    /// LLC, a knee outside `[0, 1)` or a negative migration penalty.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig {
                detail: "zero cores".into(),
            });
        }
        if self.llc_mb <= 0.0 {
            return Err(SimError::InvalidConfig {
                detail: format!("llc {} MiB", self.llc_mb),
            });
        }
        if !(0.0..1.0).contains(&self.bw_knee) {
            return Err(SimError::InvalidConfig {
                detail: format!("bw knee {}", self.bw_knee),
            });
        }
        if self.migration_penalty < 0.0 {
            return Err(SimError::InvalidConfig {
                detail: format!("migration penalty {}", self.migration_penalty),
            });
        }
        if self.request_timeout_s <= 0.0 {
            return Err(SimError::InvalidConfig {
                detail: format!("request timeout {} s", self.request_timeout_s),
            });
        }
        Ok(())
    }
}

/// One service's resource request for the next epoch: a set of cores and a
/// DVFS setting. Produced by task managers, consumed by [`Server::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The cores the service should run on.
    pub cores: Vec<CoreId>,
    /// The requested DVFS setting for those cores.
    pub freq: Frequency,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(cores: Vec<CoreId>, freq: Frequency) -> Self {
        Assignment { cores, freq }
    }

    /// Convenience: the first `n` cores of the socket at `freq`.
    pub fn first_n(n: usize, freq: Frequency) -> Self {
        Assignment {
            cores: (0..n).map(CoreId).collect(),
            freq,
        }
    }

    /// Number of requested cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }
}

/// The resolved physical state of every core for one epoch: which services
/// share it (time-sliced) and at what frequency it runs.
///
/// When assignments overlap on a core, the core runs at the *highest*
/// requested frequency and is time-shared equally — the arbitration rule of
/// Section IV.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePlan {
    /// Per core: `None` if parked, otherwise the frequency and the sharing
    /// services (index, share).
    states: Vec<Option<CoreState>>,
}

#[derive(Debug, Clone, PartialEq)]
struct CoreState {
    freq: Frequency,
    claims: Vec<(usize, f64)>,
}

impl CorePlan {
    /// Resolves per-service assignments into physical core states.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCore`] for out-of-range cores and
    /// [`SimError::InvalidFrequency`] for frequencies off the ladder.
    pub fn from_assignments(
        assignments: &[Assignment],
        config: &ServerConfig,
    ) -> Result<Self, SimError> {
        let mut claimants: Vec<Vec<(usize, Frequency)>> = vec![Vec::new(); config.cores];
        for (svc, a) in assignments.iter().enumerate() {
            config.dvfs.index_of(a.freq)?;
            for &core in &a.cores {
                if core.index() >= config.cores {
                    return Err(SimError::UnknownCore {
                        core: core.index(),
                        count: config.cores,
                    });
                }
                claimants[core.index()].push((svc, a.freq));
            }
        }
        let states = claimants
            .into_iter()
            .map(|claims| {
                if claims.is_empty() {
                    return None;
                }
                let freq = claims.iter().map(|&(_, f)| f).max().expect("non-empty");
                let share = 1.0 / claims.len() as f64;
                Some(CoreState {
                    freq,
                    claims: claims.into_iter().map(|(svc, _)| (svc, share)).collect(),
                })
            })
            .collect();
        Ok(CorePlan { states })
    }

    /// `(cpu_rate, effective_cores, max_core_speed)` for one service:
    /// `cpu_rate = Σ share × f_rel`, `effective_cores = Σ share`.
    pub fn service_capacity(&self, svc: usize, dvfs: &DvfsLadder) -> (f64, f64, f64) {
        let mut cpu_rate = 0.0;
        let mut eff = 0.0;
        let mut max_speed: f64 = 0.0;
        for state in self.states.iter().flatten() {
            for &(s, share) in &state.claims {
                if s == svc {
                    let rel = dvfs.relative_speed(state.freq);
                    cpu_rate += share * rel;
                    eff += share;
                    max_speed = max_speed.max(rel * share);
                }
            }
        }
        (cpu_rate, eff, max_speed)
    }

    /// Number of active (non-parked) cores.
    pub fn active_cores(&self) -> usize {
        self.states.iter().filter(|s| s.is_some()).count()
    }
}

/// Per-service observables for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEpoch {
    /// Service name.
    pub name: String,
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Offered load as a fraction of the service's maximum load.
    pub load_fraction: f64,
    /// Measured 99th-percentile latency in milliseconds (the QoS metric).
    pub p99_ms: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Requests completed this epoch.
    pub completed: usize,
    /// Arrivals dropped due to backlog saturation.
    pub dropped: u64,
    /// Requests still queued at the epoch boundary.
    pub queue_len: usize,
    /// The 11 Table-I counters for this service this epoch.
    pub pmcs: PmcSample,
    /// Cores the service was mapped to.
    pub core_count: usize,
    /// The service's requested DVFS setting.
    pub freq: Frequency,
    /// Cores that changed in the allocation relative to the previous epoch.
    pub migrated_cores: usize,
}

impl ServiceEpoch {
    /// QoS tardiness: measured p99 over the target (violation when > 1).
    pub fn tardiness(&self, qos_ms: f64) -> f64 {
        self.p99_ms / qos_ms
    }
}

/// Everything a task manager observes after one decision epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Simulated time at the *start* of the epoch, in seconds.
    pub time_s: u64,
    /// Per-service observables.
    pub services: Vec<ServiceEpoch>,
    /// RAPL-style measured socket power (noisy), in watts.
    pub power_w: f64,
    /// Ground-truth socket power, in watts (for evaluation only).
    pub true_power_w: f64,
    /// Cumulative ground-truth energy since server creation, in joules.
    pub energy_j: f64,
    /// Total cores remapped across all services this epoch.
    pub migrations: usize,
    /// What the platform *actually applied* per service, which can diverge
    /// from the request under actuation faults (rejection, DVFS clamping,
    /// offline cores). Without a fault plan this echoes the request.
    pub actuation: Vec<AppliedAssignment>,
    /// Telemetry-health flags for this epoch (which readings were
    /// corrupted, delayed or glitched). Clean without a fault plan.
    pub telemetry: TelemetryHealth,
}

/// The simulated server socket hosting latency-critical services.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Server {
    config: ServerConfig,
    specs: Vec<ServiceSpec>,
    loads: Vec<LoadGenerator>,
    queues: Vec<ServiceQueue>,
    prev_cores: Vec<BTreeSet<CoreId>>,
    time_s: u64,
    energy_j: f64,
    rng: Xoshiro256,
    fault: Option<FaultPlan>,
    timing: Option<TimingFaultPlan>,
    timing_memo: Option<EpochTimings>,
    last_applied: Vec<Option<AppliedAssignment>>,
    last_pmcs: Vec<PmcSample>,
    pmc_history: Vec<VecDeque<PmcSample>>,
    telemetry: Telemetry,
}

impl Server {
    /// Creates a server hosting `specs`, with all load generators fixed at
    /// 50 % of each service's maximum load.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration or any
    /// service specification is invalid, or no services are given.
    pub fn new(config: ServerConfig, specs: Vec<ServiceSpec>, seed: u64) -> Result<Self, SimError> {
        config.validate()?;
        if specs.is_empty() {
            return Err(SimError::InvalidConfig {
                detail: "no services".into(),
            });
        }
        for s in &specs {
            s.validate()?;
        }
        let n = specs.len();
        Ok(Server {
            config,
            specs,
            loads: vec![LoadGenerator::default(); n],
            queues: vec![ServiceQueue::new(); n],
            prev_cores: vec![BTreeSet::new(); n],
            time_s: 0,
            energy_j: 0.0,
            rng: Xoshiro256::seed_from_u64(seed),
            fault: None,
            timing: None,
            timing_memo: None,
            last_applied: vec![None; n],
            last_pmcs: vec![PmcSample::zero(); n],
            pmc_history: vec![VecDeque::new(); n],
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: each [`step`](Self::step) then records
    /// the actuation phase timing, power/QoS gauges and fault-injection
    /// counters. Telemetry reads feed nothing back into the simulation, so
    /// outputs stay bit-identical to a run without it (the default is the
    /// inert [`Telemetry::disabled`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a fault plan. Faults draw from the plan's own RNG stream,
    /// so a plan with all rates zero (or clearing it again with
    /// [`clear_fault_plan`](Self::clear_fault_plan)) leaves the simulation
    /// bit-identical to a fault-free run.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Installs a timing-fault plan (see [`crate::timing`]). Timing faults
    /// draw from the plan's own RNG stream and never perturb the workload
    /// simulation — they exist for drivers that model the *manager's* epoch
    /// latency around [`step`](Self::step).
    pub fn set_timing_plan(&mut self, plan: TimingFaultPlan) {
        self.timing = Some(plan);
        self.timing_memo = None;
    }

    /// Removes any installed timing-fault plan.
    pub fn clear_timing_plan(&mut self) {
        self.timing = None;
        self.timing_memo = None;
    }

    /// The installed timing-fault plan, if any.
    pub fn timing_plan(&self) -> Option<&TimingFaultPlan> {
        self.timing.as_ref()
    }

    /// This epoch's drawn timings, or `None` when no plan is installed.
    ///
    /// The draw is memoized: however many times a driver consults it before
    /// the next [`step`](Self::step), the plan's RNG advances exactly once
    /// per epoch, keeping the timing sequence a function of the epoch index
    /// alone. `step` itself draws any unconsumed epoch, so the sequence
    /// stays aligned even for drivers that only consult it sometimes.
    pub fn epoch_timings(&mut self) -> Option<EpochTimings> {
        let plan = self.timing.as_mut()?;
        Some(*self.timing_memo.get_or_insert_with(|| plan.draw_epoch()))
    }

    /// The platform configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The hosted service specifications.
    pub fn specs(&self) -> &[ServiceSpec] {
        &self.specs
    }

    /// Current simulated time in seconds.
    pub fn time_s(&self) -> u64 {
        self.time_s
    }

    /// Cumulative ground-truth energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Socket power with all cores parked.
    pub fn idle_power_w(&self) -> f64 {
        self.config
            .power
            .socket_power_with_parked(&[], self.config.cores)
    }

    /// The stress-microbenchmark peak power used to normalise Twig's power
    /// reward (Section III-B2).
    pub fn peak_power_w(&self) -> f64 {
        self.config.power.stress_peak_power(self.config.cores)
    }

    /// Pins service `index` to a fixed load fraction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for a bad index and
    /// [`SimError::InvalidConfig`] for a fraction outside `[0, 1]`.
    pub fn set_load_fraction(&mut self, index: usize, fraction: f64) -> Result<(), SimError> {
        self.set_load_generator(index, LoadGenerator::fixed(fraction)?)
    }

    /// Installs a load generator for service `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for a bad index.
    pub fn set_load_generator(
        &mut self,
        index: usize,
        generator: LoadGenerator,
    ) -> Result<(), SimError> {
        if index >= self.specs.len() {
            return Err(SimError::UnknownService {
                index,
                count: self.specs.len(),
            });
        }
        self.loads[index] = generator;
        Ok(())
    }

    /// Swaps the service at `index` for a new one at runtime (the paper's
    /// "new, incoming service" scenario of the transfer-learning
    /// experiments). The queue is drained and the load generator kept.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownService`] for a bad index and
    /// [`SimError::InvalidConfig`] for an invalid spec.
    pub fn replace_service(&mut self, index: usize, spec: ServiceSpec) -> Result<(), SimError> {
        if index >= self.specs.len() {
            return Err(SimError::UnknownService {
                index,
                count: self.specs.len(),
            });
        }
        spec.validate()?;
        self.specs[index] = spec;
        self.queues[index].reset();
        self.prev_cores[index].clear();
        self.last_applied[index] = None;
        self.last_pmcs[index] = PmcSample::zero();
        self.pmc_history[index].clear();
        Ok(())
    }

    /// Advances the simulation by one decision epoch (1 simulated second),
    /// applying `assignments` (one per service) for its duration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AssignmentCount`] when the number of assignments
    /// is wrong, plus the errors of [`CorePlan::from_assignments`].
    pub fn step(&mut self, assignments: &[Assignment]) -> Result<EpochReport, SimError> {
        if assignments.len() != self.specs.len() {
            return Err(SimError::AssignmentCount {
                got: assignments.len(),
                want: self.specs.len(),
            });
        }
        let mut stopwatch = self.telemetry.stopwatch();
        // Actuation stage: resolve what the platform actually applies. The
        // fault plan can reject a request (keeping the previous applied
        // assignment), clamp its DVFS setting or drop offline cores; with
        // no (or an all-zero) plan the request is applied verbatim and no
        // RNG stream is touched.
        CorePlan::from_assignments(assignments, &self.config)?; // validate request
        let faults_on = self.fault.as_ref().is_some_and(FaultPlan::enabled);
        let actuation: Vec<AppliedAssignment> = if faults_on {
            let plan = self.fault.as_mut().expect("fault plan present");
            plan.begin_epoch(self.config.cores);
            assignments
                .iter()
                .enumerate()
                .map(|(svc, a)| {
                    plan.actuate(
                        &a.cores,
                        a.freq,
                        self.last_applied[svc].as_ref(),
                        &self.config.dvfs,
                    )
                })
                .collect()
        } else {
            assignments
                .iter()
                .map(|a| AppliedAssignment::verbatim(a.cores.clone(), a.freq))
                .collect()
        };
        let applied: Vec<Assignment> = actuation
            .iter()
            .map(|a| Assignment::new(a.cores.clone(), a.freq))
            .collect();
        let assignments = &applied[..];

        let plan = CorePlan::from_assignments(assignments, &self.config)?;
        let t0 = self.time_s as f64;
        let t1 = t0 + 1.0;

        // Offered loads for this epoch.
        let fractions: Vec<f64> = self
            .loads
            .iter()
            .map(|g| g.fraction_at(self.time_s).clamp(0.0, 1.0))
            .collect();
        let rates: Vec<f64> = fractions
            .iter()
            .zip(&self.specs)
            .map(|(f, s)| f * s.max_load_rps)
            .collect();

        // Shared-resource pressure from all *active* services.
        let total_bw: f64 = self
            .specs
            .iter()
            .zip(&fractions)
            .zip(assignments)
            .filter(|((_, _), a)| !a.cores.is_empty())
            .map(|((s, f), _)| s.bw_demand_frac * f)
            .sum();
        let bw_pressure = ((total_bw - self.config.bw_knee) / (1.0 - self.config.bw_knee)).max(0.0);
        let total_cache: f64 = self
            .specs
            .iter()
            .zip(&fractions)
            .zip(assignments)
            .filter(|((_, f), a)| **f > 0.0 && !a.cores.is_empty())
            .map(|((s, _), _)| s.cache_mb)
            .sum();
        let cache_pressure = (total_cache / self.config.llc_mb - 1.0).max(0.0);

        // Migration accounting.
        let mut migrated = Vec::with_capacity(self.specs.len());
        for (svc, a) in assignments.iter().enumerate() {
            let new: BTreeSet<CoreId> = a.cores.iter().copied().collect();
            let changed = new.symmetric_difference(&self.prev_cores[svc]).count();
            migrated.push(changed);
            self.prev_cores[svc] = new;
        }

        // Per-service queue simulation.
        let mut service_epochs = Vec::with_capacity(self.specs.len());
        let mut busy_fracs = vec![0.0; self.specs.len()];
        let mut telemetry = TelemetryHealth::clean(self.specs.len());
        for svc in 0..self.specs.len() {
            let spec = &self.specs[svc];
            let (cpu_rate, eff_cores, max_speed) = plan.service_capacity(svc, &self.config.dvfs);
            let mut contention =
                1.0 + spec.bw_sensitivity * bw_pressure + spec.cache_sensitivity * cache_pressure;
            if migrated[svc] > 0 && !assignments[svc].cores.is_empty() {
                let frac = migrated[svc] as f64 / assignments[svc].cores.len().max(1) as f64;
                contention *= 1.0 + self.config.migration_penalty * frac.min(1.0);
            }
            let duration_ms = spec.request_duration_ms(cpu_rate, eff_cores, max_speed, contention);
            let stats = self.queues[svc].run_epoch_with_timeout(
                t0,
                t1,
                rates[svc],
                duration_ms,
                spec.demand_cv,
                self.config.request_timeout_s,
                &mut self.rng,
            );
            busy_fracs[svc] = stats.busy_s;

            // Tail latency, folding drops and client timeouts in as hard
            // misses.
            let mut latencies = stats.latencies_ms.clone();
            let drop_count = (stats.dropped as usize).min(5000);
            latencies.extend(std::iter::repeat_n(spec.qos_ms * 100.0, drop_count));
            let timeout_count = (stats.timed_out as usize).min(5000);
            latencies.extend(std::iter::repeat_n(
                self.config.request_timeout_s * 1000.0,
                timeout_count,
            ));
            let (p99, mean) = if latencies.is_empty() {
                if stats.queue_len > 0 {
                    // Nothing completed but work is waiting: report the age
                    // of the queue head as the observed tail.
                    let stuck = (t1 - (t0 - stats.queue_len as f64 / rates[svc].max(1.0))) * 1000.0;
                    (stuck.max(spec.qos_ms * 10.0), 0.0)
                } else {
                    (0.0, 0.0)
                }
            } else {
                let p99 =
                    twig_stats::percentile(&mut latencies, 99.0).expect("non-empty latency sample");
                let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
                (p99, mean)
            };

            // Counter synthesis from realised activity.
            let mix_cpu = spec.work_cpu_ms / spec.total_work_ms();
            let work_done_ms = stats.completed as f64 * spec.total_work_ms();
            let activity = Activity {
                weighted_busy_core_s: stats.busy_s * cpu_rate,
                busy_core_s: stats.busy_s * eff_cores,
                cpu_work_ms: work_done_ms * mix_cpu,
                mem_work_ms: work_done_ms * (1.0 - mix_cpu),
                cache_pressure,
                clock_ghz: assignments[svc].freq.ghz(),
            };
            let fresh = pmc::synthesize(spec, &activity, &mut self.rng);

            // Telemetry stage: the manager sees the fault plan's view of
            // the counters — possibly delayed by k epochs, possibly
            // corrupted (NaN/Inf/zero/stale). Ground-truth simulation state
            // is never touched.
            let pmcs = if faults_on {
                let delay = self
                    .fault
                    .as_ref()
                    .expect("fault plan present")
                    .telemetry_delay();
                let history = &mut self.pmc_history[svc];
                history.push_back(fresh);
                while history.len() > delay + 1 {
                    history.pop_front();
                }
                telemetry.delayed_epochs = history.len() - 1;
                let mut delivered = *history.front().expect("history non-empty");
                let previous = self.last_pmcs[svc];
                telemetry.pmc_faults[svc] = self
                    .fault
                    .as_mut()
                    .expect("fault plan present")
                    .corrupt_pmcs(&mut delivered, &previous);
                self.last_pmcs[svc] = delivered;
                delivered
            } else {
                fresh
            };

            service_epochs.push(ServiceEpoch {
                name: spec.name.clone(),
                offered_rps: rates[svc],
                load_fraction: fractions[svc],
                p99_ms: p99,
                mean_ms: mean,
                completed: stats.completed,
                dropped: stats.dropped + stats.timed_out,
                queue_len: stats.queue_len,
                pmcs,
                core_count: assignments[svc].core_count(),
                freq: assignments[svc].freq,
                migrated_cores: migrated[svc],
            });
        }

        // Power: each active core's utilisation is the share-weighted busy
        // fraction of the services on it.
        let mut active = Vec::new();
        for state in plan.states.iter().flatten() {
            let util: f64 = state
                .claims
                .iter()
                .map(|&(svc, share)| share * busy_fracs[svc])
                .sum();
            active.push((state.freq, util.clamp(0.0, 1.0)));
        }
        let truth = self
            .config
            .power
            .socket_power_with_parked(&active, self.config.cores);
        let mut measured = self.config.power.rapl_reading(truth, &mut self.rng);
        if faults_on {
            let plan = self.fault.as_mut().expect("fault plan present");
            let (reading, glitched) = plan.glitch_power(measured);
            measured = reading;
            telemetry.power_glitched = glitched;
            telemetry.offline_cores = plan.offline_cores().len();
        }
        self.energy_j += truth; // 1-second epoch

        for (svc, applied) in actuation.iter().enumerate() {
            self.last_applied[svc] = Some(applied.clone());
        }
        let report = EpochReport {
            time_s: self.time_s,
            services: service_epochs,
            power_w: measured,
            true_power_w: truth,
            energy_j: self.energy_j,
            migrations: migrated.iter().sum(),
            actuation,
            telemetry,
        };
        self.record_epoch_telemetry(&report, stopwatch.lap_ms());
        self.time_s += 1;
        // Close out this epoch's timing draw: if the driver never consulted
        // it, draw (and discard) it now so the timing stream advances once
        // per epoch no matter what; either way the memo resets.
        if self.timing_memo.take().is_none() {
            if let Some(plan) = self.timing.as_mut() {
                plan.draw_epoch();
            }
        }
        Ok(report)
    }

    /// Feeds one epoch's observables into the attached telemetry handle.
    /// No-op (and allocation-free) when telemetry is disabled.
    fn record_epoch_telemetry(&self, report: &EpochReport, step_ms: f64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let tl = &self.telemetry;
        tl.phase_add(report.time_s, Phase::Actuation, step_ms);
        tl.counter_add("sim.epochs", 1);
        tl.counter_add("sim.migrations", report.migrations as u64);
        tl.gauge_set("sim.power_w", report.power_w);
        tl.gauge_set("sim.true_power_w", report.true_power_w);
        tl.gauge_set("sim.energy_j", report.energy_j);
        tl.record("sim.power_w", report.true_power_w);
        for (svc, epoch) in report.services.iter().enumerate() {
            tl.record(&format!("sim.p99_ms.{}", epoch.name), epoch.p99_ms);
            tl.gauge_set(&format!("sim.load.{}", epoch.name), epoch.load_fraction);
            tl.counter_add(&format!("sim.dropped.{}", epoch.name), epoch.dropped);
            let qos = self.specs[svc].qos_ms;
            if epoch.p99_ms > qos {
                tl.counter_add(&format!("sim.qos_violations.{}", epoch.name), 1);
            }
        }
        // Fault-injection events, as seen by the platform this epoch.
        for applied in &report.actuation {
            if applied.rejected {
                tl.counter_add("fault.actuation_rejected", 1);
            }
            if applied.clamped {
                tl.counter_add("fault.dvfs_clamped", 1);
            }
            tl.counter_add(
                "fault.cores_lost_offline",
                applied.cores_lost_offline as u64,
            );
        }
        let pmc_faults = report
            .telemetry
            .pmc_faults
            .iter()
            .filter(|f| f.is_some())
            .count();
        tl.counter_add("fault.pmc_corruptions", pmc_faults as u64);
        if report.telemetry.power_glitched {
            tl.counter_add("fault.power_glitches", 1);
        }
        tl.gauge_set("fault.offline_cores", report.telemetry.offline_cores as f64);
        tl.gauge_set(
            "fault.delayed_epochs",
            report.telemetry.delayed_epochs as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn max_freq() -> Frequency {
        ServerConfig::default().dvfs.max()
    }

    fn full_assignment(cores: usize) -> Assignment {
        Assignment::first_n(cores, max_freq())
    }

    fn run(server: &mut Server, assignments: &[Assignment], epochs: usize) -> Vec<EpochReport> {
        (0..epochs)
            .map(|_| server.step(assignments).unwrap())
            .collect()
    }

    #[test]
    fn single_service_meets_qos_at_max_load_full_alloc() {
        for spec in catalog::tailbench() {
            let name = spec.name.clone();
            let qos = spec.qos_ms;
            let mut server = Server::new(ServerConfig::default(), vec![spec], 1).unwrap();
            server.set_load_fraction(0, 1.0).unwrap();
            let reports = run(&mut server, &[full_assignment(18)], 60);
            // Skip warmup, average p99 over the tail.
            let p99s: Vec<f64> = reports[20..].iter().map(|r| r.services[0].p99_ms).collect();
            let mean_p99 = p99s.iter().sum::<f64>() / p99s.len() as f64;
            assert!(
                mean_p99 <= qos,
                "{name}: mean p99 {mean_p99:.3} ms > target {qos} ms at max load"
            );
        }
    }

    #[test]
    fn overload_violates_qos() {
        // 18 cores at max DVFS cannot sustain 1.4x the calibrated max load.
        let spec = catalog::masstree();
        let qos = spec.qos_ms;
        let mut spec_overloaded = spec;
        spec_overloaded.max_load_rps *= 1.4;
        let mut server = Server::new(ServerConfig::default(), vec![spec_overloaded], 2).unwrap();
        server.set_load_fraction(0, 1.0).unwrap();
        let reports = run(&mut server, &[full_assignment(18)], 60);
        let tail_mean: f64 = reports[30..]
            .iter()
            .map(|r| r.services[0].p99_ms)
            .sum::<f64>()
            / 30.0;
        assert!(tail_mean > qos, "p99 {tail_mean} should exceed {qos}");
    }

    #[test]
    fn fewer_cores_increase_latency() {
        let spec = catalog::xapian();
        let mut server = Server::new(ServerConfig::default(), vec![spec], 3).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let big = run(&mut server, &[full_assignment(18)], 40);
        let p99_big: f64 = big[10..].iter().map(|r| r.services[0].p99_ms).sum::<f64>() / 30.0;
        let small = run(&mut server, &[full_assignment(4)], 40);
        let p99_small: f64 = small[10..]
            .iter()
            .map(|r| r.services[0].p99_ms)
            .sum::<f64>()
            / 30.0;
        assert!(
            p99_small > p99_big,
            "4 cores ({p99_small:.2} ms) should be slower than 18 ({p99_big:.2} ms)"
        );
    }

    #[test]
    fn lower_frequency_increases_latency_and_saves_power() {
        let spec = catalog::img_dnn();
        let cfg = ServerConfig::default();
        let f_lo = cfg.dvfs.min();
        let mut server = Server::new(cfg, vec![spec], 4).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let fast = run(&mut server, &[full_assignment(10)], 40);
        let slow = run(&mut server, &[Assignment::first_n(10, f_lo)], 40);
        let p99 =
            |rs: &[EpochReport]| rs[10..].iter().map(|r| r.services[0].p99_ms).sum::<f64>() / 30.0;
        let pw = |rs: &[EpochReport]| rs[10..].iter().map(|r| r.true_power_w).sum::<f64>() / 30.0;
        assert!(p99(&slow) > p99(&fast));
        assert!(pw(&slow) < pw(&fast));
    }

    #[test]
    fn colocation_interference_hurts_sensitive_service() {
        // Masstree alone vs masstree colocated with bandwidth-hungry moses.
        let cfg = ServerConfig::default();
        let f = cfg.dvfs.max();
        let mut solo = Server::new(cfg.clone(), vec![catalog::masstree()], 5).unwrap();
        solo.set_load_fraction(0, 0.6).unwrap();
        let solo_assign = vec![Assignment::first_n(9, f)];
        let solo_reports = run(&mut solo, &solo_assign, 40);

        let mut colo = Server::new(cfg, vec![catalog::masstree(), catalog::moses()], 5).unwrap();
        colo.set_load_fraction(0, 0.6).unwrap();
        colo.set_load_fraction(1, 0.9).unwrap();
        let colo_assign = vec![
            Assignment::first_n(9, f),
            Assignment::new((9..18).map(CoreId).collect(), f),
        ];
        let colo_reports = run(&mut colo, &colo_assign, 40);

        let p99 =
            |rs: &[EpochReport]| rs[10..].iter().map(|r| r.services[0].p99_ms).sum::<f64>() / 30.0;
        assert!(
            p99(&colo_reports) > p99(&solo_reports) * 1.1,
            "colocated {:.3} vs solo {:.3}",
            p99(&colo_reports),
            p99(&solo_reports)
        );
    }

    #[test]
    fn overlapping_assignments_time_share() {
        let cfg = ServerConfig::default();
        let plan = CorePlan::from_assignments(
            &[
                Assignment::first_n(4, Frequency::from_mhz(1200)),
                Assignment::first_n(4, Frequency::from_mhz(2000)),
            ],
            &cfg,
        )
        .unwrap();
        // Both services get half of each core; the core runs at max request.
        let (rate0, eff0, _) = plan.service_capacity(0, &cfg.dvfs);
        let (rate1, eff1, _) = plan.service_capacity(1, &cfg.dvfs);
        assert!((eff0 - 2.0).abs() < 1e-9);
        assert!((eff1 - 2.0).abs() < 1e-9);
        // Shared cores run at 2.0 GHz (the max of the requests).
        assert!((rate0 - 2.0).abs() < 1e-9);
        assert!((rate1 - 2.0).abs() < 1e-9);
        assert_eq!(plan.active_cores(), 4);
    }

    #[test]
    fn migrations_counted_and_penalised() {
        let spec = catalog::masstree();
        let mut server = Server::new(ServerConfig::default(), vec![spec], 6).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let a1 = Assignment::first_n(6, max_freq());
        let a2 = Assignment::new((6..12).map(CoreId).collect(), max_freq());
        let r1 = server.step(std::slice::from_ref(&a1)).unwrap();
        assert_eq!(r1.migrations, 6); // cold start counts as placement
        let r2 = server.step(std::slice::from_ref(&a1)).unwrap();
        assert_eq!(r2.migrations, 0);
        let r3 = server.step(&[a2]).unwrap();
        assert_eq!(r3.migrations, 12); // 6 removed + 6 added
        let _ = r3;
    }

    #[test]
    fn power_scales_with_allocation() {
        let spec = catalog::moses();
        let mut server = Server::new(ServerConfig::default(), vec![spec], 7).unwrap();
        server.set_load_fraction(0, 0.8).unwrap();
        let many = run(&mut server, &[full_assignment(18)], 20);
        let few = run(
            &mut server,
            &[Assignment::first_n(6, Frequency::from_mhz(1400))],
            20,
        );
        let pw = |rs: &[EpochReport]| rs[5..].iter().map(|r| r.true_power_w).sum::<f64>() / 15.0;
        assert!(pw(&few) < pw(&many));
        // Energy is cumulative and increasing.
        assert!(few.last().unwrap().energy_j > many.last().unwrap().energy_j);
    }

    #[test]
    fn report_contains_pmcs_and_rates() {
        let mut server = Server::new(ServerConfig::default(), vec![catalog::xapian()], 8).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let reports = run(&mut server, &[full_assignment(18)], 5);
        let last = &reports[4];
        let svc = &last.services[0];
        assert_eq!(svc.name, "xapian");
        assert!((svc.offered_rps - 500.0).abs() < 1e-9);
        assert!(svc.pmcs[crate::CounterId::InstructionRetired] > 0.0);
        assert!(svc.completed > 300);
        assert_eq!(last.time_s, 4);
    }

    #[test]
    fn error_paths() {
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::masstree()], 9).unwrap();
        assert!(server.step(&[]).is_err());
        assert!(server
            .step(&[Assignment::new(vec![CoreId(40)], max_freq())])
            .is_err());
        assert!(server
            .step(&[Assignment::new(vec![CoreId(0)], Frequency::from_mhz(1250))])
            .is_err());
        assert!(server.set_load_fraction(3, 0.5).is_err());
        assert!(server.set_load_fraction(0, 1.5).is_err());
        assert!(Server::new(ServerConfig::default(), vec![], 0).is_err());
    }

    #[test]
    fn replace_service_resets_queue() {
        let mut server = Server::new(
            ServerConfig::default(),
            vec![catalog::moses(), catalog::masstree()],
            10,
        )
        .unwrap();
        server.set_load_fraction(0, 0.9).unwrap();
        // Starve service 0 to build a queue.
        let starve = vec![
            Assignment::new(vec![], max_freq()),
            Assignment::first_n(2, max_freq()),
        ];
        for _ in 0..5 {
            server.step(&starve).unwrap();
        }
        server.replace_service(0, catalog::xapian()).unwrap();
        assert_eq!(server.specs()[0].name, "xapian");
        let r = server
            .step(&[
                full_assignment(9),
                Assignment::new((9..12).map(CoreId).collect(), max_freq()),
            ])
            .unwrap();
        // Queue was drained on replacement.
        assert!(r.services[0].queue_len < 1000);
    }

    #[test]
    fn disabled_fault_plan_is_bit_identical() {
        use crate::fault::{FaultConfig, FaultPlan};
        let run = |with_plan: bool| {
            let mut server =
                Server::new(ServerConfig::default(), vec![catalog::masstree()], 13).unwrap();
            if with_plan {
                server.set_fault_plan(FaultPlan::new(FaultConfig::default(), 99).unwrap());
            }
            server.set_load_fraction(0, 0.6).unwrap();
            run_epochs(&mut server, 20)
        };
        fn run_epochs(server: &mut Server, epochs: usize) -> Vec<(u64, u64, u64)> {
            (0..epochs)
                .map(|_| {
                    let r = server
                        .step(&[Assignment::first_n(9, ServerConfig::default().dvfs.max())])
                        .unwrap();
                    (
                        r.services[0].p99_ms.to_bits(),
                        r.power_w.to_bits(),
                        r.services[0].pmcs.as_array()[0].to_bits(),
                    )
                })
                .collect()
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn actuation_faults_reported_and_applied() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::masstree()], 14).unwrap();
        server.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    actuation_reject_rate: 1.0,
                    ..FaultConfig::default()
                },
                3,
            )
            .unwrap(),
        );
        server.set_load_fraction(0, 0.5).unwrap();
        let a1 = Assignment::first_n(6, max_freq());
        let r1 = server.step(std::slice::from_ref(&a1)).unwrap();
        // First epoch: no prior applied state, so the request goes through.
        assert!(!r1.actuation[0].rejected);
        assert_eq!(r1.services[0].core_count, 6);
        // Every later request is rejected; the platform stays on epoch 1's
        // applied assignment, and the report says so.
        let a2 = Assignment::new((10..18).map(CoreId).collect(), max_freq());
        let r2 = server.step(&[a2]).unwrap();
        assert!(r2.actuation[0].rejected);
        assert_eq!(
            r2.actuation[0].cores,
            (0..6).map(CoreId).collect::<Vec<_>>()
        );
        assert_eq!(r2.services[0].core_count, 6);
        assert_eq!(r2.migrations, 0, "rejected remap causes no migration");
    }

    #[test]
    fn pmc_corruption_surfaces_in_telemetry_health() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::masstree()], 15).unwrap();
        server.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    pmc_corrupt_rate: 1.0,
                    ..FaultConfig::default()
                },
                4,
            )
            .unwrap(),
        );
        server.set_load_fraction(0, 0.5).unwrap();
        for _ in 0..10 {
            let r = server.step(&[full_assignment(9)]).unwrap();
            assert!(r.telemetry.degraded());
            assert!(r.telemetry.service_degraded(0));
            assert!(r.telemetry.pmc_faults[0].is_some());
        }
    }

    #[test]
    fn telemetry_delay_serves_old_samples() {
        use crate::fault::{FaultConfig, FaultPlan};
        // Two servers, same workload seed: one with a 3-epoch telemetry
        // delay. The delayed server's epoch-t PMCs must equal the fresh
        // server's epoch-(t-3) PMCs.
        let mut fresh = Server::new(ServerConfig::default(), vec![catalog::xapian()], 16).unwrap();
        let mut delayed =
            Server::new(ServerConfig::default(), vec![catalog::xapian()], 16).unwrap();
        delayed.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    telemetry_delay_epochs: 3,
                    ..FaultConfig::default()
                },
                5,
            )
            .unwrap(),
        );
        fresh.set_load_fraction(0, 0.5).unwrap();
        delayed.set_load_fraction(0, 0.5).unwrap();
        let a = [full_assignment(9)];
        let fresh_pmcs: Vec<_> = (0..10)
            .map(|_| fresh.step(&a).unwrap().services[0].pmcs)
            .collect();
        let delayed_reports: Vec<_> = (0..10).map(|_| delayed.step(&a).unwrap()).collect();
        for t in 3..10 {
            assert_eq!(delayed_reports[t].services[0].pmcs, fresh_pmcs[t - 3]);
            assert_eq!(delayed_reports[t].telemetry.delayed_epochs, 3);
        }
    }

    #[test]
    fn offline_cores_never_strand_a_service() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut server = Server::new(ServerConfig::default(), vec![catalog::moses()], 17).unwrap();
        server.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    core_fail_rate: 0.8,
                    max_offline_cores: 17,
                    ..FaultConfig::default()
                },
                6,
            )
            .unwrap(),
        );
        server.set_load_fraction(0, 0.5).unwrap();
        for _ in 0..40 {
            let r = server.step(&[full_assignment(18)]).unwrap();
            assert!(r.services[0].core_count >= 1);
            assert_eq!(
                r.services[0].core_count + r.actuation[0].cores_lost_offline,
                18
            );
        }
    }

    #[test]
    fn power_glitch_leaves_truth_untouched() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::img_dnn()], 18).unwrap();
        server.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    power_glitch_rate: 1.0,
                    ..FaultConfig::default()
                },
                7,
            )
            .unwrap(),
        );
        server.set_load_fraction(0, 0.5).unwrap();
        let mut last_energy = 0.0;
        for _ in 0..10 {
            let r = server.step(&[full_assignment(9)]).unwrap();
            assert!(r.telemetry.power_glitched);
            assert!(r.power_w == 0.0 || r.power_w > r.true_power_w * 2.0);
            assert!(r.true_power_w > 0.0, "ground truth survives the glitch");
            assert!(r.energy_j > last_energy, "energy accounting uses truth");
            last_energy = r.energy_j;
        }
    }

    #[test]
    fn epoch_timings_drawn_once_per_epoch_and_aligned() {
        let config = crate::timing::TimingFaultConfig {
            learn_chunk_base_ms: 5.0,
            learn_spike_rate: 0.5,
            learn_spike_ms: 100.0,
            clock_jitter_ms: 30.0,
            ..crate::timing::TimingFaultConfig::default()
        };
        // Reference: the raw per-epoch draw sequence from an identical plan.
        let mut reference = TimingFaultPlan::new(config.clone(), 77).unwrap();
        let expected: Vec<EpochTimings> = (0..6).map(|_| reference.draw_epoch()).collect();

        let spec = catalog::masstree();
        let mut server = Server::new(ServerConfig::default(), vec![spec], 9).unwrap();
        assert!(server.epoch_timings().is_none(), "no plan installed yet");
        server.set_timing_plan(TimingFaultPlan::new(config, 77).unwrap());
        assert!(server.timing_plan().is_some());
        let a = [full_assignment(18)];
        for (epoch, want) in expected.iter().enumerate() {
            match epoch {
                // Consulted repeatedly: memoized to one draw.
                0 | 3 => {
                    let first = server.epoch_timings().unwrap();
                    assert_eq!(first, server.epoch_timings().unwrap());
                    assert_eq!(first, *want, "epoch {epoch} diverged");
                }
                // Consulted once.
                1 | 4 => assert_eq!(server.epoch_timings().unwrap(), *want),
                // Never consulted: step() must burn the draw to keep the
                // stream aligned with the epoch index.
                _ => {}
            }
            server.step(&a).unwrap();
        }
        // Workload outputs are independent of the timing plan entirely.
        server.clear_timing_plan();
        assert!(server.epoch_timings().is_none());
    }

    #[test]
    fn timing_plan_never_perturbs_the_workload() {
        let run_epochs = |with_plan: bool| {
            let spec = catalog::masstree();
            let mut server = Server::new(ServerConfig::default(), vec![spec], 4).unwrap();
            server.set_load_fraction(0, 0.7).unwrap();
            if with_plan {
                server.set_timing_plan(
                    TimingFaultPlan::new(
                        crate::timing::TimingFaultConfig {
                            pmc_base_ms: 50.0,
                            pmc_spike_rate: 0.9,
                            pmc_spike_ms: 2000.0,
                            clock_stuck_rate: 0.5,
                            ..crate::timing::TimingFaultConfig::default()
                        },
                        123,
                    )
                    .unwrap(),
                );
            }
            run(&mut server, &[full_assignment(12)], 20)
                .iter()
                .map(|r| (r.services[0].p99_ms.to_bits(), r.power_w.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run_epochs(false),
            run_epochs(true),
            "timing faults must not touch the workload stream"
        );
    }

    #[test]
    fn zero_load_reports_zero_latency() {
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::img_dnn()], 11).unwrap();
        server.set_load_fraction(0, 0.0).unwrap();
        let r = server.step(&[full_assignment(4)]).unwrap();
        assert_eq!(r.services[0].p99_ms, 0.0);
        assert_eq!(r.services[0].completed, 0);
    }
}
