//! Calibrated service models for the paper's workloads.
//!
//! The four evaluation services come from Tailbench (Table II gives their
//! maximum load and 99th-percentile QoS target on the paper's platform);
//! Memcached and Web-Search are the two motivation workloads of Figure 1.
//!
//! The request-cost parameters are calibrated so that, on the default
//! 18-core socket at the highest DVFS setting, each service sustains its
//! Table II maximum load at roughly 80 % utilisation while meeting its QoS
//! target — and violates it when pushed meaningfully beyond. The
//! interference parameters encode the qualitative behaviour the paper
//! describes: Masstree barely uses memory bandwidth but is extremely
//! sensitive to interference on it, Moses is cache- and bandwidth-hungry,
//! Img-dnn is compute-bound and frequency-sensitive.

use crate::ServiceSpec;

/// Masstree: in-memory key-value store. 2 400 RPS, 1.39 ms QoS (Table II).
/// Low bandwidth demand, very high bandwidth sensitivity (Section V-B1).
pub fn masstree() -> ServiceSpec {
    ServiceSpec {
        name: "masstree".into(),
        max_load_rps: 2400.0,
        qos_ms: 1.39,
        work_cpu_ms: 1.43,
        work_mem_ms: 0.58,
        serial_frac: 0.05,
        demand_cv: 0.45,
        bw_demand_frac: 0.25,
        bw_sensitivity: 2.5,
        cache_mb: 16.0,
        cache_sensitivity: 1.5,
        instructions_per_ms: 2.6e6,
        branch_frac: 0.18,
        branch_miss_rate: 0.035,
        llc_miss_per_mem_ms: 9.0e4,
        l1d_per_instr: 0.34,
        l1i_per_instr: 0.95,
        uops_per_instr: 1.25,
    }
}

/// Xapian: full-text search engine. 1 000 RPS, 3.71 ms QoS (Table II).
pub fn xapian() -> ServiceSpec {
    ServiceSpec {
        name: "xapian".into(),
        max_load_rps: 1000.0,
        qos_ms: 3.71,
        work_cpu_ms: 2.86,
        work_mem_ms: 1.20,
        serial_frac: 0.06,
        demand_cv: 0.80,
        bw_demand_frac: 0.35,
        bw_sensitivity: 1.0,
        cache_mb: 24.0,
        cache_sensitivity: 0.8,
        instructions_per_ms: 2.2e6,
        branch_frac: 0.22,
        branch_miss_rate: 0.05,
        llc_miss_per_mem_ms: 1.3e5,
        l1d_per_instr: 0.38,
        l1i_per_instr: 1.0,
        uops_per_instr: 1.3,
    }
}

/// Moses: statistical machine translation. 2 800 RPS, 6.04 ms QoS
/// (Table II). High cache-capacity and memory-bandwidth demand.
pub fn moses() -> ServiceSpec {
    ServiceSpec {
        name: "moses".into(),
        max_load_rps: 2800.0,
        qos_ms: 6.04,
        work_cpu_ms: 1.43,
        work_mem_ms: 1.07,
        serial_frac: 0.04,
        demand_cv: 0.90,
        bw_demand_frac: 0.70,
        bw_sensitivity: 0.7,
        cache_mb: 40.0,
        cache_sensitivity: 0.6,
        instructions_per_ms: 1.8e6,
        branch_frac: 0.20,
        branch_miss_rate: 0.06,
        llc_miss_per_mem_ms: 2.2e5,
        l1d_per_instr: 0.42,
        l1i_per_instr: 1.05,
        uops_per_instr: 1.35,
    }
}

/// Img-dnn: handwriting-recognition DNN. 1 100 RPS, 5.07 ms QoS (Table II).
/// Compute-bound and therefore the most DVFS-sensitive service.
pub fn img_dnn() -> ServiceSpec {
    ServiceSpec {
        name: "img-dnn".into(),
        max_load_rps: 1100.0,
        qos_ms: 5.07,
        work_cpu_ms: 6.40,
        work_mem_ms: 0.67,
        serial_frac: 0.03,
        demand_cv: 0.45,
        bw_demand_frac: 0.30,
        bw_sensitivity: 0.4,
        cache_mb: 12.0,
        cache_sensitivity: 0.3,
        instructions_per_ms: 3.2e6,
        branch_frac: 0.10,
        branch_miss_rate: 0.015,
        llc_miss_per_mem_ms: 6.0e4,
        l1d_per_instr: 0.45,
        l1i_per_instr: 0.9,
        uops_per_instr: 1.2,
    }
}

/// Memcached: key-value cache, one of the two Figure 1 motivation services.
pub fn memcached() -> ServiceSpec {
    ServiceSpec {
        name: "memcached".into(),
        max_load_rps: 3200.0,
        qos_ms: 1.0,
        work_cpu_ms: 1.11,
        work_mem_ms: 0.47,
        serial_frac: 0.04,
        demand_cv: 0.65,
        bw_demand_frac: 0.30,
        bw_sensitivity: 2.0,
        cache_mb: 20.0,
        cache_sensitivity: 1.2,
        instructions_per_ms: 2.4e6,
        branch_frac: 0.16,
        branch_miss_rate: 0.03,
        llc_miss_per_mem_ms: 1.0e5,
        l1d_per_instr: 0.36,
        l1i_per_instr: 0.92,
        uops_per_instr: 1.22,
    }
}

/// Web-Search: the second Figure 1 motivation service.
pub fn web_search() -> ServiceSpec {
    ServiceSpec {
        name: "web-search".into(),
        max_load_rps: 1200.0,
        qos_ms: 4.0,
        work_cpu_ms: 2.34,
        work_mem_ms: 1.04,
        serial_frac: 0.07,
        demand_cv: 0.85,
        bw_demand_frac: 0.45,
        bw_sensitivity: 0.8,
        cache_mb: 32.0,
        cache_sensitivity: 0.7,
        instructions_per_ms: 2.0e6,
        branch_frac: 0.24,
        branch_miss_rate: 0.055,
        llc_miss_per_mem_ms: 1.5e5,
        l1d_per_instr: 0.40,
        l1i_per_instr: 1.0,
        uops_per_instr: 1.3,
    }
}

/// All calibrated services, evaluation set first.
pub fn all() -> Vec<ServiceSpec> {
    vec![
        masstree(),
        xapian(),
        moses(),
        img_dnn(),
        memcached(),
        web_search(),
    ]
}

/// The four Tailbench evaluation services of Table II, in paper order.
pub fn tailbench() -> Vec<ServiceSpec> {
    vec![masstree(), xapian(), moses(), img_dnn()]
}

/// Looks a service up by name.
///
/// # Examples
///
/// ```
/// assert!(twig_sim::catalog::by_name("moses").is_some());
/// assert!(twig_sim::catalog::by_name("nginx").is_none());
/// ```
pub fn by_name(name: &str) -> Option<ServiceSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let expect = [
            ("masstree", 2400.0, 1.39),
            ("xapian", 1000.0, 3.71),
            ("moses", 2800.0, 6.04),
            ("img-dnn", 1100.0, 5.07),
        ];
        let specs = tailbench();
        for ((name, load, qos), spec) in expect.iter().zip(&specs) {
            assert_eq!(&spec.name, name);
            assert_eq!(spec.max_load_rps, *load);
            assert_eq!(spec.qos_ms, *qos);
        }
    }

    #[test]
    fn interference_profile_matches_paper_narrative() {
        // "Moses has a high demand for cache capacity and memory bandwidth,
        //  while Masstree is extremely sensitive to memory bandwidth
        //  interference" (Section V-B2).
        let moses = moses();
        let masstree = masstree();
        assert!(moses.bw_demand_frac > masstree.bw_demand_frac);
        assert!(masstree.bw_sensitivity > moses.bw_sensitivity);
        assert!(moses.cache_mb > masstree.cache_mb);
    }

    #[test]
    fn img_dnn_is_most_cpu_bound() {
        let frac = |s: &ServiceSpec| s.work_cpu_ms / s.total_work_ms();
        let img = frac(&img_dnn());
        for other in [masstree(), xapian(), moses()] {
            assert!(img > frac(&other), "{} not less cpu-bound", other.name);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn by_name_roundtrip() {
        for spec in all() {
            assert_eq!(by_name(&spec.name), Some(spec.clone()));
        }
    }
}
