use crate::SimError;

/// Static model of one latency-critical service.
///
/// The fields fall into three groups mirroring what the real Tailbench
/// services exhibit on the paper's platform:
///
/// 1. **Capacity / QoS** (`max_load_rps`, `qos_ms`) — Table II;
/// 2. **Request cost** (`work_cpu_ms`, `work_mem_ms`, `serial_frac`,
///    `demand_cv`) — how much single-core-at-max-frequency work one request
///    needs, split into a frequency-scalable CPU part and a memory-bound
///    part, with a serial fraction that does not parallelise across cores
///    and a lognormal per-request variability;
/// 3. **Interference** (`bw_demand_frac`, `bw_sensitivity`, `cache_mb`,
///    `cache_sensitivity`) — how much shared memory bandwidth / LLC the
///    service consumes and how strongly its memory-bound work inflates under
///    contention. Masstree, for example, consumes little bandwidth but is
///    extremely sensitive to bandwidth interference (Section V-B1), while
///    Moses is cache- and bandwidth-hungry;
/// 4. **Counter synthesis** (`instructions_per_ms` …) — per-activity rates
///    used to generate the 11 Table-I performance counters.
///
/// This is a passive data structure: fields are public, and the [`catalog`]
/// module provides calibrated instances for the paper's services.
///
/// [`catalog`]: crate::catalog
///
/// # Examples
///
/// ```
/// use twig_sim::catalog;
///
/// let spec = catalog::masstree();
/// assert_eq!(spec.qos_ms, 1.39);
/// assert!(spec.bw_sensitivity > catalog::moses().bw_sensitivity);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Service name (for reports).
    pub name: String,
    /// Reference maximum load in requests per second (Table II).
    pub max_load_rps: f64,
    /// 99th-percentile latency target in milliseconds (Table II).
    pub qos_ms: f64,
    /// CPU-bound work per request, in milliseconds of one core at the
    /// maximum DVFS setting.
    pub work_cpu_ms: f64,
    /// Memory-bound work per request, in milliseconds of one core
    /// (unaffected by DVFS, inflated by contention).
    pub work_mem_ms: f64,
    /// Fraction of the request work that cannot be parallelised across
    /// cores.
    pub serial_frac: f64,
    /// Coefficient of variation of the lognormal per-request work
    /// multiplier.
    pub demand_cv: f64,
    /// Fraction of the socket's memory bandwidth the service consumes when
    /// running at its maximum load.
    pub bw_demand_frac: f64,
    /// Inflation of the memory-bound work per unit of bandwidth
    /// overcommitment.
    pub bw_sensitivity: f64,
    /// Last-level-cache footprint in MiB.
    pub cache_mb: f64,
    /// Inflation of the memory-bound work per unit of cache overcommitment.
    pub cache_sensitivity: f64,
    /// Instructions retired per millisecond of CPU-bound work at max
    /// frequency.
    pub instructions_per_ms: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Fraction of branches that are mispredicted.
    pub branch_miss_rate: f64,
    /// LLC misses per millisecond of memory-bound work.
    pub llc_miss_per_mem_ms: f64,
    /// L1D accesses per instruction.
    pub l1d_per_instr: f64,
    /// L1I accesses per instruction.
    pub l1i_per_instr: f64,
    /// Micro-ops per instruction.
    pub uops_per_instr: f64,
}

impl ServiceSpec {
    /// Total work per request (CPU + memory parts), in core-milliseconds.
    pub fn total_work_ms(&self) -> f64 {
        self.work_cpu_ms + self.work_mem_ms
    }

    /// Validates that the specification is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive capacity or QoS,
    /// negative work, or fractions outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |detail: String| Err(SimError::InvalidConfig { detail });
        if self.max_load_rps <= 0.0 {
            return fail(format!("{}: max load {}", self.name, self.max_load_rps));
        }
        if self.qos_ms <= 0.0 {
            return fail(format!("{}: qos {}", self.name, self.qos_ms));
        }
        if self.work_cpu_ms < 0.0 || self.work_mem_ms < 0.0 || self.total_work_ms() == 0.0 {
            return fail(format!("{}: non-positive request work", self.name));
        }
        for (label, v) in [
            ("serial_frac", self.serial_frac),
            ("bw_demand_frac", self.bw_demand_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return fail(format!("{}: {label} = {v} outside [0, 1]", self.name));
            }
        }
        if self.demand_cv < 0.0 {
            return fail(format!("{}: demand_cv {}", self.name, self.demand_cv));
        }
        Ok(())
    }

    /// Mean request duration in milliseconds on `effective_cores` cores with
    /// aggregate CPU speed `cpu_rate` (sum over cores of share × relative
    /// frequency) and memory-work contention factor `contention`
    /// (1.0 = no interference).
    ///
    /// The serial fraction runs on the single fastest core
    /// (`max_core_speed`); the rest parallelises across the allocation.
    pub fn request_duration_ms(
        &self,
        cpu_rate: f64,
        effective_cores: f64,
        max_core_speed: f64,
        contention: f64,
    ) -> f64 {
        if cpu_rate <= 0.0 || effective_cores <= 0.0 {
            return f64::INFINITY;
        }
        let sf = self.serial_frac;
        let cpu_serial = self.work_cpu_ms * sf / max_core_speed.max(1e-9);
        let cpu_parallel = self.work_cpu_ms * (1.0 - sf) / cpu_rate;
        let mem_serial = self.work_mem_ms * sf * contention;
        let mem_parallel = self.work_mem_ms * (1.0 - sf) * contention / effective_cores;
        cpu_serial + cpu_parallel + mem_serial + mem_parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn catalog_specs_validate() {
        for spec in catalog::all() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn duration_improves_with_more_cores() {
        let spec = catalog::xapian();
        let d1 = spec.request_duration_ms(1.0, 1.0, 1.0, 1.0);
        let d4 = spec.request_duration_ms(4.0, 4.0, 1.0, 1.0);
        let d18 = spec.request_duration_ms(18.0, 18.0, 1.0, 1.0);
        assert!(d1 > d4 && d4 > d18);
    }

    #[test]
    fn duration_has_diminishing_returns() {
        let spec = catalog::xapian();
        let d1 = spec.request_duration_ms(1.0, 1.0, 1.0, 1.0);
        let d18 = spec.request_duration_ms(18.0, 18.0, 1.0, 1.0);
        // With a serial fraction, 18 cores give less than 18x speedup.
        assert!(d1 / d18 < 18.0);
        assert!(d1 / d18 > 4.0);
    }

    #[test]
    fn frequency_helps_cpu_part_only() {
        let spec = catalog::img_dnn(); // CPU-heavy
        let fast = spec.request_duration_ms(8.0, 8.0, 1.0, 1.0);
        let slow = spec.request_duration_ms(8.0 * 0.6, 8.0, 0.6, 1.0);
        // Lowest DVFS (0.6 relative) slows things, but by less than 1/0.6
        // because the memory part does not scale.
        assert!(slow > fast);
        assert!(slow / fast < 1.0 / 0.6);
    }

    #[test]
    fn contention_inflates_memory_bound_service_more() {
        let masstree = catalog::masstree();
        let img = catalog::img_dnn();
        let ratio = |s: &ServiceSpec| {
            s.request_duration_ms(8.0, 8.0, 1.0, 2.0) / s.request_duration_ms(8.0, 8.0, 1.0, 1.0)
        };
        assert!(ratio(&masstree) > ratio(&img));
    }

    #[test]
    fn zero_capacity_is_infinite_duration() {
        let spec = catalog::moses();
        assert!(spec.request_duration_ms(0.0, 0.0, 1.0, 1.0).is_infinite());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = catalog::masstree();
        s.qos_ms = 0.0;
        assert!(s.validate().is_err());
        let mut s = catalog::masstree();
        s.max_load_rps = -1.0;
        assert!(s.validate().is_err());
        let mut s = catalog::masstree();
        s.serial_frac = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn duration_monotone_in_contention() {
        let mut rng = Xoshiro256::seed_from_u64(0xc0a7);
        let spec = catalog::moses();
        for _ in 0..200 {
            let c1 = rng.range_f64(1.0, 3.0);
            let c2 = rng.range_f64(1.0, 3.0);
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let d_lo = spec.request_duration_ms(8.0, 8.0, 1.0, lo);
            let d_hi = spec.request_duration_ms(8.0, 8.0, 1.0, hi);
            assert!(d_lo <= d_hi);
        }
    }
}
