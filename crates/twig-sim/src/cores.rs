use crate::SimError;
use std::fmt;

/// Identifier of one physical core on the managed socket.
///
/// # Examples
///
/// ```
/// use twig_sim::CoreId;
///
/// let c = CoreId(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "core3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The zero-based index of the core.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        CoreId(index)
    }
}

/// A core clock frequency in MHz.
///
/// # Examples
///
/// ```
/// use twig_sim::Frequency;
///
/// let f = Frequency::from_mhz(1600);
/// assert_eq!(f.ghz(), 1.6);
/// assert_eq!(f.to_string(), "1.60 GHz");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from MHz.
    pub fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz)
    }

    /// The frequency in MHz.
    pub fn mhz(self) -> u32 {
        self.0
    }

    /// The frequency in GHz.
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.ghz())
    }
}

/// The discrete DVFS ladder of the platform.
///
/// The paper's Xeon E5-2695v4 scales "from 1.20 GHz to 2.00 GHz with steps
/// of 0.1 GHz" (9 states; the text elsewhere says 10 — the ladder is
/// configurable, defaulting to the arithmetic 9).
///
/// # Examples
///
/// ```
/// use twig_sim::DvfsLadder;
///
/// let ladder = DvfsLadder::default();
/// assert_eq!(ladder.len(), 9);
/// assert_eq!(ladder.min().mhz(), 1200);
/// assert_eq!(ladder.max().mhz(), 2000);
/// assert_eq!(ladder.frequency_at(4).unwrap().mhz(), 1600);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DvfsLadder {
    min_mhz: u32,
    step_mhz: u32,
    levels: usize,
}

impl Default for DvfsLadder {
    fn default() -> Self {
        DvfsLadder {
            min_mhz: 1200,
            step_mhz: 100,
            levels: 9,
        }
    }
}

impl DvfsLadder {
    /// Creates a ladder of `levels` settings starting at `min_mhz` with
    /// spacing `step_mhz`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `levels == 0` or
    /// `step_mhz == 0`.
    pub fn new(min_mhz: u32, step_mhz: u32, levels: usize) -> Result<Self, SimError> {
        if levels == 0 || step_mhz == 0 || min_mhz == 0 {
            return Err(SimError::InvalidConfig {
                detail: format!(
                    "dvfs ladder min {min_mhz} MHz step {step_mhz} MHz levels {levels}"
                ),
            });
        }
        Ok(DvfsLadder {
            min_mhz,
            step_mhz,
            levels,
        })
    }

    /// Number of DVFS settings.
    pub fn len(&self) -> usize {
        self.levels
    }

    /// Always `false`: ladders have at least one level.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The lowest frequency.
    pub fn min(&self) -> Frequency {
        Frequency(self.min_mhz)
    }

    /// The highest frequency.
    pub fn max(&self) -> Frequency {
        Frequency(self.min_mhz + self.step_mhz * (self.levels as u32 - 1))
    }

    /// The frequency at ladder index `idx` (0 = lowest).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFrequency`] when `idx` is out of range.
    pub fn frequency_at(&self, idx: usize) -> Result<Frequency, SimError> {
        if idx >= self.levels {
            return Err(SimError::InvalidFrequency {
                mhz: self.min_mhz + self.step_mhz * idx as u32,
            });
        }
        Ok(Frequency(self.min_mhz + self.step_mhz * idx as u32))
    }

    /// The ladder index of `freq`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFrequency`] when `freq` is not on the
    /// ladder.
    pub fn index_of(&self, freq: Frequency) -> Result<usize, SimError> {
        let mhz = freq.mhz();
        if mhz < self.min_mhz
            || !(mhz - self.min_mhz).is_multiple_of(self.step_mhz)
            || ((mhz - self.min_mhz) / self.step_mhz) as usize >= self.levels
        {
            return Err(SimError::InvalidFrequency { mhz });
        }
        Ok(((mhz - self.min_mhz) / self.step_mhz) as usize)
    }

    /// All frequencies, ascending.
    pub fn frequencies(&self) -> Vec<Frequency> {
        (0..self.levels)
            .map(|i| Frequency(self.min_mhz + self.step_mhz * i as u32))
            .collect()
    }

    /// Relative speed of `freq` for CPU-bound work (1.0 at the top of the
    /// ladder).
    pub fn relative_speed(&self, freq: Frequency) -> f64 {
        freq.ghz() / self.max().ghz()
    }

    /// Snaps an arbitrary frequency onto the ladder: the highest setting
    /// at or below `freq`, or the ladder minimum when `freq` is below it.
    /// This is how a cpufreq read-back (which the OS may have clamped to a
    /// value off our ladder) is mapped to a reportable DVFS setting.
    ///
    /// # Examples
    ///
    /// ```
    /// use twig_sim::{DvfsLadder, Frequency};
    ///
    /// let ladder = DvfsLadder::default(); // 1200..=2000 step 100
    /// assert_eq!(ladder.floor(Frequency::from_mhz(1750)).mhz(), 1700);
    /// assert_eq!(ladder.floor(Frequency::from_mhz(800)).mhz(), 1200);
    /// assert_eq!(ladder.floor(Frequency::from_mhz(9000)).mhz(), 2000);
    /// ```
    pub fn floor(&self, freq: Frequency) -> Frequency {
        let mhz = freq.mhz();
        if mhz <= self.min_mhz {
            return self.min();
        }
        let idx = (((mhz - self.min_mhz) / self.step_mhz) as usize).min(self.levels - 1);
        Frequency(self.min_mhz + self.step_mhz * idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_matches_paper_platform() {
        let l = DvfsLadder::default();
        let freqs = l.frequencies();
        assert_eq!(freqs.len(), 9);
        assert_eq!(freqs[0].mhz(), 1200);
        assert_eq!(freqs[8].mhz(), 2000);
        for w in freqs.windows(2) {
            assert_eq!(w[1].mhz() - w[0].mhz(), 100);
        }
    }

    #[test]
    fn index_of_rejects_off_ladder() {
        let l = DvfsLadder::default();
        assert!(l.index_of(Frequency::from_mhz(1250)).is_err());
        assert!(l.index_of(Frequency::from_mhz(1100)).is_err());
        assert!(l.index_of(Frequency::from_mhz(2100)).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(DvfsLadder::new(1200, 100, 0).is_err());
        assert!(DvfsLadder::new(1200, 0, 5).is_err());
        assert!(DvfsLadder::new(0, 100, 5).is_err());
    }

    #[test]
    fn relative_speed_is_one_at_max() {
        let l = DvfsLadder::default();
        assert_eq!(l.relative_speed(l.max()), 1.0);
        assert!((l.relative_speed(l.min()) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn index_roundtrip() {
        for levels in 1usize..20 {
            for idx_seed in 0usize..20 {
                let l = DvfsLadder::new(800, 100, levels).unwrap();
                let idx = idx_seed % levels;
                let f = l.frequency_at(idx).unwrap();
                assert_eq!(l.index_of(f).unwrap(), idx);
            }
        }
    }

    #[test]
    fn frequencies_sorted_and_unique() {
        for levels in 1usize..20 {
            let l = DvfsLadder::new(1000, 50, levels).unwrap();
            let fs = l.frequencies();
            for w in fs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
