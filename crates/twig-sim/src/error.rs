use std::error::Error;
use std::fmt;

/// Error produced by the server simulator.
///
/// # Examples
///
/// ```
/// use twig_sim::{catalog, Server, ServerConfig, SimError};
///
/// let mut server = Server::new(ServerConfig::default(), vec![catalog::masstree()], 0).unwrap();
/// let err = server.set_load_fraction(5, 0.5).unwrap_err();
/// assert!(matches!(err, SimError::UnknownService { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A service index was out of range.
    UnknownService {
        /// The offending index.
        index: usize,
        /// Number of services hosted by the server.
        count: usize,
    },
    /// A core id was out of range for the platform.
    UnknownCore {
        /// The offending core id.
        core: usize,
        /// Number of cores on the platform.
        count: usize,
    },
    /// A frequency was not on the platform's DVFS ladder.
    InvalidFrequency {
        /// The offending frequency in MHz.
        mhz: u32,
    },
    /// The number of assignments did not match the number of services.
    AssignmentCount {
        /// Assignments provided.
        got: usize,
        /// Services hosted.
        want: usize,
    },
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownService { index, count } => {
                write!(
                    f,
                    "service index {index} out of range (server hosts {count})"
                )
            }
            SimError::UnknownCore { core, count } => {
                write!(f, "core {core} out of range (platform has {count} cores)")
            }
            SimError::InvalidFrequency { mhz } => {
                write!(f, "frequency {mhz} MHz is not on the DVFS ladder")
            }
            SimError::AssignmentCount { got, want } => {
                write!(f, "got {got} assignments for {want} services")
            }
            SimError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let errors = [
            SimError::UnknownService { index: 3, count: 2 },
            SimError::UnknownCore {
                core: 40,
                count: 18,
            },
            SimError::InvalidFrequency { mhz: 1234 },
            SimError::AssignmentCount { got: 1, want: 2 },
            SimError::InvalidConfig {
                detail: "zero cores".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
