//! The simulator backend: [`SimPlatform`] adapts [`twig_sim::Server`] to
//! the [`Platform`] trait, behavior-preserving to the byte.

use crate::{Platform, PlatformError};
use twig_sim::{Assignment, DvfsLadder, EpochReport, Server, ServiceSpec};
use twig_telemetry::Telemetry;

/// [`twig_sim::Server`] behind the [`Platform`] trait.
///
/// [`Platform::step`] is exactly [`Server::step`] — same calls, same
/// order, same RNG draws — so every existing suite and report stays
/// byte-identical when driven through the trait. The split form stashes
/// the assignments at [`Platform::actuate`] and runs the simulator step
/// at [`Platform::observe_epoch`], since the simulator produces the whole
/// epoch atomically.
///
/// Server-only controls (load generators, fault plans, service churn)
/// stay reachable through [`SimPlatform::server_mut`].
///
/// # Examples
///
/// ```
/// use twig_platform::{Platform, SimPlatform};
/// use twig_sim::{catalog, Assignment, Server, ServerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = Server::new(ServerConfig::default(), vec![catalog::masstree()], 42)?;
/// let mut platform = SimPlatform::new(server);
/// let all = Assignment::first_n(platform.cores(), platform.dvfs().max());
/// let report = platform.step(&[all])?;
/// assert_eq!(report.services.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimPlatform {
    server: Server,
    staged: Option<Vec<Assignment>>,
}

impl SimPlatform {
    /// Wraps a configured server.
    pub fn new(server: Server) -> Self {
        SimPlatform {
            server,
            staged: None,
        }
    }

    /// The wrapped server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access to the wrapped server, for the controls the trait
    /// does not abstract (loads, fault plans, churn, timing plans).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Unwraps back into the server.
    pub fn into_server(self) -> Server {
        self.server
    }
}

impl Platform for SimPlatform {
    fn cores(&self) -> usize {
        self.server.config().cores
    }

    fn dvfs(&self) -> &DvfsLadder {
        &self.server.config().dvfs
    }

    fn specs(&self) -> &[ServiceSpec] {
        self.server.specs()
    }

    fn actuate(&mut self, assignments: &[Assignment]) -> Result<(), PlatformError> {
        self.staged = Some(assignments.to_vec());
        Ok(())
    }

    fn observe_epoch(&mut self) -> Result<EpochReport, PlatformError> {
        let staged = self.staged.take().ok_or_else(|| PlatformError::Protocol {
            detail: "observe_epoch without a prior actuate".into(),
        })?;
        Ok(self.server.step(&staged)?)
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.server.set_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, ServerConfig};

    fn server(seed: u64) -> Server {
        Server::new(
            ServerConfig::default(),
            vec![catalog::masstree(), catalog::moses()],
            seed,
        )
        .unwrap()
    }

    #[test]
    fn step_is_bit_identical_to_the_raw_server() {
        let mut raw = server(7);
        let mut platform = SimPlatform::new(server(7));
        let all = Assignment::first_n(18, platform.dvfs().max());
        for _ in 0..20 {
            let a = vec![all.clone(), all.clone()];
            let want = raw.step(&a).unwrap();
            let got = platform.step(&a).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn observe_without_actuate_is_a_protocol_error() {
        let mut platform = SimPlatform::new(server(7));
        assert!(matches!(
            platform.observe_epoch(),
            Err(PlatformError::Protocol { .. })
        ));
    }
}
