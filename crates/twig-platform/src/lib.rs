//! Actuation backends for Twig: the [`Platform`] trait and its two
//! implementations.
//!
//! The paper's manager runs against a real Linux host — cgroup-v2
//! cpusets, cpufreq setpoints, perf counters, RAPL power — while this
//! repository's experiments run against the [`twig_sim`] simulator. This
//! crate puts one seam between the two:
//!
//! - [`Platform`] is the actuation-and-observation surface a manager
//!   needs: `actuate` an epoch's assignments, `observe_epoch` the
//!   resulting report.
//! - [`SimPlatform`] wraps [`twig_sim::Server`] behavior-preservingly:
//!   driving it through the trait is byte-identical to calling
//!   [`twig_sim::Server::step`] directly.
//! - [`LinuxPlatform`] actuates through sysfs/procfs-style control files
//!   behind the [`Fs`] abstraction, with a write–verify–retry
//!   *reconciliation ladder* (see [`linux`]) that turns partial OS
//!   failures into verified retries, reported divergences, or
//!   governor-routed degraded epochs — never panics.
//!
//! Offline, [`FakeFs`] provides the kernel: an in-memory tree whose
//! seeded [`OsFaultPlan`] injects `EPERM`/`EBUSY` rejections, torn
//! writes, silent clamps, delayed visibility, and stale or garbage
//! counter files. [`SimWorld`] closes the loop by running the simulator
//! on whatever actually landed in the tree, so tests compare what the
//! platform *believed* against what the machine *did*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpulist;
mod error;
mod fake;
mod fault;
mod fs;
mod linux;
mod platform;
mod sim;
mod world;

pub use error::PlatformError;
pub use fake::FakeFs;
pub use fault::{classify, OsFaultConfig, OsFaultPlan, PathClass, ReadFault, WriteFault};
pub use fs::{Fs, FsError, RealFs};
pub use linux::{LinuxConfig, LinuxLayout, LinuxPlatform, PlatformStats};
pub use platform::Platform;
pub use sim::SimPlatform;
pub use world::SimWorld;
