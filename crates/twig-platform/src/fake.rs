//! An in-memory procfs/sysfs tree with seeded fault injection.
//!
//! [`FakeFs`] is the offline stand-in for the kernel: a cheap, cloneable
//! handle (all clones share one tree) that implements [`Fs`] with an
//! optional [`OsFaultPlan`] deciding per operation whether the fake OS
//! misbehaves. The *raw* accessors ([`FakeFs::seed_file`],
//! [`FakeFs::read_raw`]) bypass the plan — they are the "ground truth"
//! used by the world model that populates counter files, and by tests
//! that inspect what actually landed.
//!
//! Each file keeps its current content, the previous content (served by
//! stale-read faults) and an optional pending write (delayed-visibility
//! faults commit it at [`FakeFs::advance_epoch`]).

use crate::fault::{classify, OsFaultPlan, ReadFault, WriteFault};
use crate::fs::{Fs, FsError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

#[derive(Debug, Clone, Default)]
struct FileState {
    current: String,
    prev: Option<String>,
    pending: Option<String>,
}

#[derive(Debug, Default)]
struct Inner {
    files: BTreeMap<String, FileState>,
    plan: Option<OsFaultPlan>,
}

/// The content garbage-read faults serve: decidedly not a number.
const GARBAGE: &str = "#!garbage!#";

/// A shared, in-memory sysfs/procfs tree. Clones are handles onto the
/// same tree (single-threaded `Rc`, matching the per-unit isolation of
/// the experiment fleet).
#[derive(Debug, Clone, Default)]
pub struct FakeFs {
    inner: Rc<RefCell<Inner>>,
}

impl FakeFs {
    /// An empty tree with no fault plan.
    pub fn new() -> Self {
        FakeFs::default()
    }

    /// Installs (or replaces) the fault plan.
    pub fn set_fault_plan(&self, plan: OsFaultPlan) {
        self.inner.borrow_mut().plan = Some(plan);
    }

    /// Removes the fault plan; subsequent operations never fault.
    pub fn clear_fault_plan(&self) {
        self.inner.borrow_mut().plan = None;
    }

    /// Creates or replaces a file, bypassing fault injection (the
    /// previous content becomes the stale-read value, any pending write
    /// is discarded).
    pub fn seed_file(&self, path: &str, contents: &str) {
        let mut inner = self.inner.borrow_mut();
        let state = inner.files.entry(path.to_string()).or_default();
        let old = std::mem::replace(&mut state.current, contents.to_string());
        state.prev = Some(old);
        state.pending = None;
    }

    /// Reads a file's committed content, bypassing fault injection.
    pub fn read_raw(&self, path: &str) -> Option<String> {
        self.inner
            .borrow()
            .files
            .get(path)
            .map(|s| s.current.clone())
    }

    /// Ends the epoch: commits every delayed-visibility write and
    /// advances the fault plan's epoch counter (permission-flap windows).
    pub fn advance_epoch(&self) {
        let mut inner = self.inner.borrow_mut();
        for state in inner.files.values_mut() {
            if let Some(pending) = state.pending.take() {
                let old = std::mem::replace(&mut state.current, pending);
                state.prev = Some(old);
            }
        }
        if let Some(plan) = inner.plan.as_mut() {
            plan.advance_epoch();
        }
    }

    /// The fault plan's current epoch (0 with no plan).
    pub fn epoch(&self) -> u64 {
        self.inner
            .borrow()
            .plan
            .as_ref()
            .map_or(0, OsFaultPlan::epoch)
    }
}

impl Fs for FakeFs {
    fn read(&self, path: &str) -> Result<String, FsError> {
        let mut inner = self.inner.borrow_mut();
        let fault = match inner.plan.as_mut() {
            Some(plan) => plan.read_fault(classify(path)),
            None => ReadFault::None,
        };
        let state = inner.files.get(path).ok_or(FsError::NotFound)?;
        match fault {
            ReadFault::None => Ok(state.current.clone()),
            // A file with no history yet serves its only content.
            ReadFault::Stale => Ok(state.prev.clone().unwrap_or_else(|| state.current.clone())),
            ReadFault::Garbage => Ok(GARBAGE.to_string()),
            ReadFault::Enoent => Err(FsError::NotFound),
        }
    }

    fn write(&self, path: &str, contents: &str) -> Result<(), FsError> {
        let mut inner = self.inner.borrow_mut();
        let fault = match inner.plan.as_mut() {
            Some(plan) => plan.write_fault(classify(path)),
            None => WriteFault::None,
        };
        let state = inner.files.entry(path.to_string()).or_default();
        let commit = |state: &mut FileState, contents: String| {
            let old = std::mem::replace(&mut state.current, contents);
            state.prev = Some(old);
        };
        match fault {
            WriteFault::None => {
                commit(state, contents.to_string());
                Ok(())
            }
            WriteFault::Eperm => Err(FsError::PermissionDenied),
            WriteFault::Ebusy => Err(FsError::Busy),
            WriteFault::Torn => {
                // Half the bytes land. Cpulists are ASCII, so the midpoint
                // is always a char boundary; clamp defensively anyway.
                let mut cut = contents.len() / 2;
                while cut > 0 && !contents.is_char_boundary(cut) {
                    cut -= 1;
                }
                commit(state, contents[..cut].to_string());
                Ok(())
            }
            WriteFault::Delayed => {
                state.pending = Some(contents.to_string());
                Ok(())
            }
            WriteFault::Clamp(floor_khz) => {
                let stored = match contents.trim().parse::<u64>() {
                    Ok(v) if v > floor_khz => floor_khz.to_string(),
                    _ => contents.to_string(),
                };
                commit(state, stored);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::OsFaultConfig;

    #[test]
    fn faultless_tree_round_trips() {
        let fs = FakeFs::new();
        assert_eq!(fs.read("/a/cpuset.cpus"), Err(FsError::NotFound));
        fs.write("/a/cpuset.cpus", "0-3").unwrap();
        assert_eq!(fs.read("/a/cpuset.cpus").unwrap(), "0-3");
        assert_eq!(fs.read_raw("/a/cpuset.cpus").unwrap(), "0-3");
    }

    #[test]
    fn torn_writes_store_a_prefix() {
        let fs = FakeFs::new();
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpuset_torn_rate: 1.0,
                    ..OsFaultConfig::default()
                },
                3,
            )
            .unwrap(),
        );
        fs.write("/a/cpuset.cpus", "0-15").unwrap();
        assert_eq!(fs.read("/a/cpuset.cpus").unwrap(), "0-");
    }

    #[test]
    fn delayed_writes_commit_at_the_epoch_boundary() {
        let fs = FakeFs::new();
        fs.seed_file("/a/cpuset.cpus", "0-3");
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpuset_delay_rate: 1.0,
                    ..OsFaultConfig::default()
                },
                3,
            )
            .unwrap(),
        );
        fs.write("/a/cpuset.cpus", "4-7").unwrap();
        assert_eq!(fs.read("/a/cpuset.cpus").unwrap(), "0-3", "still invisible");
        fs.advance_epoch();
        assert_eq!(fs.read("/a/cpuset.cpus").unwrap(), "4-7", "committed");
    }

    #[test]
    fn stale_reads_serve_the_previous_content() {
        let fs = FakeFs::new();
        fs.seed_file("/m/pmc", "1 0.5");
        fs.seed_file("/m/pmc", "2 0.9");
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    counter_stale_rate: 1.0,
                    ..OsFaultConfig::default()
                },
                3,
            )
            .unwrap(),
        );
        assert_eq!(fs.read("/m/pmc").unwrap(), "1 0.5");
        assert_eq!(fs.read_raw("/m/pmc").unwrap(), "2 0.9");
    }

    #[test]
    fn clamped_writes_store_the_floor() {
        let fs = FakeFs::new();
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpufreq_clamp_rate: 1.0,
                    cpufreq_floor_khz: 1_200_000,
                    ..OsFaultConfig::default()
                },
                3,
            )
            .unwrap(),
        );
        fs.write("/cpu/cpu0/cpufreq/scaling_setspeed", "2000000")
            .unwrap();
        assert_eq!(
            fs.read("/cpu/cpu0/cpufreq/scaling_setspeed").unwrap(),
            "1200000"
        );
    }

    #[test]
    fn clones_share_one_tree() {
        let fs = FakeFs::new();
        let handle = fs.clone();
        fs.seed_file("/x", "1");
        assert_eq!(handle.read_raw("/x").unwrap(), "1");
    }
}
