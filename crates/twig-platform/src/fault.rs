//! Seeded OS-level fault injection for the fake sysfs tree.
//!
//! An [`OsFaultPlan`] owns a private RNG stream and decides, per
//! filesystem operation, whether the fake OS misbehaves — mirroring the
//! failure modes real cgroup/cpufreq/procfs interaction exhibits:
//!
//! - **EPERM / EBUSY / ENOENT** — writes rejected by permission flaps or
//!   transient locks; counter files vanishing mid-read;
//! - **torn writes** — only a prefix of the written string lands, which
//!   for a cpulist can be *valid but wrong* (`"0-1"` out of `"0-15"`);
//! - **silent clamps** — a cpufreq write "succeeds" but the OS stores a
//!   policy-clamped lower value;
//! - **stale / garbage counters** — reads serve the previous epoch's
//!   content, or non-numeric junk;
//! - **delayed visibility** — a write lands but reads keep serving the
//!   old content until the next epoch boundary;
//! - **permission flapping** — whole epochs-long windows in which every
//!   write is EPERM, alternating with calm windows.
//!
//! Draw order is fixed per operation and a zero rate consumes no draws,
//! so a zero-rate plan is bit-identical to no plan at all — the same
//! contract `twig_sim::FaultPlan` keeps.

use crate::PlatformError;
use twig_stats::rng::{Rng, Xoshiro256};

/// What kind of file a path is, for fault scoping. Classification is by
/// the path's tail, matching the layout [`crate::LinuxLayout`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// A cgroup-v2 `cpuset.cpus` file.
    Cpuset,
    /// A per-core cpufreq sysfs file.
    Cpufreq,
    /// A counter file: PMCs, latency observables or the RAPL energy file.
    Counter,
    /// Anything else (never faulted).
    Other,
}

/// Classifies a path for fault scoping.
pub fn classify(path: &str) -> PathClass {
    if path.ends_with("cpuset.cpus") {
        PathClass::Cpuset
    } else if path.contains("/cpufreq/") {
        PathClass::Cpufreq
    } else if path.ends_with("/pmc") || path.ends_with("/latency") || path.ends_with("energy_uj") {
        PathClass::Counter
    } else {
        PathClass::Other
    }
}

/// Per-operation fault rates (all in `[0, 1]`) plus the deterministic
/// permission-flap schedule. `..Default::default()` gives all-zero rates
/// (nothing ever fails).
#[derive(Debug, Clone, PartialEq)]
pub struct OsFaultConfig {
    /// P(cpuset write returns EPERM).
    pub cpuset_eperm_rate: f64,
    /// P(cpuset write returns EBUSY).
    pub cpuset_ebusy_rate: f64,
    /// P(cpuset write lands torn: only a prefix of the string is stored).
    pub cpuset_torn_rate: f64,
    /// P(cpuset write lands but stays invisible to reads until the next
    /// epoch boundary).
    pub cpuset_delay_rate: f64,
    /// P(cpufreq write returns EPERM).
    pub cpufreq_eperm_rate: f64,
    /// P(cpufreq write is silently clamped to `cpufreq_floor_khz`).
    pub cpufreq_clamp_rate: f64,
    /// The kHz value clamped cpufreq writes are stored as.
    pub cpufreq_floor_khz: u64,
    /// P(counter read serves the previous content instead of the current).
    pub counter_stale_rate: f64,
    /// P(counter read serves non-numeric garbage).
    pub counter_garbage_rate: f64,
    /// P(counter read returns ENOENT).
    pub counter_enoent_rate: f64,
    /// When non-zero, epochs are tiled into windows of this length and
    /// every write during an odd window returns EPERM — sustained outages
    /// that exhaust any bounded retry budget, then clear.
    pub eperm_flap_period: u64,
}

impl Default for OsFaultConfig {
    fn default() -> Self {
        OsFaultConfig {
            cpuset_eperm_rate: 0.0,
            cpuset_ebusy_rate: 0.0,
            cpuset_torn_rate: 0.0,
            cpuset_delay_rate: 0.0,
            cpufreq_eperm_rate: 0.0,
            cpufreq_clamp_rate: 0.0,
            cpufreq_floor_khz: 1_200_000,
            counter_stale_rate: 0.0,
            counter_garbage_rate: 0.0,
            counter_enoent_rate: 0.0,
            eperm_flap_period: 0,
        }
    }
}

impl OsFaultConfig {
    /// True when any fault can ever fire.
    pub fn enabled(&self) -> bool {
        let rates = [
            self.cpuset_eperm_rate,
            self.cpuset_ebusy_rate,
            self.cpuset_torn_rate,
            self.cpuset_delay_rate,
            self.cpufreq_eperm_rate,
            self.cpufreq_clamp_rate,
            self.counter_stale_rate,
            self.counter_garbage_rate,
            self.counter_enoent_rate,
        ];
        rates.iter().any(|&r| r > 0.0) || self.eperm_flap_period > 0
    }

    /// Validates every rate.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] for a rate outside `[0, 1]` or a
    /// zero clamp floor.
    pub fn validate(&self) -> Result<(), PlatformError> {
        let rates = [
            ("cpuset_eperm_rate", self.cpuset_eperm_rate),
            ("cpuset_ebusy_rate", self.cpuset_ebusy_rate),
            ("cpuset_torn_rate", self.cpuset_torn_rate),
            ("cpuset_delay_rate", self.cpuset_delay_rate),
            ("cpufreq_eperm_rate", self.cpufreq_eperm_rate),
            ("cpufreq_clamp_rate", self.cpufreq_clamp_rate),
            ("counter_stale_rate", self.counter_stale_rate),
            ("counter_garbage_rate", self.counter_garbage_rate),
            ("counter_enoent_rate", self.counter_enoent_rate),
        ];
        for (label, r) in rates {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(PlatformError::Config {
                    detail: format!("{label} must be in [0, 1], got {r}"),
                });
            }
        }
        if self.cpufreq_floor_khz == 0 {
            return Err(PlatformError::Config {
                detail: "cpufreq_floor_khz must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// What the fake OS does to one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write lands verbatim.
    None,
    /// Rejected with EPERM.
    Eperm,
    /// Rejected with EBUSY.
    Ebusy,
    /// Only a prefix of the content lands.
    Torn,
    /// The content lands but stays invisible until the next epoch.
    Delayed,
    /// The stored value is clamped to this kHz floor.
    Clamp(u64),
}

/// What the fake OS does to one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read serves the current content.
    None,
    /// The read serves the previous content.
    Stale,
    /// The read serves non-numeric garbage.
    Garbage,
    /// The read fails with ENOENT.
    Enoent,
}

/// A seeded, deterministic schedule of OS faults. Owns its RNG: the
/// sequence of faults is a pure function of `(config, seed)` and the
/// order of filesystem operations, independent of anything else in the
/// process.
#[derive(Debug, Clone)]
pub struct OsFaultPlan {
    config: OsFaultConfig,
    rng: Xoshiro256,
    epoch: u64,
}

impl OsFaultPlan {
    /// Validates the config and seeds the plan's private RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] when the config does not
    /// validate.
    pub fn new(config: OsFaultConfig, seed: u64) -> Result<Self, PlatformError> {
        config.validate()?;
        Ok(OsFaultPlan {
            config,
            // Domain-separated from every other stream in the workspace.
            rng: Xoshiro256::seed_from_u64(seed ^ 0x05FA_17BD_0000_0001),
            epoch: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &OsFaultConfig {
        &self.config
    }

    /// The current epoch (advanced by [`crate::FakeFs::advance_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch counter (permission-flap windows are keyed on
    /// it).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// True during an odd permission-flap window.
    fn flapped_out(&self) -> bool {
        let p = self.config.eperm_flap_period;
        p > 0 && (self.epoch / p) % 2 == 1
    }

    /// Draws the fault for one write. Every relevant rate is drawn in a
    /// fixed order (zero rates consume no draws) and the first hit in
    /// severity order wins, so the draw count per call depends only on
    /// the config.
    pub fn write_fault(&mut self, class: PathClass) -> WriteFault {
        if self.flapped_out() && class != PathClass::Other {
            return WriteFault::Eperm;
        }
        match class {
            PathClass::Cpuset => {
                let eperm = self.rng.next_bool(self.config.cpuset_eperm_rate);
                let ebusy = self.rng.next_bool(self.config.cpuset_ebusy_rate);
                let torn = self.rng.next_bool(self.config.cpuset_torn_rate);
                let delay = self.rng.next_bool(self.config.cpuset_delay_rate);
                if eperm {
                    WriteFault::Eperm
                } else if ebusy {
                    WriteFault::Ebusy
                } else if torn {
                    WriteFault::Torn
                } else if delay {
                    WriteFault::Delayed
                } else {
                    WriteFault::None
                }
            }
            PathClass::Cpufreq => {
                let eperm = self.rng.next_bool(self.config.cpufreq_eperm_rate);
                let clamp = self.rng.next_bool(self.config.cpufreq_clamp_rate);
                if eperm {
                    WriteFault::Eperm
                } else if clamp {
                    WriteFault::Clamp(self.config.cpufreq_floor_khz)
                } else {
                    WriteFault::None
                }
            }
            PathClass::Counter | PathClass::Other => WriteFault::None,
        }
    }

    /// Draws the fault for one read (only counter files are faulted —
    /// actuation read-backs see the tree as the writes left it, which is
    /// what makes read-back verification meaningful).
    pub fn read_fault(&mut self, class: PathClass) -> ReadFault {
        match class {
            PathClass::Counter => {
                let stale = self.rng.next_bool(self.config.counter_stale_rate);
                let garbage = self.rng.next_bool(self.config.counter_garbage_rate);
                let enoent = self.rng.next_bool(self.config.counter_enoent_rate);
                if stale {
                    ReadFault::Stale
                } else if garbage {
                    ReadFault::Garbage
                } else if enoent {
                    ReadFault::Enoent
                } else {
                    ReadFault::None
                }
            }
            _ => ReadFault::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_paths() {
        assert_eq!(
            classify("/sys/fs/cgroup/twig/masstree/cpuset.cpus"),
            PathClass::Cpuset
        );
        assert_eq!(
            classify("/sys/devices/system/cpu/cpu3/cpufreq/scaling_setspeed"),
            PathClass::Cpufreq
        );
        assert_eq!(classify("/run/twig/masstree/pmc"), PathClass::Counter);
        assert_eq!(classify("/run/twig/masstree/latency"), PathClass::Counter);
        assert_eq!(
            classify("/sys/class/powercap/intel-rapl:0/energy_uj"),
            PathClass::Counter
        );
        assert_eq!(classify("/etc/hostname"), PathClass::Other);
    }

    #[test]
    fn zero_rate_plan_never_fires_and_draws_nothing() {
        let mut plan = OsFaultPlan::new(OsFaultConfig::default(), 7).unwrap();
        let twin = plan.clone();
        for class in [PathClass::Cpuset, PathClass::Cpufreq, PathClass::Counter] {
            assert_eq!(plan.write_fault(class), WriteFault::None);
            assert_eq!(plan.read_fault(class), ReadFault::None);
        }
        // No draws were consumed: the RNG state is untouched.
        assert_eq!(format!("{plan:?}"), format!("{twin:?}"));
    }

    #[test]
    fn plans_are_deterministic_in_seed() {
        let config = OsFaultConfig {
            cpuset_eperm_rate: 0.3,
            cpuset_torn_rate: 0.2,
            counter_stale_rate: 0.4,
            ..OsFaultConfig::default()
        };
        let mut a = OsFaultPlan::new(config.clone(), 11).unwrap();
        let mut b = OsFaultPlan::new(config, 11).unwrap();
        for _ in 0..200 {
            assert_eq!(
                a.write_fault(PathClass::Cpuset),
                b.write_fault(PathClass::Cpuset)
            );
            assert_eq!(
                a.read_fault(PathClass::Counter),
                b.read_fault(PathClass::Counter)
            );
        }
    }

    #[test]
    fn flap_windows_reject_everything_deterministically() {
        let mut plan = OsFaultPlan::new(
            OsFaultConfig {
                eperm_flap_period: 3,
                ..OsFaultConfig::default()
            },
            0,
        )
        .unwrap();
        let mut pattern = Vec::new();
        for _ in 0..12 {
            pattern.push(plan.write_fault(PathClass::Cpuset) == WriteFault::Eperm);
            plan.advance_epoch();
        }
        assert_eq!(
            pattern,
            [false, false, false, true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn rates_are_validated() {
        let bad = OsFaultConfig {
            cpuset_eperm_rate: 1.5,
            ..OsFaultConfig::default()
        };
        assert!(OsFaultPlan::new(bad, 0).is_err());
        let bad = OsFaultConfig {
            cpufreq_floor_khz: 0,
            ..OsFaultConfig::default()
        };
        assert!(OsFaultPlan::new(bad, 0).is_err());
    }
}
