//! The real-OS backend: [`LinuxPlatform`] actuates through cgroup-v2
//! `cpuset.cpus` files and cpufreq sysfs knobs, and observes through
//! seq-stamped counter files and a RAPL-style energy counter — all via
//! the [`Fs`] abstraction, so the same code runs against [`crate::RealFs`]
//! on a live kernel and against [`crate::FakeFs`] offline.
//!
//! # The reconciliation ladder
//!
//! Real sysfs writes fail partially and silently: `EPERM`/`EBUSY`
//! rejections, torn writes that land a prefix, governors that clamp a
//! requested frequency, delayed visibility. Every actuation therefore
//! climbs a ladder:
//!
//! 1. **write** the canonical value;
//! 2. **read back** and compare — a verbatim match is *verified*;
//! 3. on mismatch, **retry** within the [`RetryBudget`] (a cpufreq
//!    read-back that parses to a *lower* setting is an accepted governor
//!    clamp, reported but not retried — retrying a policy decision is
//!    futile);
//! 4. an exhausted budget is a **divergence**: the platform adopts the
//!    OS's read-back as the applied truth (falling back to the last known
//!    state when unreadable), marks the assignment `rejected`, and raises
//!    [`TelemetryHealth::delayed_epochs`] so the `SafetyGovernor` routes
//!    the epoch through `observe_degraded` / `decide_fallback`.
//!
//! Counter files carry a monotonic sequence stamp; a non-advancing stamp,
//! unparsable content or a missing file serves the previous sample and
//! flags the service [`PmcFaultKind::Stale`]. A non-monotonic or
//! unreadable energy counter keeps the last power reading and flags
//! `power_glitched`. Nothing in this module panics on OS misbehaviour —
//! every fault ends verified, reported as a divergence, or routed to the
//! governor.

use crate::cpulist;
use crate::fs::Fs;
use crate::{Platform, PlatformError};
use std::collections::BTreeSet;
use twig_core::{RetryBudget, SchedulerConfig};
use twig_sim::{
    AppliedAssignment, Assignment, CoreId, DvfsLadder, EpochReport, Frequency, PmcFaultKind,
    PmcSample, ServiceEpoch, ServiceSpec, TelemetryHealth, NUM_COUNTERS,
};
use twig_telemetry::Telemetry;

/// Where the Linux backend's files live. Defaults match a stock host
/// (cgroup-v2, cpufreq, RAPL) with Twig's delegated cgroup at
/// `/sys/fs/cgroup/twig`. [`LinuxLayout::under`] re-roots everything for
/// tests and fakes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinuxLayout {
    /// Twig's delegated cgroup-v2 subtree; each service is a child cgroup
    /// with a `cpuset.cpus` file.
    pub cgroup_root: String,
    /// The cpufreq sysfs root holding `cpu{N}/cpufreq/scaling_setspeed`.
    pub cpufreq_root: String,
    /// Where the per-service metric exporters publish seq-stamped `pmc`
    /// and `latency` files.
    pub metrics_root: String,
    /// The cumulative package-energy counter, in microjoules.
    pub energy_file: String,
}

impl Default for LinuxLayout {
    fn default() -> Self {
        LinuxLayout {
            cgroup_root: "/sys/fs/cgroup/twig".to_string(),
            cpufreq_root: "/sys/devices/system/cpu".to_string(),
            metrics_root: "/run/twig".to_string(),
            energy_file: "/sys/class/powercap/intel-rapl:0/energy_uj".to_string(),
        }
    }
}

impl LinuxLayout {
    /// The default layout re-rooted under one prefix — the shape used
    /// with [`crate::FakeFs`] trees and temp-dir tests.
    pub fn under(root: &str) -> Self {
        let root = root.trim_end_matches('/');
        LinuxLayout {
            cgroup_root: format!("{root}/sys/fs/cgroup/twig"),
            cpufreq_root: format!("{root}/sys/devices/system/cpu"),
            metrics_root: format!("{root}/run/twig"),
            energy_file: format!("{root}/sys/class/powercap/intel-rapl:0/energy_uj"),
        }
    }

    /// The `cpuset.cpus` file of a service's cgroup.
    pub fn cpuset_path(&self, service: &str) -> String {
        format!("{}/{service}/cpuset.cpus", self.cgroup_root)
    }

    /// A core's userspace-governor setpoint file. The backend reads the
    /// same file back for verification; a layout pointing read-back at
    /// `scaling_cur_freq` instead is a one-line change on a real kernel.
    pub fn freq_path(&self, core: usize) -> String {
        format!("{}/cpu{core}/cpufreq/scaling_setspeed", self.cpufreq_root)
    }

    /// A service's seq-stamped PMC sample file
    /// (`seq v0 .. v10`, the Table-I counters).
    pub fn pmc_path(&self, service: &str) -> String {
        format!("{}/{service}/pmc", self.metrics_root)
    }

    /// A service's seq-stamped latency-observable file
    /// (`seq offered_rps load_fraction p99_ms mean_ms completed dropped queue_len`).
    pub fn latency_path(&self, service: &str) -> String {
        format!("{}/{service}/latency", self.metrics_root)
    }
}

/// Configuration for [`LinuxPlatform`].
#[derive(Debug, Clone)]
pub struct LinuxConfig {
    /// File locations.
    pub layout: LinuxLayout,
    /// Number of physical cores.
    pub cores: usize,
    /// The DVFS ladder requests must stay on.
    pub dvfs: DvfsLadder,
    /// The hosted services, in assignment order.
    pub specs: Vec<ServiceSpec>,
    /// Bounded-retry budget for the reconciliation ladder (shared shape
    /// with the epoch scheduler's actuation deadlines).
    pub retry: RetryBudget,
}

impl LinuxConfig {
    /// A config with the default layout and the epoch scheduler's default
    /// retry budget.
    pub fn new(cores: usize, dvfs: DvfsLadder, specs: Vec<ServiceSpec>) -> Self {
        LinuxConfig {
            layout: LinuxLayout::default(),
            cores,
            dvfs,
            specs,
            retry: SchedulerConfig::default().retry_budget(),
        }
    }

    fn validate(&self) -> Result<(), PlatformError> {
        let fail = |detail: String| Err(PlatformError::Config { detail });
        if self.cores == 0 {
            return fail("cores must be positive".to_string());
        }
        if self.specs.is_empty() {
            return fail("at least one service is required".to_string());
        }
        let mut names = BTreeSet::new();
        for spec in &self.specs {
            let name = spec.name.as_str();
            let path_safe = !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
            if !path_safe {
                return fail(format!("service name {name:?} is not path-safe"));
            }
            if !names.insert(name) {
                return fail(format!("duplicate service name {name:?}"));
            }
        }
        Ok(())
    }
}

/// Lifetime counters of everything the backend did and survived. Each
/// field is mirrored 1:1 to a `platform.*` telemetry counter (see
/// [`PlatformStats::counters`]), which the chaos suite uses to check the
/// two bookkeeping paths never drift.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformStats {
    /// Epochs observed.
    pub epochs: u64,
    /// Individual `Fs::write` calls issued (including retries).
    pub writes: u64,
    /// Retry attempts taken after a failed write-verify.
    pub write_retries: u64,
    /// `Fs::write` calls that returned an error.
    pub write_errors: u64,
    /// Actuation targets verified only after at least one retry.
    pub reconciled: u64,
    /// Actuation targets still unverified after the retry budget.
    pub divergences: u64,
    /// cpufreq writes the governor clamped (accepted and reported).
    pub clamps: u64,
    /// Counter reads whose sequence stamp failed to advance.
    pub stale_counters: u64,
    /// Counter reads with unparsable or non-finite content.
    pub garbage_counters: u64,
    /// Counter reads that failed at the filesystem.
    pub missing_counters: u64,
    /// Energy readings that were unreadable or ran backwards.
    pub power_glitches: u64,
    /// Epochs whose report carried degraded telemetry health.
    pub degraded_epochs: u64,
}

impl PlatformStats {
    /// The stats as `(telemetry counter name, value)` pairs.
    pub fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("platform.epochs", self.epochs),
            ("platform.writes", self.writes),
            ("platform.write_retries", self.write_retries),
            ("platform.write_errors", self.write_errors),
            ("platform.reconciled", self.reconciled),
            ("platform.divergences", self.divergences),
            ("platform.clamps", self.clamps),
            ("platform.stale_counters", self.stale_counters),
            ("platform.garbage_counters", self.garbage_counters),
            ("platform.missing_counters", self.missing_counters),
            ("platform.power_glitches", self.power_glitches),
            ("platform.degraded_epochs", self.degraded_epochs),
        ]
    }
}

/// The last accepted latency observables for one service, reserved when
/// a counter read goes stale.
#[derive(Debug, Clone, Copy, Default)]
struct LatencyObs {
    offered_rps: f64,
    load_fraction: f64,
    p99_ms: f64,
    mean_ms: f64,
    completed: usize,
    dropped: u64,
    queue_len: usize,
}

enum WriteOutcome {
    Verified,
    Diverged,
}

enum ReadOutcome {
    Fresh(u64, Vec<f64>),
    Stale,
    Garbage,
    Missing,
}

/// The [`Platform`] over real (or faked) Linux control files.
///
/// # Examples
///
/// Driving the backend against a [`crate::FakeFs`] world:
///
/// ```
/// use twig_platform::{FakeFs, LinuxConfig, LinuxLayout, Platform, SimWorld};
/// use twig_sim::catalog;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut world = SimWorld::new(vec![catalog::masstree()], 42)?;
/// let mut platform = world.platform()?;
/// let all = twig_sim::Assignment::first_n(platform.cores(), platform.dvfs().max());
/// platform.actuate(&[all])?;
/// world.tick()?;
/// let report = platform.observe_epoch()?;
/// assert!(report.services[0].p99_ms.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinuxPlatform<F: Fs> {
    fs: F,
    config: LinuxConfig,
    telemetry: Telemetry,
    stats: PlatformStats,
    time_s: u64,
    energy_j: f64,
    last_energy_uj: Option<u64>,
    last_power_w: f64,
    applied: Vec<AppliedAssignment>,
    core_freq: Vec<Frequency>,
    prev_cores: Vec<BTreeSet<CoreId>>,
    pmc_seq: Vec<u64>,
    lat_seq: Vec<u64>,
    prev_pmcs: Vec<PmcSample>,
    prev_lat: Vec<LatencyObs>,
    diverged_this_epoch: bool,
    actuated: bool,
}

impl<F: Fs> LinuxPlatform<F> {
    /// Builds the backend over a filesystem handle. Reads the energy
    /// counter once to baseline power accounting (a missing counter is
    /// tolerated and baselined at the first successful read).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] for an invalid configuration.
    pub fn new(config: LinuxConfig, fs: F) -> Result<Self, PlatformError> {
        config.validate()?;
        let n = config.specs.len();
        let last_energy_uj = fs
            .read(&config.layout.energy_file)
            .ok()
            .and_then(|t| t.trim().parse().ok());
        Ok(LinuxPlatform {
            applied: vec![AppliedAssignment::verbatim(Vec::new(), config.dvfs.min()); n],
            core_freq: vec![config.dvfs.min(); config.cores],
            prev_cores: vec![BTreeSet::new(); n],
            pmc_seq: vec![0; n],
            lat_seq: vec![0; n],
            prev_pmcs: vec![PmcSample::default(); n],
            prev_lat: vec![LatencyObs::default(); n],
            fs,
            config,
            telemetry: Telemetry::disabled(),
            stats: PlatformStats::default(),
            time_s: 0,
            energy_j: 0.0,
            last_energy_uj,
            last_power_w: 0.0,
            diverged_this_epoch: false,
            actuated: false,
        })
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &LinuxConfig {
        &self.config
    }

    /// The filesystem handle (tests inspect the fake tree through it).
    pub fn fs(&self) -> &F {
        &self.fs
    }

    fn count(&mut self, name: &'static str, field: impl FnOnce(&mut PlatformStats) -> &mut u64) {
        *field(&mut self.stats) += 1;
        self.telemetry.counter_add(name, 1);
    }

    /// One rung-by-rung climb of the ladder for an exact-match file.
    fn write_verified(&mut self, path: &str, want: &str) -> WriteOutcome {
        for attempt in 0..=self.config.retry.max_retries {
            if attempt > 0 {
                self.count("platform.write_retries", |s| &mut s.write_retries);
            }
            self.count("platform.writes", |s| &mut s.writes);
            if self.fs.write(path, want).is_err() {
                self.count("platform.write_errors", |s| &mut s.write_errors);
                continue;
            }
            if matches!(self.fs.read(path), Ok(got) if got.trim() == want) {
                if attempt > 0 {
                    self.count("platform.reconciled", |s| &mut s.reconciled);
                }
                return WriteOutcome::Verified;
            }
        }
        WriteOutcome::Diverged
    }

    /// The ladder for one core's cpufreq setpoint. Returns the applied
    /// frequency, or `None` on divergence (last known setting stands).
    fn write_freq(&mut self, core: usize, want: Frequency) -> Option<Frequency> {
        let path = self.config.layout.freq_path(core);
        let want_khz = (u64::from(want.mhz()) * 1000).to_string();
        for attempt in 0..=self.config.retry.max_retries {
            if attempt > 0 {
                self.count("platform.write_retries", |s| &mut s.write_retries);
            }
            self.count("platform.writes", |s| &mut s.writes);
            if self.fs.write(&path, &want_khz).is_err() {
                self.count("platform.write_errors", |s| &mut s.write_errors);
                continue;
            }
            let Ok(got) = self.fs.read(&path) else {
                continue;
            };
            let got = got.trim();
            if got == want_khz {
                if attempt > 0 {
                    self.count("platform.reconciled", |s| &mut s.reconciled);
                }
                return Some(want);
            }
            if let Ok(khz) = got.parse::<u64>() {
                if khz * 1000 < u64::from(want.mhz()) * 1_000_000 {
                    // The governor clamped the setpoint: a policy
                    // decision, accepted and reported rather than fought.
                    self.count("platform.clamps", |s| &mut s.clamps);
                    let mhz = u32::try_from(khz / 1000).unwrap_or(u32::MAX);
                    return Some(self.config.dvfs.floor(Frequency::from_mhz(mhz)));
                }
            }
            // Garbage or above-request read-back: keep climbing.
        }
        None
    }

    fn diverge(&mut self) {
        self.count("platform.divergences", |s| &mut s.divergences);
        self.diverged_this_epoch = true;
    }

    /// Reads a `seq v0 v1 ...` stamped counter file.
    fn read_stamped(&self, path: &str, want: usize, last_seq: u64) -> ReadOutcome {
        let text = match self.fs.read(path) {
            Ok(text) => text,
            Err(_) => return ReadOutcome::Missing,
        };
        let mut tokens = text.split_whitespace();
        let Some(Ok(seq)) = tokens.next().map(str::parse::<u64>) else {
            return ReadOutcome::Garbage;
        };
        let values: Option<Vec<f64>> = tokens
            .map(|t| t.parse::<f64>().ok().filter(|v| v.is_finite()))
            .collect();
        match values {
            Some(values) if values.len() == want => {
                if seq > last_seq {
                    ReadOutcome::Fresh(seq, values)
                } else {
                    ReadOutcome::Stale
                }
            }
            _ => ReadOutcome::Garbage,
        }
    }

    fn actuate_impl(&mut self, assignments: &[Assignment]) -> Result<(), PlatformError> {
        let n = self.config.specs.len();
        if assignments.len() != n {
            return Err(PlatformError::Protocol {
                detail: format!("{} assignments for {n} services", assignments.len()),
            });
        }
        for a in assignments {
            if self.config.dvfs.index_of(a.freq).is_err() {
                return Err(PlatformError::Config {
                    detail: format!("requested frequency {} MHz is off the ladder", a.freq.mhz()),
                });
            }
            if let Some(c) = a.cores.iter().find(|c| c.index() >= self.config.cores) {
                return Err(PlatformError::Config {
                    detail: format!("core {} out of range", c.index()),
                });
            }
        }
        self.diverged_this_epoch = false;

        // Phase 1: per-service cpusets, write-verify-retried.
        let mut applied_cores: Vec<Vec<CoreId>> = Vec::with_capacity(n);
        let mut rejected = vec![false; n];
        for (i, a) in assignments.iter().enumerate() {
            let desired: Vec<CoreId> = a
                .cores
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if desired.is_empty() {
                // Nothing to actuate: an empty cpuset would evict the
                // cgroup, so the file is left alone.
                applied_cores.push(Vec::new());
                continue;
            }
            let path = self.config.layout.cpuset_path(&self.config.specs[i].name);
            let want = cpulist::emit(&desired);
            match self.write_verified(&path, &want) {
                WriteOutcome::Verified => applied_cores.push(desired),
                WriteOutcome::Diverged => {
                    self.diverge();
                    rejected[i] = true;
                    // The OS's read-back is the applied truth when it
                    // parses; otherwise the last known state stands.
                    let fallback = self.applied[i].cores.clone();
                    let cores = self
                        .fs
                        .read(&path)
                        .ok()
                        .and_then(|text| cpulist::parse(&text).ok())
                        .filter(|cs| cs.iter().all(|c| c.index() < self.config.cores))
                        .unwrap_or(fallback);
                    applied_cores.push(cores);
                }
            }
        }

        // Phase 2: per-core DVFS, max-arbitrated across the services
        // that landed on the core (cpufreq is per-core, requests are
        // per-service).
        let mut target: Vec<Option<Frequency>> = vec![None; self.config.cores];
        for (i, a) in assignments.iter().enumerate() {
            for c in &applied_cores[i] {
                let t = target[c.index()].get_or_insert(a.freq);
                if a.freq > *t {
                    *t = a.freq;
                }
            }
        }
        for (core, slot) in target.iter().enumerate() {
            let Some(want) = *slot else { continue };
            match self.write_freq(core, want) {
                Some(applied) => self.core_freq[core] = applied,
                None => self.diverge(), // last known setting stands
            }
        }

        // The per-service applied record: the slowest of the service's
        // cores bounds its effective frequency.
        let new_applied: Vec<AppliedAssignment> = assignments
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let cores = applied_cores[i].clone();
                let slowest = cores
                    .iter()
                    .map(|c| self.core_freq[c.index()])
                    .min()
                    .unwrap_or(a.freq);
                let freq = slowest.min(a.freq);
                AppliedAssignment {
                    freq,
                    clamped: freq < a.freq,
                    rejected: rejected[i],
                    cores_lost_offline: 0,
                    cores,
                }
            })
            .collect();
        self.applied = new_applied;
        self.actuated = true;
        Ok(())
    }

    fn observe_impl(&mut self) -> Result<EpochReport, PlatformError> {
        if !self.actuated {
            return Err(PlatformError::Protocol {
                detail: "observe_epoch without a prior actuate".to_string(),
            });
        }
        self.actuated = false;
        let n = self.config.specs.len();
        let mut health = TelemetryHealth::clean(n);

        // Counter files: a fresh sequence stamp advances the cache; any
        // other outcome serves the previous sample and flags the service.
        for i in 0..n {
            let name = self.config.specs[i].name.clone();
            let outcome = self.read_stamped(
                &self.config.layout.pmc_path(&name),
                NUM_COUNTERS,
                self.pmc_seq[i],
            );
            match outcome {
                ReadOutcome::Fresh(seq, values) => {
                    self.pmc_seq[i] = seq;
                    let mut sample = [0.0; NUM_COUNTERS];
                    sample.copy_from_slice(&values);
                    self.prev_pmcs[i] = PmcSample::from_array(sample);
                }
                ReadOutcome::Stale => {
                    self.count("platform.stale_counters", |s| &mut s.stale_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
                ReadOutcome::Garbage => {
                    self.count("platform.garbage_counters", |s| &mut s.garbage_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
                ReadOutcome::Missing => {
                    self.count("platform.missing_counters", |s| &mut s.missing_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
            }
            let outcome =
                self.read_stamped(&self.config.layout.latency_path(&name), 7, self.lat_seq[i]);
            match outcome {
                ReadOutcome::Fresh(seq, v) => {
                    self.lat_seq[i] = seq;
                    self.prev_lat[i] = LatencyObs {
                        offered_rps: v[0],
                        load_fraction: v[1],
                        p99_ms: v[2],
                        mean_ms: v[3],
                        completed: v[4].max(0.0) as usize,
                        dropped: v[5].max(0.0) as u64,
                        queue_len: v[6].max(0.0) as usize,
                    };
                }
                ReadOutcome::Stale => {
                    self.count("platform.stale_counters", |s| &mut s.stale_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
                ReadOutcome::Garbage => {
                    self.count("platform.garbage_counters", |s| &mut s.garbage_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
                ReadOutcome::Missing => {
                    self.count("platform.missing_counters", |s| &mut s.missing_counters);
                    health.pmc_faults[i] = Some(PmcFaultKind::Stale);
                }
            }
        }

        // Energy: cumulative microjoules; one epoch is one second, so
        // power is just the delta. Backwards or unreadable counters keep
        // the last power reading and flag the glitch.
        match self
            .fs
            .read(&self.config.layout.energy_file)
            .ok()
            .and_then(|t| t.trim().parse::<u64>().ok())
        {
            Some(uj) => match self.last_energy_uj {
                Some(prev) if uj >= prev => {
                    self.last_power_w = (uj - prev) as f64 / 1e6;
                    self.last_energy_uj = Some(uj);
                }
                Some(_) => {
                    self.count("platform.power_glitches", |s| &mut s.power_glitches);
                    health.power_glitched = true;
                    self.last_energy_uj = Some(uj); // resync after the wrap
                }
                None => self.last_energy_uj = Some(uj),
            },
            None => {
                self.count("platform.power_glitches", |s| &mut s.power_glitches);
                health.power_glitched = true;
            }
        }
        self.energy_j += self.last_power_w;

        // Unreconciled actuations route the epoch to the governor's
        // degraded path.
        if self.diverged_this_epoch {
            health.delayed_epochs = 1;
        }
        if health.degraded() {
            self.count("platform.degraded_epochs", |s| &mut s.degraded_epochs);
        }

        let mut services = Vec::with_capacity(n);
        let mut migrations = 0;
        for i in 0..n {
            let cores: BTreeSet<CoreId> = self.applied[i].cores.iter().copied().collect();
            let migrated = cores.symmetric_difference(&self.prev_cores[i]).count();
            migrations += migrated;
            self.prev_cores[i] = cores;
            let lat = self.prev_lat[i];
            services.push(ServiceEpoch {
                name: self.config.specs[i].name.clone(),
                offered_rps: lat.offered_rps,
                load_fraction: lat.load_fraction,
                p99_ms: lat.p99_ms,
                mean_ms: lat.mean_ms,
                completed: lat.completed,
                dropped: lat.dropped,
                queue_len: lat.queue_len,
                pmcs: self.prev_pmcs[i],
                core_count: self.applied[i].cores.len(),
                freq: self.applied[i].freq,
                migrated_cores: migrated,
            });
        }

        self.count("platform.epochs", |s| &mut s.epochs);
        let report = EpochReport {
            time_s: self.time_s,
            services,
            power_w: self.last_power_w,
            true_power_w: self.last_power_w,
            energy_j: self.energy_j,
            migrations,
            actuation: self.applied.clone(),
            telemetry: health,
        };
        self.time_s += 1;
        Ok(report)
    }
}

impl<F: Fs> Platform for LinuxPlatform<F> {
    fn cores(&self) -> usize {
        self.config.cores
    }

    fn dvfs(&self) -> &DvfsLadder {
        &self.config.dvfs
    }

    fn specs(&self) -> &[ServiceSpec] {
        &self.config.specs
    }

    fn actuate(&mut self, assignments: &[Assignment]) -> Result<(), PlatformError> {
        self.actuate_impl(assignments)
    }

    fn observe_epoch(&mut self) -> Result<EpochReport, PlatformError> {
        self.observe_impl()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::FakeFs;
    use crate::fault::{OsFaultConfig, OsFaultPlan};
    use twig_sim::catalog;

    fn config(fs: &FakeFs) -> LinuxConfig {
        let mut config = LinuxConfig::new(
            8,
            DvfsLadder::default(),
            vec![catalog::masstree(), catalog::moses()],
        );
        config.layout = LinuxLayout::under("/fake");
        // Seed the world the exporters would maintain.
        for (i, spec) in config.specs.iter().enumerate() {
            fs.seed_file(
                &config.layout.pmc_path(&spec.name),
                &format!("1 {}", ["0.5"; NUM_COUNTERS].join(" ")),
            );
            fs.seed_file(
                &config.layout.latency_path(&spec.name),
                &format!("1 1000 0.25 {}.5 1.0 900 0 3", i + 2),
            );
        }
        fs.seed_file(&config.layout.energy_file, "0");
        config
    }

    fn all_cores(platform: &LinuxPlatform<FakeFs>) -> Assignment {
        Assignment::first_n(4, platform.config().dvfs.max())
    }

    fn advance_world(fs: &FakeFs, config: &LinuxConfig, seq: u64, energy_uj: u64) {
        for spec in &config.specs {
            fs.seed_file(
                &config.layout.pmc_path(&spec.name),
                &format!("{seq} {}", ["0.7"; NUM_COUNTERS].join(" ")),
            );
            fs.seed_file(
                &config.layout.latency_path(&spec.name),
                &format!("{seq} 1200 0.3 4.5 1.2 1100 2 5"),
            );
        }
        fs.seed_file(&config.layout.energy_file, &energy_uj.to_string());
    }

    #[test]
    fn calm_epoch_applies_verbatim_and_reads_fresh_counters() {
        let fs = FakeFs::new();
        let config = config(&fs);
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let a = all_cores(&platform);
        let b = Assignment::new(vec![CoreId(4), CoreId(5)], platform.config().dvfs.min());
        platform.actuate_impl(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(
            fs.read_raw(&config.layout.cpuset_path("masstree")).unwrap(),
            "0-3"
        );
        assert_eq!(
            fs.read_raw(&config.layout.cpuset_path("moses")).unwrap(),
            "4-5"
        );
        advance_world(&fs, &config, 2, 95_000_000);
        let report = platform.observe_impl().unwrap();
        assert!(report.actuation.iter().all(|ap| !ap.diverged()));
        assert!(!report.telemetry.degraded());
        assert_eq!(report.services[0].completed, 1100);
        assert!((report.power_w - 95.0).abs() < 1e-9);
        assert_eq!(report.migrations, 6);
        assert_eq!(platform.stats().divergences, 0);
    }

    #[test]
    fn shared_core_takes_the_faster_request() {
        let fs = FakeFs::new();
        let config = config(&fs);
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let fast = Assignment::new(vec![CoreId(0)], platform.config().dvfs.max());
        let slow = Assignment::new(vec![CoreId(0)], platform.config().dvfs.min());
        platform.actuate_impl(&[fast, slow]).unwrap();
        let max_khz = u64::from(config.dvfs.max().mhz()) * 1000;
        assert_eq!(
            fs.read_raw(&config.layout.freq_path(0)).unwrap(),
            max_khz.to_string()
        );
        // The slow service is reported at its own request, not the
        // core's faster arbitration result.
        assert_eq!(platform.applied[1].freq, config.dvfs.min());
        assert!(!platform.applied[1].clamped);
    }

    #[test]
    fn eperm_storm_exhausts_the_budget_and_routes_to_the_governor() {
        let fs = FakeFs::new();
        let config = config(&fs);
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpuset_eperm_rate: 1.0,
                    cpufreq_eperm_rate: 1.0,
                    ..OsFaultConfig::default()
                },
                9,
            )
            .unwrap(),
        );
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let a = all_cores(&platform);
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        // Both cpusets rejected; the four contested cores diverge too.
        assert!(platform.applied.iter().all(|ap| ap.rejected));
        assert!(platform.applied.iter().all(|ap| ap.cores.is_empty()));
        advance_world(&fs, &config, 2, 1_000_000);
        let report = platform.observe_impl().unwrap();
        assert_eq!(report.telemetry.delayed_epochs, 1);
        assert!(report.telemetry.degraded());
        let stats = platform.stats();
        assert_eq!(stats.divergences, 2, "one per unverified cpuset");
        assert_eq!(stats.write_errors, stats.writes);
        assert_eq!(stats.degraded_epochs, 1);
    }

    #[test]
    fn governor_clamp_is_accepted_and_reported() {
        let fs = FakeFs::new();
        let config = config(&fs);
        fs.set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpufreq_clamp_rate: 1.0,
                    cpufreq_floor_khz: 1_200_000,
                    ..OsFaultConfig::default()
                },
                9,
            )
            .unwrap(),
        );
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let a = all_cores(&platform);
        let floor = config.dvfs.min();
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        assert!(platform.applied.iter().all(|ap| ap.clamped));
        assert_eq!(platform.applied[0].freq, floor);
        assert_eq!(platform.stats().clamps as usize, 4, "one per core");
        assert_eq!(
            platform.stats().divergences,
            0,
            "clamps are not divergences"
        );
    }

    #[test]
    fn stale_counters_serve_the_previous_sample() {
        let fs = FakeFs::new();
        let config = config(&fs);
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let a = all_cores(&platform);
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        advance_world(&fs, &config, 2, 1_000_000);
        let first = platform.observe_impl().unwrap();
        assert!(!first.telemetry.degraded());
        // The exporter hangs: stamps stop advancing.
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        let second = platform.observe_impl().unwrap();
        assert!(second.telemetry.pmc_faults.iter().all(Option::is_some));
        assert_eq!(second.services[0].pmcs, first.services[0].pmcs);
        assert_eq!(second.services[0].completed, first.services[0].completed);
        assert_eq!(
            platform.stats().stale_counters,
            4,
            "pmc + latency per service"
        );
        assert_eq!(platform.stats().degraded_epochs, 1);
    }

    #[test]
    fn backwards_energy_is_a_power_glitch() {
        let fs = FakeFs::new();
        let config = config(&fs);
        let mut platform = LinuxPlatform::new(config.clone(), fs.clone()).unwrap();
        let a = all_cores(&platform);
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        advance_world(&fs, &config, 2, 50_000_000);
        let first = platform.observe_impl().unwrap();
        assert!((first.power_w - 50.0).abs() < 1e-9);
        platform.actuate_impl(&[a.clone(), a.clone()]).unwrap();
        advance_world(&fs, &config, 3, 10); // RAPL wrapped
        let second = platform.observe_impl().unwrap();
        assert!(second.telemetry.power_glitched);
        assert!(
            (second.power_w - 50.0).abs() < 1e-9,
            "keeps the last reading"
        );
        assert_eq!(platform.stats().power_glitches, 1);
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let fs = FakeFs::new();
        let mut bad = LinuxConfig::new(0, DvfsLadder::default(), vec![catalog::masstree()]);
        assert!(LinuxPlatform::new(bad.clone(), fs.clone()).is_err());
        bad.cores = 8;
        bad.specs[0].name = "a/b".to_string();
        assert!(LinuxPlatform::new(bad, fs.clone()).is_err());
        let config = config(&fs);
        let mut platform = LinuxPlatform::new(config, fs).unwrap();
        let off_ladder = Assignment::new(vec![CoreId(0)], Frequency::from_mhz(1234));
        assert!(platform
            .actuate_impl(&[off_ladder.clone(), off_ladder])
            .is_err());
    }
}
