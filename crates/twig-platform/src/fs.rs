//! The tiny filesystem abstraction [`LinuxPlatform`](crate::LinuxPlatform)
//! is written against.
//!
//! Every OS interaction of the Linux backend — cgroup-v2 `cpuset.cpus`
//! writes, cpufreq sysfs writes, `/proc`-style counter reads — goes
//! through [`Fs`]: two methods, whole-file string reads and writes, which
//! is exactly the sysfs/procfs contract (small text files, one value per
//! file, rewritten atomically). [`RealFs`] maps the trait onto `std::fs`
//! for a real kernel; [`FakeFs`](crate::FakeFs) provides an in-memory
//! procfs/sysfs tree with seeded fault injection so everything above this
//! seam is compiled and tested offline, root-free and network-free.

use std::fmt;

/// Errno-shaped failure classes for the small-file operations sysfs and
/// cgroupfs actually exhibit. The reconciliation ladder treats all of
/// them as retryable — EPERM flaps (delegation races), EBUSY clears, and
/// ENOENT can be a cgroup mid-rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: the file does not exist (yet, or any more).
    NotFound,
    /// EPERM/EACCES: the write was rejected by permissions.
    PermissionDenied,
    /// EBUSY: the file is transiently locked (cgroup migration in flight).
    Busy,
    /// Anything else.
    Io,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "not found (ENOENT)"),
            FsError::PermissionDenied => write!(f, "permission denied (EPERM)"),
            FsError::Busy => write!(f, "busy (EBUSY)"),
            FsError::Io => write!(f, "i/o error"),
        }
    }
}

impl std::error::Error for FsError {}

/// Whole-file string reads and writes on a procfs/sysfs-shaped tree.
///
/// `&self` receivers throughout: a filesystem is shared mutable state by
/// nature (the OS mutates it underneath you), so implementations use
/// interior mutability and handles stay freely cloneable.
pub trait Fs {
    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an [`FsError`] classifying the failure.
    fn read(&self, path: &str) -> Result<String, FsError>;

    /// Replaces the whole file at `path` with `contents`.
    ///
    /// # Errors
    ///
    /// Returns an [`FsError`] classifying the failure.
    fn write(&self, path: &str, contents: &str) -> Result<(), FsError>;
}

/// The real thing: `std::fs` with errno classification. Only useful on an
/// actual Linux host with cgroup-v2 delegation and cpufreq userspace
/// governors set up; nothing in the workspace's tests touches it beyond
/// temp-dir round-trips.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

fn classify(e: &std::io::Error) -> FsError {
    match e.kind() {
        std::io::ErrorKind::NotFound => FsError::NotFound,
        std::io::ErrorKind::PermissionDenied => FsError::PermissionDenied,
        _ => FsError::Io,
    }
}

impl Fs for RealFs {
    fn read(&self, path: &str) -> Result<String, FsError> {
        std::fs::read_to_string(path).map_err(|e| classify(&e))
    }

    fn write(&self, path: &str, contents: &str) -> Result<(), FsError> {
        std::fs::write(path, contents).map_err(|e| classify(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_round_trips_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!("twig-platform-fs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cpuset.cpus");
        let path = path.to_str().unwrap();
        let fs = RealFs;
        fs.write(path, "0-3,8").unwrap();
        assert_eq!(fs.read(path).unwrap(), "0-3,8");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_classifies_missing_files() {
        let fs = RealFs;
        assert_eq!(
            fs.read("/nonexistent/twig/cpuset.cpus"),
            Err(FsError::NotFound)
        );
    }
}
