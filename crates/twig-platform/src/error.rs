//! Error types for the platform layer.

use crate::fs::FsError;
use twig_sim::SimError;

/// Anything the platform layer can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A configuration was rejected at construction.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// A filesystem operation failed in a way the reconciliation ladder
    /// could not absorb (construction-time seeding, mostly — runtime
    /// faults are reconciled or reported, never raised).
    Fs {
        /// The path the operation targeted.
        path: String,
        /// The underlying filesystem error.
        source: FsError,
    },
    /// The wrapped simulator failed.
    Sim(SimError),
    /// The actuate/observe protocol was violated (e.g. observing an epoch
    /// that was never actuated on a platform that requires the pairing).
    Protocol {
        /// What was out of order.
        detail: String,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Config { detail } => write!(f, "invalid platform config: {detail}"),
            PlatformError::Fs { path, source } => write!(f, "fs error on {path}: {source}"),
            PlatformError::Sim(e) => write!(f, "simulator error: {e}"),
            PlatformError::Protocol { detail } => write!(f, "platform protocol error: {detail}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<SimError> for PlatformError {
    fn from(e: SimError) -> Self {
        PlatformError::Sim(e)
    }
}
