//! The Linux cpulist codec: the `"0-3,8,10-11"` format of cgroup-v2
//! `cpuset.cpus` and `/sys/devices/system/cpu/online`.
//!
//! Every cpuset write the Linux backend makes goes through [`emit`], and
//! every read-back verification through [`parse`] — so the codec is the
//! gate that decides whether an actuation is considered applied. It is
//! therefore strict: [`parse`] rejects empty lists, malformed tokens,
//! reversed ranges and overlapping CPUs with typed errors, and [`emit`]
//! produces the unique canonical form (ascending, maximally merged
//! ranges), giving a parse/emit fixed point the property tests pin down.

use twig_sim::CoreId;

/// Why a cpulist string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuListError {
    /// The string was empty (or all whitespace). An empty cpuset is a
    /// valid kernel state but never a valid Twig actuation.
    Empty,
    /// A token was not a number or `a-b` range.
    BadToken {
        /// The offending token.
        token: String,
    },
    /// A range ran backwards (`5-3`).
    ReversedRange {
        /// Range start.
        start: usize,
        /// Range end (smaller than start).
        end: usize,
    },
    /// A CPU appeared more than once (`1,1` or `3-5,4`).
    Overlap {
        /// The CPU that was already present.
        cpu: usize,
    },
}

impl std::fmt::Display for CpuListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuListError::Empty => write!(f, "empty cpulist"),
            CpuListError::BadToken { token } => write!(f, "bad cpulist token {token:?}"),
            CpuListError::ReversedRange { start, end } => {
                write!(f, "reversed cpulist range {start}-{end}")
            }
            CpuListError::Overlap { cpu } => write!(f, "cpu {cpu} appears twice in cpulist"),
        }
    }
}

impl std::error::Error for CpuListError {}

/// Parses a cpulist into ascending, duplicate-free core ids.
///
/// # Errors
///
/// Returns a typed [`CpuListError`] for empty input, malformed tokens,
/// reversed ranges or overlapping CPUs.
///
/// # Examples
///
/// ```
/// use twig_platform::cpulist;
///
/// let cores = cpulist::parse("0-3,8,10-11").unwrap();
/// assert_eq!(cores.iter().map(|c| c.index()).collect::<Vec<_>>(), [0, 1, 2, 3, 8, 10, 11]);
/// assert!(cpulist::parse("5-3").is_err());
/// assert!(cpulist::parse("").is_err());
/// ```
pub fn parse(s: &str) -> Result<Vec<CoreId>, CpuListError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(CpuListError::Empty);
    }
    let number = |tok: &str| -> Result<usize, CpuListError> {
        // Strict decimal: no signs, no whitespace, no leading '+'.
        if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
            return Err(CpuListError::BadToken {
                token: tok.to_string(),
            });
        }
        tok.parse().map_err(|_| CpuListError::BadToken {
            token: tok.to_string(),
        })
    };
    let mut seen = std::collections::BTreeSet::new();
    for token in s.split(',') {
        let (lo, hi) = match token.split_once('-') {
            None => {
                let v = number(token)?;
                (v, v)
            }
            Some((a, b)) => {
                let lo = number(a)?;
                let hi = number(b)?;
                if hi < lo {
                    return Err(CpuListError::ReversedRange { start: lo, end: hi });
                }
                (lo, hi)
            }
        };
        for cpu in lo..=hi {
            if !seen.insert(cpu) {
                return Err(CpuListError::Overlap { cpu });
            }
        }
    }
    Ok(seen.into_iter().map(CoreId).collect())
}

/// Emits the canonical cpulist for a set of cores: ascending order,
/// duplicates collapsed, maximal `a-b` ranges (a single CPU stays bare;
/// a two-CPU run is written `a-b`, matching the kernel's emitter). An
/// empty set emits an empty string — callers must treat that as "nothing
/// to actuate", since [`parse`] will not round-trip it.
///
/// # Examples
///
/// ```
/// use twig_platform::cpulist;
/// use twig_sim::CoreId;
///
/// let cores: Vec<CoreId> = [11, 10, 3, 0, 1, 2, 8].into_iter().map(CoreId).collect();
/// assert_eq!(cpulist::emit(&cores), "0-3,8,10-11");
/// assert_eq!(cpulist::emit(&[]), "");
/// ```
pub fn emit(cores: &[CoreId]) -> String {
    let sorted: std::collections::BTreeSet<usize> = cores.iter().map(|c| c.index()).collect();
    let mut out = String::new();
    let mut run: Option<(usize, usize)> = None;
    let flush = |out: &mut String, (lo, hi): (usize, usize)| {
        if !out.is_empty() {
            out.push(',');
        }
        if lo == hi {
            out.push_str(&lo.to_string());
        } else {
            out.push_str(&format!("{lo}-{hi}"));
        }
    };
    for cpu in sorted {
        run = match run {
            None => Some((cpu, cpu)),
            Some((lo, hi)) if cpu == hi + 1 => Some((lo, cpu)),
            Some(done) => {
                flush(&mut out, done);
                Some((cpu, cpu))
            }
        };
    }
    if let Some(done) = run {
        flush(&mut out, done);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn parses_singletons_ranges_and_mixes() {
        let idx = |s: &str| {
            parse(s)
                .unwrap()
                .iter()
                .map(|c| c.index())
                .collect::<Vec<_>>()
        };
        assert_eq!(idx("0"), [0]);
        assert_eq!(idx("7-7"), [7]);
        assert_eq!(idx("0-2"), [0, 1, 2]);
        assert_eq!(idx(" 4,2-3 \n"), [2, 3, 4]);
        assert_eq!(idx("10-11,0-3,8"), [0, 1, 2, 3, 8, 10, 11]);
    }

    #[test]
    fn rejections_are_typed() {
        assert_eq!(parse(""), Err(CpuListError::Empty));
        assert_eq!(parse("  \n"), Err(CpuListError::Empty));
        assert_eq!(
            parse("5-3"),
            Err(CpuListError::ReversedRange { start: 5, end: 3 })
        );
        assert_eq!(parse("1,1"), Err(CpuListError::Overlap { cpu: 1 }));
        assert_eq!(parse("3-5,4"), Err(CpuListError::Overlap { cpu: 4 }));
        assert_eq!(parse("0-2,1-8"), Err(CpuListError::Overlap { cpu: 1 }));
        for bad in ["x", "1,", ",1", "1--2", "-1", "1-", "+2", "1 2", "0x3"] {
            assert!(
                matches!(parse(bad), Err(CpuListError::BadToken { .. })),
                "{bad:?} should be a BadToken"
            );
        }
    }

    #[test]
    fn emit_is_canonical() {
        assert_eq!(emit(&[CoreId(0), CoreId(1)]), "0-1");
        assert_eq!(emit(&[CoreId(2), CoreId(0)]), "0,2");
        assert_eq!(emit(&[CoreId(5), CoreId(5)]), "5");
        assert_eq!(emit(&(0..18).map(CoreId).collect::<Vec<_>>()), "0-17");
    }

    /// Property: emit → parse is the identity on sorted duplicate-free
    /// core sets, for random subsets of a 64-CPU socket.
    #[test]
    fn random_round_trip_emit_then_parse() {
        let mut rng = Xoshiro256::seed_from_u64(0xC0DE);
        for _ in 0..500 {
            let mut cores: Vec<CoreId> =
                (0..64).filter(|_| rng.next_bool(0.3)).map(CoreId).collect();
            if cores.is_empty() {
                cores.push(CoreId(rng.range_usize(0, 64)));
            }
            let text = emit(&cores);
            let back = parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(back, cores, "round trip broke for {text:?}");
            // Parse → emit is also a fixed point: the emitted form is
            // canonical.
            assert_eq!(emit(&back), text);
        }
    }

    /// Property: any valid cpulist — even unsorted, with redundant range
    /// splits — parses, and re-emitting canonicalizes it idempotently.
    #[test]
    fn random_noncanonical_inputs_canonicalize() {
        let mut rng = Xoshiro256::seed_from_u64(0xBEEF);
        for _ in 0..500 {
            // Build disjoint segments then shuffle their text order.
            let mut segs: Vec<String> = Vec::new();
            let mut cpu = rng.range_usize(0, 4);
            let mut all = Vec::new();
            while cpu < 96 && segs.len() < 8 {
                let len = rng.range_usize(1, 5);
                let hi = cpu + len - 1;
                segs.push(if len == 1 {
                    cpu.to_string()
                } else {
                    format!("{cpu}-{hi}")
                });
                all.extend((cpu..=hi).map(CoreId));
                cpu = hi + 1 + rng.range_usize(1, 6);
            }
            rng.shuffle(&mut segs);
            let text = segs.join(",");
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(parsed, all);
            let canon = emit(&parsed);
            assert_eq!(parse(&canon).unwrap(), all);
            assert_eq!(emit(&parse(&canon).unwrap()), canon, "emit not idempotent");
        }
    }

    /// Property: corrupting a canonical list with a duplicate CPU or a
    /// reversed range is always rejected with the matching typed error.
    #[test]
    fn random_corruptions_are_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(0xFEED);
        for _ in 0..500 {
            let cores: Vec<CoreId> = (0..32).filter(|_| rng.next_bool(0.4)).map(CoreId).collect();
            if cores.is_empty() {
                continue;
            }
            let text = emit(&cores);
            let victim = cores[rng.range_usize(0, cores.len())].index();
            match rng.range_usize(0, 3) {
                0 => {
                    // Duplicate an existing CPU.
                    let bad = format!("{text},{victim}");
                    assert_eq!(parse(&bad), Err(CpuListError::Overlap { cpu: victim }));
                }
                1 => {
                    // Append a reversed range.
                    let hi = victim + 1 + rng.range_usize(1, 4);
                    let bad = format!("{text},{hi}-{victim}");
                    assert_eq!(
                        parse(&bad),
                        Err(CpuListError::ReversedRange {
                            start: hi,
                            end: victim,
                        })
                    );
                }
                _ => {
                    // Splice in a garbage token.
                    let bad = format!("{text},x{victim}");
                    assert!(matches!(parse(&bad), Err(CpuListError::BadToken { .. })));
                }
            }
        }
    }
}
