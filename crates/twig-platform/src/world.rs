//! [`SimWorld`]: the ground-truth machine behind a [`FakeFs`] tree.
//!
//! The chaos suite needs a *closed loop*: the [`crate::LinuxPlatform`]
//! writes cpusets and setpoints into the fake sysfs, and something must
//! play the role of the kernel-plus-services — run the workload on
//! whatever actually landed in those files and publish fresh counter
//! files for the next observation. `SimWorld` is that something, wrapping
//! a [`twig_sim::Server`] as the physics engine:
//!
//! 1. the platform [`actuate`](crate::Platform::actuate)s into the tree
//!    (possibly mangled by the [`crate::OsFaultPlan`]);
//! 2. [`SimWorld::tick`] reads the *committed* tree raw — the same
//!    partial, clamped, delayed state the faults produced — steps the
//!    simulator on it, stamps the counter files with a fresh sequence
//!    number, and commits delayed writes via [`FakeFs::advance_epoch`];
//! 3. the platform [`observe_epoch`](crate::Platform::observe_epoch)s
//!    and reconciles what it reads against what it asked for.
//!
//! The returned ground-truth report lets tests compare what the platform
//! *believed* against what the machine *did*.

use crate::cpulist;
use crate::fake::FakeFs;
use crate::linux::{LinuxConfig, LinuxLayout, LinuxPlatform};
use crate::PlatformError;
use twig_sim::{Assignment, CoreId, EpochReport, Server, ServerConfig, ServiceSpec};

/// A simulated machine publishing its state through a [`FakeFs`] sysfs
/// tree, for closed-loop testing of the Linux backend.
#[derive(Debug, Clone)]
pub struct SimWorld {
    server: Server,
    fs: FakeFs,
    layout: LinuxLayout,
    seq: u64,
    last_good: Vec<Assignment>,
}

impl SimWorld {
    /// A world with the default server configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn new(specs: Vec<ServiceSpec>, seed: u64) -> Result<Self, PlatformError> {
        SimWorld::with_config(ServerConfig::default(), specs, seed)
    }

    /// A world with an explicit server configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn with_config(
        config: ServerConfig,
        specs: Vec<ServiceSpec>,
        seed: u64,
    ) -> Result<Self, PlatformError> {
        let server = Server::new(config, specs, seed)?;
        let fs = FakeFs::new();
        let layout = LinuxLayout::under("/fake");
        let cores = server.config().cores;
        let dvfs = server.config().dvfs.clone();
        // Boot state: every service spans the socket at the maximum
        // setting — the same safe-by-default posture the governor's
        // fallback uses.
        let all = Assignment::first_n(cores, dvfs.max());
        let last_good = vec![all.clone(); server.specs().len()];
        for spec in server.specs() {
            fs.seed_file(&layout.cpuset_path(&spec.name), &cpulist::emit(&all.cores));
            fs.seed_file(&layout.pmc_path(&spec.name), "0");
            fs.seed_file(&layout.latency_path(&spec.name), "0");
        }
        let max_khz = (u64::from(dvfs.max().mhz()) * 1000).to_string();
        for core in 0..cores {
            fs.seed_file(&layout.freq_path(core), &max_khz);
        }
        fs.seed_file(&layout.energy_file, "0");
        Ok(SimWorld {
            server,
            fs,
            layout,
            seq: 0,
            last_good,
        })
    }

    /// A [`LinuxPlatform`] wired to this world's tree and layout.
    ///
    /// # Errors
    ///
    /// Propagates [`LinuxPlatform::new`] validation errors.
    pub fn platform(&self) -> Result<LinuxPlatform<FakeFs>, PlatformError> {
        let mut config = LinuxConfig::new(
            self.server.config().cores,
            self.server.config().dvfs.clone(),
            self.server.specs().to_vec(),
        );
        config.layout = self.layout.clone();
        LinuxPlatform::new(config, self.fs.clone())
    }

    /// The shared filesystem handle (install fault plans here).
    pub fn fs(&self) -> &FakeFs {
        &self.fs
    }

    /// The file layout the world publishes under.
    pub fn layout(&self) -> &LinuxLayout {
        &self.layout
    }

    /// The ground-truth simulator.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable simulator access (loads, churn, timing plans).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// What one service's control files actually say right now: the
    /// committed cpuset, and its effective frequency (slowest of its
    /// cores' setpoints, floored to the ladder).
    fn applied_from_files(&self, index: usize) -> Assignment {
        let spec = &self.server.specs()[index];
        let cores_in_range =
            |cs: &Vec<CoreId>| cs.iter().all(|c| c.index() < self.server.config().cores);
        let cores = self
            .fs
            .read_raw(&self.layout.cpuset_path(&spec.name))
            .and_then(|text| cpulist::parse(&text).ok())
            .filter(cores_in_range)
            .unwrap_or_else(|| self.last_good[index].cores.clone());
        let dvfs = &self.server.config().dvfs;
        let freq = cores
            .iter()
            .filter_map(|c| {
                let khz: u64 = self
                    .fs
                    .read_raw(&self.layout.freq_path(c.index()))?
                    .trim()
                    .parse()
                    .ok()?;
                let mhz = u32::try_from(khz / 1000).unwrap_or(u32::MAX);
                Some(dvfs.floor(twig_sim::Frequency::from_mhz(mhz)))
            })
            .min()
            .unwrap_or(self.last_good[index].freq);
        Assignment::new(cores, freq)
    }

    /// Runs one epoch of physics on whatever the control files say, then
    /// publishes fresh counter files and commits delayed writes. Returns
    /// the ground-truth report.
    ///
    /// # Errors
    ///
    /// Propagates simulator step errors (the file-derived assignments are
    /// range-checked and ladder-floored, so this is unexpected).
    pub fn tick(&mut self) -> Result<EpochReport, PlatformError> {
        let n = self.server.specs().len();
        let assignments: Vec<Assignment> = (0..n).map(|i| self.applied_from_files(i)).collect();
        let report = self.server.step(&assignments)?;
        self.last_good = assignments;
        self.seq += 1;
        for (i, svc) in report.services.iter().enumerate() {
            let name = self.server.specs()[i].name.clone();
            // Plain `{}` is Rust's shortest round-trip float form, so the
            // exporter channel is lossless when fault-free.
            let pmcs = svc
                .pmcs
                .as_array()
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(" ");
            self.fs.seed_file(
                &self.layout.pmc_path(&name),
                &format!("{} {pmcs}", self.seq),
            );
            self.fs.seed_file(
                &self.layout.latency_path(&name),
                &format!(
                    "{} {} {} {} {} {} {} {}",
                    self.seq,
                    svc.offered_rps,
                    svc.load_fraction,
                    svc.p99_ms,
                    svc.mean_ms,
                    svc.completed,
                    svc.dropped,
                    svc.queue_len
                ),
            );
        }
        let energy_uj = (report.energy_j * 1e6) as u64;
        self.fs
            .seed_file(&self.layout.energy_file, &energy_uj.to_string());
        self.fs.advance_epoch();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{OsFaultConfig, OsFaultPlan};
    use crate::Platform;
    use twig_sim::catalog;

    fn world(seed: u64) -> SimWorld {
        SimWorld::new(vec![catalog::masstree(), catalog::moses()], seed).unwrap()
    }

    #[test]
    fn calm_closed_loop_matches_the_request() {
        let mut world = world(11);
        let mut platform = world.platform().unwrap();
        let a = Assignment::new((0..9).map(CoreId).collect(), platform.config().dvfs.max());
        let b = Assignment::new((9..18).map(CoreId).collect(), platform.config().dvfs.min());
        for _ in 0..5 {
            platform.actuate(&[a.clone(), b.clone()]).unwrap();
            let truth = world.tick().unwrap();
            let seen = platform.observe_epoch().unwrap();
            assert!(!seen.telemetry.degraded());
            assert_eq!(seen.actuation[0].cores, a.cores);
            assert_eq!(seen.actuation[1].freq, b.freq);
            // The platform's belief tracks the world's physics exactly:
            // the counter files are the only channel, and they are clean.
            assert_eq!(seen.services[0].completed, truth.services[0].completed);
            assert_eq!(seen.services[1].p99_ms, truth.services[1].p99_ms);
        }
    }

    #[test]
    fn torn_cpuset_runs_on_the_partial_set() {
        let mut world = world(12);
        world.fs().set_fault_plan(
            OsFaultPlan::new(
                OsFaultConfig {
                    cpuset_torn_rate: 1.0,
                    ..OsFaultConfig::default()
                },
                5,
            )
            .unwrap(),
        );
        let mut platform = world.platform().unwrap();
        // "10-17" tears to "10"; the world must run moses on core 10
        // only, and the platform must report the divergence.
        let a = Assignment::new((0..10).map(CoreId).collect(), platform.config().dvfs.max());
        let b = Assignment::new((10..18).map(CoreId).collect(), platform.config().dvfs.max());
        platform.actuate(&[a, b]).unwrap();
        let truth = world.tick().unwrap();
        let seen = platform.observe_epoch().unwrap();
        assert!(seen.actuation.iter().any(|ap| ap.rejected));
        assert_eq!(seen.telemetry.delayed_epochs, 1);
        assert!(truth.services.iter().any(|s| s.core_count < 8));
    }

    #[test]
    fn worlds_with_equal_seeds_are_deterministic() {
        let run = || {
            let mut world = world(99);
            world.fs().set_fault_plan(
                OsFaultPlan::new(
                    OsFaultConfig {
                        cpuset_eperm_rate: 0.3,
                        counter_stale_rate: 0.3,
                        ..OsFaultConfig::default()
                    },
                    7,
                )
                .unwrap(),
            );
            let mut platform = world.platform().unwrap();
            let a = Assignment::first_n(18, platform.config().dvfs.max());
            let mut log = String::new();
            for _ in 0..10 {
                platform.actuate(&[a.clone(), a.clone()]).unwrap();
                world.tick().unwrap();
                let r = platform.observe_epoch().unwrap();
                log.push_str(&format!("{r:?}\n"));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
