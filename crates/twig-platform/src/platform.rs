//! The [`Platform`] trait: what a task manager needs from the machine it
//! manages.

use crate::PlatformError;
use twig_sim::{Assignment, DvfsLadder, EpochReport, ServiceSpec};
use twig_telemetry::Telemetry;

/// One server's actuation-and-observation surface, as the paper's manager
/// uses it: actuate core mappings (cgroup cpusets) and DVFS settings
/// (cpufreq), then — after the decision interval elapses — read
/// performance counters, latency observables and power, and report what
/// was *actually applied* (which can diverge from what was requested).
///
/// Two phases per epoch:
///
/// 1. [`actuate`](Platform::actuate) applies the epoch's assignments;
/// 2. [`observe_epoch`](Platform::observe_epoch) closes the epoch and
///    returns the [`EpochReport`] the manager learns from, including the
///    per-service [`twig_sim::AppliedAssignment`] record and the
///    [`twig_sim::TelemetryHealth`] flags the `SafetyGovernor` uses to
///    route degraded epochs to `observe_degraded`.
///
/// [`step`](Platform::step) chains the two for drivers with nothing to do
/// in between (the simulator produces the whole epoch atomically; a real
/// host would sleep out the interval while the services run).
pub trait Platform {
    /// Number of physical cores.
    fn cores(&self) -> usize;

    /// The DVFS ladder actuations must stay on.
    fn dvfs(&self) -> &DvfsLadder;

    /// The hosted services, in assignment order.
    fn specs(&self) -> &[ServiceSpec];

    /// Applies one epoch's assignments (one per service, in spec order).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] only for protocol and validation
    /// failures — individual OS-level actuation faults are reconciled or
    /// reported through the epoch report, never raised.
    fn actuate(&mut self, assignments: &[Assignment]) -> Result<(), PlatformError>;

    /// Closes the epoch: reads counters, latency and power, and reports.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for protocol violations or a failed
    /// underlying simulation step.
    fn observe_epoch(&mut self) -> Result<EpochReport, PlatformError>;

    /// Actuate + observe in one call.
    ///
    /// # Errors
    ///
    /// Propagates from [`actuate`](Platform::actuate) and
    /// [`observe_epoch`](Platform::observe_epoch).
    fn step(&mut self, assignments: &[Assignment]) -> Result<EpochReport, PlatformError> {
        self.actuate(assignments)?;
        self.observe_epoch()
    }

    /// Attaches a telemetry handle for the platform's metrics. Telemetry
    /// never feeds back into actuation decisions.
    fn set_telemetry(&mut self, telemetry: Telemetry);
}
