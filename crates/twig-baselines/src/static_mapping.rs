use crate::{config_error, BaselineError};
use twig_core::TaskManager;
use twig_sim::{Assignment, DvfsLadder, EpochReport, ServiceSpec};

/// The paper's static baseline: "setting all cores to 2 GHz, and then
/// launching the services" — every service runs across the whole socket at
/// the highest DVFS state, every epoch. All evaluation energy numbers are
/// normalised to this manager.
///
/// # Examples
///
/// ```
/// use twig_baselines::StaticMapping;
/// use twig_core::TaskManager;
/// use twig_sim::{catalog, DvfsLadder};
///
/// let mut m = StaticMapping::new(vec![catalog::xapian()], 18, DvfsLadder::default()).unwrap();
/// let a = m.decide().unwrap();
/// assert_eq!(a[0].core_count(), 18);
/// assert_eq!(a[0].freq.mhz(), 2000);
/// ```
#[derive(Debug, Clone)]
pub struct StaticMapping {
    services: usize,
    cores: usize,
    dvfs: DvfsLadder,
}

impl StaticMapping {
    /// Creates the static baseline for the given services and platform.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty service list or zero cores.
    pub fn new(
        services: Vec<ServiceSpec>,
        cores: usize,
        dvfs: DvfsLadder,
    ) -> Result<Self, BaselineError> {
        if services.is_empty() {
            return Err(config_error("static mapping needs at least one service"));
        }
        if cores == 0 {
            return Err(config_error("static mapping needs at least one core"));
        }
        Ok(StaticMapping {
            services: services.len(),
            cores,
            dvfs,
        })
    }
}

impl TaskManager for StaticMapping {
    fn name(&self) -> &str {
        "static"
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, BaselineError> {
        Ok((0..self.services)
            .map(|_| Assignment::first_n(self.cores, self.dvfs.max()))
            .collect())
    }

    fn observe(&mut self, _report: &EpochReport) -> Result<(), BaselineError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, Server, ServerConfig};

    #[test]
    fn constructor_validation() {
        assert!(StaticMapping::new(vec![], 18, DvfsLadder::default()).is_err());
        assert!(StaticMapping::new(vec![catalog::moses()], 0, DvfsLadder::default()).is_err());
    }

    #[test]
    fn always_full_socket_max_freq() {
        let mut m = StaticMapping::new(
            vec![catalog::masstree(), catalog::moses()],
            18,
            DvfsLadder::default(),
        )
        .unwrap();
        for _ in 0..3 {
            let a = m.decide().unwrap();
            assert_eq!(a.len(), 2);
            for assignment in &a {
                assert_eq!(assignment.core_count(), 18);
                assert_eq!(assignment.freq, DvfsLadder::default().max());
            }
        }
    }

    #[test]
    fn runs_against_server() {
        let specs = vec![catalog::img_dnn()];
        let mut server = Server::new(ServerConfig::default(), specs.clone(), 9).unwrap();
        let mut m = StaticMapping::new(specs, 18, DvfsLadder::default()).unwrap();
        for _ in 0..5 {
            let a = m.decide().unwrap();
            let r = server.step(&a).unwrap();
            m.observe(&r).unwrap();
        }
        assert_eq!(m.name(), "static");
    }
}
