use crate::{config_error, BaselineError};
use twig_core::{Eq2PowerModel, Mapper, RewardConfig, TaskManager};
use twig_rl::QTable;
use twig_sim::{Assignment, DvfsLadder, EpochReport, Frequency, ServiceSpec};
use twig_stats::rng::Xoshiro256;

/// Configuration of the [`Hipster`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HipsterConfig {
    /// Load-bucket width as a fraction of max load (the paper sweeps this
    /// and settles on 4 %).
    pub bucket_width: f64,
    /// Tabular learning rate (paper: 0.6).
    pub learning_rate: f64,
    /// Discount factor (paper: 0.9).
    pub discount: f64,
    /// Length of the heuristic-driven learning phase in epochs
    /// (Section V-A uses 7 500–10 000 s depending on the experiment).
    pub learning_phase: u64,
    /// Exploration rate after the learning phase.
    pub epsilon: f64,
    /// Latency fraction of target above which the heuristic upsizes.
    pub upsize_threshold: f64,
    /// Latency fraction of target below which the heuristic downsizes.
    pub downsize_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HipsterConfig {
    fn default() -> Self {
        HipsterConfig {
            bucket_width: 0.04,
            learning_rate: 0.6,
            discount: 0.9,
            learning_phase: 7_500,
            epsilon: 0.03,
            upsize_threshold: 0.80,
            downsize_threshold: 0.50,
            seed: 0,
        }
    }
}

/// Hipster (HPCA 2017): the paper's main single-service RL baseline.
///
/// The state is the request rate quantised into [`HipsterConfig::bucket_width`]
/// buckets; the action space is every (core count, DVFS) pair, ordered by
/// increasing estimated power ("in increasing order of power efficiency").
/// During the learning phase a state-machine heuristic walks this order —
/// up when tail latency approaches the target, down when there is slack —
/// while the Q-table learns from the observed rewards; afterwards Hipster
/// acts ε-greedily from the table.
///
/// # Examples
///
/// ```
/// use twig_baselines::{Hipster, HipsterConfig};
/// use twig_core::TaskManager;
/// use twig_sim::{catalog, DvfsLadder};
///
/// let mut h = Hipster::new(
///     catalog::masstree(), 18, DvfsLadder::default(), HipsterConfig::default(),
/// ).unwrap();
/// let a = h.decide().unwrap();
/// assert_eq!(a.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hipster {
    spec: ServiceSpec,
    dvfs: DvfsLadder,
    config: HipsterConfig,
    /// All (cores, dvfs index) pairs sorted by ascending estimated power.
    action_order: Vec<(usize, usize)>,
    table: QTable,
    mapper: Mapper,
    reward: RewardConfig,
    power_model: Eq2PowerModel,
    peak_power_w: f64,
    rng: Xoshiro256,
    time: u64,
    heuristic_index: usize,
    pending: Option<(usize, usize)>, // (state bucket, action index)
    last_load: f64,
    migrations: u64,
    last_cores: usize,
}

impl Hipster {
    /// Creates a Hipster manager for one service.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero-core platform or an invalid bucket
    /// width.
    pub fn new(
        spec: ServiceSpec,
        cores: usize,
        dvfs: DvfsLadder,
        config: HipsterConfig,
    ) -> Result<Self, BaselineError> {
        if cores == 0 {
            return Err(config_error("hipster needs at least one core"));
        }
        if !(0.001..=1.0).contains(&config.bucket_width) {
            return Err(config_error(format!(
                "bucket width {} outside (0.001, 1]",
                config.bucket_width
            )));
        }
        spec.validate()?;
        let buckets = (1.0 / config.bucket_width).ceil() as usize + 1;
        let power_model = Eq2PowerModel::default();
        // Order all actions by estimated power at a reference load — the
        // "increasing order of power efficiency" of Octopus-Man/Hipster.
        let mut action_order: Vec<(usize, usize)> = (1..=cores)
            .flat_map(|n| (0..dvfs.len()).map(move |d| (n, d)))
            .collect();
        action_order.sort_by(|&(n1, d1), &(n2, d2)| {
            let p1 = power_model.estimate(0.5, n1, d1);
            let p2 = power_model.estimate(0.5, n2, d2);
            p1.total_cmp(&p2)
        });
        let table = QTable::new(
            buckets,
            action_order.len(),
            config.learning_rate,
            config.discount,
        )?;
        let seed = config.seed;
        Ok(Hipster {
            spec,
            dvfs,
            config,
            action_order,
            table,
            mapper: Mapper::new(cores)?,
            reward: RewardConfig::default(),
            power_model,
            peak_power_w: 130.0,
            rng: Xoshiro256::seed_from_u64(seed),
            time: 0,
            heuristic_index: 0,
            pending: None,
            last_load: 0.0,
            migrations: 0,
            last_cores: 0,
        })
    }

    fn bucket(&self, load: f64) -> usize {
        ((load / self.config.bucket_width) as usize).min(self.table.states() - 1)
    }

    /// Total core-allocation sizes changed so far (the oscillation metric
    /// of Section V-B1).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Epochs elapsed.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Bytes of the Q-table (the Section V-B1 memory metric).
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    fn action_to_assignment(&self, action: usize) -> Result<Vec<Assignment>, BaselineError> {
        let (cores, dvfs_idx) = self.action_order[action];
        let freq: Frequency = self.dvfs.frequency_at(dvfs_idx)?;
        Ok(self.mapper.assign(&[(cores, freq)])?)
    }
}

impl TaskManager for Hipster {
    fn name(&self) -> &str {
        "hipster"
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, BaselineError> {
        let state = self.bucket(self.last_load);
        let action = if self.time < self.config.learning_phase {
            self.heuristic_index
        } else {
            self.table.select(state, self.config.epsilon, &mut self.rng)
        };
        self.pending = Some((state, action));
        let assignments = self.action_to_assignment(action)?;
        let cores = assignments[0].core_count();
        if cores != self.last_cores {
            self.migrations += 1;
            self.last_cores = cores;
        }
        Ok(assignments)
    }

    fn observe(&mut self, report: &EpochReport) -> Result<(), BaselineError> {
        let svc = report
            .services
            .first()
            .ok_or_else(|| config_error("empty report"))?;
        self.last_load = svc.load_fraction;
        let next_state = self.bucket(svc.load_fraction);

        if let Some((state, action)) = self.pending.take() {
            let (cores, dvfs_idx) = self.action_order[action];
            let est = self
                .power_model
                .estimate(svc.load_fraction, cores, dvfs_idx);
            let power_rew = self.reward.power_reward(self.peak_power_w, est);
            let r = self.reward.reward(svc.p99_ms, self.spec.qos_ms, power_rew);
            self.table.update(state, action, r, next_state);

            // Heuristic state machine: walk the power-ordered action list.
            let tardiness = svc.p99_ms / self.spec.qos_ms;
            let max = self.action_order.len() - 1;
            if tardiness > 1.0 {
                // Violation: jump up aggressively.
                self.heuristic_index = (self.heuristic_index + max / 10 + 1).min(max);
            } else if tardiness > self.config.upsize_threshold {
                self.heuristic_index = (self.heuristic_index + 1).min(max);
            } else if tardiness < self.config.downsize_threshold {
                self.heuristic_index = self.heuristic_index.saturating_sub(1);
            }
        }
        self.time += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, Server, ServerConfig};

    fn hipster(phase: u64) -> Hipster {
        Hipster::new(
            catalog::masstree(),
            18,
            DvfsLadder::default(),
            HipsterConfig {
                learning_phase: phase,
                ..HipsterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(Hipster::new(
            catalog::moses(),
            0,
            DvfsLadder::default(),
            HipsterConfig::default()
        )
        .is_err());
        assert!(Hipster::new(
            catalog::moses(),
            18,
            DvfsLadder::default(),
            HipsterConfig {
                bucket_width: 0.0,
                ..HipsterConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn action_order_is_power_ascending() {
        let h = hipster(10);
        let m = Eq2PowerModel::default();
        let powers: Vec<f64> = h
            .action_order
            .iter()
            .map(|&(n, d)| m.estimate(0.5, n, d))
            .collect();
        for w in powers.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Cheapest action is 1 core at the lowest DVFS.
        assert_eq!(h.action_order[0], (1, 0));
        assert_eq!(*h.action_order.last().unwrap(), (18, 8));
    }

    #[test]
    fn heuristic_upsizes_under_pressure() {
        let specs = vec![catalog::masstree()];
        let mut server = Server::new(ServerConfig::default(), specs, 3).unwrap();
        server.set_load_fraction(0, 0.8).unwrap();
        let mut h = hipster(1_000);
        let start_index = h.heuristic_index;
        for _ in 0..60 {
            let a = h.decide().unwrap();
            let r = server.step(&a).unwrap();
            h.observe(&r).unwrap();
        }
        // At 80% load the cheapest configs violate, so the heuristic walks up.
        assert!(h.heuristic_index > start_index + 10);
        assert!(h.migrations() > 0);
    }

    #[test]
    fn q_table_memory_matches_formula() {
        let h = hipster(10);
        // 26 buckets (4% width + catch-all) x 162 actions x 8 bytes.
        assert_eq!(h.memory_bytes(), h.table.states() * 162 * 8);
    }

    #[test]
    fn switches_to_rl_after_learning_phase() {
        let specs = vec![catalog::masstree()];
        let mut server = Server::new(ServerConfig::default(), specs, 4).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let mut h = hipster(5);
        for t in 0..10 {
            let a = h.decide().unwrap();
            let r = server.step(&a).unwrap();
            h.observe(&r).unwrap();
            if t >= 5 {
                // RL phase: pending uses table selection (no panic, valid action).
                assert!(h.time() > 5 || h.pending.is_none());
            }
        }
        assert_eq!(h.time(), 10);
    }
}
