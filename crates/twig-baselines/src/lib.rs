//! Baseline task managers the paper compares Twig against (Section V-A).
//!
//! All four implement [`twig_core::TaskManager`], so the experiment harness
//! drives them interchangeably with Twig:
//!
//! - [`StaticMapping`] — the paper's *static baseline*: every service on
//!   every core, all cores pinned to the highest DVFS state.
//! - [`Hipster`] (HPCA 2017) — hybrid heuristic + tabular-Q manager for a
//!   single service: the state is the request rate quantised into 4 %
//!   buckets, the action a (cores, DVFS) pair from a power-efficiency-
//!   ordered list; a state-machine heuristic drives the learning phase,
//!   after which it behaves ε-greedily (lr 0.6, γ 0.9, as prescribed by the
//!   Hipster authors and used in Section V-A).
//! - [`Heracles`] (ISCA 2015) — a multi-level feedback controller: a main
//!   controller (15 s) that grants the service *all* resources for 5
//!   minutes after a violation or at > 85 % load; a core controller (2 s)
//!   that grows the allocation when latency reaches 80 % of the target or
//!   memory bandwidth rises, and shrinks it otherwise; and a power
//!   controller (2 s) that lowers DVFS only when power hits 90 % of TDP.
//! - [`Parties`] (ASPLOS 2019) — the colocated-services controller: every
//!   2 s it adjusts *one* resource (core count or DVFS) for one service —
//!   upsizing whoever is within 95 % of its target, otherwise reclaiming
//!   from the service with the most slack, reverting an adjustment that
//!   caused a violation.
//!
//! The paper implemented Heracles and PARTIES from their publications
//! because neither is open source; this crate is in exactly the same
//! position and follows the published descriptions (Intel CAT and explicit
//! memory-bandwidth partitioning are omitted, as in the paper's own
//! testbed).
//!
//! # Examples
//!
//! ```
//! use twig_baselines::StaticMapping;
//! use twig_core::TaskManager;
//! use twig_sim::{catalog, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
//! let specs = vec![catalog::masstree(), catalog::moses()];
//! let mut server = Server::new(ServerConfig::default(), specs.clone(), 1)?;
//! let mut manager = StaticMapping::new(specs, 18, ServerConfig::default().dvfs)?;
//! let assignments = manager.decide()?;
//! let report = server.step(&assignments)?;
//! manager.observe(&report)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heracles;
mod hipster;
mod parties;
mod static_mapping;

pub use heracles::{Heracles, HeraclesConfig};
pub use hipster::{Hipster, HipsterConfig};
pub use parties::{Parties, PartiesConfig};
pub use static_mapping::StaticMapping;

/// Error type shared by the baseline managers — the structured
/// [`twig_core::ManagerError`] of the [`twig_core::TaskManager`] trait.
pub type BaselineError = twig_core::ManagerError;

fn config_error(detail: impl Into<String>) -> BaselineError {
    BaselineError::fatal(detail)
}
