use crate::{config_error, BaselineError};
use twig_core::{Mapper, TaskManager};
use twig_sim::{Assignment, CounterId, DvfsLadder, EpochReport, ServiceSpec};

/// Configuration of the [`Heracles`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HeraclesConfig {
    /// Main-controller period in epochs (paper: 15 s).
    pub main_period: u64,
    /// Core/power-controller period in epochs (paper: 2 s).
    pub sub_period: u64,
    /// Epochs the main controller grants all resources after a violation
    /// (paper: 5 min).
    pub lockout: u64,
    /// Load fraction above which the main controller also grants all
    /// resources (paper: 85 %).
    pub high_load: f64,
    /// Latency fraction of target at which the core controller upsizes
    /// (paper: 80 %).
    pub latency_guard: f64,
    /// TDP fraction above which the power controller lowers DVFS
    /// (paper: 90 %).
    pub power_guard: f64,
    /// Socket TDP in watts.
    pub tdp_w: f64,
}

impl Default for HeraclesConfig {
    fn default() -> Self {
        HeraclesConfig {
            main_period: 15,
            sub_period: 2,
            lockout: 300,
            high_load: 0.85,
            latency_guard: 0.80,
            power_guard: 0.90,
            tdp_w: 120.0,
        }
    }
}

/// Heracles (ISCA 2015): the feedback-controller baseline for a single
/// latency-critical service.
///
/// Three controllers, per the published description (Section V-A):
/// a **main controller** polled every 15 s that hands the service *all*
/// resources for five minutes whenever QoS is violated or load exceeds
/// 85 %; a **core controller** (2 s) that adds a core when tail latency
/// reaches 80 % of the target or memory bandwidth (proxied here by the
/// LLC-miss counter) has increased, and removes one otherwise; and a
/// **power controller** (2 s) that lowers the DVFS setting only when socket
/// power reaches 90 % of TDP. Intel CAT is omitted, as in the paper's
/// testbed.
///
/// # Examples
///
/// ```
/// use twig_baselines::{Heracles, HeraclesConfig};
/// use twig_core::TaskManager;
/// use twig_sim::{catalog, DvfsLadder};
///
/// let mut h = Heracles::new(
///     catalog::xapian(), 18, DvfsLadder::default(), HeraclesConfig::default(),
/// ).unwrap();
/// let a = h.decide().unwrap();
/// assert!(a[0].core_count() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Heracles {
    spec: ServiceSpec,
    dvfs: DvfsLadder,
    config: HeraclesConfig,
    mapper: Mapper,
    total_cores: usize,
    cores: usize,
    dvfs_idx: usize,
    lockout_until: u64,
    time: u64,
    last_llc_misses: f64,
    migrations: u64,
}

impl Heracles {
    /// Creates a Heracles manager for one service.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero-core platform or an invalid spec.
    pub fn new(
        spec: ServiceSpec,
        cores: usize,
        dvfs: DvfsLadder,
        config: HeraclesConfig,
    ) -> Result<Self, BaselineError> {
        if cores == 0 {
            return Err(config_error("heracles needs at least one core"));
        }
        spec.validate()?;
        let dvfs_idx = dvfs.len() - 1;
        Ok(Heracles {
            spec,
            dvfs,
            config,
            mapper: Mapper::new(cores)?,
            total_cores: cores,
            cores: cores / 2,
            dvfs_idx,
            lockout_until: 0,
            time: 0,
            last_llc_misses: 0.0,
            migrations: 0,
        })
    }

    /// Core-count changes so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Current core allocation.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current DVFS ladder index.
    pub fn dvfs_index(&self) -> usize {
        self.dvfs_idx
    }
}

impl TaskManager for Heracles {
    fn name(&self) -> &str {
        "heracles"
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, BaselineError> {
        let (cores, dvfs_idx) = if self.time < self.lockout_until {
            (self.total_cores, self.dvfs.len() - 1)
        } else {
            (self.cores, self.dvfs_idx)
        };
        let freq = self.dvfs.frequency_at(dvfs_idx)?;
        Ok(self.mapper.assign(&[(cores, freq)])?)
    }

    fn observe(&mut self, report: &EpochReport) -> Result<(), BaselineError> {
        let svc = report
            .services
            .first()
            .ok_or_else(|| config_error("empty report"))?;
        let tardiness = svc.p99_ms / self.spec.qos_ms;

        // Main controller.
        if self.time.is_multiple_of(self.config.main_period)
            && (tardiness > 1.0 || svc.load_fraction > self.config.high_load)
        {
            self.lockout_until = self.time + self.config.lockout;
        }

        // Core and power controllers.
        if self.time.is_multiple_of(self.config.sub_period) && self.time >= self.lockout_until {
            let llc = svc.pmcs[CounterId::LlcMisses];
            let bandwidth_rising = llc > self.last_llc_misses * 1.05;
            let old = self.cores;
            if tardiness >= self.config.latency_guard || bandwidth_rising {
                self.cores = (self.cores + 1).min(self.total_cores);
            } else {
                self.cores = self.cores.saturating_sub(1).max(1);
            }
            if self.cores != old {
                self.migrations += 1;
            }
            self.last_llc_misses = llc;

            if report.power_w >= self.config.power_guard * self.config.tdp_w {
                self.dvfs_idx = self.dvfs_idx.saturating_sub(1);
            } else if tardiness >= self.config.latency_guard {
                self.dvfs_idx = (self.dvfs_idx + 1).min(self.dvfs.len() - 1);
            }
        }
        self.time += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, Server, ServerConfig};

    fn drive(h: &mut Heracles, server: &mut Server, epochs: usize) -> Vec<EpochReport> {
        (0..epochs)
            .map(|_| {
                let a = h.decide().unwrap();
                let r = server.step(&a).unwrap();
                h.observe(&r).unwrap();
                r
            })
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(Heracles::new(
            catalog::moses(),
            0,
            DvfsLadder::default(),
            HeraclesConfig::default()
        )
        .is_err());
    }

    #[test]
    fn violation_triggers_full_allocation_lockout() {
        let specs = vec![catalog::masstree()];
        let mut server = Server::new(ServerConfig::default(), specs, 5).unwrap();
        server.set_load_fraction(0, 0.9).unwrap();
        let mut h = Heracles::new(
            catalog::masstree(),
            18,
            DvfsLadder::default(),
            HeraclesConfig {
                lockout: 50,
                ..HeraclesConfig::default()
            },
        )
        .unwrap();
        // High load (>85%) trips the main controller at t=0 observe.
        drive(&mut h, &mut server, 3);
        let a = h.decide().unwrap();
        assert_eq!(a[0].core_count(), 18, "lockout must grant all cores");
    }

    #[test]
    fn shrinks_when_idle() {
        let specs = vec![catalog::moses()];
        let mut server = Server::new(ServerConfig::default(), specs, 6).unwrap();
        server.set_load_fraction(0, 0.1).unwrap();
        let mut h = Heracles::new(
            catalog::moses(),
            18,
            DvfsLadder::default(),
            HeraclesConfig::default(),
        )
        .unwrap();
        let before = h.cores();
        drive(&mut h, &mut server, 40);
        assert!(
            h.cores() < before,
            "cores {} should shrink from {before}",
            h.cores()
        );
    }

    #[test]
    fn dvfs_drops_only_near_tdp() {
        let specs = vec![catalog::img_dnn()];
        let mut server = Server::new(ServerConfig::default(), specs, 7).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let mut h = Heracles::new(
            catalog::img_dnn(),
            18,
            DvfsLadder::default(),
            HeraclesConfig::default(),
        )
        .unwrap();
        drive(&mut h, &mut server, 30);
        // Far from TDP on this workload, so DVFS stays at (or near) max —
        // the energy-wasting behaviour Section V-B1 calls out.
        assert!(h.dvfs_index() >= DvfsLadder::default().len() - 2);
    }
}
