use crate::{config_error, BaselineError};
use twig_core::{Mapper, TaskManager};
use twig_sim::{Assignment, DvfsLadder, EpochReport, ServiceSpec};
use twig_stats::rng::{Rng, Xoshiro256};

/// Configuration of the [`Parties`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PartiesConfig {
    /// Controller period in epochs (paper: 2 s).
    pub period: u64,
    /// Latency fraction of target at which a service is upsized
    /// (paper: 95 %).
    pub upsize_threshold: f64,
    /// Latency fraction of target below which a service is a reclaim
    /// candidate.
    pub slack_threshold: f64,
    /// RNG seed (the controller "begins by randomly selecting one of the
    /// resources").
    pub seed: u64,
}

impl Default for PartiesConfig {
    fn default() -> Self {
        PartiesConfig {
            period: 2,
            upsize_threshold: 0.95,
            slack_threshold: 0.7,
            seed: 0,
        }
    }
}

/// Which knob PARTIES adjusts (CAT and explicit memory partitioning are
/// omitted, as in the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resource {
    Cores,
    Dvfs,
}

#[derive(Debug, Clone, Copy)]
struct Adjustment {
    service: usize,
    resource: Resource,
    delta: i32,
    tardiness_before: f64,
}

/// PARTIES (ASPLOS 2019): the colocated-services feedback controller
/// Twig-C is compared against.
///
/// Every 2 s it adjusts **one resource at a time** (here core count or
/// DVFS): if any service's tail latency is at ≥ 95 % of its target, the
/// most-pressured service gets one unit more of a (randomly chosen)
/// resource; otherwise the service with the most slack gives one unit back.
/// If an adjustment is followed by a QoS violation of the adjusted service,
/// it is reverted and the other resource is tried next time — the
/// "ping-pong" behaviour Section V-B2 observes.
///
/// # Examples
///
/// ```
/// use twig_baselines::{Parties, PartiesConfig};
/// use twig_core::TaskManager;
/// use twig_sim::{catalog, DvfsLadder};
///
/// let mut p = Parties::new(
///     vec![catalog::masstree(), catalog::moses()],
///     18,
///     DvfsLadder::default(),
///     PartiesConfig::default(),
/// ).unwrap();
/// let a = p.decide().unwrap();
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Parties {
    specs: Vec<ServiceSpec>,
    dvfs: DvfsLadder,
    config: PartiesConfig,
    mapper: Mapper,
    total_cores: usize,
    cores: Vec<usize>,
    dvfs_idx: Vec<usize>,
    last_adjustment: Option<Adjustment>,
    avoid_resource: Vec<Option<Resource>>,
    rng: Xoshiro256,
    time: u64,
    migrations: u64,
}

impl Parties {
    /// Creates a PARTIES manager for the given colocated services. Initial
    /// allocation splits the socket evenly at the highest DVFS state.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty service list or a socket smaller than
    /// the service count.
    pub fn new(
        specs: Vec<ServiceSpec>,
        cores: usize,
        dvfs: DvfsLadder,
        config: PartiesConfig,
    ) -> Result<Self, BaselineError> {
        if specs.is_empty() {
            return Err(config_error("parties needs at least one service"));
        }
        if cores < specs.len() {
            return Err(config_error(format!(
                "{} cores cannot host {} services",
                cores,
                specs.len()
            )));
        }
        for s in &specs {
            s.validate()?;
        }
        let k = specs.len();
        let seed = config.seed;
        Ok(Parties {
            dvfs: dvfs.clone(),
            config,
            mapper: Mapper::new(cores)?,
            total_cores: cores,
            cores: vec![cores / k; k],
            dvfs_idx: vec![dvfs.len() - 1; k],
            last_adjustment: None,
            avoid_resource: vec![None; k],
            rng: Xoshiro256::seed_from_u64(seed),
            time: 0,
            migrations: 0,
            specs,
        })
    }

    /// Core-allocation changes so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Current per-service core counts.
    pub fn core_allocation(&self) -> &[usize] {
        &self.cores
    }

    fn pick_resource(&mut self, service: usize) -> Resource {
        let preferred = if self.rng.next_bool(0.5) {
            Resource::Cores
        } else {
            Resource::Dvfs
        };
        match self.avoid_resource[service] {
            Some(avoid) if avoid == preferred => match preferred {
                Resource::Cores => Resource::Dvfs,
                Resource::Dvfs => Resource::Cores,
            },
            _ => preferred,
        }
    }

    fn apply(&mut self, service: usize, resource: Resource, delta: i32) -> bool {
        match resource {
            Resource::Cores => {
                let new = (self.cores[service] as i64 + delta as i64)
                    .clamp(1, self.total_cores as i64) as usize;
                if new == self.cores[service] {
                    return false;
                }
                self.cores[service] = new;
                self.migrations += 1;
                true
            }
            Resource::Dvfs => {
                let new = (self.dvfs_idx[service] as i64 + delta as i64)
                    .clamp(0, self.dvfs.len() as i64 - 1) as usize;
                if new == self.dvfs_idx[service] {
                    return false;
                }
                self.dvfs_idx[service] = new;
                true
            }
        }
    }
}

impl TaskManager for Parties {
    fn name(&self) -> &str {
        "parties"
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, BaselineError> {
        let requests: Vec<(usize, twig_sim::Frequency)> = self
            .cores
            .iter()
            .zip(&self.dvfs_idx)
            .map(|(&n, &d)| Ok((n, self.dvfs.frequency_at(d)?)))
            .collect::<Result<_, twig_sim::SimError>>()?;
        Ok(self.mapper.assign(&requests)?)
    }

    fn observe(&mut self, report: &EpochReport) -> Result<(), BaselineError> {
        if report.services.len() != self.specs.len() {
            return Err(config_error(format!(
                "report has {} services, parties manages {}",
                report.services.len(),
                self.specs.len()
            )));
        }
        self.time += 1;
        if !self.time.is_multiple_of(self.config.period) {
            return Ok(());
        }
        let tardiness: Vec<f64> = report
            .services
            .iter()
            .zip(&self.specs)
            .map(|(svc, spec)| svc.p99_ms / spec.qos_ms)
            .collect();

        // Revert an adjustment that pushed its service into violation.
        if let Some(adj) = self.last_adjustment.take() {
            if tardiness[adj.service] > 1.0 && adj.tardiness_before <= 1.0 && adj.delta < 0 {
                self.apply(adj.service, adj.resource, -adj.delta);
                self.avoid_resource[adj.service] = Some(adj.resource);
                return Ok(());
            }
        }

        // Upsize the most-pressed service whose allocation can still grow;
        // a saturated service must not deadlock the controller while a
        // colocated one is also in need.
        let mut order: Vec<usize> = (0..tardiness.len()).collect();
        order.sort_by(|&a, &b| tardiness[b].total_cmp(&tardiness[a]));
        let mut upsized = false;
        for &pressed in &order {
            if tardiness[pressed] < self.config.upsize_threshold {
                break;
            }
            let resource = self.pick_resource(pressed);
            let applied = self.apply(pressed, resource, 1) || {
                // The preferred knob is saturated; try the other one.
                let other = match resource {
                    Resource::Cores => Resource::Dvfs,
                    Resource::Dvfs => Resource::Cores,
                };
                self.apply(pressed, other, 1)
            };
            if applied {
                self.last_adjustment = Some(Adjustment {
                    service: pressed,
                    resource,
                    delta: 1,
                    tardiness_before: tardiness[pressed],
                });
                upsized = true;
                break;
            }
        }
        let worst = tardiness[order[0]];
        if !upsized && worst < self.config.upsize_threshold {
            let Some((slackest, &best)) = tardiness
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
            else {
                return Ok(());
            };
            if best < self.config.slack_threshold {
                let resource = self.pick_resource(slackest);
                if self.apply(slackest, resource, -1) {
                    self.last_adjustment = Some(Adjustment {
                        service: slackest,
                        resource,
                        delta: -1,
                        tardiness_before: best,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, Server, ServerConfig};

    fn parties(specs: Vec<ServiceSpec>) -> Parties {
        Parties::new(specs, 18, DvfsLadder::default(), PartiesConfig::default()).unwrap()
    }

    fn drive(p: &mut Parties, server: &mut Server, epochs: usize) {
        for _ in 0..epochs {
            let a = p.decide().unwrap();
            let r = server.step(&a).unwrap();
            p.observe(&r).unwrap();
        }
    }

    #[test]
    fn constructor_validation() {
        assert!(Parties::new(vec![], 18, DvfsLadder::default(), PartiesConfig::default()).is_err());
        assert!(Parties::new(
            vec![catalog::moses(), catalog::masstree()],
            1,
            DvfsLadder::default(),
            PartiesConfig::default()
        )
        .is_err());
    }

    #[test]
    fn initial_split_is_even() {
        let p = parties(vec![catalog::masstree(), catalog::moses()]);
        assert_eq!(p.core_allocation(), &[9, 9]);
    }

    #[test]
    fn reclaims_from_idle_services() {
        let specs = vec![catalog::masstree(), catalog::moses()];
        let mut server = Server::new(ServerConfig::default(), specs.clone(), 8).unwrap();
        server.set_load_fraction(0, 0.1).unwrap();
        server.set_load_fraction(1, 0.1).unwrap();
        let mut p = parties(specs);
        drive(&mut p, &mut server, 60);
        let total: usize = p.core_allocation().iter().sum();
        assert!(total < 18, "idle services should shed cores, total {total}");
    }

    #[test]
    fn upsizes_pressured_service() {
        let specs = vec![catalog::masstree(), catalog::moses()];
        let mut server = Server::new(ServerConfig::default(), specs.clone(), 9).unwrap();
        server.set_load_fraction(0, 0.9).unwrap();
        server.set_load_fraction(1, 0.2).unwrap();
        let mut p = parties(specs);
        drive(&mut p, &mut server, 80);
        // Masstree under pressure should end up with at least its fair share
        // while idle moses shrinks.
        assert!(
            p.core_allocation()[0] > p.core_allocation()[1],
            "allocation {:?}",
            p.core_allocation()
        );
    }

    #[test]
    fn observe_validates_report_shape() {
        let specs = vec![catalog::masstree(), catalog::moses()];
        let mut p = parties(specs);
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::masstree()], 10).unwrap();
        let r = server
            .step(&[Assignment::first_n(4, DvfsLadder::default().max())])
            .unwrap();
        assert!(p.observe(&r).is_err());
    }

    #[test]
    fn adjusts_only_on_its_period() {
        let specs = vec![catalog::masstree(), catalog::moses()];
        let mut server = Server::new(ServerConfig::default(), specs.clone(), 11).unwrap();
        server.set_load_fraction(0, 0.1).unwrap();
        server.set_load_fraction(1, 0.1).unwrap();
        let mut p = Parties::new(
            specs,
            18,
            DvfsLadder::default(),
            PartiesConfig {
                period: 10,
                ..PartiesConfig::default()
            },
        )
        .unwrap();
        drive(&mut p, &mut server, 9);
        assert_eq!(p.migrations(), 0, "no adjustment before the first period");
        drive(&mut p, &mut server, 2);
        // One controller tick has now fired (it may have chosen DVFS).
        assert!(p.migrations() <= 1);
    }
}
