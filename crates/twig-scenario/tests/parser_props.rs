//! Randomized round-trip and rejection properties of the scenario grammar.
//!
//! The round-trip test generates hundreds of random-but-valid scenario
//! texts from a seeded RNG and checks the canonical-form fixed point the
//! DSL promises: `emit(parse(emit(parse(text)))) == emit(parse(text))`.
//! The rejection tests pin the typed error each class of malformed input
//! must produce.

use std::fmt::Write as _;
use twig_scenario::{emit, parse, ScenarioError};
use twig_stats::rng::{Rng, Xoshiro256};

const CATALOG: &[&str] = &[
    "masstree",
    "xapian",
    "moses",
    "img-dnn",
    "memcached",
    "web-search",
];

/// Emits one random service block with a random shape and churn plan.
fn push_service(out: &mut String, rng: &mut Xoshiro256, id: usize, epochs: u64, churn: bool) {
    writeln!(out, "service \"svc-{id}\"").unwrap();
    let template = CATALOG[rng.range_usize(0, CATALOG.len())];
    if rng.next_bool(0.5) {
        writeln!(out, "  spec catalog {template}").unwrap();
    } else {
        let rps = rng.range_usize(100, 3000);
        let qos = rng.range_usize(2, 200);
        writeln!(out, "  spec synthetic {template} {rps} {qos}").unwrap();
    }
    let lo = rng.range_usize(5, 40) as f64 / 100.0;
    let hi = lo + rng.range_usize(5, 40) as f64 / 100.0;
    match rng.range_usize(0, 7) {
        0 => writeln!(out, "  load fixed {lo}").unwrap(),
        1 => {
            let factor = 1.0 + rng.range_usize(5, 80) as f64 / 100.0;
            let period = rng.range_usize(1, 40);
            writeln!(out, "  load step {lo} {hi} {factor} {period}").unwrap();
        }
        2 => {
            let period = rng.range_usize(4, 200);
            writeln!(out, "  load diurnal {lo} {hi} {period}").unwrap();
        }
        3 => {
            let start = rng.range_usize(0, epochs as usize / 2);
            let dur = rng.range_usize(1, epochs as usize / 2 + 1);
            writeln!(out, "  load ramp {lo} {hi} {start} {dur}").unwrap();
        }
        4 => {
            let start = rng.range_usize(1, epochs as usize);
            let ramp = rng.range_usize(1, 20);
            let hold = rng.range_usize(1, 40);
            writeln!(out, "  load flash_crowd {lo} {hi} {start} {ramp} {hold}").unwrap();
        }
        5 => {
            let period = rng.range_usize(2, 60);
            let duty = rng.range_usize(1, period);
            let phase = rng.range_usize(0, period);
            writeln!(out, "  load burst {lo} {hi} {period} {duty} {phase}").unwrap();
        }
        _ => {
            let dwell = rng.range_usize(1, 10);
            let n = rng.range_usize(2, 10);
            let mut table = String::new();
            for _ in 0..n {
                write!(table, " {}", rng.range_usize(5, 90) as f64 / 100.0).unwrap();
            }
            writeln!(out, "  load replay {dwell}{table}").unwrap();
        }
    }
    if churn {
        // Churn epochs must satisfy arrive < depart <= epochs.
        match rng.range_usize(0, 4) {
            0 => writeln!(out, "  arrive {}", rng.range_usize(1, epochs as usize)).unwrap(),
            1 => writeln!(out, "  depart {}", rng.range_usize(1, epochs as usize + 1)).unwrap(),
            2 => {
                let at = rng.range_usize(1, epochs as usize);
                let t = CATALOG[rng.range_usize(0, CATALOG.len())];
                if rng.next_bool(0.5) {
                    writeln!(out, "  swap {at} catalog {t}").unwrap();
                } else {
                    let rps = rng.range_usize(100, 2000);
                    writeln!(
                        out,
                        "  swap {at} synthetic {t} {rps} {}",
                        rng.range_usize(2, 100)
                    )
                    .unwrap();
                }
            }
            _ => {}
        }
    }
    writeln!(out, "end").unwrap();
    writeln!(out).unwrap();
}

/// Emits one random federate section (cluster scenarios only).
fn push_federate(out: &mut String, rng: &mut Xoshiro256) {
    writeln!(out, "federate").unwrap();
    writeln!(out, "  seed {}", rng.range_usize(0, 10_000)).unwrap();
    if rng.next_bool(0.5) {
        writeln!(out, "  period {}", rng.range_usize(2, 20)).unwrap();
    }
    if rng.next_bool(0.5) {
        writeln!(out, "  quorum {}", rng.range_usize(1, 4)).unwrap();
    }
    if rng.next_bool(0.3) {
        writeln!(out, "  timeout {}", rng.range_usize(1, 6)).unwrap();
    }
    for key in [
        "corrupt_rate",
        "truncate_rate",
        "byzantine_rate",
        "drop_rate",
    ] {
        if rng.next_bool(0.3) {
            writeln!(out, "  {key} {}", rng.range_usize(1, 50) as f64 / 100.0).unwrap();
        }
    }
    if rng.next_bool(0.3) {
        writeln!(
            out,
            "  straggle {} {}",
            rng.range_usize(1, 50) as f64 / 100.0,
            rng.range_usize(1, 6)
        )
        .unwrap();
    }
    if rng.next_bool(0.2) {
        writeln!(
            out,
            "  poison_rate {}",
            rng.range_usize(1, 40) as f64 / 100.0
        )
        .unwrap();
    }
    for _ in 0..rng.range_usize(0, 4) {
        let round = rng.range_usize(1, 12);
        let node = rng.range_usize(0, 4);
        match rng.range_usize(0, 6) {
            0 => writeln!(out, "  at {round} corrupt {node}").unwrap(),
            1 => writeln!(out, "  at {round} truncate {node}").unwrap(),
            2 => {
                let flavor = ["garbage", "nonfinite", "offset"][rng.range_usize(0, 3)];
                writeln!(out, "  at {round} byzantine {node} {flavor}").unwrap();
            }
            3 => writeln!(
                out,
                "  at {round} straggle {node} {}",
                rng.range_usize(1, 6)
            )
            .unwrap(),
            4 => writeln!(out, "  at {round} drop {node}").unwrap(),
            _ => writeln!(out, "  at {round} poison_merge").unwrap(),
        }
    }
    writeln!(out, "end").unwrap();
    writeln!(out).unwrap();
}

/// Generates one random, grammatically valid scenario text.
fn random_scenario(rng: &mut Xoshiro256, case: usize) -> String {
    let epochs = rng.range_usize(20, 400) as u64;
    let measure = rng.range_usize(1, epochs as usize + 1) as u64;
    let cluster = rng.next_bool(0.3);
    let mut s = String::new();
    writeln!(s, "scenario \"prop-{case}\"").unwrap();
    writeln!(s, "desc \"randomized case {case}\"").unwrap();
    writeln!(s, "seed {}", rng.range_usize(0, 1 << 20)).unwrap();
    writeln!(s, "epochs {epochs}").unwrap();
    writeln!(s, "measure {measure}").unwrap();
    if !cluster && rng.next_bool(0.3) {
        writeln!(s, "warmup {}", rng.range_usize(1, 50)).unwrap();
    }
    writeln!(s).unwrap();

    if cluster {
        writeln!(s, "cluster").unwrap();
        writeln!(s, "  replication {}", rng.range_usize(1, 3)).unwrap();
        writeln!(s, "  suspect_after {}", rng.range_usize(1, 5)).unwrap();
        for _ in 0..rng.range_usize(2, 5) {
            let cores = rng.range_usize(4, 48);
            let min = rng.range_usize(800, 1500);
            let step = rng.range_usize(50, 200);
            let levels = rng.range_usize(2, 10);
            writeln!(s, "  node {cores} {min} {step} {levels}").unwrap();
        }
        writeln!(s, "end").unwrap();
    } else {
        writeln!(s, "server").unwrap();
        writeln!(s, "  cores {}", rng.range_usize(2, 64)).unwrap();
        writeln!(
            s,
            "  dvfs {} {} {}",
            rng.range_usize(800, 1500),
            rng.range_usize(50, 200),
            rng.range_usize(2, 10)
        )
        .unwrap();
        writeln!(s, "end").unwrap();
    }
    writeln!(s).unwrap();

    for i in 0..rng.range_usize(1, 5) {
        push_service(&mut s, rng, i, epochs, !cluster);
    }

    let federate = cluster && rng.next_bool(0.5);
    if federate {
        push_federate(&mut s, rng);
    }

    if !cluster && rng.next_bool(0.4) {
        writeln!(s, "faults").unwrap();
        writeln!(s, "  seed {}", rng.range_usize(0, 10_000)).unwrap();
        writeln!(s, "  pmc_corrupt {}", rng.range_usize(0, 30) as f64 / 100.0).unwrap();
        writeln!(
            s,
            "  actuation_reject {}",
            rng.range_usize(0, 30) as f64 / 100.0
        )
        .unwrap();
        writeln!(s, "end").unwrap();
        writeln!(s).unwrap();
    }

    writeln!(s, "assert qos_floor all {}", rng.range_usize(0, 100)).unwrap();
    if rng.next_bool(0.5) {
        writeln!(
            s,
            "assert drop_cap {}",
            rng.range_usize(0, 100) as f64 / 100.0
        )
        .unwrap();
    }
    if rng.next_bool(0.3) {
        writeln!(s, "assert deterministic").unwrap();
    }
    if cluster && rng.next_bool(0.5) {
        writeln!(s, "assert conserved").unwrap();
    }
    if federate {
        if rng.next_bool(0.6) {
            writeln!(s, "assert fed_rounds {}", rng.range_usize(1, 5)).unwrap();
        }
        if rng.next_bool(0.4) {
            writeln!(s, "assert fed_screened {}", rng.range_usize(1, 5)).unwrap();
        }
    }
    s
}

#[test]
fn randomized_round_trip_reaches_emit_fixed_point() {
    let mut rng = Xoshiro256::seed_from_u64(0x5ca1ab1e);
    let mut accepted = 0usize;
    for case in 0..400 {
        let text = random_scenario(&mut rng, case);
        // Some random combinations are semantically invalid (e.g. a churn
        // window the validator rejects); those must error, never panic.
        let Ok(parsed) = parse(&text) else { continue };
        accepted += 1;
        let canon = emit(&parsed);
        let reparsed = parse(&canon).unwrap_or_else(|e| {
            panic!("case {case}: canonical form failed to re-parse: {e}\n{canon}")
        });
        assert_eq!(
            emit(&reparsed),
            canon,
            "case {case}: emit is not a fixed point"
        );
        assert_eq!(
            reparsed, parsed,
            "case {case}: canonical round-trip changed the model"
        );
    }
    // The generator is tuned so the vast majority of cases are valid.
    assert!(
        accepted >= 300,
        "only {accepted}/400 random scenarios parsed"
    );
}

/// A minimal valid scenario used as the base for the rejection tests.
const BASE: &str = "\
scenario \"rejection-base\"
desc \"base\"
seed 1
epochs 50
measure 10

server
  cores 18
  dvfs 1200 100 9
end

service \"masstree\"
  spec catalog masstree
  load fixed 0.3
end

assert qos_floor all 10
";

#[test]
fn base_scenario_is_valid() {
    parse(BASE).unwrap();
}

#[test]
fn unknown_key_is_rejected_with_line() {
    let text = BASE.replace("seed 1", "seed 1\nfrobnicate 3");
    match parse(&text) {
        Err(ScenarioError::UnknownKey { line, key }) => {
            assert_eq!(line, 4);
            assert_eq!(key, "frobnicate");
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn out_of_range_load_fraction_is_rejected() {
    let text = BASE.replace("load fixed 0.3", "load fixed 1.7");
    match parse(&text) {
        Err(ScenarioError::Parse { line, .. }) => assert_eq!(line, 14),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn duplicate_service_id_is_rejected() {
    let dup = "\nservice \"masstree\"\n  spec catalog moses\n  load fixed 0.2\nend\n";
    let text = BASE.replace("\nassert", &format!("{dup}\nassert"));
    match parse(&text) {
        Err(ScenarioError::Invalid { detail }) => {
            assert!(detail.contains("duplicate service id"), "detail: {detail}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn duplicate_scalar_key_is_rejected() {
    let text = BASE.replace("seed 1", "seed 1\nseed 2");
    match parse(&text) {
        Err(ScenarioError::Duplicate { key, .. }) => assert_eq!(key, "seed"),
        other => panic!("expected Duplicate, got {other:?}"),
    }
}

#[test]
fn truncated_input_is_rejected() {
    let text = BASE.replace(
        "  load fixed 0.3\nend\n\nassert qos_floor all 10\n",
        "  load fixed 0.3\n",
    );
    match parse(&text) {
        Err(ScenarioError::Truncated { detail }) => {
            assert!(detail.contains("service"), "detail: {detail}")
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

/// A minimal valid cluster scenario with a federate section, used as the
/// base for the federate rejection tests.
const FED_BASE: &str = "\
scenario \"fed-rejection-base\"
desc \"base\"
seed 1
epochs 50
measure 10

cluster
  replication 2
  suspect_after 2
  node 18 1200 100 9
  node 18 1200 100 9
end

service \"masstree\"
  spec catalog masstree
  load fixed 0.3
end

federate
  seed 7
end

assert conserved
";

#[test]
fn fed_base_scenario_is_valid() {
    parse(FED_BASE).unwrap();
}

#[test]
fn unknown_federate_key_is_rejected() {
    let text = FED_BASE.replace("  seed 7", "  seed 7\n  gossip_fanout 3");
    match parse(&text) {
        Err(ScenarioError::UnknownKey { key, .. }) => assert_eq!(key, "gossip_fanout"),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn unknown_byzantine_flavor_is_rejected() {
    let text = FED_BASE.replace("  seed 7", "  seed 7\n  at 1 byzantine 0 sneaky");
    match parse(&text) {
        Err(ScenarioError::Parse { detail, .. }) => {
            assert!(detail.contains("sneaky"), "detail: {detail}")
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn federate_section_without_seed_is_rejected() {
    let text = FED_BASE.replace("  seed 7\n", "  period 5\n");
    match parse(&text) {
        Err(ScenarioError::Truncated { detail }) => {
            assert!(detail.contains("seed"), "detail: {detail}")
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn fed_assertion_without_federate_section_is_rejected() {
    let text = FED_BASE
        .replace("federate\n  seed 7\nend\n\n", "")
        .replace("assert conserved", "assert fed_rounds 2");
    match parse(&text) {
        Err(ScenarioError::Invalid { detail }) => {
            assert!(detail.contains("federate"), "detail: {detail}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn federate_on_single_server_is_rejected() {
    let text = BASE.replace(
        "\nassert qos_floor all 10",
        "\nfederate\n  seed 7\nend\n\nassert qos_floor all 10",
    );
    match parse(&text) {
        Err(ScenarioError::Invalid { detail }) => {
            assert!(detail.contains("federate"), "detail: {detail}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn missing_assertions_are_rejected() {
    let text = BASE.replace("assert qos_floor all 10\n", "");
    match parse(&text) {
        Err(ScenarioError::Invalid { detail }) => {
            assert!(detail.contains("assert"), "detail: {detail}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}
