//! A declarative scenario DSL and runner for the Twig workload
//! reproduction.
//!
//! A `.scn` file describes one complete experiment: the topology (a
//! single governed server or a cluster fleet), the services it hosts
//! with composable load shapes (fixed, step, diurnal, ramp, flash
//! crowd, correlated bursts, trace replay), catalog churn (services
//! arriving, departing, or being swapped mid-run), seeded fault /
//! timing / cluster-fault plans, run parameters, and the properties the
//! run must exhibit (`assert` lines). Scenarios are data, not code:
//! the corpus under `scenarios/` is the repo's executable description
//! of every behaviour the stack guarantees.
//!
//! The pipeline is [`parse`] → [`ScenarioRunner`] → outcome:
//!
//! - [`parse`] turns text into a validated [`Scenario`]; every
//!   rejection is a typed [`ScenarioError`] with a source line.
//! - [`emit`] renders the single canonical text form. The parser
//!   accepts a superset (comments, flexible whitespace), making the
//!   emitter a fixed point: `emit(parse(emit(s))) == emit(s)`, and
//!   canonically-authored files round-trip byte-identically.
//! - [`ScenarioRunner`] compiles the scenario onto `twig-sim` /
//!   `twig-cluster`, runs it (self-seeded: outcomes are bit-identical
//!   regardless of fleet parallelism), and evaluates the assertions.
//!
//! ```
//! use twig_scenario::{emit, parse, ScenarioRunner};
//!
//! let text = "\
//! scenario \"doc\"
//! seed 7
//! epochs 30
//! measure 10
//!
//! server
//!   cores 16
//!   dvfs 1200 200 8
//! end
//!
//! service \"img-dnn\"
//!   spec catalog img-dnn
//!   load fixed 0.3
//! end
//!
//! assert qos_floor all 50
//! ";
//! let scenario = parse(text).unwrap();
//! assert_eq!(emit(&scenario), text);
//! let outcome = ScenarioRunner::new(scenario).unwrap().run().unwrap();
//! assert!(outcome.passed, "{:?}", outcome.assertions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod emit;
mod error;
mod json;
mod model;
mod parse;
mod runner;

pub use corpus::corpus;
pub use emit::emit;
pub use error::ScenarioError;
pub use model::{
    Assertion, ClusterFaultSection, FaultSection, FederateSection, Scenario, ServiceDef,
    SpecSource, TimingSection, Topology,
};
pub use parse::parse;
pub use runner::{
    AssertionResult, ClusterOutcome, ScenarioOutcome, ScenarioRunner, ServiceOutcome,
};
