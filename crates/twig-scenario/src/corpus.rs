//! The shipped scenario corpus: every `.scn` file under `scenarios/`,
//! compiled into the crate so the corpus is versioned with the code that
//! runs it. Each file is authored in canonical form (see [`crate::emit`])
//! and round-trips byte-identically through the parser — `scnfmt --check`
//! and the tests below both enforce this.

/// One corpus entry per `.scn` file: `(file_name, text)`.
const FILES: &[(&str, &str)] = &[
    (
        "steady-colocated.scn",
        include_str!("../../../scenarios/steady-colocated.scn"),
    ),
    (
        "step-load.scn",
        include_str!("../../../scenarios/step-load.scn"),
    ),
    (
        "diurnal-cycle.scn",
        include_str!("../../../scenarios/diurnal-cycle.scn"),
    ),
    (
        "ramp-up.scn",
        include_str!("../../../scenarios/ramp-up.scn"),
    ),
    (
        "flash-crowd.scn",
        include_str!("../../../scenarios/flash-crowd.scn"),
    ),
    (
        "correlated-bursts.scn",
        include_str!("../../../scenarios/correlated-bursts.scn"),
    ),
    (
        "anticorrelated-bursts.scn",
        include_str!("../../../scenarios/anticorrelated-bursts.scn"),
    ),
    (
        "trace-replay.scn",
        include_str!("../../../scenarios/trace-replay.scn"),
    ),
    (
        "mixed-shapes.scn",
        include_str!("../../../scenarios/mixed-shapes.scn"),
    ),
    (
        "service-arrival.scn",
        include_str!("../../../scenarios/service-arrival.scn"),
    ),
    (
        "service-departure.scn",
        include_str!("../../../scenarios/service-departure.scn"),
    ),
    (
        "service-swap.scn",
        include_str!("../../../scenarios/service-swap.scn"),
    ),
    (
        "churn-rotation.scn",
        include_str!("../../../scenarios/churn-rotation.scn"),
    ),
    (
        "catalog-dozen.scn",
        include_str!("../../../scenarios/catalog-dozen.scn"),
    ),
    (
        "catalog-two-dozen.scn",
        include_str!("../../../scenarios/catalog-two-dozen.scn"),
    ),
    (
        "pmc-noise.scn",
        include_str!("../../../scenarios/pmc-noise.scn"),
    ),
    (
        "actuation-faults.scn",
        include_str!("../../../scenarios/actuation-faults.scn"),
    ),
    (
        "core-failures.scn",
        include_str!("../../../scenarios/core-failures.scn"),
    ),
    (
        "timing-calm.scn",
        include_str!("../../../scenarios/timing-calm.scn"),
    ),
    (
        "timing-pressure.scn",
        include_str!("../../../scenarios/timing-pressure.scn"),
    ),
    (
        "crash-recovery.scn",
        include_str!("../../../scenarios/crash-recovery.scn"),
    ),
    (
        "cluster-steady.scn",
        include_str!("../../../scenarios/cluster-steady.scn"),
    ),
    (
        "cluster-crash-failover.scn",
        include_str!("../../../scenarios/cluster-crash-failover.scn"),
    ),
    (
        "cluster-demand-ramp.scn",
        include_str!("../../../scenarios/cluster-demand-ramp.scn"),
    ),
    (
        "cluster-federate-calm.scn",
        include_str!("../../../scenarios/cluster-federate-calm.scn"),
    ),
    (
        "cluster-federate-byzantine.scn",
        include_str!("../../../scenarios/cluster-federate-byzantine.scn"),
    ),
    (
        "kitchen-sink.scn",
        include_str!("../../../scenarios/kitchen-sink.scn"),
    ),
    (
        "platform-steady.scn",
        include_str!("../../../scenarios/platform-steady.scn"),
    ),
    (
        "platform-reject-storm.scn",
        include_str!("../../../scenarios/platform-reject-storm.scn"),
    ),
];

/// The shipped corpus, in file order: `(file_name, text)` pairs.
pub fn corpus() -> Vec<(&'static str, &'static str)> {
    FILES.to_vec()
}

#[cfg(test)]
mod tests {
    use super::corpus;
    use crate::{emit, parse, ScenarioRunner};
    use std::collections::BTreeSet;

    #[test]
    fn corpus_is_nonempty_and_uniquely_named() {
        let c = corpus();
        assert!(c.len() >= 20, "corpus has {} scenarios, need 20+", c.len());
        let names: BTreeSet<&str> = c.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), c.len(), "duplicate corpus file names");
        let scn_names: BTreeSet<String> = c
            .iter()
            .map(|(_, t)| parse(t).unwrap().name.clone())
            .collect();
        assert_eq!(scn_names.len(), c.len(), "duplicate scenario names");
    }

    #[test]
    fn every_corpus_file_is_canonical() {
        for (file, text) in corpus() {
            let s = parse(text).unwrap_or_else(|e| panic!("{file}: {e}"));
            assert_eq!(
                emit(&s),
                text,
                "{file} is not canonical — run `scnfmt scenarios/{file}`"
            );
        }
    }

    #[test]
    fn every_corpus_scenario_compiles_onto_a_runner() {
        for (file, text) in corpus() {
            let s = parse(text).unwrap_or_else(|e| panic!("{file}: {e}"));
            ScenarioRunner::new(s).unwrap_or_else(|e| panic!("{file}: {e}"));
        }
    }
}
