use crate::ScenarioError;

/// Shorthand: a semantic-validation failure.
fn bad(detail: impl Into<String>) -> ScenarioError {
    ScenarioError::invalid(detail)
}
use twig_cluster::{ClusterFaultConfig, FedFaultConfig, FederateConfig};
use twig_sim::{catalog, DvfsLadder, FaultConfig, LoadGenerator, ServiceSpec, TimingFaultConfig};

/// One parsed scenario: everything a [`crate::ScenarioRunner`] needs to
/// compile a deterministic run, plus the properties it must exhibit.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (also the corpus file stem).
    pub name: String,
    /// Optional human description; empty = absent.
    pub desc: String,
    /// Workload seed: the run is a pure function of the scenario text.
    pub seed: u64,
    /// Control epochs to run (1 simulated second each).
    pub epochs: u64,
    /// QoS/power are measured over the trailing `measure` epochs.
    pub measure: u64,
    /// Ungoverned pre-roll epochs that fill the replay buffer (server
    /// topology only).
    pub warmup: u64,
    /// Run segments separated by crash + checkpoint-recovery boundaries
    /// (1 = no crashes; server topology only).
    pub segments: u64,
    /// Where the scenario runs: one server or a cluster.
    pub topology: Topology,
    /// The colocated services, in declaration order.
    pub services: Vec<ServiceDef>,
    /// Server fault plan (PMC corruption, actuation rejection, ...).
    pub faults: Option<FaultSection>,
    /// Server timing-fault plan; its presence switches the runner to the
    /// deadline-scheduler-metered control loop.
    pub timing: Option<TimingSection>,
    /// Cluster fault plan (crashes, partitions, migrations, ...).
    pub cluster_faults: Option<ClusterFaultSection>,
    /// Federated-learning plane: periodic weight-exchange rounds plus
    /// their seeded fault plan (cluster topology only).
    pub federate: Option<FederateSection>,
    /// Properties the run must exhibit; at least one.
    pub asserts: Vec<Assertion>,
}

/// The platform a scenario compiles onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A single simulated socket driven by one governed Twig agent stack.
    Server {
        /// Socket size.
        cores: usize,
        /// DVFS ladder as `(min_mhz, step_mhz, levels)`.
        dvfs: (u32, u32, usize),
    },
    /// A `twig-cluster` fleet with replicated placement and failover.
    Cluster {
        /// Replicas per service.
        replication: usize,
        /// Missed heartbeats before the balancer suspects a node.
        suspect_after: u32,
        /// Node platforms as `(cores, min_mhz, step_mhz, levels)`.
        nodes: Vec<(usize, u32, u32, usize)>,
    },
}

/// One service in the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDef {
    /// Unique id within the scenario (becomes the spec name).
    pub id: String,
    /// Where the service's calibration comes from.
    pub spec: SpecSource,
    /// The service's load trajectory (maps 1:1 onto the simulator's
    /// [`LoadGenerator`]).
    pub load: LoadGenerator,
    /// Epoch at which the service starts receiving traffic (0 = from the
    /// start). Before it, offered load is zero.
    pub arrive: u64,
    /// Epoch at which the service's traffic drains to zero, if any.
    pub depart: Option<u64>,
    /// Mid-run churn swap: at the given epoch the running service is
    /// replaced by a new one (queue drained, agent transferred), modelling
    /// the paper's incoming-service handoff. Server topology only.
    pub swap: Option<(u64, SpecSource)>,
}

/// Where a [`ServiceSpec`] comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecSource {
    /// One of the calibrated Table II catalog entries, verbatim.
    Catalog {
        /// Catalog name (`masstree`, `xapian`, ...).
        name: String,
    },
    /// A synthetic service derived from a catalog template with its
    /// capacity and QoS target overridden — how catalogs grow to dozens
    /// of services beyond Table II.
    Synthetic {
        /// Catalog template providing the interference profile.
        template: String,
        /// Maximum load, requests per second.
        rps: f64,
        /// QoS target (p99), milliseconds.
        qos_ms: f64,
    },
}

impl SpecSource {
    /// Resolves the source into a concrete, validated [`ServiceSpec`]
    /// named `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for an unknown catalog name or
    /// a synthetic spec the simulator rejects.
    pub fn resolve(&self, id: &str) -> Result<ServiceSpec, ScenarioError> {
        let mut spec = match self {
            SpecSource::Catalog { name } | SpecSource::Synthetic { template: name, .. } => {
                catalog::by_name(name).ok_or_else(|| {
                    ScenarioError::invalid(format!("service \"{id}\": unknown catalog `{name}`"))
                })?
            }
        };
        spec.name = id.to_string();
        if let SpecSource::Synthetic { rps, qos_ms, .. } = self {
            spec.max_load_rps = *rps;
            spec.qos_ms = *qos_ms;
        }
        spec.validate().map_err(|e| {
            ScenarioError::invalid(format!("service \"{id}\": derived spec invalid: {e}"))
        })?;
        Ok(spec)
    }
}

/// Seeded server fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSection {
    /// Seed for the plan's private RNG.
    pub seed: u64,
    /// The rates (all-zero = inject nothing).
    pub config: FaultConfig,
}

/// Seeded server timing-fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSection {
    /// Seed for the plan's private RNG.
    pub seed: u64,
    /// Phase latencies, spike rates and clock faults.
    pub config: TimingFaultConfig,
}

/// Seeded cluster fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFaultSection {
    /// Seed for the plan's private RNG.
    pub seed: u64,
    /// Rates plus exact scripted events.
    pub config: ClusterFaultConfig,
}

/// Federated-learning plane settings plus its seeded fault plan
/// (cluster topology only).
#[derive(Debug, Clone, PartialEq)]
pub struct FederateSection {
    /// Seed for the federation fault plan's private RNG.
    pub seed: u64,
    /// Epochs between weight-exchange round starts.
    pub period: u64,
    /// Minimum accepted payloads per service before a merge happens.
    pub quorum: usize,
    /// Collection window, epochs, before stragglers are cut off.
    pub timeout: u64,
    /// Federation fault rates plus exact scripted per-round events.
    pub config: FedFaultConfig,
}

impl FederateSection {
    /// The [`FederateConfig`] this section compiles to: the three
    /// DSL-exposed knobs over library defaults for the rest.
    pub fn to_config(&self) -> FederateConfig {
        FederateConfig {
            round_period: self.period,
            min_quorum: self.quorum,
            collect_timeout: self.timeout,
            ..FederateConfig::default()
        }
    }
}

/// One property the finished run must exhibit, evaluated in the style of
/// the chaos and timing suites.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// Measured QoS guarantee (percentage of measured, active epochs
    /// meeting the p99 target) must be at least `pct` — for one service
    /// (`Some(id)`) or every service (`None`).
    QosFloor {
        /// Service id, or `None` for all services.
        service: Option<String>,
        /// Minimum guarantee, percent.
        pct: f64,
    },
    /// Mean true power over the measured window stays at or under the cap
    /// (server topology only).
    PowerCap {
        /// Cap, watts.
        watts: f64,
    },
    /// Total dropped requests stay at or under this fraction of total
    /// arrivals over the whole run.
    DropCap {
        /// Maximum dropped fraction in `[0, 1]`.
        fraction: f64,
    },
    /// The deadline scheduler's load-shedding ladder never went deeper
    /// than `depth` (requires a `timing` section).
    MaxShedDepth {
        /// Maximum permitted ladder depth.
        depth: u8,
    },
    /// No decision was ever computed from a stale PMC window (server,
    /// requires `timing`) / no node actuated a stale placement (cluster).
    ZeroStaleActuations,
    /// The balancer's request-conservation books balanced every epoch
    /// (cluster topology only).
    Conserved,
    /// Every failover was detected within `epochs` epochs of the crash
    /// (cluster topology only).
    MaxFailover {
        /// Maximum detection latency, epochs.
        epochs: u64,
    },
    /// At least this many federation rounds committed a merge (requires a
    /// `federate` section).
    FedRounds {
        /// Minimum committed rounds.
        committed: u64,
    },
    /// The federation screening ladder rejected at least this many
    /// payloads — corrupt, wrong-shape, non-finite or Byzantine-divergent
    /// (requires a `federate` section).
    FedScreened {
        /// Minimum rejected payloads.
        rejected: u64,
    },
    /// Running the scenario twice produces bit-identical outcomes.
    Deterministic,
}

impl Scenario {
    /// Semantic validation: everything the grammar cannot express.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(bad("empty scenario name"));
        }
        if self.epochs == 0 {
            return Err(bad("epochs must be >= 1"));
        }
        if self.measure == 0 || self.measure > self.epochs {
            return Err(bad(format!(
                "measure {} outside 1..={} epochs",
                self.measure, self.epochs
            )));
        }
        if self.segments == 0 || self.segments > self.epochs {
            return Err(bad(format!(
                "segments {} outside 1..={} epochs",
                self.segments, self.epochs
            )));
        }
        if self.services.is_empty() {
            return Err(bad("no services declared"));
        }
        if self.asserts.is_empty() {
            return Err(bad(
                "no assertions declared — a scenario must assert something",
            ));
        }
        for (i, s) in self.services.iter().enumerate() {
            if self.services[..i].iter().any(|o| o.id == s.id) {
                return Err(bad(format!("duplicate service id \"{}\"", s.id)));
            }
            s.validate(self.epochs)?;
            s.spec.resolve(&s.id)?;
            if let Some((_, src)) = &s.swap {
                src.resolve(&s.id)?;
            }
        }
        self.validate_topology()?;
        for a in &self.asserts {
            self.validate_assertion(a)?;
        }
        if let Some(f) = &self.faults {
            f.config
                .validate()
                .map_err(|e| bad(format!("faults: {e}")))?;
        }
        if let Some(t) = &self.timing {
            t.config
                .validate()
                .map_err(|e| bad(format!("timing: {e}")))?;
        }
        if let Some(c) = &self.cluster_faults {
            c.config
                .validate()
                .map_err(|e| bad(format!("cluster_faults: {e}")))?;
        }
        if let Some(f) = &self.federate {
            f.to_config()
                .validate()
                .map_err(|e| bad(format!("federate: {e}")))?;
            f.config
                .validate()
                .map_err(|e| bad(format!("federate: {e}")))?;
        }
        Ok(())
    }

    fn validate_topology(&self) -> Result<(), ScenarioError> {
        match &self.topology {
            Topology::Server { cores, dvfs } => {
                if *cores < 2 {
                    return Err(bad(format!("server needs >= 2 cores, got {cores}")));
                }
                DvfsLadder::new(dvfs.0, dvfs.1, dvfs.2)
                    .map_err(|e| bad(format!("server dvfs: {e}")))?;
                if self.cluster_faults.is_some() {
                    return Err(bad("cluster_faults section on a server scenario"));
                }
                if self.federate.is_some() {
                    return Err(bad("federate section on a server scenario"));
                }
                if self.timing.is_some() && self.segments > 1 {
                    return Err(bad("timing and segments > 1 cannot be combined"));
                }
            }
            Topology::Cluster {
                replication,
                suspect_after,
                nodes,
            } => {
                if nodes.is_empty() {
                    return Err(bad("cluster has no nodes"));
                }
                for (i, n) in nodes.iter().enumerate() {
                    if n.0 < 2 {
                        return Err(bad(format!("node {i} needs >= 2 cores, got {}", n.0)));
                    }
                    DvfsLadder::new(n.1, n.2, n.3)
                        .map_err(|e| bad(format!("node {i} dvfs: {e}")))?;
                }
                if *replication == 0 || *replication > nodes.len() {
                    return Err(bad(format!(
                        "replication {replication} outside 1..={} nodes",
                        nodes.len()
                    )));
                }
                if *suspect_after == 0 {
                    return Err(bad("suspect_after must be >= 1"));
                }
                if self.faults.is_some() || self.timing.is_some() {
                    return Err(bad("faults/timing sections are server-only"));
                }
                if self.segments > 1 || self.warmup > 0 {
                    return Err(bad("segments/warmup are server-only"));
                }
                if self.services.iter().any(|s| s.swap.is_some()) {
                    return Err(bad("swap churn is server-only"));
                }
            }
        }
        Ok(())
    }

    fn validate_assertion(&self, a: &Assertion) -> Result<(), ScenarioError> {
        let is_cluster = matches!(self.topology, Topology::Cluster { .. });
        match a {
            Assertion::QosFloor { service, pct } => {
                if !(0.0..=100.0).contains(pct) {
                    return Err(bad(format!("qos_floor {pct} outside [0, 100]")));
                }
                if let Some(id) = service {
                    if !self.services.iter().any(|s| &s.id == id) {
                        return Err(bad(format!("qos_floor names unknown service \"{id}\"")));
                    }
                }
            }
            Assertion::PowerCap { watts } => {
                if is_cluster {
                    return Err(bad("power_cap is server-only"));
                }
                if !watts.is_finite() || *watts <= 0.0 {
                    return Err(bad(format!("power_cap {watts} not positive")));
                }
            }
            Assertion::DropCap { fraction } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(bad(format!("drop_cap {fraction} outside [0, 1]")));
                }
            }
            Assertion::MaxShedDepth { .. } => {
                if self.timing.is_none() {
                    return Err(bad("max_shed_depth requires a timing section"));
                }
            }
            Assertion::ZeroStaleActuations => {
                if !is_cluster && self.timing.is_none() {
                    return Err(bad(
                        "zero_stale_actuations requires a timing section on a server scenario",
                    ));
                }
            }
            Assertion::Conserved | Assertion::MaxFailover { .. } => {
                if !is_cluster {
                    return Err(bad("conserved/max_failover are cluster-only"));
                }
            }
            Assertion::FedRounds { .. } | Assertion::FedScreened { .. } => {
                if self.federate.is_none() {
                    return Err(bad("fed_rounds/fed_screened require a federate section"));
                }
            }
            Assertion::Deterministic => {}
        }
        Ok(())
    }
}

impl ServiceDef {
    fn validate(&self, epochs: u64) -> Result<(), ScenarioError> {
        if self.id.is_empty() {
            return Err(bad("empty service id"));
        }
        if self.arrive >= epochs {
            return Err(bad(format!(
                "service \"{}\": arrive {} >= epochs {epochs}",
                self.id, self.arrive
            )));
        }
        if let Some(d) = self.depart {
            if d <= self.arrive || d > epochs {
                return Err(bad(format!(
                    "service \"{}\": depart {d} outside arrive {}..={epochs}",
                    self.id, self.arrive
                )));
            }
        }
        if let Some((e, _)) = &self.swap {
            if *e == 0 || *e >= epochs {
                return Err(bad(format!(
                    "service \"{}\": swap epoch {e} outside 1..{epochs}",
                    self.id
                )));
            }
            if self.depart.is_some() {
                return Err(bad(format!(
                    "service \"{}\": swap and depart are mutually exclusive",
                    self.id
                )));
            }
        }
        Ok(())
    }

    /// Is the service receiving traffic at 0-based epoch `e`?
    pub fn active_at(&self, e: u64) -> bool {
        e >= self.arrive && self.depart.is_none_or(|d| e < d)
    }
}
