//! Canonical formatter for `.scn` scenario files.
//!
//! ```text
//! scnfmt FILE...          rewrite each file to canonical form in place
//! scnfmt --check FILE...  exit 1 if any file is not already canonical
//! ```
//!
//! A file is canonical when `emit(parse(text)) == text`; the corpus under
//! `scenarios/` is kept canonical so every file round-trips
//! byte-identically through the parser.

use std::process::ExitCode;
use twig_scenario::{emit, parse};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.first().map(String::as_str) == Some("--check");
    if check {
        args.remove(0);
    }
    if args.is_empty() {
        eprintln!("usage: scnfmt [--check] FILE...");
        return ExitCode::from(2);
    }
    let mut dirty = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scnfmt: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let canonical = match parse(&text) {
            Ok(s) => emit(&s),
            Err(e) => {
                eprintln!("scnfmt: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if canonical == text {
            continue;
        }
        dirty = true;
        if check {
            eprintln!("scnfmt: {path}: not canonical");
        } else if let Err(e) = std::fs::write(path, &canonical) {
            eprintln!("scnfmt: {path}: {e}");
            return ExitCode::from(2);
        } else {
            eprintln!("scnfmt: rewrote {path}");
        }
    }
    if check && dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
