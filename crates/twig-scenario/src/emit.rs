//! The canonical `.scn` emitter.
//!
//! There is exactly one canonical text form per scenario: fields in fixed
//! order, two-space indent inside sections, single spaces between tokens,
//! defaults omitted, one blank line between top-level blocks, a trailing
//! newline. [`crate::parse`] accepts a superset (comments, flexible
//! whitespace), so the emitter is a fixed point: for every scenario `s`,
//! `emit(parse(emit(s))) == emit(s)`, and canonically-authored corpus
//! files round-trip byte-identically.

use crate::model::{Assertion, Scenario, ServiceDef, SpecSource, Topology};
use std::fmt::Write as _;
use twig_sim::LoadGenerator;

/// Renders the canonical text form of a scenario.
pub fn emit(s: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", quoted(&s.name));
    if !s.desc.is_empty() {
        let _ = writeln!(out, "desc {}", quoted(&s.desc));
    }
    let _ = writeln!(out, "seed {}", s.seed);
    let _ = writeln!(out, "epochs {}", s.epochs);
    let _ = writeln!(out, "measure {}", s.measure);
    if s.warmup != 0 {
        let _ = writeln!(out, "warmup {}", s.warmup);
    }
    if s.segments != 1 {
        let _ = writeln!(out, "segments {}", s.segments);
    }

    emit_topology(&mut out, &s.topology);
    for svc in &s.services {
        emit_service(&mut out, svc);
    }
    if let Some(f) = &s.faults {
        emit_faults(&mut out, f);
    }
    if let Some(t) = &s.timing {
        emit_timing(&mut out, t);
    }
    if let Some(c) = &s.cluster_faults {
        emit_cluster_faults(&mut out, c);
    }
    if let Some(f) = &s.federate {
        emit_federate(&mut out, f);
    }

    if !s.asserts.is_empty() {
        out.push('\n');
        for a in &s.asserts {
            emit_assert_line(&mut out, a);
        }
    }
    out
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn emit_topology(out: &mut String, t: &Topology) {
    out.push('\n');
    match t {
        Topology::Server { cores, dvfs } => {
            out.push_str("server\n");
            let _ = writeln!(out, "  cores {cores}");
            let _ = writeln!(out, "  dvfs {} {} {}", dvfs.0, dvfs.1, dvfs.2);
        }
        Topology::Cluster {
            replication,
            suspect_after,
            nodes,
        } => {
            out.push_str("cluster\n");
            let _ = writeln!(out, "  replication {replication}");
            let _ = writeln!(out, "  suspect_after {suspect_after}");
            for n in nodes {
                let _ = writeln!(out, "  node {} {} {} {}", n.0, n.1, n.2, n.3);
            }
        }
    }
    out.push_str("end\n");
}

fn emit_spec_source(src: &SpecSource) -> String {
    match src {
        SpecSource::Catalog { name } => format!("catalog {name}"),
        SpecSource::Synthetic {
            template,
            rps,
            qos_ms,
        } => format!("synthetic {template} {rps} {qos_ms}"),
    }
}

fn emit_service(out: &mut String, s: &ServiceDef) {
    out.push('\n');
    let _ = writeln!(out, "service {}", quoted(&s.id));
    let _ = writeln!(out, "  spec {}", emit_spec_source(&s.spec));
    let _ = writeln!(out, "  load {}", emit_load(&s.load));
    if s.arrive != 0 {
        let _ = writeln!(out, "  arrive {}", s.arrive);
    }
    if let Some(d) = s.depart {
        let _ = writeln!(out, "  depart {d}");
    }
    if let Some((e, src)) = &s.swap {
        let _ = writeln!(out, "  swap {e} {}", emit_spec_source(src));
    }
    out.push_str("end\n");
}

fn emit_load(g: &LoadGenerator) -> String {
    match g {
        LoadGenerator::Fixed { fraction } => format!("fixed {fraction}"),
        LoadGenerator::Step {
            min,
            max,
            change_factor,
            period_s,
        } => format!("step {min} {max} {change_factor} {period_s}"),
        LoadGenerator::Diurnal { min, max, period_s } => {
            format!("diurnal {min} {max} {period_s}")
        }
        LoadGenerator::Ramp {
            from,
            to,
            start_s,
            duration_s,
        } => format!("ramp {from} {to} {start_s} {duration_s}"),
        LoadGenerator::FlashCrowd {
            base,
            peak,
            start_s,
            ramp_s,
            hold_s,
        } => format!("flash_crowd {base} {peak} {start_s} {ramp_s} {hold_s}"),
        LoadGenerator::Burst {
            base,
            peak,
            period_s,
            duty_s,
            phase_s,
        } => format!("burst {base} {peak} {period_s} {duty_s} {phase_s}"),
        LoadGenerator::Replay { table, dwell_s } => {
            let mut s = format!("replay {dwell_s}");
            for f in table {
                let _ = write!(s, " {f}");
            }
            s
        }
    }
}

fn emit_faults(out: &mut String, f: &crate::model::FaultSection) {
    out.push('\n');
    out.push_str("faults\n");
    let _ = writeln!(out, "  seed {}", f.seed);
    let c = &f.config;
    if c.pmc_corrupt_rate != 0.0 {
        let _ = writeln!(out, "  pmc_corrupt {}", c.pmc_corrupt_rate);
    }
    if c.telemetry_delay_epochs != 0 {
        let _ = writeln!(out, "  telemetry_delay {}", c.telemetry_delay_epochs);
    }
    if c.actuation_reject_rate != 0.0 {
        let _ = writeln!(out, "  actuation_reject {}", c.actuation_reject_rate);
    }
    if c.dvfs_clamp_rate != 0.0 {
        let _ = writeln!(out, "  dvfs_clamp {}", c.dvfs_clamp_rate);
    }
    if c.power_glitch_rate != 0.0 {
        let _ = writeln!(out, "  power_glitch {}", c.power_glitch_rate);
    }
    if c.core_fail_rate != 0.0 {
        let _ = writeln!(out, "  core_fail {}", c.core_fail_rate);
    }
    if c.core_repair_rate != 0.0 {
        let _ = writeln!(out, "  core_repair {}", c.core_repair_rate);
    }
    if c.max_offline_cores != 0 {
        let _ = writeln!(out, "  max_offline {}", c.max_offline_cores);
    }
    out.push_str("end\n");
}

fn emit_timing(out: &mut String, t: &crate::model::TimingSection) {
    out.push('\n');
    out.push_str("timing\n");
    let _ = writeln!(out, "  seed {}", t.seed);
    let c = &t.config;
    if c.pmc_base_ms != 0.0 {
        let _ = writeln!(out, "  pmc_base {}", c.pmc_base_ms);
    }
    if c.pmc_spike_rate != 0.0 || c.pmc_spike_ms != 0.0 {
        let _ = writeln!(out, "  pmc_spike {} {}", c.pmc_spike_rate, c.pmc_spike_ms);
    }
    if c.pmc_stale_rate != 0.0 || c.pmc_stale_age_ms != 0.0 {
        let _ = writeln!(
            out,
            "  pmc_stale {} {}",
            c.pmc_stale_rate, c.pmc_stale_age_ms
        );
    }
    if c.inference_base_ms != 0.0 {
        let _ = writeln!(out, "  inference_base {}", c.inference_base_ms);
    }
    if c.inference_spike_rate != 0.0 || c.inference_spike_ms != 0.0 {
        let _ = writeln!(
            out,
            "  inference_spike {} {}",
            c.inference_spike_rate, c.inference_spike_ms
        );
    }
    if c.learn_chunk_base_ms != 0.0 {
        let _ = writeln!(out, "  learn_chunk {}", c.learn_chunk_base_ms);
    }
    if c.learn_spike_rate != 0.0 || c.learn_spike_ms != 0.0 {
        let _ = writeln!(
            out,
            "  learn_spike {} {}",
            c.learn_spike_rate, c.learn_spike_ms
        );
    }
    if c.actuation_base_ms != 0.0 {
        let _ = writeln!(out, "  actuation_base {}", c.actuation_base_ms);
    }
    if c.actuation_stall_rate != 0.0 || c.actuation_stall_ms != 0.0 {
        let _ = writeln!(
            out,
            "  actuation_stall {} {}",
            c.actuation_stall_rate, c.actuation_stall_ms
        );
    }
    if c.clock_jitter_ms != 0.0 {
        let _ = writeln!(out, "  clock_jitter {}", c.clock_jitter_ms);
    }
    if c.clock_skew_rate != 0.0 || c.clock_skew_ms != 0.0 {
        let _ = writeln!(
            out,
            "  clock_skew {} {}",
            c.clock_skew_rate, c.clock_skew_ms
        );
    }
    if c.clock_stuck_rate != 0.0 {
        let _ = writeln!(out, "  clock_stuck {}", c.clock_stuck_rate);
    }
    out.push_str("end\n");
}

fn emit_cluster_faults(out: &mut String, cf: &crate::model::ClusterFaultSection) {
    use twig_cluster::ClusterEvent;
    out.push('\n');
    out.push_str("cluster_faults\n");
    let _ = writeln!(out, "  seed {}", cf.seed);
    let c = &cf.config;
    if c.crash_rate != 0.0 {
        let _ = writeln!(out, "  crash_rate {}", c.crash_rate);
    }
    if c.restart_after_epochs != 0 {
        let _ = writeln!(out, "  restart_after {}", c.restart_after_epochs);
    }
    if c.heartbeat_loss_rate != 0.0 {
        let _ = writeln!(out, "  heartbeat_loss {}", c.heartbeat_loss_rate);
    }
    if c.blackout_rate != 0.0 || c.blackout_epochs != 0 {
        let _ = writeln!(out, "  blackout {} {}", c.blackout_rate, c.blackout_epochs);
    }
    if c.partition_rate != 0.0 || c.partition_epochs != 0 {
        let _ = writeln!(
            out,
            "  partition {} {}",
            c.partition_rate, c.partition_epochs
        );
    }
    if c.migration_stall_rate != 0.0 {
        let _ = writeln!(out, "  migration_stall {}", c.migration_stall_rate);
    }
    if c.migration_corrupt_rate != 0.0 {
        let _ = writeln!(out, "  migration_corrupt {}", c.migration_corrupt_rate);
    }
    for ev in &c.scripted {
        let _ = match &ev.event {
            ClusterEvent::Crash { node } => writeln!(out, "  at {} crash {node}", ev.epoch),
            ClusterEvent::Restart { node } => writeln!(out, "  at {} restart {node}", ev.epoch),
            ClusterEvent::DropHeartbeat { node } => {
                writeln!(out, "  at {} drop_heartbeat {node}", ev.epoch)
            }
            ClusterEvent::Migrate { service, from, to } => {
                writeln!(out, "  at {} migrate {service} {from} {to}", ev.epoch)
            }
            ClusterEvent::Blackout { epochs } => {
                writeln!(out, "  at {} blackout {epochs}", ev.epoch)
            }
            ClusterEvent::Partition { node, epochs } => {
                writeln!(out, "  at {} partition {node} {epochs}", ev.epoch)
            }
        };
    }
    out.push_str("end\n");
}

fn emit_federate(out: &mut String, f: &crate::model::FederateSection) {
    use twig_cluster::{ByzantineFlavor, FedEvent, FederateConfig};
    let defaults = FederateConfig::default();
    out.push('\n');
    out.push_str("federate\n");
    let _ = writeln!(out, "  seed {}", f.seed);
    if f.period != defaults.round_period {
        let _ = writeln!(out, "  period {}", f.period);
    }
    if f.quorum != defaults.min_quorum {
        let _ = writeln!(out, "  quorum {}", f.quorum);
    }
    if f.timeout != defaults.collect_timeout {
        let _ = writeln!(out, "  timeout {}", f.timeout);
    }
    let c = &f.config;
    if c.corrupt_rate != 0.0 {
        let _ = writeln!(out, "  corrupt_rate {}", c.corrupt_rate);
    }
    if c.truncate_rate != 0.0 {
        let _ = writeln!(out, "  truncate_rate {}", c.truncate_rate);
    }
    if c.byzantine_rate != 0.0 {
        let _ = writeln!(out, "  byzantine_rate {}", c.byzantine_rate);
    }
    if c.straggler_rate != 0.0 || c.straggle_epochs != 1 {
        let _ = writeln!(out, "  straggle {} {}", c.straggler_rate, c.straggle_epochs);
    }
    if c.drop_rate != 0.0 {
        let _ = writeln!(out, "  drop_rate {}", c.drop_rate);
    }
    if c.poison_merge_rate != 0.0 {
        let _ = writeln!(out, "  poison_rate {}", c.poison_merge_rate);
    }
    for ev in &c.scripted {
        let _ = match &ev.event {
            FedEvent::Corrupt { node } => writeln!(out, "  at {} corrupt {node}", ev.round),
            FedEvent::Truncate { node } => writeln!(out, "  at {} truncate {node}", ev.round),
            FedEvent::Byzantine { node, flavor } => {
                let word = match flavor {
                    ByzantineFlavor::Garbage => "garbage",
                    ByzantineFlavor::NonFinite => "nonfinite",
                    ByzantineFlavor::Offset => "offset",
                };
                writeln!(out, "  at {} byzantine {node} {word}", ev.round)
            }
            FedEvent::Straggle { node, epochs } => {
                writeln!(out, "  at {} straggle {node} {epochs}", ev.round)
            }
            FedEvent::Drop { node } => writeln!(out, "  at {} drop {node}", ev.round),
            FedEvent::PoisonMerge => writeln!(out, "  at {} poison_merge", ev.round),
        };
    }
    out.push_str("end\n");
}

/// Renders one `assert` line (with trailing newline) in canonical form.
pub(crate) fn emit_assert_line(out: &mut String, a: &Assertion) {
    let _ = match a {
        Assertion::QosFloor { service, pct } => match service {
            Some(id) => writeln!(out, "assert qos_floor {} {pct}", quoted(id)),
            None => writeln!(out, "assert qos_floor all {pct}"),
        },
        Assertion::PowerCap { watts } => writeln!(out, "assert power_cap {watts}"),
        Assertion::DropCap { fraction } => writeln!(out, "assert drop_cap {fraction}"),
        Assertion::MaxShedDepth { depth } => writeln!(out, "assert max_shed_depth {depth}"),
        Assertion::ZeroStaleActuations => writeln!(out, "assert zero_stale_actuations"),
        Assertion::Conserved => writeln!(out, "assert conserved"),
        Assertion::MaxFailover { epochs } => writeln!(out, "assert max_failover {epochs}"),
        Assertion::FedRounds { committed } => writeln!(out, "assert fed_rounds {committed}"),
        Assertion::FedScreened { rejected } => writeln!(out, "assert fed_screened {rejected}"),
        Assertion::Deterministic => writeln!(out, "assert deterministic"),
    };
}
