//! Compiles a parsed [`Scenario`] onto the existing `twig-sim` /
//! `twig-cluster` machinery and executes it.
//!
//! A run is a pure function of the scenario text: the runner uses only
//! the scenario's own seeds and the disabled-telemetry fast path, so the
//! same `.scn` file produces bit-identical outcomes anywhere in a fleet,
//! at any `--jobs`. Server scenarios drive a governed Twig agent stack
//! (scheduler-metered when a `timing` section is present, with
//! crash/recovery boundaries when `segments > 1`); cluster scenarios
//! drive a `twig-cluster` fleet with per-epoch demand compiled from the
//! declared load shapes.

use crate::model::{Assertion, Scenario, Topology};
use crate::ScenarioError;
use std::sync::atomic::{AtomicU64, Ordering};
use twig_cluster::{
    AgentTuning, Cluster, ClusterConfig, ClusterFaultPlan, CoordinatorConfig, FedFaultPlan,
    NodePlatform,
};
use twig_core::{
    recover, ActuationDirective, CheckpointStore, EpochScheduler, GovernorConfig,
    InferenceDirective, LearnDirective, RewardConfig, SafetyGovernor, SchedulerConfig, SimClock,
    TaskManager, Twig, TwigBuilder, VirtualClock,
};
use twig_platform::{Platform, SimPlatform};
use twig_rl::{BudgetedProgress, EpsilonSchedule, MaBdqConfig};
use twig_sim::{
    Assignment, DvfsLadder, EpochTimings, FaultPlan, LoadGenerator, Server, ServerConfig,
    ServiceSpec, TimingFaultPlan,
};
use twig_telemetry::Telemetry;

/// Per-service slice of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Service id from the scenario.
    pub id: String,
    /// Measured epochs in which the service was active.
    pub measured_epochs: u64,
    /// Measured active epochs meeting the p99 target (idle epochs count
    /// as met — an idle service cannot violate QoS).
    pub qos_met_epochs: u64,
    /// Mean p99 over measured active epochs that served traffic, ms.
    pub mean_p99_ms: f64,
    /// Requests completed over the whole run.
    pub completed: u64,
    /// Requests dropped over the whole run.
    pub dropped: u64,
}

impl ServiceOutcome {
    /// QoS guarantee over the measured window, percent (100 when the
    /// service was never measured active).
    pub fn qos_pct(&self) -> f64 {
        if self.measured_epochs == 0 {
            100.0
        } else {
            100.0 * self.qos_met_epochs as f64 / self.measured_epochs as f64
        }
    }
}

/// Cluster-only slice of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// The conservation check held every epoch.
    pub conserved: bool,
    /// `cluster.conservation_failures` at the end of the run.
    pub conservation_failures: u64,
    /// `cluster.stale_actuations` at the end of the run.
    pub stale_actuations: u64,
    /// Failovers detected.
    pub failovers: u64,
    /// Worst crash-to-suspicion latency, epochs (0 when no failover).
    pub max_failover_latency: u64,
    /// Whole-server crashes injected.
    pub crashes: u64,
    /// Requests routed over the run.
    pub routed: u64,
    /// Requests bounced off unreachable replicas.
    pub bounced: u64,
    /// Nodes alive after the final epoch.
    pub live_nodes_final: usize,
    /// `fed.rounds_committed` at the end of the run (0 without a
    /// `federate` section).
    pub fed_rounds_committed: u64,
    /// Payloads the federation screening ladder rejected — corrupt,
    /// wrong-shape, non-finite or Byzantine-divergent.
    pub fed_rejected: u64,
    /// Cold replicas re-warmed by a federated merge.
    pub fed_cold_transfers: u64,
}

/// One evaluated property.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionResult {
    /// The assertion, in canonical DSL form.
    pub desc: String,
    /// Did the run exhibit the property?
    pub pass: bool,
    /// Measured-vs-required diagnostic.
    pub detail: String,
}

/// Everything a finished scenario run produced. Plain counts and floats —
/// `Send`, comparable, and digestible for bit-identity checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Epochs executed (excluding warm-up).
    pub epochs: u64,
    /// Per-service results, in declaration order.
    pub services: Vec<ServiceOutcome>,
    /// Mean true power over the measured window, watts (0 for cluster
    /// runs — node power is not aggregated).
    pub mean_power_w: f64,
    /// Total true energy over the run, joules (server runs).
    pub energy_j: f64,
    /// Deepest load-shedding ladder rung reached (scheduler-metered runs).
    pub max_shed_depth: u8,
    /// Deadline misses (scheduler-metered runs).
    pub deadline_misses: u64,
    /// Decisions computed from a stale PMC window — structurally zero.
    pub stale_decisions: u64,
    /// Stale PMC windows encountered (and routed around).
    pub stale_windows: u64,
    /// Segment boundaries recovered from a checkpoint.
    pub recoveries_restored: u64,
    /// Segment boundaries that fell through to a cold start.
    pub recoveries_cold: u64,
    /// Cluster-only results.
    pub cluster: Option<ClusterOutcome>,
    /// FNV-1a digest of every field above — two runs are bit-identical
    /// iff their digests match.
    pub digest: u64,
    /// Evaluated assertions, in scenario order (empty until [`ScenarioRunner::run`]
    /// finishes).
    pub assertions: Vec<AssertionResult>,
    /// Every assertion passed.
    pub passed: bool,
}

/// Executes scenarios. Construction validates; [`ScenarioRunner::run`]
/// executes and evaluates the scenario's assertions.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
}

/// Distinguishes concurrent runners' scratch directories.
static SCRATCH_NONCE: AtomicU64 = AtomicU64::new(0);

fn run_err(e: impl std::fmt::Display) -> ScenarioError {
    ScenarioError::run(e.to_string())
}

impl ScenarioRunner {
    /// Wraps a validated scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] when the scenario does not
    /// validate.
    pub fn new(scenario: Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        Ok(ScenarioRunner { scenario })
    }

    /// The scenario being run.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Executes the scenario and evaluates its assertions.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Run`] when compilation or execution fails;
    /// failing *assertions* are reported in the outcome, not as errors.
    pub fn run(&self) -> Result<ScenarioOutcome, ScenarioError> {
        let mut outcome = self.execute()?;
        let rerun_digest = if self.scenario.asserts.contains(&Assertion::Deterministic) {
            Some(self.execute()?.digest)
        } else {
            None
        };
        outcome.assertions = self
            .scenario
            .asserts
            .iter()
            .map(|a| evaluate(a, &outcome, rerun_digest))
            .collect();
        outcome.passed = outcome.assertions.iter().all(|r| r.pass);
        Ok(outcome)
    }

    fn execute(&self) -> Result<ScenarioOutcome, ScenarioError> {
        match &self.scenario.topology {
            Topology::Server { cores, dvfs } => self.execute_server(*cores, *dvfs),
            Topology::Cluster {
                replication,
                suspect_after,
                nodes,
            } => self.execute_cluster(*replication, *suspect_after, nodes),
        }
    }

    fn resolve_specs(&self) -> Result<Vec<ServiceSpec>, ScenarioError> {
        self.scenario
            .services
            .iter()
            .map(|s| s.spec.resolve(&s.id))
            .collect()
    }

    fn execute_server(
        &self,
        cores: usize,
        dvfs: (u32, u32, usize),
    ) -> Result<ScenarioOutcome, ScenarioError> {
        let s = &self.scenario;
        let ladder = DvfsLadder::new(dvfs.0, dvfs.1, dvfs.2).map_err(run_err)?;
        let mut specs = self.resolve_specs()?;
        let mut qos: Vec<f64> = specs.iter().map(|sp| sp.qos_ms).collect();
        let cfg = ServerConfig::with_platform(cores, ladder.clone());
        let mut server = Server::new(cfg, specs.clone(), s.seed).map_err(run_err)?;
        for (i, svc) in s.services.iter().enumerate() {
            let gen = if svc.arrive == 0 {
                svc.load.clone()
            } else {
                LoadGenerator::fixed(0.0).map_err(run_err)?
            };
            server.set_load_generator(i, gen).map_err(run_err)?;
        }
        if let Some(f) = &s.faults {
            server.set_fault_plan(FaultPlan::new(f.config.clone(), f.seed).map_err(run_err)?);
        }
        if let Some(t) = &s.timing {
            server
                .set_timing_plan(TimingFaultPlan::new(t.config.clone(), t.seed).map_err(run_err)?);
        }

        // All server-topology control flows through the Platform trait
        // from here on; SimPlatform::step is byte-identical to
        // Server::step, and server-only controls (churn, loads) stay
        // reachable through server_mut().
        let mut platform = SimPlatform::new(server);

        // ε reaches its floor as the measurement window opens.
        let learn_epochs = s.warmup + s.epochs - s.measure;
        let mut twig = build_twig(specs.clone(), learn_epochs, s.seed, s.timing.is_some())?;
        for _ in 0..s.warmup {
            let a = twig.decide().map_err(run_err)?;
            let r = platform.step(&a).map_err(run_err)?;
            twig.observe(&r).map_err(run_err)?;
        }
        // Arm the fixed-point snapshot so SafeFallback epochs decide on the
        // degraded (quantized, greedy) network instead of the static plan.
        twig.prepare_fallback().map_err(run_err)?;
        let gov_config = GovernorConfig {
            services: specs.clone(),
            cores,
            dvfs: ladder.clone(),
            ..GovernorConfig::default()
        };
        let mut gov = SafetyGovernor::new(twig, gov_config.clone()).map_err(run_err)?;

        // Scheduler-metered loop state (present iff a timing section is).
        let mut metered = if s.timing.is_some() {
            let clock = SimClock::new();
            let sched =
                EpochScheduler::new(SchedulerConfig::default(), clock.clone()).map_err(run_err)?;
            Some((clock, sched, gov.safe_assignments()))
        } else {
            None
        };

        // Crash/recovery boundaries between segments.
        let scratch = if s.segments > 1 {
            Some(Scratch::create(&s.name)?)
        } else {
            None
        };
        let seg_len = s.epochs / s.segments;

        let mut acc = Accumulator::new(s);
        for e in 0..s.epochs {
            // Segment boundary: checkpoint, "crash", recover a fresh stack.
            if let Some(scratch) = &scratch {
                if e != 0 && seg_len != 0 && e % seg_len == 0 && e / seg_len < s.segments {
                    let bytes = gov.inner().checkpoint_bytes();
                    scratch.store.write(&bytes).map_err(run_err)?;
                    let mut fresh =
                        build_twig(specs.clone(), learn_epochs, s.seed, s.timing.is_some())?;
                    let report = recover(&scratch.store, &mut fresh, &Telemetry::disabled());
                    if report.recovered() {
                        acc.recoveries_restored += 1;
                    } else {
                        acc.recoveries_cold += 1;
                    }
                    fresh.prepare_fallback().map_err(run_err)?;
                    let mut config = gov_config.clone();
                    config.services = specs.clone();
                    gov = SafetyGovernor::new(fresh, config).map_err(run_err)?;
                }
            }

            // Churn events for this epoch.
            for (i, svc) in s.services.iter().enumerate() {
                if svc.arrive == e && e != 0 {
                    platform
                        .server_mut()
                        .set_load_generator(i, svc.load.clone())
                        .map_err(run_err)?;
                }
                if svc.depart == Some(e) {
                    platform
                        .server_mut()
                        .set_load_generator(i, LoadGenerator::fixed(0.0).map_err(run_err)?)
                        .map_err(run_err)?;
                }
                if let Some((se, src)) = &svc.swap {
                    if *se == e {
                        let new_spec = src.resolve(&svc.id)?;
                        platform
                            .server_mut()
                            .replace_service(i, new_spec.clone())
                            .map_err(run_err)?;
                        gov.inner_mut()
                            .transfer_service(i, new_spec.clone())
                            .map_err(run_err)?;
                        qos[i] = new_spec.qos_ms;
                        specs[i] = new_spec;
                    }
                }
            }

            let r = match &mut metered {
                None => {
                    let a = gov.decide().map_err(run_err)?;
                    platform.actuate(&a).map_err(run_err)?;
                    let r = platform.observe_epoch().map_err(run_err)?;
                    gov.observe(&r).map_err(run_err)?;
                    r
                }
                Some((clock, sched, last_validated)) => metered_epoch(
                    platform.server_mut(),
                    &mut gov,
                    clock,
                    sched,
                    last_validated,
                    &mut acc,
                )?,
            };
            acc.absorb(s, e, &r, &qos);
        }

        if let Some((_, sched, _)) = &mut metered {
            let st = sched.stats();
            acc.max_shed_depth = st.max_ladder_depth;
            acc.deadline_misses = st.misses;
            acc.stale_windows = st.stale_windows;
        }
        Ok(acc.into_outcome(s, None))
    }

    fn execute_cluster(
        &self,
        replication: usize,
        suspect_after: u32,
        nodes: &[(usize, u32, u32, usize)],
    ) -> Result<ScenarioOutcome, ScenarioError> {
        let s = &self.scenario;
        let specs = self.resolve_specs()?;
        let platforms = nodes
            .iter()
            .map(|n| {
                Ok(NodePlatform {
                    cores: n.0,
                    dvfs: DvfsLadder::new(n.1, n.2, n.3).map_err(run_err)?,
                })
            })
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        let demand_at = |e: u64| -> Vec<u64> {
            s.services
                .iter()
                .zip(&specs)
                .map(|(svc, spec)| {
                    if svc.active_at(e) {
                        (svc.load.fraction_at(e) * spec.max_load_rps).round() as u64
                    } else {
                        0
                    }
                })
                .collect()
        };
        let config = ClusterConfig {
            nodes: platforms,
            services: specs.clone(),
            demand_rps: demand_at(0),
            replication,
            suspect_after_misses: suspect_after,
            coordinator: CoordinatorConfig::default(),
            tuning: AgentTuning {
                learn_epochs: s.epochs,
                ..AgentTuning::default()
            },
            seed: s.seed,
        };
        let plan = match &s.cluster_faults {
            Some(cf) => ClusterFaultPlan::new(cf.config.clone(), cf.seed).map_err(run_err)?,
            None => ClusterFaultPlan::disabled(),
        };
        let mut cluster = Cluster::new(config, plan, Telemetry::disabled()).map_err(run_err)?;
        if let Some(f) = &s.federate {
            let fed_plan = FedFaultPlan::new(f.config.clone(), f.seed).map_err(run_err)?;
            cluster
                .enable_federation(f.to_config(), fed_plan)
                .map_err(run_err)?;
        }

        let mut acc = Accumulator::new(s);
        let mut conserved = true;
        let mut live_final = 0;
        for e in 0..s.epochs {
            for (i, rps) in demand_at(e).into_iter().enumerate() {
                cluster.set_demand(i, rps).map_err(run_err)?;
            }
            let r = cluster.step().map_err(run_err)?;
            conserved &= r.conserved;
            live_final = r.live_nodes;
            if e >= s.epochs - s.measure {
                for (i, svc) in s.services.iter().enumerate() {
                    if !svc.active_at(e) {
                        continue;
                    }
                    let se = &r.services[i];
                    let out = &mut acc.services[i];
                    out.measured_epochs += 1;
                    if se.routed_rps == 0 || se.qos_met {
                        out.qos_met_epochs += 1;
                    }
                    if se.routed_rps > 0 {
                        out.p99_sum += se.worst_p99_ms;
                        out.p99_count += 1;
                    }
                    out.completed += se.routed_rps;
                }
            }
        }
        let stats = cluster.stats();
        let fed = cluster.fed_stats();
        let cluster_outcome = ClusterOutcome {
            conserved,
            conservation_failures: stats.conservation_failures,
            stale_actuations: stats.stale_actuations,
            failovers: stats.failovers,
            max_failover_latency: cluster
                .failover_latencies()
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            crashes: stats.crashes,
            routed: stats.routed_rps,
            bounced: stats.bounced_rps,
            live_nodes_final: live_final,
            fed_rounds_committed: fed.rounds_committed,
            fed_rejected: fed.rejected_corrupt
                + fed.rejected_shape
                + fed.rejected_nonfinite
                + fed.rejected_divergent,
            fed_cold_transfers: fed.cold_transfers,
        };
        Ok(acc.into_outcome(s, Some(cluster_outcome)))
    }
}

/// One scheduler-metered control epoch: the full PMC → inference → learn →
/// actuate phase walk of the timing suite, against the scenario's drawn
/// timings.
fn metered_epoch(
    server: &mut Server,
    gov: &mut SafetyGovernor<Twig>,
    clock: &mut SimClock,
    sched: &mut EpochScheduler<SimClock>,
    last_validated: &mut Vec<Assignment>,
    acc: &mut Accumulator,
) -> Result<twig_sim::EpochReport, ScenarioError> {
    let t = server.epoch_timings().unwrap_or_else(EpochTimings::zero);
    if t.clock_skew_ms > 0.0 {
        let now = clock.now_ms();
        clock.set(now - t.clock_skew_ms);
    }
    sched.begin_epoch();
    let adv = |clock: &SimClock, ms: f64| {
        if !t.clock_stuck {
            clock.advance(ms);
        }
    };
    adv(clock, t.clock_jitter_ms);

    // Phase 1: PMC read. Stale windows are never decided on.
    adv(clock, t.pmc_read_ms);
    let age = if t.pmc_window_age_ms > 0.0 {
        t.pmc_window_age_ms
    } else {
        t.pmc_read_ms
    };
    let fresh = sched.pmc_window_fresh(age);

    // Phase 2: inference.
    let mut decided = false;
    let assignments = if !fresh {
        last_validated.clone()
    } else {
        match sched.inference_directive() {
            InferenceDirective::Run => {
                adv(clock, t.inference_ms);
                decided = true;
                gov.decide().map_err(run_err)?
            }
            InferenceDirective::ReuseLast => last_validated.clone(),
            InferenceDirective::SafeFallback => gov.decide_fallback(),
        }
    };
    if decided && !fresh {
        acc.stale_decisions += 1;
    }

    // Phase 3: budgeted micro-batch learning; Defer parks the in-flight
    // step inside the agent.
    let mut step_done = false;
    while !step_done {
        match sched.learn_directive() {
            LearnDirective::Defer => break,
            LearnDirective::Chunk => {
                adv(clock, t.learn_chunk_ms);
                match gov
                    .inner_mut()
                    .agent_mut()
                    .train_step_budgeted(1)
                    .map_err(run_err)?
                {
                    BudgetedProgress::Done(_) => step_done = true,
                    BudgetedProgress::InProgress { .. } => {}
                    BudgetedProgress::NotReady => break,
                }
            }
        }
    }

    // Phase 4: actuation with bounded retries; giving up actuates the
    // safe plan — stale or unapplied decisions never reach the platform.
    let mut applied = assignments.clone();
    let mut gave_up = false;
    loop {
        adv(clock, t.actuation_attempt_ms);
        match sched.actuation_attempt(t.actuation_attempt_ms) {
            ActuationDirective::Applied => break,
            ActuationDirective::Retry { backoff_ms } => adv(clock, backoff_ms),
            ActuationDirective::GiveUp => {
                gave_up = true;
                applied = gov.safe_assignments();
                break;
            }
        }
    }

    let mut r = server.step(&applied).map_err(run_err)?;
    // Degraded epochs (stale window, or an unapplied decision) must not be
    // learned from: the governor routes them to `observe_degraded`.
    if !fresh || (decided && gave_up) {
        r.telemetry.delayed_epochs = r.telemetry.delayed_epochs.max(1);
    }
    gov.observe(&r).map_err(run_err)?;
    if decided && !gave_up {
        *last_validated = assignments;
    }
    sched.end_epoch();
    // Real time resumes between epochs even after a stuck-clock epoch.
    let remaining = sched.remaining_ms();
    if remaining > 0.0 {
        clock.advance(remaining);
    }
    Ok(r)
}

fn build_twig(
    specs: Vec<ServiceSpec>,
    learn_epochs: u64,
    seed: u64,
    metered: bool,
) -> Result<Twig, ScenarioError> {
    // Plain loops compress the paper's gradient-step budget into the
    // scenario's short learning phase by replaying the buffer more per
    // epoch, with `observe` taking the steps; metered loops run pure
    // exploitation because the scheduler owns the learning phase chunk by
    // chunk via `train_step_budgeted`. The ε anneal ends at `learn_epochs`
    // — the caller sizes that to land before the measurement window, so
    // measured epochs see the exploitation floor.
    let learn_epochs = learn_epochs.max(1);
    let replay_ratio = if metered {
        1
    } else {
        (10_000 / learn_epochs).clamp(1, 3) as u32
    };
    TwigBuilder::new()
        .services(specs)
        .epsilon(EpsilonSchedule::new(
            0.1,
            0.01,
            learn_epochs * 3 / 5,
            learn_epochs,
        ))
        .agent(MaBdqConfig {
            trunk_hidden: vec![32, 24],
            head_hidden: 16,
            batch_size: 16,
            buffer_capacity: 4096,
            target_update_every: 40,
            ..MaBdqConfig::default()
        })
        .reward(RewardConfig {
            theta: 1.0,
            ..RewardConfig::default()
        })
        .train_steps_per_epoch(replay_ratio)
        .action_stickiness(0.02)
        .pure_exploitation(metered)
        .seed(seed)
        .build()
        .map_err(run_err)
}

/// Unique on-disk scratch for a run's checkpoint store, removed on drop.
struct Scratch {
    dir: std::path::PathBuf,
    store: CheckpointStore,
}

impl Scratch {
    fn create(name: &str) -> Result<Self, ScenarioError> {
        let nonce = SCRATCH_NONCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "twig-scenario-{}-{}-{}",
            name,
            std::process::id(),
            nonce
        ));
        let store = CheckpointStore::create(&dir, 3).map_err(run_err)?;
        Ok(Scratch { dir, store })
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Mid-run per-service accumulation.
struct ServiceAcc {
    id: String,
    measured_epochs: u64,
    qos_met_epochs: u64,
    p99_sum: f64,
    p99_count: u64,
    completed: u64,
    dropped: u64,
}

/// Mid-run accumulation shared by both topologies.
struct Accumulator {
    services: Vec<ServiceAcc>,
    power_sum: f64,
    power_epochs: u64,
    energy_j: f64,
    max_shed_depth: u8,
    deadline_misses: u64,
    stale_decisions: u64,
    stale_windows: u64,
    recoveries_restored: u64,
    recoveries_cold: u64,
}

impl Accumulator {
    fn new(s: &Scenario) -> Self {
        Accumulator {
            services: s
                .services
                .iter()
                .map(|svc| ServiceAcc {
                    id: svc.id.clone(),
                    measured_epochs: 0,
                    qos_met_epochs: 0,
                    p99_sum: 0.0,
                    p99_count: 0,
                    completed: 0,
                    dropped: 0,
                })
                .collect(),
            power_sum: 0.0,
            power_epochs: 0,
            energy_j: 0.0,
            max_shed_depth: 0,
            deadline_misses: 0,
            stale_decisions: 0,
            stale_windows: 0,
            recoveries_restored: 0,
            recoveries_cold: 0,
        }
    }

    /// Absorbs one server epoch report (0-based epoch `e`).
    fn absorb(&mut self, s: &Scenario, e: u64, r: &twig_sim::EpochReport, qos: &[f64]) {
        self.energy_j = r.energy_j;
        let measured = e >= s.epochs - s.measure;
        if measured {
            self.power_sum += r.true_power_w;
            self.power_epochs += 1;
        }
        for (i, svc) in s.services.iter().enumerate() {
            let se = &r.services[i];
            let out = &mut self.services[i];
            out.completed += se.completed as u64;
            out.dropped += se.dropped;
            if measured && svc.active_at(e) {
                out.measured_epochs += 1;
                if se.completed == 0 || se.p99_ms <= qos[i] {
                    out.qos_met_epochs += 1;
                }
                if se.completed > 0 {
                    out.p99_sum += se.p99_ms;
                    out.p99_count += 1;
                }
            }
        }
    }

    fn into_outcome(self, s: &Scenario, cluster: Option<ClusterOutcome>) -> ScenarioOutcome {
        let services: Vec<ServiceOutcome> = self
            .services
            .into_iter()
            .map(|a| ServiceOutcome {
                id: a.id,
                measured_epochs: a.measured_epochs,
                qos_met_epochs: a.qos_met_epochs,
                mean_p99_ms: if a.p99_count > 0 {
                    a.p99_sum / a.p99_count as f64
                } else {
                    0.0
                },
                completed: a.completed,
                dropped: a.dropped,
            })
            .collect();
        let mut out = ScenarioOutcome {
            name: s.name.clone(),
            epochs: s.epochs,
            services,
            mean_power_w: if self.power_epochs > 0 {
                self.power_sum / self.power_epochs as f64
            } else {
                0.0
            },
            energy_j: self.energy_j,
            max_shed_depth: self.max_shed_depth,
            deadline_misses: self.deadline_misses,
            stale_decisions: self.stale_decisions,
            stale_windows: self.stale_windows,
            recoveries_restored: self.recoveries_restored,
            recoveries_cold: self.recoveries_cold,
            cluster,
            digest: 0,
            assertions: Vec::new(),
            passed: false,
        };
        out.digest = digest(&out);
        out
    }
}

/// FNV-1a over every outcome field, floats by bit pattern.
fn digest(o: &ScenarioOutcome) -> u64 {
    let mut h = Fnv::new();
    h.str(&o.name);
    h.u64(o.epochs);
    for s in &o.services {
        h.str(&s.id);
        h.u64(s.measured_epochs);
        h.u64(s.qos_met_epochs);
        h.f64(s.mean_p99_ms);
        h.u64(s.completed);
        h.u64(s.dropped);
    }
    h.f64(o.mean_power_w);
    h.f64(o.energy_j);
    h.u64(o.max_shed_depth as u64);
    h.u64(o.deadline_misses);
    h.u64(o.stale_decisions);
    h.u64(o.stale_windows);
    h.u64(o.recoveries_restored);
    h.u64(o.recoveries_cold);
    if let Some(c) = &o.cluster {
        h.u64(c.conserved as u64);
        h.u64(c.conservation_failures);
        h.u64(c.stale_actuations);
        h.u64(c.failovers);
        h.u64(c.max_failover_latency);
        h.u64(c.crashes);
        h.u64(c.routed);
        h.u64(c.bounced);
        h.u64(c.live_nodes_final as u64);
        h.u64(c.fed_rounds_committed);
        h.u64(c.fed_rejected);
        h.u64(c.fed_cold_transfers);
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xff);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Evaluates one assertion against a finished outcome.
fn evaluate(a: &Assertion, o: &ScenarioOutcome, rerun_digest: Option<u64>) -> AssertionResult {
    let mut desc = String::new();
    crate::emit::emit_assert_line(&mut desc, a);
    let (pass, detail) = match a {
        Assertion::QosFloor { service, pct } => {
            let worst = o
                .services
                .iter()
                .filter(|s| service.as_ref().is_none_or(|id| &s.id == id))
                .map(|s| (s.qos_pct(), s.id.clone()))
                .min_by(|a, b| a.0.total_cmp(&b.0));
            match worst {
                None => (false, "no matching service".to_string()),
                Some((got, id)) => (
                    got >= *pct,
                    format!("worst guarantee {got:.1}% (\"{id}\") vs floor {pct}%"),
                ),
            }
        }
        Assertion::PowerCap { watts } => (
            o.mean_power_w <= *watts,
            format!("mean power {:.1} W vs cap {watts} W", o.mean_power_w),
        ),
        Assertion::DropCap { fraction } => {
            let dropped: u64 = o.services.iter().map(|s| s.dropped).sum();
            let total: u64 = o.services.iter().map(|s| s.completed + s.dropped).sum();
            let got = if total > 0 {
                dropped as f64 / total as f64
            } else {
                0.0
            };
            (
                got <= *fraction,
                format!("dropped {got:.4} of arrivals vs cap {fraction}"),
            )
        }
        Assertion::MaxShedDepth { depth } => (
            o.max_shed_depth <= *depth,
            format!("deepest ladder rung {} vs bound {depth}", o.max_shed_depth),
        ),
        Assertion::ZeroStaleActuations => match &o.cluster {
            Some(c) => (
                c.stale_actuations == 0,
                format!("{} stale placement actuations", c.stale_actuations),
            ),
            None => (
                o.stale_decisions == 0,
                format!(
                    "{} decisions on stale windows ({} stale windows seen)",
                    o.stale_decisions, o.stale_windows
                ),
            ),
        },
        Assertion::Conserved => match &o.cluster {
            Some(c) => (
                c.conserved && c.conservation_failures == 0,
                format!(
                    "conserved every epoch: {}, failures: {}",
                    c.conserved, c.conservation_failures
                ),
            ),
            None => (false, "not a cluster run".to_string()),
        },
        Assertion::MaxFailover { epochs } => match &o.cluster {
            Some(c) => (
                c.max_failover_latency <= *epochs,
                format!(
                    "worst failover {} epochs vs bound {epochs} ({} failovers)",
                    c.max_failover_latency, c.failovers
                ),
            ),
            None => (false, "not a cluster run".to_string()),
        },
        Assertion::FedRounds { committed } => match &o.cluster {
            Some(c) => (
                c.fed_rounds_committed >= *committed,
                format!(
                    "{} committed federation rounds vs floor {committed}",
                    c.fed_rounds_committed
                ),
            ),
            None => (false, "not a cluster run".to_string()),
        },
        Assertion::FedScreened { rejected } => match &o.cluster {
            Some(c) => (
                c.fed_rejected >= *rejected,
                format!(
                    "{} payloads rejected by the screening ladder vs floor {rejected}",
                    c.fed_rejected
                ),
            ),
            None => (false, "not a cluster run".to_string()),
        },
        Assertion::Deterministic => match rerun_digest {
            Some(d) => (
                d == o.digest,
                format!("digest {:016x} vs rerun {:016x}", o.digest, d),
            ),
            None => (false, "no rerun digest".to_string()),
        },
    };
    AssertionResult {
        desc: desc.trim_end().to_string(),
        pass,
        detail,
    }
}
