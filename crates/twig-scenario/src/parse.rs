//! The `.scn` parser.
//!
//! The grammar is line-oriented: one record per line, tokens separated by
//! whitespace, strings double-quoted (`\"` and `\\` escapes), `#` starting
//! a comment. Top-level records are scalar fields (`seed`, `epochs`, ...),
//! `assert` lines, and sections (`server`, `cluster`, `service`, `faults`,
//! `timing`, `cluster_faults`, `federate`) closed by a bare `end`. The parser accepts
//! flexible whitespace and comments; [`crate::emit`] produces the one
//! canonical form, so `emit(parse(emit(s))) == emit(s)` for every
//! scenario and corpus files authored canonically round-trip
//! byte-identically.
//!
//! `parse` validates semantics too ([`Scenario::validate`]): a returned
//! scenario is ready to run.

use crate::model::{
    Assertion, ClusterFaultSection, FaultSection, FederateSection, Scenario, ServiceDef,
    SpecSource, TimingSection, Topology,
};
use crate::ScenarioError;
use twig_cluster::{
    ByzantineFlavor, ClusterEvent, ClusterFaultConfig, FedEvent, FedFaultConfig, FedScripted,
    FederateConfig, ScriptedEvent,
};
use twig_sim::{FaultConfig, LoadGenerator, SimError, TimingFaultConfig};

/// One token: a bare word or a quoted string.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Str(String),
}

impl Token {
    fn text(&self) -> &str {
        match self {
            Token::Word(s) | Token::Str(s) => s,
        }
    }
}

/// Parses and validates a scenario from its text form.
///
/// # Errors
///
/// Returns the precise [`ScenarioError`]: `Parse`/`UnknownKey`/`Duplicate`
/// with the offending line, `Truncated` for input that ends mid-construct,
/// or `Invalid` for semantic violations.
///
/// # Examples
///
/// ```
/// let text = "scenario \"demo\"\nseed 1\nepochs 10\nmeasure 5\n\n\
///             server\n  cores 8\n  dvfs 1200 100 7\nend\n\n\
///             service \"masstree\"\n  spec catalog masstree\n  load fixed 0.5\nend\n\n\
///             assert qos_floor all 0\n";
/// let s = twig_scenario::parse(text).unwrap();
/// assert_eq!(s.name, "demo");
/// assert_eq!(twig_scenario::emit(&s), text.replace("             ", ""));
/// ```
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let lines = tokenize(text)?;
    let mut it = lines.into_iter().peekable();

    // First record must be `scenario "<name>"`.
    let (line, toks) = it.next().ok_or_else(|| ScenarioError::Truncated {
        detail: "empty input, expected `scenario \"<name>\"`".into(),
    })?;
    if toks[0].text() != "scenario" {
        return Err(parse_err(
            line,
            "first record must be `scenario \"<name>\"`",
        ));
    }
    let name = one_str(line, "scenario", &toks)?;

    let mut desc: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut epochs: Option<u64> = None;
    let mut measure: Option<u64> = None;
    let mut warmup: Option<u64> = None;
    let mut segments: Option<u64> = None;
    let mut topology: Option<Topology> = None;
    let mut services: Vec<ServiceDef> = Vec::new();
    let mut faults: Option<FaultSection> = None;
    let mut timing: Option<TimingSection> = None;
    let mut cluster_faults: Option<ClusterFaultSection> = None;
    let mut federate: Option<FederateSection> = None;
    let mut asserts: Vec<Assertion> = Vec::new();

    while let Some((line, toks)) = it.next() {
        let key = toks[0].text().to_string();
        match key.as_str() {
            "desc" => set_once(line, "desc", &mut desc, one_str(line, "desc", &toks)?)?,
            "seed" => set_once(line, "seed", &mut seed, one_u64(line, "seed", &toks)?)?,
            "epochs" => set_once(line, "epochs", &mut epochs, one_u64(line, "epochs", &toks)?)?,
            "measure" => set_once(
                line,
                "measure",
                &mut measure,
                one_u64(line, "measure", &toks)?,
            )?,
            "warmup" => set_once(line, "warmup", &mut warmup, one_u64(line, "warmup", &toks)?)?,
            "segments" => set_once(
                line,
                "segments",
                &mut segments,
                one_u64(line, "segments", &toks)?,
            )?,
            "server" | "cluster" => {
                if topology.is_some() {
                    return Err(ScenarioError::Duplicate { line, key });
                }
                expect_arity(line, &toks, 1)?;
                let body = section_body(&mut it, &key)?;
                topology = Some(if key == "server" {
                    parse_server(body)?
                } else {
                    parse_cluster(body)?
                });
            }
            "service" => {
                let id = one_str(line, "service", &toks)?;
                let body = section_body(&mut it, "service")?;
                services.push(parse_service(id, body)?);
            }
            "faults" => {
                if faults.is_some() {
                    return Err(ScenarioError::Duplicate { line, key });
                }
                expect_arity(line, &toks, 1)?;
                faults = Some(parse_faults(section_body(&mut it, "faults")?)?);
            }
            "timing" => {
                if timing.is_some() {
                    return Err(ScenarioError::Duplicate { line, key });
                }
                expect_arity(line, &toks, 1)?;
                timing = Some(parse_timing(section_body(&mut it, "timing")?)?);
            }
            "cluster_faults" => {
                if cluster_faults.is_some() {
                    return Err(ScenarioError::Duplicate { line, key });
                }
                expect_arity(line, &toks, 1)?;
                cluster_faults = Some(parse_cluster_faults(section_body(
                    &mut it,
                    "cluster_faults",
                )?)?);
            }
            "federate" => {
                if federate.is_some() {
                    return Err(ScenarioError::Duplicate { line, key });
                }
                expect_arity(line, &toks, 1)?;
                federate = Some(parse_federate(section_body(&mut it, "federate")?)?);
            }
            "assert" => asserts.push(parse_assert(line, &toks)?),
            "end" => return Err(parse_err(line, "`end` without an open section")),
            _ => return Err(ScenarioError::UnknownKey { line, key }),
        }
    }

    let missing = |what: &str| ScenarioError::Truncated {
        detail: format!("missing required `{what}`"),
    };
    let scenario = Scenario {
        name,
        desc: desc.unwrap_or_default(),
        seed: seed.ok_or_else(|| missing("seed"))?,
        epochs: epochs.ok_or_else(|| missing("epochs"))?,
        measure: measure.ok_or_else(|| missing("measure"))?,
        warmup: warmup.unwrap_or(0),
        segments: segments.unwrap_or(1),
        topology: topology.ok_or_else(|| missing("server` or `cluster"))?,
        services,
        faults,
        timing,
        cluster_faults,
        federate,
        asserts,
    };
    scenario.validate()?;
    Ok(scenario)
}

/// Splits the text into non-empty token lines, stripping comments.
fn tokenize(text: &str) -> Result<Vec<(usize, Vec<Token>)>, ScenarioError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let mut toks = Vec::new();
        let mut chars = raw.chars().peekable();
        loop {
            while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                chars.next();
            }
            match chars.peek() {
                None => break,
                Some('#') => break,
                Some('"') => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            None => {
                                return Err(parse_err(line, "unterminated string literal"));
                            }
                            Some('"') => break,
                            Some('\\') => match chars.next() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                other => {
                                    return Err(parse_err(
                                        line,
                                        format!("bad string escape `\\{}`", fmt_opt_char(other)),
                                    ));
                                }
                            },
                            Some(c) => s.push(c),
                        }
                    }
                    toks.push(Token::Str(s));
                }
                Some(_) => {
                    let mut w = String::new();
                    while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != '#' && *c != '"')
                    {
                        w.push(chars.next().unwrap());
                    }
                    toks.push(Token::Word(w));
                }
            }
        }
        if !toks.is_empty() {
            out.push((line, toks));
        }
    }
    Ok(out)
}

fn fmt_opt_char(c: Option<char>) -> String {
    c.map(String::from).unwrap_or_else(|| "<eol>".into())
}

fn parse_err(line: usize, detail: impl Into<String>) -> ScenarioError {
    ScenarioError::Parse {
        line,
        detail: detail.into(),
    }
}

fn sim_err(line: usize, e: SimError) -> ScenarioError {
    parse_err(line, e.to_string())
}

fn set_once<T>(
    line: usize,
    key: &str,
    slot: &mut Option<T>,
    value: T,
) -> Result<(), ScenarioError> {
    if slot.is_some() {
        return Err(ScenarioError::Duplicate {
            line,
            key: key.to_string(),
        });
    }
    *slot = Some(value);
    Ok(())
}

fn expect_arity(line: usize, toks: &[Token], n: usize) -> Result<(), ScenarioError> {
    if toks.len() != n {
        return Err(parse_err(
            line,
            format!(
                "`{}` takes {} argument(s), got {}",
                toks[0].text(),
                n - 1,
                toks.len() - 1
            ),
        ));
    }
    Ok(())
}

fn one_str(line: usize, key: &str, toks: &[Token]) -> Result<String, ScenarioError> {
    expect_arity(line, toks, 2)?;
    match &toks[1] {
        Token::Str(s) => Ok(s.clone()),
        Token::Word(_) => Err(parse_err(line, format!("`{key}` takes a quoted string"))),
    }
}

fn num<T: std::str::FromStr>(line: usize, tok: &Token) -> Result<T, ScenarioError> {
    match tok {
        Token::Word(w) => w
            .parse::<T>()
            .map_err(|_| parse_err(line, format!("bad number `{w}`"))),
        Token::Str(s) => Err(parse_err(line, format!("expected a number, got \"{s}\""))),
    }
}

fn one_u64(line: usize, key: &str, toks: &[Token]) -> Result<u64, ScenarioError> {
    expect_arity(line, toks, 2)?;
    let _ = key;
    num(line, &toks[1])
}

fn args<const N: usize>(line: usize, toks: &[Token]) -> Result<[&Token; N], ScenarioError> {
    expect_arity(line, toks, N + 1)?;
    let mut it = toks[1..].iter();
    Ok(std::array::from_fn(|_| it.next().expect("arity checked")))
}

/// Pulls records until the matching bare `end`.
fn section_body(
    it: &mut std::iter::Peekable<std::vec::IntoIter<(usize, Vec<Token>)>>,
    what: &str,
) -> Result<Vec<(usize, Vec<Token>)>, ScenarioError> {
    let mut body = Vec::new();
    for (line, toks) in it.by_ref() {
        if toks.len() == 1 && toks[0].text() == "end" {
            return Ok(body);
        }
        body.push((line, toks));
    }
    Err(ScenarioError::Truncated {
        detail: format!("`{what}` section not closed by `end`"),
    })
}

fn parse_server(body: Vec<(usize, Vec<Token>)>) -> Result<Topology, ScenarioError> {
    let mut cores: Option<usize> = None;
    let mut dvfs: Option<(u32, u32, usize)> = None;
    for (line, toks) in body {
        match toks[0].text() {
            "cores" => {
                expect_arity(line, &toks, 2)?;
                set_once(line, "cores", &mut cores, num(line, &toks[1])?)?;
            }
            "dvfs" => {
                let [a, b, c] = args::<3>(line, &toks)?;
                set_once(
                    line,
                    "dvfs",
                    &mut dvfs,
                    (num(line, a)?, num(line, b)?, num(line, c)?),
                )?;
            }
            key => {
                return Err(ScenarioError::UnknownKey {
                    line,
                    key: key.to_string(),
                })
            }
        }
    }
    let missing = |what: &str| ScenarioError::Truncated {
        detail: format!("server section missing `{what}`"),
    };
    Ok(Topology::Server {
        cores: cores.ok_or_else(|| missing("cores"))?,
        dvfs: dvfs.ok_or_else(|| missing("dvfs"))?,
    })
}

fn parse_cluster(body: Vec<(usize, Vec<Token>)>) -> Result<Topology, ScenarioError> {
    let mut replication: Option<usize> = None;
    let mut suspect_after: Option<u32> = None;
    let mut nodes: Vec<(usize, u32, u32, usize)> = Vec::new();
    for (line, toks) in body {
        match toks[0].text() {
            "replication" => {
                expect_arity(line, &toks, 2)?;
                set_once(line, "replication", &mut replication, num(line, &toks[1])?)?;
            }
            "suspect_after" => {
                expect_arity(line, &toks, 2)?;
                set_once(
                    line,
                    "suspect_after",
                    &mut suspect_after,
                    num(line, &toks[1])?,
                )?;
            }
            "node" => {
                let [a, b, c, d] = args::<4>(line, &toks)?;
                nodes.push((num(line, a)?, num(line, b)?, num(line, c)?, num(line, d)?));
            }
            key => {
                return Err(ScenarioError::UnknownKey {
                    line,
                    key: key.to_string(),
                })
            }
        }
    }
    let missing = |what: &str| ScenarioError::Truncated {
        detail: format!("cluster section missing `{what}`"),
    };
    Ok(Topology::Cluster {
        replication: replication.ok_or_else(|| missing("replication"))?,
        suspect_after: suspect_after.ok_or_else(|| missing("suspect_after"))?,
        nodes,
    })
}

fn parse_spec_source(line: usize, toks: &[&Token]) -> Result<SpecSource, ScenarioError> {
    match toks {
        [kind, name] if kind.text() == "catalog" => Ok(SpecSource::Catalog {
            name: name.text().to_string(),
        }),
        [kind, template, rps, qos] if kind.text() == "synthetic" => Ok(SpecSource::Synthetic {
            template: template.text().to_string(),
            rps: num(line, rps)?,
            qos_ms: num(line, qos)?,
        }),
        _ => Err(parse_err(
            line,
            "expected `catalog <name>` or `synthetic <template> <rps> <qos_ms>`",
        )),
    }
}

fn parse_load(line: usize, toks: &[Token]) -> Result<LoadGenerator, ScenarioError> {
    if toks.len() < 2 {
        return Err(parse_err(line, "`load` needs a shape"));
    }
    let rest = &toks[2..];
    let shape = toks[1].text();
    let gen = match shape {
        "fixed" => {
            let [f] = take::<1>(line, rest)?;
            LoadGenerator::fixed(num(line, f)?)
        }
        "step" => {
            let [min, max, factor, period] = take::<4>(line, rest)?;
            LoadGenerator::step(
                num(line, min)?,
                num(line, max)?,
                num(line, factor)?,
                num(line, period)?,
            )
        }
        "diurnal" => {
            let [min, max, period] = take::<3>(line, rest)?;
            LoadGenerator::diurnal(num(line, min)?, num(line, max)?, num(line, period)?)
        }
        "ramp" => {
            let [from, to, start, dur] = take::<4>(line, rest)?;
            LoadGenerator::ramp(
                num(line, from)?,
                num(line, to)?,
                num(line, start)?,
                num(line, dur)?,
            )
        }
        "flash_crowd" => {
            let [base, peak, start, ramp, hold] = take::<5>(line, rest)?;
            LoadGenerator::flash_crowd(
                num(line, base)?,
                num(line, peak)?,
                num(line, start)?,
                num(line, ramp)?,
                num(line, hold)?,
            )
        }
        "burst" => {
            let [base, peak, period, duty, phase] = take::<5>(line, rest)?;
            LoadGenerator::burst(
                num(line, base)?,
                num(line, peak)?,
                num(line, period)?,
                num(line, duty)?,
                num(line, phase)?,
            )
        }
        "replay" => {
            if rest.len() < 2 {
                return Err(parse_err(line, "`load replay` needs a dwell and a table"));
            }
            let dwell: u64 = num(line, &rest[0])?;
            let table = rest[1..]
                .iter()
                .map(|t| num::<f64>(line, t))
                .collect::<Result<Vec<f64>, _>>()?;
            LoadGenerator::replay(table, dwell)
        }
        other => {
            return Err(ScenarioError::UnknownKey {
                line,
                key: format!("load {other}"),
            })
        }
    };
    gen.map_err(|e| sim_err(line, e))
}

/// Like [`args`] but over an already-trimmed slice.
fn take<const N: usize>(line: usize, toks: &[Token]) -> Result<[&Token; N], ScenarioError> {
    if toks.len() != N {
        return Err(parse_err(
            line,
            format!("expected {N} argument(s), got {}", toks.len()),
        ));
    }
    let mut it = toks.iter();
    Ok(std::array::from_fn(|_| it.next().expect("arity checked")))
}

fn parse_service(id: String, body: Vec<(usize, Vec<Token>)>) -> Result<ServiceDef, ScenarioError> {
    let mut spec: Option<SpecSource> = None;
    let mut load: Option<LoadGenerator> = None;
    let mut arrive: Option<u64> = None;
    let mut depart: Option<u64> = None;
    let mut swap: Option<(u64, SpecSource)> = None;
    for (line, toks) in body {
        match toks[0].text() {
            "spec" => {
                let rest: Vec<&Token> = toks[1..].iter().collect();
                set_once(line, "spec", &mut spec, parse_spec_source(line, &rest)?)?;
            }
            "load" => {
                let parsed = parse_load(line, &toks)?;
                set_once(line, "load", &mut load, parsed)?;
            }
            "arrive" => set_once(line, "arrive", &mut arrive, one_u64(line, "arrive", &toks)?)?,
            "depart" => set_once(line, "depart", &mut depart, one_u64(line, "depart", &toks)?)?,
            "swap" => {
                if toks.len() < 3 {
                    return Err(parse_err(line, "`swap` needs an epoch and a spec source"));
                }
                let epoch: u64 = num(line, &toks[1])?;
                let rest: Vec<&Token> = toks[2..].iter().collect();
                set_once(
                    line,
                    "swap",
                    &mut swap,
                    (epoch, parse_spec_source(line, &rest)?),
                )?;
            }
            key => {
                return Err(ScenarioError::UnknownKey {
                    line,
                    key: key.to_string(),
                })
            }
        }
    }
    let missing = |what: &str| ScenarioError::Truncated {
        detail: format!("service \"{id}\" missing `{what}`"),
    };
    Ok(ServiceDef {
        spec: spec.ok_or_else(|| missing("spec"))?,
        load: load.ok_or_else(|| missing("load"))?,
        arrive: arrive.unwrap_or(0),
        depart,
        swap,
        id,
    })
}

fn parse_faults(body: Vec<(usize, Vec<Token>)>) -> Result<FaultSection, ScenarioError> {
    let mut seed: Option<u64> = None;
    let mut config = FaultConfig::default();
    let mut seen: Vec<String> = Vec::new();
    for (line, toks) in body {
        let key = toks[0].text().to_string();
        if key == "seed" {
            set_once(line, "seed", &mut seed, one_u64(line, "seed", &toks)?)?;
            continue;
        }
        if seen.contains(&key) {
            return Err(ScenarioError::Duplicate { line, key });
        }
        match key.as_str() {
            "pmc_corrupt" => config.pmc_corrupt_rate = scalar(line, &toks)?,
            "telemetry_delay" => config.telemetry_delay_epochs = scalar_n(line, &toks)?,
            "actuation_reject" => config.actuation_reject_rate = scalar(line, &toks)?,
            "dvfs_clamp" => config.dvfs_clamp_rate = scalar(line, &toks)?,
            "power_glitch" => config.power_glitch_rate = scalar(line, &toks)?,
            "core_fail" => config.core_fail_rate = scalar(line, &toks)?,
            "core_repair" => config.core_repair_rate = scalar(line, &toks)?,
            "max_offline" => config.max_offline_cores = scalar_n(line, &toks)?,
            _ => return Err(ScenarioError::UnknownKey { line, key }),
        }
        seen.push(key);
    }
    Ok(FaultSection {
        seed: seed.ok_or_else(|| ScenarioError::Truncated {
            detail: "faults section missing `seed`".into(),
        })?,
        config,
    })
}

fn scalar(line: usize, toks: &[Token]) -> Result<f64, ScenarioError> {
    expect_arity(line, toks, 2)?;
    num(line, &toks[1])
}

fn scalar_n<T: std::str::FromStr>(line: usize, toks: &[Token]) -> Result<T, ScenarioError> {
    expect_arity(line, toks, 2)?;
    num(line, &toks[1])
}

fn pair(line: usize, toks: &[Token]) -> Result<(f64, f64), ScenarioError> {
    expect_arity(line, toks, 3)?;
    Ok((num(line, &toks[1])?, num(line, &toks[2])?))
}

fn parse_timing(body: Vec<(usize, Vec<Token>)>) -> Result<TimingSection, ScenarioError> {
    let mut seed: Option<u64> = None;
    let mut config = TimingFaultConfig::default();
    let mut seen: Vec<String> = Vec::new();
    for (line, toks) in body {
        let key = toks[0].text().to_string();
        if key == "seed" {
            set_once(line, "seed", &mut seed, one_u64(line, "seed", &toks)?)?;
            continue;
        }
        if seen.contains(&key) {
            return Err(ScenarioError::Duplicate { line, key });
        }
        match key.as_str() {
            "pmc_base" => config.pmc_base_ms = scalar(line, &toks)?,
            "pmc_spike" => {
                (config.pmc_spike_rate, config.pmc_spike_ms) = pair(line, &toks)?;
            }
            "pmc_stale" => {
                (config.pmc_stale_rate, config.pmc_stale_age_ms) = pair(line, &toks)?;
            }
            "inference_base" => config.inference_base_ms = scalar(line, &toks)?,
            "inference_spike" => {
                (config.inference_spike_rate, config.inference_spike_ms) = pair(line, &toks)?;
            }
            "learn_chunk" => config.learn_chunk_base_ms = scalar(line, &toks)?,
            "learn_spike" => {
                (config.learn_spike_rate, config.learn_spike_ms) = pair(line, &toks)?;
            }
            "actuation_base" => config.actuation_base_ms = scalar(line, &toks)?,
            "actuation_stall" => {
                (config.actuation_stall_rate, config.actuation_stall_ms) = pair(line, &toks)?;
            }
            "clock_jitter" => config.clock_jitter_ms = scalar(line, &toks)?,
            "clock_skew" => {
                (config.clock_skew_rate, config.clock_skew_ms) = pair(line, &toks)?;
            }
            "clock_stuck" => config.clock_stuck_rate = scalar(line, &toks)?,
            _ => return Err(ScenarioError::UnknownKey { line, key }),
        }
        seen.push(key);
    }
    Ok(TimingSection {
        seed: seed.ok_or_else(|| ScenarioError::Truncated {
            detail: "timing section missing `seed`".into(),
        })?,
        config,
    })
}

fn parse_cluster_faults(
    body: Vec<(usize, Vec<Token>)>,
) -> Result<ClusterFaultSection, ScenarioError> {
    let mut seed: Option<u64> = None;
    let mut config = ClusterFaultConfig::default();
    let mut seen: Vec<String> = Vec::new();
    for (line, toks) in body {
        let key = toks[0].text().to_string();
        if key == "seed" {
            set_once(line, "seed", &mut seed, one_u64(line, "seed", &toks)?)?;
            continue;
        }
        if key == "at" {
            config.scripted.push(parse_scripted(line, &toks)?);
            continue;
        }
        if seen.contains(&key) {
            return Err(ScenarioError::Duplicate { line, key });
        }
        match key.as_str() {
            "crash_rate" => config.crash_rate = scalar(line, &toks)?,
            "restart_after" => config.restart_after_epochs = scalar_n(line, &toks)?,
            "heartbeat_loss" => config.heartbeat_loss_rate = scalar(line, &toks)?,
            "blackout" => {
                expect_arity(line, &toks, 3)?;
                config.blackout_rate = num(line, &toks[1])?;
                config.blackout_epochs = num(line, &toks[2])?;
            }
            "partition" => {
                expect_arity(line, &toks, 3)?;
                config.partition_rate = num(line, &toks[1])?;
                config.partition_epochs = num(line, &toks[2])?;
            }
            "migration_stall" => config.migration_stall_rate = scalar(line, &toks)?,
            "migration_corrupt" => config.migration_corrupt_rate = scalar(line, &toks)?,
            _ => return Err(ScenarioError::UnknownKey { line, key }),
        }
        seen.push(key);
    }
    Ok(ClusterFaultSection {
        seed: seed.ok_or_else(|| ScenarioError::Truncated {
            detail: "cluster_faults section missing `seed`".into(),
        })?,
        config,
    })
}

fn parse_federate(body: Vec<(usize, Vec<Token>)>) -> Result<FederateSection, ScenarioError> {
    let defaults = FederateConfig::default();
    let mut seed: Option<u64> = None;
    let mut period = defaults.round_period;
    let mut quorum = defaults.min_quorum;
    let mut timeout = defaults.collect_timeout;
    let mut config = FedFaultConfig::default();
    let mut seen: Vec<String> = Vec::new();
    for (line, toks) in body {
        let key = toks[0].text().to_string();
        if key == "seed" {
            set_once(line, "seed", &mut seed, one_u64(line, "seed", &toks)?)?;
            continue;
        }
        if key == "at" {
            config.scripted.push(parse_fed_scripted(line, &toks)?);
            continue;
        }
        if seen.contains(&key) {
            return Err(ScenarioError::Duplicate { line, key });
        }
        match key.as_str() {
            "period" => period = scalar_n(line, &toks)?,
            "quorum" => quorum = scalar_n(line, &toks)?,
            "timeout" => timeout = scalar_n(line, &toks)?,
            "corrupt_rate" => config.corrupt_rate = scalar(line, &toks)?,
            "truncate_rate" => config.truncate_rate = scalar(line, &toks)?,
            "byzantine_rate" => config.byzantine_rate = scalar(line, &toks)?,
            "straggle" => {
                expect_arity(line, &toks, 3)?;
                config.straggler_rate = num(line, &toks[1])?;
                config.straggle_epochs = num(line, &toks[2])?;
            }
            "drop_rate" => config.drop_rate = scalar(line, &toks)?,
            "poison_rate" => config.poison_merge_rate = scalar(line, &toks)?,
            _ => return Err(ScenarioError::UnknownKey { line, key }),
        }
        seen.push(key);
    }
    Ok(FederateSection {
        seed: seed.ok_or_else(|| ScenarioError::Truncated {
            detail: "federate section missing `seed`".into(),
        })?,
        period,
        quorum,
        timeout,
        config,
    })
}

fn parse_fed_scripted(line: usize, toks: &[Token]) -> Result<FedScripted, ScenarioError> {
    if toks.len() < 3 {
        return Err(parse_err(line, "`at` needs a round and an event"));
    }
    let round: u64 = num(line, &toks[1])?;
    let rest = &toks[3..];
    let event = match toks[2].text() {
        "corrupt" => {
            let [n] = take::<1>(line, rest)?;
            FedEvent::Corrupt {
                node: num(line, n)?,
            }
        }
        "truncate" => {
            let [n] = take::<1>(line, rest)?;
            FedEvent::Truncate {
                node: num(line, n)?,
            }
        }
        "byzantine" => {
            let [n, flavor] = take::<2>(line, rest)?;
            let flavor = match flavor.text() {
                "garbage" => ByzantineFlavor::Garbage,
                "nonfinite" => ByzantineFlavor::NonFinite,
                "offset" => ByzantineFlavor::Offset,
                other => {
                    return Err(parse_err(
                        line,
                        format!("unknown byzantine flavor `{other}` (garbage|nonfinite|offset)"),
                    ))
                }
            };
            FedEvent::Byzantine {
                node: num(line, n)?,
                flavor,
            }
        }
        "straggle" => {
            let [n, e] = take::<2>(line, rest)?;
            FedEvent::Straggle {
                node: num(line, n)?,
                epochs: num(line, e)?,
            }
        }
        "drop" => {
            let [n] = take::<1>(line, rest)?;
            FedEvent::Drop {
                node: num(line, n)?,
            }
        }
        "poison_merge" => {
            take::<0>(line, rest)?;
            FedEvent::PoisonMerge
        }
        other => {
            return Err(ScenarioError::UnknownKey {
                line,
                key: format!("at {other}"),
            })
        }
    };
    Ok(FedScripted { round, event })
}

fn parse_scripted(line: usize, toks: &[Token]) -> Result<ScriptedEvent, ScenarioError> {
    if toks.len() < 3 {
        return Err(parse_err(line, "`at` needs an epoch and an event"));
    }
    let epoch: u64 = num(line, &toks[1])?;
    let rest = &toks[3..];
    let event = match toks[2].text() {
        "crash" => {
            let [n] = take::<1>(line, rest)?;
            ClusterEvent::Crash {
                node: num(line, n)?,
            }
        }
        "restart" => {
            let [n] = take::<1>(line, rest)?;
            ClusterEvent::Restart {
                node: num(line, n)?,
            }
        }
        "drop_heartbeat" => {
            let [n] = take::<1>(line, rest)?;
            ClusterEvent::DropHeartbeat {
                node: num(line, n)?,
            }
        }
        "migrate" => {
            let [s, from, to] = take::<3>(line, rest)?;
            ClusterEvent::Migrate {
                service: num(line, s)?,
                from: num(line, from)?,
                to: num(line, to)?,
            }
        }
        "blackout" => {
            let [d] = take::<1>(line, rest)?;
            ClusterEvent::Blackout {
                epochs: num(line, d)?,
            }
        }
        "partition" => {
            let [n, d] = take::<2>(line, rest)?;
            ClusterEvent::Partition {
                node: num(line, n)?,
                epochs: num(line, d)?,
            }
        }
        other => {
            return Err(ScenarioError::UnknownKey {
                line,
                key: format!("at {other}"),
            })
        }
    };
    Ok(ScriptedEvent { epoch, event })
}

fn parse_assert(line: usize, toks: &[Token]) -> Result<Assertion, ScenarioError> {
    if toks.len() < 2 {
        return Err(parse_err(line, "`assert` needs a property"));
    }
    let rest = &toks[2..];
    match toks[1].text() {
        "qos_floor" => {
            let [who, pct] = take::<2>(line, rest)?;
            let service = match who {
                Token::Word(w) if w == "all" => None,
                Token::Str(s) => Some(s.clone()),
                Token::Word(w) => {
                    return Err(parse_err(
                        line,
                        format!("expected `all` or a quoted service id, got `{w}`"),
                    ))
                }
            };
            Ok(Assertion::QosFloor {
                service,
                pct: num(line, pct)?,
            })
        }
        "power_cap" => {
            let [w] = take::<1>(line, rest)?;
            Ok(Assertion::PowerCap {
                watts: num(line, w)?,
            })
        }
        "drop_cap" => {
            let [f] = take::<1>(line, rest)?;
            Ok(Assertion::DropCap {
                fraction: num(line, f)?,
            })
        }
        "max_shed_depth" => {
            let [d] = take::<1>(line, rest)?;
            Ok(Assertion::MaxShedDepth {
                depth: num(line, d)?,
            })
        }
        "zero_stale_actuations" => {
            take::<0>(line, rest)?;
            Ok(Assertion::ZeroStaleActuations)
        }
        "conserved" => {
            take::<0>(line, rest)?;
            Ok(Assertion::Conserved)
        }
        "max_failover" => {
            let [e] = take::<1>(line, rest)?;
            Ok(Assertion::MaxFailover {
                epochs: num(line, e)?,
            })
        }
        "fed_rounds" => {
            let [n] = take::<1>(line, rest)?;
            Ok(Assertion::FedRounds {
                committed: num(line, n)?,
            })
        }
        "fed_screened" => {
            let [n] = take::<1>(line, rest)?;
            Ok(Assertion::FedScreened {
                rejected: num(line, n)?,
            })
        }
        "deterministic" => {
            take::<0>(line, rest)?;
            Ok(Assertion::Deterministic)
        }
        other => Err(ScenarioError::UnknownKey {
            line,
            key: format!("assert {other}"),
        }),
    }
}
