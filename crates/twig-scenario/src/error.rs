use std::fmt;

/// Everything that can go wrong with a scenario: parsing, semantic
/// validation, or execution.
///
/// Parse-time variants carry the 1-based source line so rejection
/// diagnostics point at the offending text.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Malformed line: wrong arity, an unparsable number, a bad string
    /// literal, or a structural violation (e.g. a section inside a
    /// section).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A key the grammar does not know, at top level or inside a section.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A scalar field or section stated twice.
    Duplicate {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// The input ended mid-construct (an unterminated section or string).
    Truncated {
        /// What was still open.
        detail: String,
    },
    /// The scenario parsed but is semantically invalid (out-of-range
    /// values, duplicate service ids, topology/section mismatches, ...).
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// Compilation to the simulator or execution failed.
    Run {
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, detail } => write!(f, "line {line}: {detail}"),
            ScenarioError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            ScenarioError::Duplicate { line, key } => {
                write!(f, "line {line}: duplicate `{key}`")
            }
            ScenarioError::Truncated { detail } => write!(f, "truncated input: {detail}"),
            ScenarioError::Invalid { detail } => write!(f, "invalid scenario: {detail}"),
            ScenarioError::Run { detail } => write!(f, "scenario run failed: {detail}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioError {
    /// Shorthand for an [`ScenarioError::Invalid`] with a formatted detail.
    pub fn invalid(detail: impl Into<String>) -> Self {
        ScenarioError::Invalid {
            detail: detail.into(),
        }
    }

    /// Shorthand for an [`ScenarioError::Run`] with a formatted detail.
    pub fn run(detail: impl Into<String>) -> Self {
        ScenarioError::Run {
            detail: detail.into(),
        }
    }
}
