//! JSON projections of scenarios and outcomes, built on
//! `twig_telemetry::json` (no serialization dependency). Outcome JSON is
//! what a dashboard or the CI artifact ingests; scenario JSON is the
//! machine-readable form of the DSL for external tooling.

use crate::model::{Scenario, SpecSource, Topology};
use crate::runner::ScenarioOutcome;
use twig_sim::LoadGenerator;
use twig_telemetry::json::JsonObject;

impl Scenario {
    /// Renders the scenario as a JSON object (topology and services
    /// summarized; load shapes in canonical DSL text form).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", &self.name);
        if !self.desc.is_empty() {
            o.field_str("desc", &self.desc);
        }
        o.field_u64("seed", self.seed);
        o.field_u64("epochs", self.epochs);
        o.field_u64("measure", self.measure);
        o.field_u64("warmup", self.warmup);
        o.field_u64("segments", self.segments);
        match &self.topology {
            Topology::Server { cores, dvfs } => {
                o.field_object("server", |s| {
                    s.field_u64("cores", *cores as u64);
                    s.field_array("dvfs", |a| {
                        a.push_u64(dvfs.0 as u64);
                        a.push_u64(dvfs.1 as u64);
                        a.push_u64(dvfs.2 as u64);
                    });
                });
            }
            Topology::Cluster {
                replication,
                suspect_after,
                nodes,
            } => {
                o.field_object("cluster", |c| {
                    c.field_u64("replication", *replication as u64);
                    c.field_u64("suspect_after", *suspect_after as u64);
                    c.field_array("nodes", |a| {
                        for n in nodes {
                            a.push_object(|node| {
                                node.field_u64("cores", n.0 as u64);
                                node.field_array("dvfs", |d| {
                                    d.push_u64(n.1 as u64);
                                    d.push_u64(n.2 as u64);
                                    d.push_u64(n.3 as u64);
                                });
                            });
                        }
                    });
                });
            }
        }
        o.field_array("services", |a| {
            for svc in &self.services {
                a.push_object(|s| {
                    s.field_str("id", &svc.id);
                    let spec = match &svc.spec {
                        SpecSource::Catalog { name } => format!("catalog {name}"),
                        SpecSource::Synthetic {
                            template,
                            rps,
                            qos_ms,
                        } => format!("synthetic {template} {rps} {qos_ms}"),
                    };
                    s.field_str("spec", &spec);
                    s.field_str("load", load_kind(&svc.load));
                    s.field_u64("arrive", svc.arrive);
                    if let Some(d) = svc.depart {
                        s.field_u64("depart", d);
                    }
                    s.field_bool("swaps", svc.swap.is_some());
                });
            }
        });
        o.field_bool("has_faults", self.faults.is_some());
        o.field_bool("has_timing", self.timing.is_some());
        o.field_bool("has_cluster_faults", self.cluster_faults.is_some());
        o.field_bool("has_federate", self.federate.is_some());
        o.field_u64("asserts", self.asserts.len() as u64);
        o.finish()
    }
}

fn load_kind(g: &LoadGenerator) -> &'static str {
    match g {
        LoadGenerator::Fixed { .. } => "fixed",
        LoadGenerator::Step { .. } => "step",
        LoadGenerator::Diurnal { .. } => "diurnal",
        LoadGenerator::Ramp { .. } => "ramp",
        LoadGenerator::FlashCrowd { .. } => "flash_crowd",
        LoadGenerator::Burst { .. } => "burst",
        LoadGenerator::Replay { .. } => "replay",
    }
}

impl ScenarioOutcome {
    /// Renders the outcome as a JSON object, assertions included.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", &self.name);
        o.field_u64("epochs", self.epochs);
        o.field_bool("passed", self.passed);
        o.field_str("digest", &format!("{:016x}", self.digest));
        o.field_array("services", |a| {
            for s in &self.services {
                a.push_object(|svc| {
                    svc.field_str("id", &s.id);
                    svc.field_u64("measured_epochs", s.measured_epochs);
                    svc.field_f64("qos_pct", s.qos_pct());
                    svc.field_f64("mean_p99_ms", s.mean_p99_ms);
                    svc.field_u64("completed", s.completed);
                    svc.field_u64("dropped", s.dropped);
                });
            }
        });
        o.field_f64("mean_power_w", self.mean_power_w);
        o.field_f64("energy_j", self.energy_j);
        o.field_u64("max_shed_depth", self.max_shed_depth as u64);
        o.field_u64("deadline_misses", self.deadline_misses);
        o.field_u64("stale_decisions", self.stale_decisions);
        o.field_u64("stale_windows", self.stale_windows);
        o.field_u64("recoveries_restored", self.recoveries_restored);
        o.field_u64("recoveries_cold", self.recoveries_cold);
        if let Some(c) = &self.cluster {
            o.field_object("cluster", |cl| {
                cl.field_bool("conserved", c.conserved);
                cl.field_u64("conservation_failures", c.conservation_failures);
                cl.field_u64("stale_actuations", c.stale_actuations);
                cl.field_u64("failovers", c.failovers);
                cl.field_u64("max_failover_latency", c.max_failover_latency);
                cl.field_u64("crashes", c.crashes);
                cl.field_u64("routed", c.routed);
                cl.field_u64("bounced", c.bounced);
                cl.field_u64("live_nodes_final", c.live_nodes_final as u64);
            });
        }
        o.field_array("assertions", |a| {
            for r in &self.assertions {
                a.push_object(|res| {
                    res.field_str("assert", &r.desc);
                    res.field_bool("pass", r.pass);
                    res.field_str("detail", &r.detail);
                });
            }
        });
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    const TEXT: &str = "\
scenario \"json\"
seed 3
epochs 20
measure 5

server
  cores 8
  dvfs 1200 200 8
end

service \"img-dnn\"
  spec catalog img-dnn
  load fixed 0.2
end

assert qos_floor all 10
";

    #[test]
    fn scenario_json_is_well_formed() {
        let s = parse(TEXT).unwrap();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"json\""));
        assert!(j.contains("\"server\":{\"cores\":8"));
        assert!(j.contains("\"load\":\"fixed\""));
        assert!(j.contains("\"has_timing\":false"));
    }

    #[test]
    fn outcome_json_reports_assertions() {
        let s = parse(TEXT).unwrap();
        let out = crate::ScenarioRunner::new(s).unwrap().run().unwrap();
        let j = out.to_json();
        assert!(j.contains("\"passed\":"));
        assert!(j.contains("\"assert\":\"assert qos_floor all 10\""));
        assert!(j.contains("\"digest\":\""));
    }
}
