//! The Twig task manager — the paper's primary contribution.
//!
//! Twig (Section III) is a QoS-aware task manager for latency-critical
//! services colocated on one server. Once per second it reads hardware
//! performance counters per service, feeds them to a multi-agent branching
//! dueling Q-network, and maps every service to a set of cores at a DVFS
//! setting, parking the remaining cores. Its three components map onto this
//! crate's modules:
//!
//! - **System monitor** ([`SystemMonitor`]) — gathers the 11 Table-I
//!   counters per service, smooths them over the last η = 5 intervals with a
//!   weighted sum and feature-scales them to `[0, 1]`; the
//!   [`select_counters`] pipeline (Pearson correlation + PCA) reproduces the
//!   counter-selection methodology of Section III-B1 / Table I.
//! - **Learning agent** ([`Twig`], wrapping [`twig_rl::MaBdq`]) — Algorithm 1:
//!   ε-annealed action selection over (core count, DVFS) branches,
//!   the Eq. 1 reward ([`RewardConfig`]) combining QoS tardiness with the
//!   per-service power estimate of the Eq. 2 model ([`Eq2PowerModel`],
//!   fitted by [`fit_power_model`]), and one prioritised-replay gradient
//!   step per epoch.
//! - **Mapper module** ([`Mapper`]) — turns per-service (cores, DVFS)
//!   requests into concrete core assignments with the cache-locality
//!   ordering of Section III-B3; conflicting requests are resolved by the
//!   arbitration rule of Section IV (overlapping cores time-shared at the
//!   highest requested DVFS).
//!
//! Twig-S (single service) and Twig-C (colocated services) are the same
//! [`Twig`] type with `K = 1` or `K > 1` services.
//!
//! # Examples
//!
//! ```
//! use twig_core::{Twig, TwigBuilder};
//! use twig_sim::{catalog, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = catalog::masstree();
//! let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 42)?;
//! server.set_load_fraction(0, 0.5)?;
//! let mut twig: Twig = TwigBuilder::new().services(vec![spec]).seed(7).build()?;
//! for _ in 0..5 {
//!     let actions = twig.decide()?;
//!     let report = server.step(&actions)?;
//!     twig.observe(&report)?;
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint_store;
mod clock;
mod error;
mod governor;
mod manager;
mod mapper;
mod monitor;
mod placement;
mod power_model;
mod reward;
mod scheduler;

pub use checkpoint_store::{
    recover, CheckpointStore, Checkpointable, RecoveryOutcome, RecoveryReport,
};
pub use clock::{SimClock, VirtualClock, WallClock};
pub use error::{ManagerError, TwigError};
pub use governor::{GovernorConfig, GovernorStats, SafetyGovernor};
pub use manager::{TaskManager, Twig, TwigBuilder, TwigConfig};
pub use mapper::Mapper;
pub use monitor::{select_counters, CounterRanking, SystemMonitor};
pub use placement::{
    ClusterView, NodeId, NodeView, PlacementAction, PlacementPolicy, ReplicatedPlacement,
    ServicePlacement,
};
pub use power_model::{fit_power_model, paae, Eq2PowerModel, PowerModelFit, ProfilePoint};
pub use reward::RewardConfig;
pub use scheduler::{
    ActuationDirective, EpochScheduler, InferenceDirective, LearnDirective, RetryBudget,
    SchedulerConfig, SchedulerStats, ShedLevel,
};
