//! Deadline-aware epoch scheduling with a load-shedding ladder.
//!
//! Twig's contract is one full decision cycle — PMC read, BDQ inference,
//! learning, actuation — every `interval_ms` (1 s in the paper). Real
//! colocated managers miss that deadline: PMC reads stall behind perf
//! multiplexing, cgroup/DVFS writes block, and a learning step overruns.
//! The [`EpochScheduler`] carves the interval into per-phase budgets and,
//! when the epoch is projected to overrun, walks a **monotone** shedding
//! ladder:
//!
//! 1. [`ShedLevel::DeferLearn`] — stop issuing learning micro-batches; the
//!    in-flight budgeted step (`MaBdq::train_step_budgeted`) simply resumes
//!    next epoch, bit-identical to an undeferred step.
//! 2. [`ShedLevel::SkipInference`] — reuse the last validated action
//!    instead of running the network.
//! 3. [`ShedLevel::SafeFallback`] — actuate the `SafetyGovernor`'s safe
//!    assignments (all cores, max DVFS).
//!
//! Within one epoch the level only ever escalates (`max`), and
//! [`begin_epoch`](EpochScheduler::begin_epoch) resets it — so a transient
//! spike cannot leave the manager wedged in fallback. Actuation gets
//! bounded retries with saturating exponential backoff; PMC windows older
//! than `stale_after_ms` are flagged so the driver routes them through
//! `TaskManager::observe_degraded` instead of learning from stale state.
//! Time comes from an injected [`VirtualClock`]; backward or stuck
//! readings are clamped, and every loop the scheduler gates (learn chunks,
//! actuation attempts) is capped by count as well as by time, so a stuck
//! clock degrades scheduling but can never hang the control loop.
//!
//! Everything is observable through `deadline.*` telemetry: misses, shed
//! depth per ladder rung, stale windows, actuation retries/timeouts and an
//! `deadline.epoch_ms` duration digest.

use crate::clock::VirtualClock;
use crate::TwigError;
use twig_telemetry::Telemetry;

/// How much of the epoch the scheduler has shed, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// Full cycle: inference, learning and actuation all run.
    None = 0,
    /// Learning deferred to a later epoch (micro-batch left in flight).
    DeferLearn = 1,
    /// Inference skipped; the last validated action is reused (implies
    /// learning is deferred too).
    SkipInference = 2,
    /// Everything shed: actuate the governor's safe fallback.
    SafeFallback = 3,
}

impl ShedLevel {
    /// Ladder depth as a small integer (0 = nothing shed).
    pub fn depth(self) -> u8 {
        self as u8
    }
}

/// What the scheduler wants done about inference this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceDirective {
    /// Enough budget remains: run the network.
    Run,
    /// Inference would overrun: reuse the last validated action.
    ReuseLast,
    /// Not even actuation headroom remains: use the safe fallback.
    SafeFallback,
}

/// What the scheduler wants done about the learning phase right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnDirective {
    /// Budget remains: run one more micro-batch chunk.
    Chunk,
    /// Stop for this epoch; resume the in-flight step next epoch.
    Defer,
}

/// What the scheduler wants done after one actuation attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuationDirective {
    /// The attempt completed within the timeout: the decision is applied.
    Applied,
    /// The attempt timed out; wait `backoff_ms` and try again.
    Retry {
        /// Saturating-doubled backoff to sleep before the next attempt.
        backoff_ms: f64,
    },
    /// Retries exhausted (or the interval is spent): actuate the fallback.
    GiveUp,
}

/// Budgets and limits for the [`EpochScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Decision interval (the deadline), ms. Paper: 1000.
    pub interval_ms: f64,
    /// Budget for the PMC read phase, ms.
    pub pmc_budget_ms: f64,
    /// Budget for BDQ inference + mapping, ms.
    pub inference_budget_ms: f64,
    /// Budget for the learning phase, ms.
    pub learn_budget_ms: f64,
    /// Headroom reserved for actuation at the end of the epoch, ms.
    pub actuate_budget_ms: f64,
    /// PMC windows older than this are stale and must not be learned from.
    /// The paper's control loop tolerates at most one interval of lag.
    pub stale_after_ms: f64,
    /// A single actuation attempt longer than this counts as timed out.
    pub actuation_timeout_ms: f64,
    /// Retries after the first actuation attempt before giving up.
    pub actuation_max_retries: u32,
    /// Initial retry backoff, ms; doubles per retry (saturating at
    /// `actuation_backoff_cap_ms`).
    pub actuation_backoff_ms: f64,
    /// Ceiling for the doubled backoff, ms.
    pub actuation_backoff_cap_ms: f64,
    /// Hard cap on learning micro-batch chunks per epoch, so a stuck clock
    /// (elapsed time frozen) still cannot spin the learn loop forever.
    pub max_learn_chunks: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            interval_ms: 1000.0,
            pmc_budget_ms: 100.0,
            inference_budget_ms: 150.0,
            learn_budget_ms: 450.0,
            actuate_budget_ms: 200.0,
            stale_after_ms: 1000.0,
            actuation_timeout_ms: 80.0,
            actuation_max_retries: 2,
            actuation_backoff_ms: 10.0,
            actuation_backoff_cap_ms: 80.0,
            max_learn_chunks: 8,
        }
    }
}

/// The actuation retry budget carved out of a [`SchedulerConfig`]: how
/// many retries one actuation gets and how long to back off between them.
/// Shared with `twig-platform`, whose write-verify reconciliation ladder
/// retries divergent sysfs writes under exactly this budget — one knob
/// governs every bounded-retry loop in the control path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Retries after the first attempt before giving up.
    pub max_retries: u32,
    /// Initial backoff, ms; doubles per retry.
    pub backoff_ms: f64,
    /// Saturation ceiling for the doubled backoff, ms.
    pub backoff_cap_ms: f64,
}

impl RetryBudget {
    /// Backoff before retry number `attempt` (0-based): saturating
    /// exponential doubling, capped. `f64::powi` cannot overflow to a
    /// panic, and the cap bounds the wait.
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        (self.backoff_ms * f64::powi(2.0, attempt.min(1024) as i32)).min(self.backoff_cap_ms)
    }
}

impl SchedulerConfig {
    /// The actuation retry budget this configuration grants.
    pub fn retry_budget(&self) -> RetryBudget {
        RetryBudget {
            max_retries: self.actuation_max_retries,
            backoff_ms: self.actuation_backoff_ms,
            backoff_cap_ms: self.actuation_backoff_cap_ms,
        }
    }

    fn validate(&self) -> Result<(), TwigError> {
        let bad = |detail: String| Err(TwigError::InvalidConfig { detail });
        let budgets = [
            ("interval_ms", self.interval_ms),
            ("pmc_budget_ms", self.pmc_budget_ms),
            ("inference_budget_ms", self.inference_budget_ms),
            ("learn_budget_ms", self.learn_budget_ms),
            ("actuate_budget_ms", self.actuate_budget_ms),
            ("stale_after_ms", self.stale_after_ms),
            ("actuation_timeout_ms", self.actuation_timeout_ms),
            ("actuation_backoff_ms", self.actuation_backoff_ms),
            ("actuation_backoff_cap_ms", self.actuation_backoff_cap_ms),
        ];
        for (label, v) in budgets {
            if !v.is_finite() || v <= 0.0 {
                return bad(format!("{label} must be positive and finite, got {v}"));
            }
        }
        let phase_sum = self.pmc_budget_ms
            + self.inference_budget_ms
            + self.learn_budget_ms
            + self.actuate_budget_ms;
        if phase_sum > self.interval_ms {
            return bad(format!(
                "phase budgets sum to {phase_sum} ms > interval {} ms",
                self.interval_ms
            ));
        }
        if self.max_learn_chunks == 0 {
            return bad("max_learn_chunks must be at least 1".into());
        }
        Ok(())
    }
}

/// Aggregate counters for reports (all also exported as `deadline.*`
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Epochs completed (`end_epoch` calls).
    pub epochs: u64,
    /// Epochs whose wall duration exceeded the interval.
    pub misses: u64,
    /// PMC windows rejected as stale.
    pub stale_windows: u64,
    /// Actuation retry attempts issued.
    pub actuation_retries: u64,
    /// Actuation attempts that hit the per-attempt timeout.
    pub actuation_timeouts: u64,
    /// Epochs that ended at [`ShedLevel::DeferLearn`].
    pub defer_learn_epochs: u64,
    /// Epochs that ended at [`ShedLevel::SkipInference`].
    pub skip_inference_epochs: u64,
    /// Epochs that ended at [`ShedLevel::SafeFallback`].
    pub safe_fallback_epochs: u64,
    /// Learning micro-batch chunks granted.
    pub learn_chunks: u64,
    /// Deepest ladder level any epoch reached.
    pub max_ladder_depth: u8,
}

/// Deadline-aware scheduler for one manager's epoch loop. Generic over the
/// time source so the simulator can inject deterministic time; see the
/// module docs for the ladder semantics.
///
/// # Examples
///
/// ```
/// use twig_core::{EpochScheduler, InferenceDirective, SchedulerConfig, SimClock};
///
/// let clock = SimClock::new();
/// let mut sched = EpochScheduler::new(SchedulerConfig::default(), clock.clone()).unwrap();
/// sched.begin_epoch();
/// clock.advance(50.0); // fast PMC read
/// assert_eq!(sched.inference_directive(), InferenceDirective::Run);
/// clock.advance(900.0); // the learn phase blew the interval
/// sched.end_epoch();
/// assert_eq!(sched.stats().misses, 0); // 950 ms < 1000 ms: made it
/// ```
#[derive(Debug, Clone)]
pub struct EpochScheduler<C: VirtualClock> {
    config: SchedulerConfig,
    clock: C,
    telemetry: Telemetry,
    /// Highest clock reading seen — backward jumps clamp to this.
    high_water_ms: f64,
    epoch_start_ms: f64,
    level: ShedLevel,
    attempts_this_epoch: u32,
    chunks_this_epoch: u32,
    stats: SchedulerStats,
}

impl<C: VirtualClock> EpochScheduler<C> {
    /// Validates the configuration and wraps the clock.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] for non-positive budgets, phase
    /// budgets that exceed the interval, or a zero chunk cap.
    pub fn new(config: SchedulerConfig, clock: C) -> Result<Self, TwigError> {
        config.validate()?;
        let now = Self::sanitize(clock.now_ms(), 0.0);
        Ok(EpochScheduler {
            config,
            clock,
            telemetry: Telemetry::disabled(),
            high_water_ms: now,
            epoch_start_ms: now,
            level: ShedLevel::None,
            attempts_this_epoch: 0,
            chunks_this_epoch: 0,
            stats: SchedulerStats::default(),
        })
    }

    /// Attaches a telemetry handle for the `deadline.*` metrics. Telemetry
    /// never feeds back into scheduling decisions.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Current ladder level (monotone within an epoch).
    pub fn shed_level(&self) -> ShedLevel {
        self.level
    }

    fn sanitize(raw: f64, fallback: f64) -> f64 {
        if raw.is_finite() {
            raw
        } else {
            fallback
        }
    }

    /// Clamped-monotone clock read: a skewed-backward or non-finite reading
    /// never moves scheduler time backwards (a stuck clock reads as frozen
    /// elapsed time, which the per-epoch count caps make safe).
    fn now_ms(&mut self) -> f64 {
        let raw = Self::sanitize(self.clock.now_ms(), self.high_water_ms);
        self.high_water_ms = self.high_water_ms.max(raw);
        self.high_water_ms
    }

    /// Milliseconds of this epoch already spent.
    pub fn elapsed_ms(&mut self) -> f64 {
        self.now_ms() - self.epoch_start_ms
    }

    /// Milliseconds of the epoch remaining (clamped at zero).
    pub fn remaining_ms(&mut self) -> f64 {
        (self.config.interval_ms - self.elapsed_ms()).max(0.0)
    }

    /// Starts a new epoch: resets the ladder, the actuation-attempt and
    /// learn-chunk counters, and the epoch origin.
    pub fn begin_epoch(&mut self) {
        self.epoch_start_ms = self.now_ms();
        self.level = ShedLevel::None;
        self.attempts_this_epoch = 0;
        self.chunks_this_epoch = 0;
    }

    /// Monotone escalation: the ladder never descends within an epoch.
    fn escalate(&mut self, to: ShedLevel) {
        self.level = self.level.max(to);
    }

    /// Checks a PMC window's age against the staleness bound. A stale
    /// window must be routed to `TaskManager::observe_degraded` (the
    /// monitor keeps its last healthy smoothing) — never learned from, and
    /// never used to justify a fresh actuation.
    pub fn pmc_window_fresh(&mut self, age_ms: f64) -> bool {
        if age_ms.is_finite() && age_ms <= self.config.stale_after_ms {
            return true;
        }
        self.stats.stale_windows += 1;
        self.telemetry.counter_add("deadline.stale_windows", 1);
        false
    }

    /// Decides the inference phase from the time already spent: run it,
    /// reuse the last validated action, or drop to the safe fallback.
    /// Escalates the ladder as a side effect.
    pub fn inference_directive(&mut self) -> InferenceDirective {
        let elapsed = self.elapsed_ms();
        let actuation_deadline = self.config.interval_ms - self.config.actuate_budget_ms;
        if self.level >= ShedLevel::SafeFallback || elapsed >= actuation_deadline {
            self.escalate(ShedLevel::SafeFallback);
            return InferenceDirective::SafeFallback;
        }
        if self.level >= ShedLevel::SkipInference
            || elapsed + self.config.inference_budget_ms > actuation_deadline
        {
            self.escalate(ShedLevel::SkipInference);
            return InferenceDirective::ReuseLast;
        }
        InferenceDirective::Run
    }

    /// Decides whether the learning phase may run one more micro-batch
    /// chunk. `Defer` leaves any in-flight budgeted step untouched — it
    /// resumes on the first `Chunk` grant of a later epoch.
    pub fn learn_directive(&mut self) -> LearnDirective {
        if self.level >= ShedLevel::DeferLearn {
            return LearnDirective::Defer;
        }
        if self.chunks_this_epoch >= self.config.max_learn_chunks {
            self.escalate(ShedLevel::DeferLearn);
            return LearnDirective::Defer;
        }
        let elapsed = self.elapsed_ms();
        let learn_deadline = self.config.interval_ms - self.config.actuate_budget_ms;
        if elapsed >= learn_deadline {
            self.escalate(ShedLevel::DeferLearn);
            return LearnDirective::Defer;
        }
        self.chunks_this_epoch += 1;
        self.stats.learn_chunks += 1;
        LearnDirective::Chunk
    }

    /// Scores one actuation attempt that took `attempt_ms`: applied within
    /// the timeout, retry after a saturating-doubled backoff, or give up
    /// (bounded by `actuation_max_retries` *and* by the interval, and by
    /// attempt count alone under a stuck clock).
    pub fn actuation_attempt(&mut self, attempt_ms: f64) -> ActuationDirective {
        let timed_out = !attempt_ms.is_finite() || attempt_ms > self.config.actuation_timeout_ms;
        if !timed_out {
            return ActuationDirective::Applied;
        }
        self.stats.actuation_timeouts += 1;
        self.telemetry.counter_add("deadline.actuation_timeouts", 1);
        let retries_left = self.attempts_this_epoch < self.config.actuation_max_retries;
        let time_left = self.elapsed_ms() < self.config.interval_ms;
        if !retries_left || !time_left {
            self.escalate(ShedLevel::SafeFallback);
            return ActuationDirective::GiveUp;
        }
        let backoff_ms = self
            .config
            .retry_budget()
            .backoff_for(self.attempts_this_epoch);
        self.attempts_this_epoch += 1;
        self.stats.actuation_retries += 1;
        self.telemetry.counter_add("deadline.actuation_retries", 1);
        ActuationDirective::Retry { backoff_ms }
    }

    /// Closes the epoch: scores the deadline, folds the deepest ladder
    /// level reached into the stats and exports the `deadline.*` gauges.
    pub fn end_epoch(&mut self) {
        let duration = self.elapsed_ms();
        self.stats.epochs += 1;
        if duration > self.config.interval_ms {
            self.stats.misses += 1;
            self.telemetry.counter_add("deadline.misses", 1);
        }
        match self.level {
            ShedLevel::None => {}
            ShedLevel::DeferLearn => {
                self.stats.defer_learn_epochs += 1;
                self.telemetry.counter_add("deadline.shed.defer_learn", 1);
            }
            ShedLevel::SkipInference => {
                self.stats.skip_inference_epochs += 1;
                self.telemetry
                    .counter_add("deadline.shed.skip_inference", 1);
            }
            ShedLevel::SafeFallback => {
                self.stats.safe_fallback_epochs += 1;
                self.telemetry.counter_add("deadline.shed.safe_fallback", 1);
            }
        }
        self.stats.max_ladder_depth = self.stats.max_ladder_depth.max(self.level.depth());
        self.telemetry.record("deadline.epoch_ms", duration);
        self.telemetry
            .gauge_set("deadline.ladder_depth", f64::from(self.level.depth()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use twig_stats::rng::{Rng, Xoshiro256};

    fn sched(clock: SimClock) -> EpochScheduler<SimClock> {
        EpochScheduler::new(SchedulerConfig::default(), clock).unwrap()
    }

    #[test]
    fn config_validation() {
        let clock = SimClock::new();
        for bad in [
            SchedulerConfig {
                interval_ms: 0.0,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                inference_budget_ms: f64::NAN,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                learn_budget_ms: 2000.0,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_learn_chunks: 0,
                ..SchedulerConfig::default()
            },
        ] {
            assert!(EpochScheduler::new(bad, clock.clone()).is_err());
        }
    }

    #[test]
    fn on_time_epoch_sheds_nothing() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        s.begin_epoch();
        clock.advance(40.0);
        assert!(s.pmc_window_fresh(40.0));
        assert_eq!(s.inference_directive(), InferenceDirective::Run);
        clock.advance(60.0);
        assert_eq!(s.learn_directive(), LearnDirective::Chunk);
        clock.advance(100.0);
        assert_eq!(s.actuation_attempt(20.0), ActuationDirective::Applied);
        s.end_epoch();
        let st = s.stats();
        assert_eq!(st.misses, 0);
        assert_eq!(st.max_ladder_depth, 0);
        assert_eq!(s.shed_level(), ShedLevel::None);
    }

    #[test]
    fn overrun_walks_the_ladder_in_order() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        // Learn deadline blown -> defer.
        s.begin_epoch();
        clock.advance(850.0);
        assert_eq!(s.learn_directive(), LearnDirective::Defer);
        assert_eq!(s.shed_level(), ShedLevel::DeferLearn);
        s.end_epoch();
        // Inference budget no longer fits -> reuse last action.
        s.begin_epoch();
        clock.advance(700.0);
        assert_eq!(s.inference_directive(), InferenceDirective::ReuseLast);
        assert_eq!(s.shed_level(), ShedLevel::SkipInference);
        s.end_epoch();
        // Not even actuation headroom -> safe fallback.
        s.begin_epoch();
        clock.advance(950.0);
        assert_eq!(s.inference_directive(), InferenceDirective::SafeFallback);
        assert_eq!(s.shed_level(), ShedLevel::SafeFallback);
        s.end_epoch();
        let st = s.stats();
        assert_eq!(st.defer_learn_epochs, 1);
        assert_eq!(st.skip_inference_epochs, 1);
        assert_eq!(st.safe_fallback_epochs, 1);
        assert_eq!(st.max_ladder_depth, 3);
    }

    #[test]
    fn begin_epoch_resets_the_ladder() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        s.begin_epoch();
        clock.advance(990.0);
        assert_eq!(s.inference_directive(), InferenceDirective::SafeFallback);
        s.end_epoch();
        clock.advance(10.0);
        s.begin_epoch();
        assert_eq!(s.shed_level(), ShedLevel::None);
        assert_eq!(s.inference_directive(), InferenceDirective::Run);
    }

    #[test]
    fn deadline_miss_is_counted() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        s.begin_epoch();
        clock.advance(1500.0);
        s.end_epoch();
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn stale_window_detection() {
        let clock = SimClock::new();
        let mut s = sched(clock);
        s.begin_epoch();
        assert!(s.pmc_window_fresh(999.0));
        assert!(!s.pmc_window_fresh(1001.0));
        assert!(!s.pmc_window_fresh(f64::NAN));
        assert_eq!(s.stats().stale_windows, 2);
    }

    #[test]
    fn actuation_retries_backoff_then_give_up() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        s.begin_epoch();
        let r1 = s.actuation_attempt(200.0);
        assert_eq!(r1, ActuationDirective::Retry { backoff_ms: 10.0 });
        let r2 = s.actuation_attempt(200.0);
        assert_eq!(r2, ActuationDirective::Retry { backoff_ms: 20.0 });
        // max_retries = 2: the third timeout gives up and drops to safe.
        assert_eq!(s.actuation_attempt(200.0), ActuationDirective::GiveUp);
        assert_eq!(s.shed_level(), ShedLevel::SafeFallback);
        let st = s.stats();
        assert_eq!(st.actuation_timeouts, 3);
        assert_eq!(st.actuation_retries, 2);
    }

    #[test]
    fn actuation_backoff_saturates_at_cap() {
        let clock = SimClock::new();
        let mut s = EpochScheduler::new(
            SchedulerConfig {
                actuation_max_retries: 40,
                ..SchedulerConfig::default()
            },
            clock,
        )
        .unwrap();
        s.begin_epoch();
        let mut last = 0.0;
        for _ in 0..40 {
            match s.actuation_attempt(500.0) {
                ActuationDirective::Retry { backoff_ms } => {
                    assert!(backoff_ms.is_finite());
                    assert!(backoff_ms <= s.config().actuation_backoff_cap_ms);
                    assert!(backoff_ms >= last);
                    last = backoff_ms;
                }
                other => panic!("expected Retry, got {other:?}"),
            }
        }
        assert_eq!(last, s.config().actuation_backoff_cap_ms);
    }

    #[test]
    fn backward_and_stuck_clocks_are_clamped() {
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        clock.set(500.0);
        s.begin_epoch();
        // Skew backwards: elapsed clamps to zero, never negative.
        clock.set(100.0);
        assert_eq!(s.elapsed_ms(), 0.0);
        assert_eq!(s.inference_directive(), InferenceDirective::Run);
        // Stuck clock: the chunk cap still terminates the learn loop.
        let mut chunks = 0;
        while s.learn_directive() == LearnDirective::Chunk {
            chunks += 1;
            assert!(chunks <= 1000, "learn loop did not terminate");
        }
        assert_eq!(chunks, s.config().max_learn_chunks);
        // Non-finite readings are ignored too.
        clock.set(f64::NAN);
        assert_eq!(s.elapsed_ms(), 0.0);
        s.end_epoch();
    }

    #[test]
    fn ladder_is_monotone_under_random_schedules() {
        // Property test: for random budget configurations and random phase
        // latencies, within any epoch the observed shed level sequence is
        // non-decreasing, and directives are consistent with the level.
        let mut rng = Xoshiro256::seed_from_u64(0xD3AD_11FE);
        for trial in 0..200 {
            let interval = rng.range_f64(100.0, 2000.0);
            let config = SchedulerConfig {
                interval_ms: interval,
                pmc_budget_ms: interval * rng.range_f64(0.02, 0.1),
                inference_budget_ms: interval * rng.range_f64(0.05, 0.2),
                learn_budget_ms: interval * rng.range_f64(0.1, 0.4),
                actuate_budget_ms: interval * rng.range_f64(0.05, 0.25),
                stale_after_ms: interval,
                actuation_timeout_ms: interval * 0.05,
                actuation_max_retries: rng.range_usize(0, 4) as u32,
                actuation_backoff_ms: 1.0,
                actuation_backoff_cap_ms: 16.0,
                max_learn_chunks: 1 + rng.range_usize(0, 8) as u32,
            };
            let clock = SimClock::new();
            let mut s = EpochScheduler::new(config, clock.clone()).unwrap();
            for _epoch in 0..20 {
                s.begin_epoch();
                let mut seen = s.shed_level();
                let check = |lvl: ShedLevel, seen: &mut ShedLevel| {
                    assert!(
                        lvl >= *seen,
                        "trial {trial}: ladder de-escalated {seen:?} -> {lvl:?}"
                    );
                    *seen = lvl;
                };
                clock.advance(rng.range_f64(0.0, interval * 0.3));
                let _ = s.pmc_window_fresh(rng.range_f64(0.0, 2.0 * interval));
                check(s.shed_level(), &mut seen);
                let inf = s.inference_directive();
                check(s.shed_level(), &mut seen);
                if inf == InferenceDirective::Run {
                    clock.advance(rng.range_f64(0.0, interval * 0.4));
                }
                let mut guard = 0;
                while s.learn_directive() == LearnDirective::Chunk {
                    check(s.shed_level(), &mut seen);
                    clock.advance(rng.range_f64(0.0, interval * 0.2));
                    guard += 1;
                    assert!(guard <= 1000, "learn loop did not terminate");
                }
                check(s.shed_level(), &mut seen);
                loop {
                    match s.actuation_attempt(rng.range_f64(0.0, interval * 0.2)) {
                        ActuationDirective::Applied | ActuationDirective::GiveUp => break,
                        ActuationDirective::Retry { backoff_ms } => {
                            assert!(backoff_ms.is_finite() && backoff_ms > 0.0);
                            clock.advance(backoff_ms);
                        }
                    }
                    check(s.shed_level(), &mut seen);
                }
                check(s.shed_level(), &mut seen);
                s.end_epoch();
                clock.advance(rng.range_f64(0.0, interval));
            }
            let st = s.stats();
            assert_eq!(st.epochs, 20);
            assert!(st.max_ladder_depth <= 3);
        }
    }

    #[test]
    fn telemetry_counters_match_stats() {
        let telemetry = Telemetry::enabled();
        let clock = SimClock::new();
        let mut s = sched(clock.clone());
        s.set_telemetry(telemetry.clone());
        s.begin_epoch();
        let _ = s.pmc_window_fresh(5000.0);
        let _ = s.actuation_attempt(500.0);
        clock.advance(1200.0);
        s.end_epoch();
        let m = telemetry.metrics().unwrap();
        assert_eq!(m.counter("deadline.misses"), 1);
        assert_eq!(m.counter("deadline.stale_windows"), 1);
        assert_eq!(m.counter("deadline.actuation_retries"), 1);
        assert_eq!(m.counter("deadline.actuation_timeouts"), 1);
    }
}
