use std::error::Error;
use std::fmt;
use twig_rl::RlError;
use twig_sim::SimError;
use twig_stats::StatsError;

/// Error produced by the Twig task manager.
///
/// # Examples
///
/// ```
/// use twig_core::{TwigBuilder, TwigError};
///
/// let err = TwigBuilder::new().build().unwrap_err(); // no services
/// assert!(matches!(err, TwigError::InvalidConfig { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TwigError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// A report did not match the configured services.
    ReportMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// An error bubbled up from the learning substrate.
    Learning(RlError),
    /// An error bubbled up from the simulator types.
    Sim(SimError),
    /// An error bubbled up from the statistics substrate.
    Stats(StatsError),
    /// A filesystem operation (checkpoint persistence) failed.
    Io {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwigError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            TwigError::ReportMismatch { detail } => {
                write!(f, "report mismatch: {detail}")
            }
            TwigError::Learning(e) => write!(f, "learning error: {e}"),
            TwigError::Sim(e) => write!(f, "simulator error: {e}"),
            TwigError::Stats(e) => write!(f, "statistics error: {e}"),
            TwigError::Io { detail } => write!(f, "io error: {detail}"),
        }
    }
}

impl Error for TwigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TwigError::Learning(e) => Some(e),
            TwigError::Sim(e) => Some(e),
            TwigError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<RlError> for TwigError {
    fn from(e: RlError) -> Self {
        TwigError::Learning(e)
    }
}

#[doc(hidden)]
impl From<SimError> for TwigError {
    fn from(e: SimError) -> Self {
        TwigError::Sim(e)
    }
}

#[doc(hidden)]
impl From<StatsError> for TwigError {
    fn from(e: StatsError) -> Self {
        TwigError::Stats(e)
    }
}

/// Structured error for the [`TaskManager`](crate::TaskManager) interface,
/// classifying every failure by whether the control loop can continue.
///
/// - [`Recoverable`](ManagerError::Recoverable) — a transient runtime
///   failure (learning hiccup, an out-of-range decision, degraded
///   telemetry). A supervisor such as
///   [`SafetyGovernor`](crate::SafetyGovernor) can substitute a fallback
///   assignment and keep the loop running.
/// - [`Fatal`](ManagerError::Fatal) — a configuration or wiring bug
///   (invalid config, mismatched report shape). Retrying cannot help; the
///   experiment should stop.
///
/// # Examples
///
/// ```
/// use twig_core::ManagerError;
///
/// let e = ManagerError::recoverable("replay buffer not yet full");
/// assert!(e.is_recoverable());
/// let e = ManagerError::fatal("zero cores configured");
/// assert!(!e.is_recoverable());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerError {
    /// A transient failure: the loop can continue on a fallback decision.
    Recoverable {
        /// Human-readable description.
        detail: String,
    },
    /// A permanent failure: configuration or wiring is broken.
    Fatal {
        /// Human-readable description.
        detail: String,
    },
}

impl ManagerError {
    /// Creates a recoverable error.
    pub fn recoverable(detail: impl Into<String>) -> Self {
        ManagerError::Recoverable {
            detail: detail.into(),
        }
    }

    /// Creates a fatal error.
    pub fn fatal(detail: impl Into<String>) -> Self {
        ManagerError::Fatal {
            detail: detail.into(),
        }
    }

    /// `true` when a supervisor may substitute a fallback and continue.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, ManagerError::Recoverable { .. })
    }
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Recoverable { detail } => {
                write!(f, "recoverable manager error: {detail}")
            }
            ManagerError::Fatal { detail } => write!(f, "fatal manager error: {detail}"),
        }
    }
}

impl Error for ManagerError {}

impl From<TwigError> for ManagerError {
    fn from(e: TwigError) -> Self {
        match &e {
            // Broken configuration or wiring cannot be retried away.
            TwigError::InvalidConfig { .. } | TwigError::ReportMismatch { .. } => {
                ManagerError::Fatal {
                    detail: e.to_string(),
                }
            }
            // Runtime failures of the learning/simulation substrate or the
            // checkpoint store: a supervisor can fall back and continue.
            TwigError::Learning(_)
            | TwigError::Sim(_)
            | TwigError::Stats(_)
            | TwigError::Io { .. } => ManagerError::Recoverable {
                detail: e.to_string(),
            },
        }
    }
}

impl From<SimError> for ManagerError {
    fn from(e: SimError) -> Self {
        match &e {
            SimError::InvalidConfig { .. } => ManagerError::Fatal {
                detail: e.to_string(),
            },
            _ => ManagerError::Recoverable {
                detail: e.to_string(),
            },
        }
    }
}

impl From<RlError> for ManagerError {
    fn from(e: RlError) -> Self {
        ManagerError::Recoverable {
            detail: e.to_string(),
        }
    }
}

impl From<StatsError> for ManagerError {
    fn from(e: StatsError) -> Self {
        ManagerError::Recoverable {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_error_classification() {
        let fatal: ManagerError = TwigError::InvalidConfig { detail: "x".into() }.into();
        assert!(!fatal.is_recoverable());
        let fatal: ManagerError = TwigError::ReportMismatch { detail: "x".into() }.into();
        assert!(!fatal.is_recoverable());
        let rec: ManagerError = TwigError::Learning(RlError::NotEnoughData {
            needed: 1,
            available: 0,
        })
        .into();
        assert!(rec.is_recoverable());
        let rec: ManagerError = SimError::UnknownCore {
            core: 40,
            count: 18,
        }
        .into();
        assert!(rec.is_recoverable());
        let fatal: ManagerError = SimError::InvalidConfig { detail: "x".into() }.into();
        assert!(!fatal.is_recoverable());
    }

    #[test]
    fn manager_error_display_and_traits() {
        let e = ManagerError::recoverable("hiccup");
        assert!(e.to_string().contains("recoverable"));
        let e = ManagerError::fatal("broken");
        assert!(e.to_string().contains("fatal"));
        fn check<T: Send + Sync + Error>() {}
        check::<ManagerError>();
        // `?` into a boxed error keeps working for the harness.
        fn boxed() -> Result<(), Box<dyn Error + Send + Sync>> {
            Err(ManagerError::fatal("x"))?
        }
        assert!(boxed().is_err());
    }

    #[test]
    fn display_and_source() {
        let e = TwigError::Learning(RlError::NotEnoughData {
            needed: 1,
            available: 0,
        });
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = TwigError::InvalidConfig { detail: "x".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TwigError>();
    }
}
