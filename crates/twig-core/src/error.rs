use std::error::Error;
use std::fmt;
use twig_rl::RlError;
use twig_sim::SimError;
use twig_stats::StatsError;

/// Error produced by the Twig task manager.
///
/// # Examples
///
/// ```
/// use twig_core::{TwigBuilder, TwigError};
///
/// let err = TwigBuilder::new().build().unwrap_err(); // no services
/// assert!(matches!(err, TwigError::InvalidConfig { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TwigError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// A report did not match the configured services.
    ReportMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// An error bubbled up from the learning substrate.
    Learning(RlError),
    /// An error bubbled up from the simulator types.
    Sim(SimError),
    /// An error bubbled up from the statistics substrate.
    Stats(StatsError),
}

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwigError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            TwigError::ReportMismatch { detail } => {
                write!(f, "report mismatch: {detail}")
            }
            TwigError::Learning(e) => write!(f, "learning error: {e}"),
            TwigError::Sim(e) => write!(f, "simulator error: {e}"),
            TwigError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for TwigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TwigError::Learning(e) => Some(e),
            TwigError::Sim(e) => Some(e),
            TwigError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<RlError> for TwigError {
    fn from(e: RlError) -> Self {
        TwigError::Learning(e)
    }
}

#[doc(hidden)]
impl From<SimError> for TwigError {
    fn from(e: SimError) -> Self {
        TwigError::Sim(e)
    }
}

#[doc(hidden)]
impl From<StatsError> for TwigError {
    fn from(e: StatsError) -> Self {
        TwigError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TwigError::Learning(RlError::NotEnoughData { needed: 1, available: 0 });
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = TwigError::InvalidConfig { detail: "x".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TwigError>();
    }
}
