/// The Eq. 1 reward of Section III-B2, computed per service each epoch:
///
/// ```text
/// r = QoS_rew + θ · Power_rew          if QoS ≤ QoS_target
/// r = max(−QoS_rew^φ, ϕ)               otherwise
/// ```
///
/// where `QoS_rew` is the ratio of measured to target QoS and `Power_rew`
/// is the ratio of the stress-benchmark peak power to the service's
/// *estimated* power (larger = thriftier). The paper sets θ = 0.5, φ = 3
/// and ϕ = −100.
///
/// # Examples
///
/// ```
/// let r = twig_core::RewardConfig::default();
/// // Meeting QoS with low power earns a positive reward…
/// assert!(r.reward(1.0, 2.0, 10.0) > 0.0);
/// // …while violating it is punished, more severely the worse it gets.
/// assert!(r.reward(2.5, 2.0, 10.0) < 0.0);
/// assert!(r.reward(6.0, 2.0, 10.0) < r.reward(2.5, 2.0, 10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardConfig {
    /// Balance between the QoS and power terms (θ).
    pub theta: f64,
    /// Violation-severity exponent (φ).
    pub phi: f64,
    /// Floor on the negative reward (ϕ).
    pub floor: f64,
    /// Cap on the power-reward ratio (guards against tiny power estimates
    /// dominating the learning signal; not in the paper, defensive).
    pub power_reward_cap: f64,
    /// Multiplier on the violation penalty before flooring (not in the
    /// paper). With the paper's bare `−QoS_rew^φ`, a 10 % violation costs
    /// only −1.3 while a frugal mapping pays +10 — on this simulator's
    /// heavier near-target latency noise that expected-value math rewards
    /// flirting with the target. Scaling the penalty restores the paper's
    /// intended "severely penalise the learning agent" semantics.
    pub violation_scale: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            theta: 0.5,
            phi: 3.0,
            floor: -100.0,
            power_reward_cap: 50.0,
            violation_scale: 20.0,
        }
    }
}

impl RewardConfig {
    /// Computes Eq. 1 for one service.
    ///
    /// `measured_qos_ms` and `target_qos_ms` are tail latencies;
    /// `power_reward` is `P_max / P_estimated` (see
    /// [`Eq2PowerModel`](crate::Eq2PowerModel)).
    /// Non-finite or negative inputs are sanitised so the learning signal
    /// stays finite: a NaN latency is treated as the worst case (floor), a
    /// negative latency as zero, and a NaN power reward as zero.
    pub fn reward(&self, measured_qos_ms: f64, target_qos_ms: f64, power_reward: f64) -> f64 {
        let measured = if measured_qos_ms.is_nan() {
            f64::INFINITY
        } else {
            measured_qos_ms.max(0.0)
        };
        let qos_rew = if target_qos_ms > 0.0 {
            measured / target_qos_ms
        } else {
            f64::INFINITY
        };
        let power_rew = if power_reward.is_nan() {
            0.0
        } else {
            power_reward
        };
        if qos_rew <= 1.0 {
            qos_rew + self.theta * power_rew.clamp(0.0, self.power_reward_cap)
        } else {
            (-self.violation_scale * qos_rew.powf(self.phi)).max(self.floor)
        }
    }

    /// The `Power_rew` term: peak (stress-benchmark) power over the
    /// service's estimated power, clamped to the configured cap.
    pub fn power_reward(&self, peak_power_w: f64, estimated_power_w: f64) -> f64 {
        if estimated_power_w <= 0.0 || estimated_power_w.is_nan() {
            return self.power_reward_cap;
        }
        let ratio = peak_power_w / estimated_power_w;
        if ratio.is_nan() {
            return 0.0;
        }
        ratio.clamp(0.0, self.power_reward_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn paper_constants_are_default() {
        let r = RewardConfig::default();
        assert_eq!(r.theta, 0.5);
        assert_eq!(r.phi, 3.0);
        assert_eq!(r.floor, -100.0);
    }

    #[test]
    fn meeting_qos_with_less_power_pays_more() {
        let r = RewardConfig::default();
        let frugal = r.reward(1.5, 2.0, 20.0);
        let wasteful = r.reward(1.5, 2.0, 1.5);
        assert!(frugal > wasteful);
    }

    #[test]
    fn just_meeting_qos_beats_violating() {
        let r = RewardConfig::default();
        assert!(r.reward(1.99, 2.0, 1.0) > r.reward(2.01, 2.0, 50.0));
    }

    #[test]
    fn violation_penalty_is_floored() {
        let r = RewardConfig::default();
        // Tardiness 100 => far below the floor, clamped at -100.
        assert_eq!(r.reward(200.0, 2.0, 1.0), -100.0);
    }

    #[test]
    fn power_reward_handles_degenerate_estimates() {
        let r = RewardConfig::default();
        assert_eq!(r.power_reward(120.0, 0.0), r.power_reward_cap);
        assert_eq!(r.power_reward(120.0, -5.0), r.power_reward_cap);
        assert_eq!(r.power_reward(120.0, 1.0), r.power_reward_cap);
        assert!((r.power_reward(120.0, 60.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn met_qos_always_nonnegative() {
        let r = RewardConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(0x4e7);
        for _ in 0..200 {
            let tardiness = rng.next_f64();
            let power = rng.range_f64(0.0, 100.0);
            assert!(r.reward(tardiness * 2.0, 2.0, power) >= 0.0);
        }
    }

    #[test]
    fn violations_always_negative_and_monotone() {
        let r = RewardConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(0x7a2d);
        for _ in 0..200 {
            let t1 = rng.range_f64(1.001, 50.0);
            let t2 = rng.range_f64(1.001, 50.0);
            let r1 = r.reward(t1 * 2.0, 2.0, 10.0);
            let r2 = r.reward(t2 * 2.0, 2.0, 10.0);
            assert!(r1 < 0.0 && r2 < 0.0);
            if t1 < t2 {
                assert!(r1 >= r2);
            }
        }
    }

    #[test]
    fn reward_bounded_below_by_floor() {
        let r = RewardConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(0xf100);
        for _ in 0..200 {
            let measured = rng.range_f64(0.0, 1e6);
            let power = rng.range_f64(0.0, 1e6);
            assert!(r.reward(measured, 2.0, power) >= r.floor);
        }
    }

    #[test]
    fn qos_exactly_at_target_takes_met_branch() {
        let r = RewardConfig::default();
        // qos_rew == 1.0 is "met": reward = 1 + θ·power_rew, never a penalty.
        let reward = r.reward(2.0, 2.0, 10.0);
        assert_eq!(reward, 1.0 + r.theta * 10.0);
        assert!(reward > 0.0);
    }

    #[test]
    fn zero_peak_power_stays_in_bounds() {
        let r = RewardConfig::default();
        let pr = r.power_reward(0.0, 60.0);
        assert_eq!(pr, 0.0);
        let reward = r.reward(1.0, 2.0, pr);
        assert!(reward.is_finite() && reward >= 0.0);
        // Degenerate on both sides: 0/0 must not yield NaN.
        let pr = r.power_reward(0.0, 0.0);
        assert!(pr.is_finite());
        assert!(r.reward(1.0, 2.0, pr).is_finite());
    }

    #[test]
    fn negative_and_nan_latency_stay_finite_and_bounded() {
        let r = RewardConfig::default();
        let upper = 1.0 + r.theta * r.power_reward_cap;
        for measured in [-5.0, -1e9, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let reward = r.reward(measured, 2.0, 10.0);
            assert!(reward.is_finite(), "reward({measured}) = {reward}");
            assert!(
                (r.floor..=upper).contains(&reward),
                "reward({measured}) = {reward} outside [{}, {upper}]",
                r.floor
            );
        }
        // NaN latency is treated as the worst case: the φ floor.
        assert_eq!(r.reward(f64::NAN, 2.0, 10.0), r.floor);
        // NaN power reward is treated as zero, not propagated: only the
        // qos_rew term (1.0/2.0 = 0.5) remains.
        assert_eq!(r.reward(1.0, 2.0, f64::NAN), 0.5);
    }

    #[test]
    fn phi_floor_is_minus_one_hundred() {
        let r = RewardConfig::default();
        assert_eq!(r.reward(f64::INFINITY, 2.0, 0.0), -100.0);
        assert_eq!(r.reward(1e12, 2.0, 0.0), -100.0);
    }
}
