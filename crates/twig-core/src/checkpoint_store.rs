//! Durable checkpoint persistence and the startup recovery ladder.
//!
//! [`CheckpointStore`] writes opaque checkpoint payloads atomically (temp
//! file + fsync + rename) and rotates the newest `keep` generations, so a
//! crash mid-write can never destroy an existing good generation. The free
//! function [`recover`] implements the ladder: try the newest generation,
//! fall back one generation per corrupt or mismatched checkpoint, and
//! cold-start when every generation is exhausted — each rung recorded in
//! telemetry (`ckpt.load`, `ckpt.corrupt`, `ckpt.fallback`,
//! `ckpt.cold_start`).
//!
//! Anything that serializes itself through [`Checkpointable`] can ride the
//! ladder; [`Twig`](crate::Twig) implements it over the twig-rl versioned
//! codec, and [`SafetyGovernor`](crate::SafetyGovernor) arms periodic
//! writes around any checkpointable manager.

use crate::TwigError;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use twig_telemetry::Telemetry;

const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".bin";
const TMP_NAME: &str = "ckpt.tmp";

/// A manager whose full learner state can round-trip through bytes — the
/// durability contract used by [`CheckpointStore`] and [`recover`].
pub trait Checkpointable {
    /// Serializes the current learner state.
    ///
    /// # Errors
    ///
    /// Returns an error when the state cannot be serialized.
    fn checkpoint_bytes(&self) -> Result<Vec<u8>, TwigError>;

    /// Restores learner state from bytes produced by
    /// [`checkpoint_bytes`](Self::checkpoint_bytes).
    ///
    /// # Errors
    ///
    /// Returns an error when the bytes are corrupt or were produced by an
    /// incompatible configuration; the implementation must leave itself
    /// usable (at worst unchanged) in that case.
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), TwigError>;
}

/// Rotating on-disk checkpoint store with atomic writes.
///
/// Generations are files named `ckpt-NNNNNNNN.bin` under one directory,
/// with a monotonically increasing sequence number; only the newest `keep`
/// survive a write. Every write lands in a temp file first, is fsynced,
/// and is renamed into place, so readers only ever see complete payloads
/// under a final name (torn writes can still corrupt *content* — that is
/// what the codec CRC and the recovery ladder are for).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`, keeping the
    /// newest `keep` generations.
    ///
    /// # Errors
    ///
    /// Returns an error when `keep` is zero or the directory cannot be
    /// created.
    pub fn create(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        if keep == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint store must keep at least one generation",
            ));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // A crash between `File::create(tmp)` and the rename leaves an
        // orphan temp file behind. It was never a valid generation (readers
        // only trust `ckpt-*.bin` names), so reclaim it on open.
        let _ = fs::remove_file(dir.join(TMP_NAME));
        Ok(CheckpointStore { dir, keep })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many generations survive a write.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Atomically writes one checkpoint generation and prunes old ones.
    /// Returns the path of the new generation.
    ///
    /// # Errors
    ///
    /// Returns an error when the payload cannot be durably written.
    pub fn write(&self, payload: &[u8]) -> io::Result<PathBuf> {
        // Saturate instead of wrapping at the end of the sequence space:
        // after ~5.8e11 years of 1 Hz epochs the store overwrites the
        // `u64::MAX` generation in place (still atomically) rather than
        // wrapping to 0, which `sequences()` would sort as the *oldest*
        // generation and prune the real history.
        let seq = self
            .sequences()?
            .first()
            .map_or(0, |&s| s.saturating_add(1));
        let tmp = self.dir.join(TMP_NAME);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        let path = self.dir.join(format!("{CKPT_PREFIX}{seq:08}{CKPT_SUFFIX}"));
        fs::rename(&tmp, &path)?;
        // Fsync the directory so the rename itself is durable; best-effort
        // because not every platform lets a directory be opened for sync.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune()?;
        Ok(path)
    }

    /// Paths of all generations, newest first.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be listed.
    pub fn generations(&self) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .sequences()?
            .into_iter()
            .map(|s| self.dir.join(format!("{CKPT_PREFIX}{s:08}{CKPT_SUFFIX}")))
            .collect())
    }

    /// Reads one generation's payload.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    /// Sequence numbers present on disk, newest first.
    fn sequences(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(CKPT_PREFIX)
                .and_then(|s| s.strip_suffix(CKPT_SUFFIX))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(seqs)
    }

    fn prune(&self) -> io::Result<()> {
        for &seq in self.sequences()?.iter().skip(self.keep) {
            let _ = fs::remove_file(self.dir.join(format!("{CKPT_PREFIX}{seq:08}{CKPT_SUFFIX}")));
        }
        // Also sweep any orphan temp file a crashed writer left behind
        // (write() renames its temp away before pruning, so a live temp
        // file is never present here).
        let _ = fs::remove_file(self.dir.join(TMP_NAME));
        Ok(())
    }
}

/// How a [`recover`] run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// State was restored from generation `generation` (0 = newest).
    Restored {
        /// Ladder rung the restore succeeded on (0 = newest generation).
        generation: usize,
    },
    /// Every generation was missing, unreadable or corrupt: the manager
    /// keeps its freshly initialised (cold) state.
    ColdStart,
}

/// Outcome and accounting of one recovery-ladder run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// How the run ended.
    pub outcome: RecoveryOutcome,
    /// Generations tried and rejected before the outcome.
    pub ladder_depth: usize,
    /// Generations rejected as unreadable, corrupt or mismatched.
    pub corrupt_generations: usize,
}

impl RecoveryReport {
    /// Whether any generation was restored (false = cold start).
    pub fn recovered(&self) -> bool {
        matches!(self.outcome, RecoveryOutcome::Restored { .. })
    }
}

/// Runs the recovery ladder: restore `target` from the newest generation
/// in `store`, falling back one generation per corrupt or mismatched
/// checkpoint, cold-starting when all are exhausted. Each rung is recorded
/// in `telemetry` (`ckpt.load` on success, `ckpt.corrupt` + `ckpt.fallback`
/// per rejected generation, `ckpt.cold_start` when nothing loads).
pub fn recover<M: Checkpointable>(
    store: &CheckpointStore,
    target: &mut M,
    telemetry: &Telemetry,
) -> RecoveryReport {
    let generations = store.generations().unwrap_or_default();
    let mut corrupt = 0usize;
    for (depth, path) in generations.iter().enumerate() {
        let restored = store
            .read(path)
            .map_err(|e| TwigError::Io {
                detail: e.to_string(),
            })
            .and_then(|bytes| target.restore_checkpoint(&bytes));
        match restored {
            Ok(()) => {
                telemetry.counter_add("ckpt.load", 1);
                return RecoveryReport {
                    outcome: RecoveryOutcome::Restored { generation: depth },
                    ladder_depth: depth,
                    corrupt_generations: corrupt,
                };
            }
            Err(_) => {
                corrupt += 1;
                telemetry.counter_add("ckpt.corrupt", 1);
                telemetry.counter_add("ckpt.fallback", 1);
            }
        }
    }
    telemetry.counter_add("ckpt.cold_start", 1);
    RecoveryReport {
        outcome: RecoveryOutcome::ColdStart,
        ladder_depth: generations.len(),
        corrupt_generations: corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("twig-ckpt-store-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::create(&dir, keep).unwrap()
    }

    fn cleanup(store: &CheckpointStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Minimal checkpointable: a byte payload with a trivial validity rule
    /// (payload must start with 0xAB).
    struct Fake {
        state: Vec<u8>,
    }

    impl Checkpointable for Fake {
        fn checkpoint_bytes(&self) -> Result<Vec<u8>, TwigError> {
            Ok(self.state.clone())
        }

        fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), TwigError> {
            if bytes.first() != Some(&0xAB) {
                return Err(TwigError::InvalidConfig {
                    detail: "bad payload".into(),
                });
            }
            self.state = bytes.to_vec();
            Ok(())
        }
    }

    #[test]
    fn write_rotates_generations() {
        let store = temp_store("rotate", 2);
        for i in 0..5u8 {
            store.write(&[0xAB, i]).unwrap();
        }
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 2, "only `keep` generations survive");
        // Newest first: sequence 4 then 3.
        assert_eq!(store.read(&gens[0]).unwrap(), vec![0xAB, 4]);
        assert_eq!(store.read(&gens[1]).unwrap(), vec![0xAB, 3]);
        assert!(
            !store.dir().join(TMP_NAME).exists(),
            "no temp file left behind"
        );
        cleanup(&store);
    }

    #[test]
    fn zero_keep_rejected() {
        let dir = std::env::temp_dir().join("twig-ckpt-zero-keep");
        assert!(CheckpointStore::create(&dir, 0).is_err());
    }

    #[test]
    fn recover_prefers_newest_generation() {
        let store = temp_store("newest", 3);
        store.write(&[0xAB, 1]).unwrap();
        store.write(&[0xAB, 2]).unwrap();
        let telemetry = Telemetry::enabled();
        let mut target = Fake { state: vec![] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::Restored { generation: 0 });
        assert_eq!(report.ladder_depth, 0);
        assert_eq!(target.state, vec![0xAB, 2]);
        assert_eq!(telemetry.counter("ckpt.load"), 1);
        assert_eq!(telemetry.counter("ckpt.corrupt"), 0);
        cleanup(&store);
    }

    #[test]
    fn recover_falls_back_past_corrupt_generation() {
        let store = temp_store("fallback", 3);
        store.write(&[0xAB, 1]).unwrap();
        let newest = store.write(&[0xAB, 2]).unwrap();
        // Corrupt the newest generation on disk.
        fs::write(&newest, [0xFF, 0xFF]).unwrap();
        let telemetry = Telemetry::enabled();
        let mut target = Fake { state: vec![] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::Restored { generation: 1 });
        assert_eq!(report.ladder_depth, 1);
        assert_eq!(report.corrupt_generations, 1);
        assert_eq!(target.state, vec![0xAB, 1]);
        assert_eq!(telemetry.counter("ckpt.corrupt"), 1);
        assert_eq!(telemetry.counter("ckpt.fallback"), 1);
        assert_eq!(telemetry.counter("ckpt.load"), 1);
        cleanup(&store);
    }

    #[test]
    fn recover_cold_starts_when_everything_corrupt() {
        let store = temp_store("cold", 2);
        for gen in store.generations().unwrap() {
            let _ = fs::remove_file(gen);
        }
        store.write(&[0xAB, 1]).unwrap();
        store.write(&[0xAB, 2]).unwrap();
        for gen in store.generations().unwrap() {
            fs::write(&gen, [0x00]).unwrap();
        }
        let telemetry = Telemetry::enabled();
        let mut target = Fake { state: vec![9] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::ColdStart);
        assert!(!report.recovered());
        assert_eq!(report.ladder_depth, 2);
        assert_eq!(target.state, vec![9], "cold start leaves state untouched");
        assert_eq!(telemetry.counter("ckpt.cold_start"), 1);
        assert_eq!(telemetry.counter("ckpt.corrupt"), 2);
        cleanup(&store);
    }

    #[test]
    fn recover_empty_store_is_cold_start() {
        // A brand-new (empty) directory is a normal cold start, not an
        // error: zero generations, zero corruption, and the store is
        // immediately writable afterwards.
        let store = temp_store("empty", 2);
        assert!(store.generations().unwrap().is_empty());
        let telemetry = Telemetry::disabled();
        let mut target = Fake { state: vec![] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::ColdStart);
        assert_eq!(report.ladder_depth, 0);
        assert_eq!(report.corrupt_generations, 0);
        assert!(target.state.is_empty(), "cold start leaves state untouched");
        store.write(&[0xAB, 1]).unwrap();
        assert_eq!(store.generations().unwrap().len(), 1);
        cleanup(&store);
    }

    #[test]
    fn lone_orphan_tmp_is_ignored_and_reclaimed() {
        // A crash between temp-file creation and rename leaves `ckpt.tmp`
        // as the only entry. It must never be treated as a generation, and
        // both open and the next write's prune must sweep it.
        let store = temp_store("orphan", 2);
        fs::write(store.dir().join(TMP_NAME), [0xAB, 7]).unwrap();
        assert!(
            store.generations().unwrap().is_empty(),
            "orphan temp file is not a generation"
        );
        let telemetry = Telemetry::enabled();
        let mut target = Fake { state: vec![] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::ColdStart);
        assert_eq!(report.corrupt_generations, 0, "orphan never hit the ladder");
        // Re-opening the same directory reclaims the orphan...
        let reopened = CheckpointStore::create(store.dir(), 2).unwrap();
        assert!(!reopened.dir().join(TMP_NAME).exists());
        // ...and so does a write's prune pass if one reappears.
        fs::write(store.dir().join(TMP_NAME), [0xAB, 8]).unwrap();
        store.write(&[0xAB, 9]).unwrap();
        assert!(!store.dir().join(TMP_NAME).exists());
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 1);
        assert_eq!(store.read(&gens[0]).unwrap(), vec![0xAB, 9]);
        cleanup(&store);
    }

    #[test]
    fn sequence_counter_saturates_at_the_end_of_time() {
        // Plant a generation at u64::MAX: the next write must saturate and
        // overwrite that newest generation rather than wrap to 0 (which
        // would sort as the oldest and get pruned immediately).
        let store = temp_store("wrap", 2);
        let max_name = format!("{CKPT_PREFIX}{:08}{CKPT_SUFFIX}", u64::MAX);
        fs::write(store.dir().join(&max_name), [0xAB, 1]).unwrap();
        store.write(&[0xAB, 2]).unwrap();
        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 1, "saturated write lands on the same name");
        assert_eq!(gens[0], store.dir().join(&max_name));
        assert_eq!(
            store.read(&gens[0]).unwrap(),
            vec![0xAB, 2],
            "newest payload wins"
        );
        // Recovery still restores the newest payload afterwards.
        let telemetry = Telemetry::disabled();
        let mut target = Fake { state: vec![] };
        let report = recover(&store, &mut target, &telemetry);
        assert_eq!(report.outcome, RecoveryOutcome::Restored { generation: 0 });
        assert_eq!(target.state, vec![0xAB, 2]);
        cleanup(&store);
    }
}
