//! Cluster-level service placement: who runs which replica where.
//!
//! A Twig-D deployment shards each latency-critical service across a
//! fleet of heterogeneous servers. This module holds the *control-plane
//! vocabulary* for that sharding, independent of any particular cluster
//! runtime:
//!
//! - [`NodeId`] — a stable server identity;
//! - [`ServicePlacement`] — the generation-numbered routing truth: which
//!   nodes host a replica of each service. Every mutation bumps the
//!   generation, so a node can tell whether the placement it actuates
//!   from is current or stale;
//! - [`ClusterView`] / [`NodeView`] — the coordinator's belief about the
//!   fleet (liveness, capacity, hosted replicas) at planning time;
//! - [`PlacementPolicy`] — the pluggable planner interface, mirroring
//!   how [`TaskManager`](crate::TaskManager) abstracts the per-server
//!   agent; [`ReplicatedPlacement`] is the default implementation that
//!   maintains a fixed replication factor and repairs it after node
//!   death.
//!
//! The planner is deliberately pure: it reads a view and proposes
//! [`PlacementAction`]s; the cluster runtime (in `twig-cluster`) owns
//! execution — spin-up costs, state transfer, retries — and reports the
//! outcome back through the next view.

use crate::TwigError;
use std::fmt;

/// Stable identity of one server in the cluster.
///
/// # Examples
///
/// ```
/// use twig_core::NodeId;
///
/// let n = NodeId(2);
/// assert_eq!(n.to_string(), "node2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Generation-numbered mapping from services to the nodes hosting their
/// replicas.
///
/// The generation is the cluster's staleness fence: the coordinator bumps
/// it on every mutation and nodes record the generation they last synced.
/// A node actuating with an older generation after the coordinator has
/// moved on is, by definition, acting on a stale placement.
///
/// # Examples
///
/// ```
/// use twig_core::{NodeId, ServicePlacement};
///
/// let mut p = ServicePlacement::new(2);
/// p.add_replica(0, NodeId(0)).unwrap();
/// p.add_replica(0, NodeId(1)).unwrap();
/// assert_eq!(p.replicas(0), &[NodeId(0), NodeId(1)]);
/// assert_eq!(p.generation(), 2);
/// p.remove_replica(0, NodeId(0)).unwrap();
/// assert_eq!(p.replicas(0), &[NodeId(1)]);
/// assert_eq!(p.generation(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServicePlacement {
    generation: u64,
    replicas: Vec<Vec<NodeId>>,
}

impl ServicePlacement {
    /// Empty placement for `services` services at generation 0.
    pub fn new(services: usize) -> Self {
        ServicePlacement {
            generation: 0,
            replicas: vec![Vec::new(); services],
        }
    }

    /// Monotonic mutation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of services tracked.
    pub fn services(&self) -> usize {
        self.replicas.len()
    }

    /// Nodes hosting a replica of `service`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `service` is out of range.
    pub fn replicas(&self, service: usize) -> &[NodeId] {
        &self.replicas[service]
    }

    /// `true` when `node` hosts a replica of `service`.
    pub fn hosts(&self, service: usize, node: NodeId) -> bool {
        self.replicas
            .get(service)
            .is_some_and(|r| r.contains(&node))
    }

    /// Records a new replica of `service` on `node`, bumping the
    /// generation.
    ///
    /// # Errors
    ///
    /// [`TwigError::InvalidConfig`] when `service` is out of range or the
    /// node already hosts the service.
    pub fn add_replica(&mut self, service: usize, node: NodeId) -> Result<(), TwigError> {
        let slot = self
            .replicas
            .get_mut(service)
            .ok_or_else(|| TwigError::InvalidConfig {
                detail: format!("service {service} out of range"),
            })?;
        if slot.contains(&node) {
            return Err(TwigError::InvalidConfig {
                detail: format!("{node} already hosts service {service}"),
            });
        }
        slot.push(node);
        self.generation += 1;
        Ok(())
    }

    /// Removes the replica of `service` on `node`, bumping the
    /// generation.
    ///
    /// # Errors
    ///
    /// [`TwigError::InvalidConfig`] when `service` is out of range or the
    /// node does not host it.
    pub fn remove_replica(&mut self, service: usize, node: NodeId) -> Result<(), TwigError> {
        let slot = self
            .replicas
            .get_mut(service)
            .ok_or_else(|| TwigError::InvalidConfig {
                detail: format!("service {service} out of range"),
            })?;
        let at = slot
            .iter()
            .position(|&n| n == node)
            .ok_or_else(|| TwigError::InvalidConfig {
                detail: format!("{node} does not host service {service}"),
            })?;
        slot.remove(at);
        self.generation += 1;
        Ok(())
    }

    /// Drops every replica placed on `node` (a declared-dead server),
    /// returning the services that lost one. Bumps the generation once
    /// if anything changed.
    pub fn evict_node(&mut self, node: NodeId) -> Vec<usize> {
        let mut lost = Vec::new();
        for (service, slot) in self.replicas.iter_mut().enumerate() {
            if let Some(at) = slot.iter().position(|&n| n == node) {
                slot.remove(at);
                lost.push(service);
            }
        }
        if !lost.is_empty() {
            self.generation += 1;
        }
        lost
    }
}

/// The coordinator's belief about one server at planning time.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Which server this describes.
    pub id: NodeId,
    /// `true` when the coordinator currently believes the server is up
    /// (heartbeats within the suspicion threshold).
    pub alive: bool,
    /// Physical cores on the server.
    pub cores: usize,
    /// Highest DVFS frequency in MHz — with `cores`, the capacity proxy.
    pub max_freq_mhz: u32,
    /// Replicas the placement currently assigns to this server.
    pub hosted_replicas: usize,
}

impl NodeView {
    /// Capacity proxy used for placement tie-breaking: `cores × max GHz`.
    pub fn capacity(&self) -> f64 {
        self.cores as f64 * f64::from(self.max_freq_mhz) / 1000.0
    }
}

/// Everything a [`PlacementPolicy`] may read when planning.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    /// Per-server beliefs, in [`NodeId`] order.
    pub nodes: Vec<NodeView>,
}

impl ClusterView {
    /// Nodes currently believed alive, in id order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = &NodeView> {
        self.nodes.iter().filter(|n| n.alive)
    }
}

/// One step a placement planner asks the cluster runtime to execute.
///
/// Planning is separated from execution: spin-up cost, state transfer
/// and its failure modes (corruption, stalls, retries) live in the
/// runtime, which reflects progress back into the next [`ClusterView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementAction {
    /// Start a replica of `service` on `to`, seeding its agent from a
    /// checkpoint of the replica on `from` when a live donor exists
    /// (`None` means a cold start).
    SpinUp {
        /// Service to replicate.
        service: usize,
        /// Target server.
        to: NodeId,
        /// Live donor replica to transfer agent state from, if any.
        from: Option<NodeId>,
    },
    /// Remove the replica of `service` on `node` from the placement
    /// (typically because the server was declared dead).
    Decommission {
        /// Service losing a replica.
        service: usize,
        /// Server the replica was placed on.
        node: NodeId,
    },
}

/// A cluster-level placement planner, the control-plane analogue of
/// [`TaskManager`](crate::TaskManager).
pub trait PlacementPolicy {
    /// Short human-readable name for reports.
    fn name(&self) -> &str;

    /// Proposes repairs given the current belief and placement. Must be
    /// deterministic in its inputs: the cluster chaos suites rely on
    /// bit-identical planning across runs.
    fn plan(&mut self, view: &ClusterView, placement: &ServicePlacement) -> Vec<PlacementAction>;
}

/// Default planner: keep every service at a fixed replication factor on
/// live nodes, repairing after node death.
///
/// Deterministic rules, applied per service in index order:
///
/// 1. replicas placed on dead nodes are decommissioned;
/// 2. while live replicas are below `min(factor, live nodes)`, spin up
///    on the live node with the fewest hosted replicas that does not
///    already host the service — ties broken by larger capacity, then
///    smaller id — with the first surviving live replica as donor.
///
/// # Examples
///
/// ```
/// use twig_core::{
///     ClusterView, NodeId, NodeView, PlacementAction, PlacementPolicy, ReplicatedPlacement,
///     ServicePlacement,
/// };
///
/// let mut policy = ReplicatedPlacement::new(2);
/// let view = ClusterView {
///     nodes: (0..3)
///         .map(|i| NodeView {
///             id: NodeId(i),
///             alive: true,
///             cores: 18,
///             max_freq_mhz: 2201,
///             hosted_replicas: 0,
///         })
///         .collect(),
/// };
/// let placement = ServicePlacement::new(1);
/// let actions = policy.plan(&view, &placement);
/// // Fresh cluster: two cold spin-ups to reach the factor.
/// assert_eq!(actions.len(), 2);
/// assert!(matches!(actions[0], PlacementAction::SpinUp { from: None, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedPlacement {
    factor: usize,
}

impl ReplicatedPlacement {
    /// Planner maintaining `factor` replicas per service (minimum 1).
    pub fn new(factor: usize) -> Self {
        ReplicatedPlacement {
            factor: factor.max(1),
        }
    }

    /// Configured replication factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl PlacementPolicy for ReplicatedPlacement {
    fn name(&self) -> &str {
        "replicated"
    }

    fn plan(&mut self, view: &ClusterView, placement: &ServicePlacement) -> Vec<PlacementAction> {
        let mut actions = Vec::new();
        // Working copy of per-node replica counts so spin-ups planned for
        // one service are visible when placing the next.
        let mut hosted: Vec<usize> = view.nodes.iter().map(|n| n.hosted_replicas).collect();
        let alive = |id: NodeId| view.nodes.get(id.0).is_some_and(|n| n.alive);
        let live_count = view.nodes.iter().filter(|n| n.alive).count();

        for service in 0..placement.services() {
            let mut live: Vec<NodeId> = Vec::new();
            let mut planned_on: Vec<NodeId> = Vec::new();
            for &node in placement.replicas(service) {
                if alive(node) {
                    live.push(node);
                } else {
                    actions.push(PlacementAction::Decommission { service, node });
                    hosted[node.0] = hosted[node.0].saturating_sub(1);
                }
                planned_on.push(node);
            }

            let want = self.factor.min(live_count);
            let mut effective = live.len();
            while effective < want {
                let target = view
                    .nodes
                    .iter()
                    .filter(|n| n.alive && !planned_on.contains(&n.id))
                    .min_by(|a, b| {
                        hosted[a.id.0]
                            .cmp(&hosted[b.id.0])
                            .then(b.capacity().total_cmp(&a.capacity()))
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|n| n.id);
                let Some(to) = target else { break };
                actions.push(PlacementAction::SpinUp {
                    service,
                    to,
                    from: live.first().copied(),
                });
                planned_on.push(to);
                hosted[to.0] += 1;
                effective += 1;
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(alive: &[bool], hosted: &[usize]) -> ClusterView {
        ClusterView {
            nodes: alive
                .iter()
                .zip(hosted)
                .enumerate()
                .map(|(i, (&alive, &hosted_replicas))| NodeView {
                    id: NodeId(i),
                    alive,
                    cores: if i % 2 == 0 { 18 } else { 12 },
                    max_freq_mhz: 2201,
                    hosted_replicas,
                })
                .collect(),
        }
    }

    #[test]
    fn placement_mutations_bump_generation() {
        let mut p = ServicePlacement::new(2);
        assert_eq!(p.generation(), 0);
        p.add_replica(0, NodeId(0)).unwrap();
        p.add_replica(1, NodeId(0)).unwrap();
        assert_eq!(p.generation(), 2);
        assert!(p.hosts(0, NodeId(0)));
        assert!(!p.hosts(0, NodeId(1)));
        p.remove_replica(0, NodeId(0)).unwrap();
        assert_eq!(p.generation(), 3);
        // Errors leave the generation alone.
        assert!(p.add_replica(9, NodeId(0)).is_err());
        assert!(p.remove_replica(0, NodeId(5)).is_err());
        assert!(p.add_replica(1, NodeId(0)).is_err()); // duplicate
        assert_eq!(p.generation(), 3);
    }

    #[test]
    fn evict_node_drops_all_replicas_once() {
        let mut p = ServicePlacement::new(3);
        p.add_replica(0, NodeId(1)).unwrap();
        p.add_replica(2, NodeId(1)).unwrap();
        p.add_replica(2, NodeId(0)).unwrap();
        let g = p.generation();
        assert_eq!(p.evict_node(NodeId(1)), vec![0, 2]);
        assert_eq!(p.generation(), g + 1);
        assert_eq!(p.evict_node(NodeId(1)), Vec::<usize>::new());
        assert_eq!(p.generation(), g + 1);
        assert_eq!(p.replicas(2), &[NodeId(0)]);
    }

    #[test]
    fn fresh_cluster_spins_up_to_factor() {
        let mut policy = ReplicatedPlacement::new(2);
        let v = view(&[true, true, true], &[0, 0, 0]);
        let p = ServicePlacement::new(2);
        let actions = policy.plan(&v, &p);
        assert_eq!(actions.len(), 4);
        // Cold starts, spread across nodes: capacity tie-break favors
        // node0 (18 cores), then the per-call hosted tracking pushes the
        // second replica elsewhere.
        let spun: Vec<_> = actions
            .iter()
            .map(|a| match a {
                PlacementAction::SpinUp { service, to, from } => {
                    assert!(from.is_none());
                    (*service, *to)
                }
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            spun,
            vec![
                (0, NodeId(0)),
                (0, NodeId(2)),
                (1, NodeId(1)),
                (1, NodeId(0)),
            ]
        );
    }

    #[test]
    fn dead_node_is_decommissioned_and_replaced_with_donor() {
        let mut policy = ReplicatedPlacement::new(2);
        let mut p = ServicePlacement::new(1);
        p.add_replica(0, NodeId(0)).unwrap();
        p.add_replica(0, NodeId(1)).unwrap();
        let v = view(&[true, false, true], &[1, 1, 0]);
        let actions = policy.plan(&v, &p);
        assert_eq!(
            actions,
            vec![
                PlacementAction::Decommission {
                    service: 0,
                    node: NodeId(1),
                },
                PlacementAction::SpinUp {
                    service: 0,
                    to: NodeId(2),
                    from: Some(NodeId(0)),
                },
            ]
        );
    }

    #[test]
    fn factor_clamped_to_live_nodes() {
        let mut policy = ReplicatedPlacement::new(3);
        let v = view(&[true, false, false], &[0, 0, 0]);
        let p = ServicePlacement::new(1);
        let actions = policy.plan(&v, &p);
        // Only one live node: exactly one spin-up, no infinite loop.
        assert_eq!(
            actions,
            vec![PlacementAction::SpinUp {
                service: 0,
                to: NodeId(0),
                from: None,
            }]
        );
    }

    #[test]
    fn satisfied_placement_plans_nothing() {
        let mut policy = ReplicatedPlacement::new(2);
        let mut p = ServicePlacement::new(1);
        p.add_replica(0, NodeId(0)).unwrap();
        p.add_replica(0, NodeId(2)).unwrap();
        let v = view(&[true, true, true], &[1, 0, 1]);
        assert!(policy.plan(&v, &p).is_empty());
    }

    #[test]
    fn planning_is_deterministic() {
        let v = view(&[true, true, false], &[2, 1, 0]);
        let mut p = ServicePlacement::new(3);
        p.add_replica(0, NodeId(2)).unwrap();
        p.add_replica(1, NodeId(0)).unwrap();
        let a1 = ReplicatedPlacement::new(2).plan(&v, &p);
        let a2 = ReplicatedPlacement::new(2).plan(&v, &p);
        assert_eq!(a1, a2);
    }
}
