use crate::TwigError;
use twig_stats::rng::Xoshiro256;
use twig_stats::{random_grid_search, LinearModel};

/// The first-order per-service power model of Eq. 2:
///
/// ```text
/// Power_app = κ · load + σ · num_cores + ω² · DVFS
/// ```
///
/// Current hardware only reports power per socket (RAPL), so each agent
/// needs an *estimate* of the power its own requests cost; the paper fits
/// this model offline from profiling runs and uses it **only inside the
/// reward function** — evaluation always reports true measured power.
///
/// # Examples
///
/// ```
/// use twig_core::Eq2PowerModel;
///
/// let m = Eq2PowerModel::default();
/// let small = m.estimate(0.2, 2, 0);
/// let large = m.estimate(0.8, 16, 8);
/// assert!(large > small);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq2PowerModel {
    /// Load coefficient κ (watts per unit load fraction).
    pub kappa: f64,
    /// Core coefficient σ (watts per allocated core).
    pub sigma: f64,
    /// DVFS coefficient ω² (watts per ladder index).
    pub omega_sq: f64,
    /// Constant offset (the per-service share of uncore power; the paper's
    /// dynamic-power framing folds this into the measurement).
    pub offset: f64,
}

impl Default for Eq2PowerModel {
    /// Coefficients from fitting Eq. 2 against the default simulator
    /// platform (see `fig04_power_paae` in `twig-bench` for the fit).
    fn default() -> Self {
        Eq2PowerModel {
            kappa: 17.0,
            sigma: 2.0,
            omega_sq: 1.1,
            offset: 1.0,
        }
    }
}

impl Eq2PowerModel {
    /// Estimated power (watts) for a service at `load` (fraction of its
    /// max), `cores` allocated cores and DVFS ladder index `dvfs`.
    pub fn estimate(&self, load: f64, cores: usize, dvfs: usize) -> f64 {
        (self.offset
            + self.kappa * load.clamp(0.0, 1.0)
            + self.sigma * cores as f64
            + self.omega_sq * dvfs as f64)
            .max(0.0)
    }
}

/// One profiling observation used to fit Eq. 2: the paper profiles services
/// "at three load levels (20 %, 50 % and 80 % of the maximum load)",
/// alternate core counts and alternate DVFS states, measuring dynamic power
/// every second with the unused cores hot-unplugged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// Load as a fraction of the service's maximum.
    pub load: f64,
    /// Allocated cores.
    pub cores: usize,
    /// DVFS ladder index.
    pub dvfs: usize,
    /// Measured dynamic power in watts (socket minus idle).
    pub dynamic_power_w: f64,
}

/// A fitted Eq. 2 model with its training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModelFit {
    /// The fitted coefficients.
    pub model: Eq2PowerModel,
    /// Training mean squared error (the paper reports 2.91 mW on its
    /// platform; absolute scale differs on the simulator).
    pub mse: f64,
    /// Coefficient of determination (paper: R² = 0.92).
    pub r_squared: f64,
}

/// Fits Eq. 2 by random grid search with 5-fold cross-validation over the
/// ridge penalty (Section IV, "random grid search with 5-fold cross
/// validation across the possible parameter space"), then refits the best
/// candidate on all data.
///
/// # Errors
///
/// Returns [`TwigError::InvalidConfig`] for fewer than 10 points and
/// propagates statistics errors.
///
/// # Examples
///
/// ```
/// use twig_core::{fit_power_model, ProfilePoint};
///
/// let points: Vec<ProfilePoint> = (0..60)
///     .map(|i| {
///         let load = 0.2 + 0.1 * (i % 7) as f64;
///         let cores = 1 + i % 16;
///         let dvfs = i % 9;
///         ProfilePoint {
///             load,
///             cores,
///             dvfs,
///             dynamic_power_w: 12.0 * load + 2.0 * cores as f64 + 0.8 * dvfs as f64,
///         }
///     })
///     .collect();
/// let fit = fit_power_model(&points, 99).unwrap();
/// assert!(fit.r_squared > 0.99);
/// ```
pub fn fit_power_model(points: &[ProfilePoint], seed: u64) -> Result<PowerModelFit, TwigError> {
    if points.len() < 10 {
        return Err(TwigError::InvalidConfig {
            detail: format!("{} profiling points (need at least 10)", points.len()),
        });
    }
    let xs: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![p.load, p.cores as f64, p.dvfs as f64])
        .collect();
    let ys: Vec<f64> = points.iter().map(|p| p.dynamic_power_w).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let grid = random_grid_search(&xs, &ys, &[1], (1e-8, 1e-1), 20, 5, &mut rng)
        .map_err(TwigError::Stats)?;
    let best = grid[0];
    let fit = LinearModel::fit(&xs, &ys, best.degree, best.lambda).map_err(TwigError::Stats)?;
    let w = fit.model.weights();
    Ok(PowerModelFit {
        model: Eq2PowerModel {
            offset: w[0],
            kappa: w[1],
            sigma: w[2],
            omega_sq: w[3],
        },
        mse: fit.mse,
        r_squared: fit.r_squared,
    })
}

/// Percentage absolute average error of a fitted model on held-out points —
/// the Figure 4 metric (paper: mean 5.46 %, max 7 % across services).
///
/// Points whose measured power is zero are skipped.
///
/// # Examples
///
/// ```
/// use twig_core::{paae, Eq2PowerModel, ProfilePoint};
///
/// let m = Eq2PowerModel { kappa: 10.0, sigma: 2.0, omega_sq: 1.0, offset: 0.0 };
/// let exact = ProfilePoint { load: 0.5, cores: 4, dvfs: 2, dynamic_power_w: 15.0 };
/// assert_eq!(paae(&m, &[exact]), 0.0);
/// ```
pub fn paae(model: &Eq2PowerModel, points: &[ProfilePoint]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for p in points {
        if p.dynamic_power_w <= 0.0 {
            continue;
        }
        let est = model.estimate(p.load, p.cores, p.dvfs);
        total += ((est - p.dynamic_power_w) / p.dynamic_power_w).abs() * 100.0;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_points(noise: f64) -> Vec<ProfilePoint> {
        let mut points = Vec::new();
        for (i, load) in [0.2, 0.5, 0.8].iter().enumerate() {
            for cores in (2..=18).step_by(2) {
                for dvfs in (0..9).step_by(2) {
                    let wiggle = ((i + cores + dvfs) % 5) as f64 - 2.0;
                    points.push(ProfilePoint {
                        load: *load,
                        cores,
                        dvfs,
                        dynamic_power_w: 3.0
                            + 15.0 * load
                            + 2.2 * cores as f64
                            + 0.7 * dvfs as f64
                            + noise * wiggle,
                    });
                }
            }
        }
        points
    }

    #[test]
    fn recovers_generating_coefficients() {
        let fit = fit_power_model(&synthetic_points(0.0), 1).unwrap();
        assert!(
            (fit.model.kappa - 15.0).abs() < 0.1,
            "kappa {}",
            fit.model.kappa
        );
        assert!((fit.model.sigma - 2.2).abs() < 0.05);
        assert!((fit.model.omega_sq - 0.7).abs() < 0.05);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn noisy_fit_matches_paper_quality() {
        let fit = fit_power_model(&synthetic_points(0.5), 2).unwrap();
        // R^2 comparable to the paper's 0.92 and single-digit PAAE.
        assert!(fit.r_squared > 0.9, "r2 {}", fit.r_squared);
        let err = paae(&fit.model, &synthetic_points(0.5));
        assert!(err < 8.0, "paae {err}%");
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_power_model(&synthetic_points(0.0)[..5], 0).is_err());
    }

    #[test]
    fn estimate_monotone_in_each_input() {
        let m = Eq2PowerModel::default();
        assert!(m.estimate(0.8, 4, 2) > m.estimate(0.2, 4, 2));
        assert!(m.estimate(0.5, 8, 2) > m.estimate(0.5, 4, 2));
        assert!(m.estimate(0.5, 4, 6) > m.estimate(0.5, 4, 2));
    }

    #[test]
    fn estimate_never_negative() {
        let m = Eq2PowerModel {
            kappa: -100.0,
            sigma: 0.0,
            omega_sq: 0.0,
            offset: 0.0,
        };
        assert_eq!(m.estimate(1.0, 0, 0), 0.0);
    }

    #[test]
    fn paae_skips_zero_measurements() {
        let m = Eq2PowerModel::default();
        let zero = ProfilePoint {
            load: 0.0,
            cores: 0,
            dvfs: 0,
            dynamic_power_w: 0.0,
        };
        assert_eq!(paae(&m, &[zero]), 0.0);
    }
}
