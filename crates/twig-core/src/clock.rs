//! Time sources for the deadline-aware epoch scheduler.
//!
//! The [`EpochScheduler`](crate::EpochScheduler) never reads wall time
//! directly: it is generic over a [`VirtualClock`], so production code runs
//! on a monotonic [`WallClock`] while the simulator and tests inject a
//! [`SimClock`] advanced by hand (or by a seeded
//! `twig_sim::TimingFaultPlan`). That keeps every scheduling decision — and
//! therefore every experiment report — a deterministic function of the
//! seed, with zero external dependencies.

use std::cell::Cell;
use std::rc::Rc;

/// A source of milliseconds since some fixed origin.
///
/// Implementations need not be monotone — the scheduler clamps backward
/// jumps itself, so a skewed or stuck clock degrades scheduling quality but
/// can never panic it or run it backwards.
pub trait VirtualClock {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> f64;
}

/// Real monotonic time from [`std::time::Instant`], origin at construction.
///
/// # Examples
///
/// ```
/// use twig_core::{VirtualClock, WallClock};
/// let clock = WallClock::new();
/// assert!(clock.now_ms() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock for WallClock {
    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }
}

/// Deterministic simulated time, advanced explicitly by the driver.
///
/// Clones share the same underlying cell, so a driver can keep one handle
/// and hand another to the scheduler:
///
/// ```
/// use twig_core::{SimClock, VirtualClock};
/// let driver = SimClock::new();
/// let scheduler_view = driver.clone();
/// driver.advance(12.5);
/// assert_eq!(scheduler_view.now_ms(), 12.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<f64>>,
}

impl SimClock {
    /// A simulated clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta_ms`. Negative or non-finite deltas are
    /// ignored (a fault plan models skew via [`set`](Self::set) instead).
    pub fn advance(&self, delta_ms: f64) {
        if delta_ms.is_finite() && delta_ms > 0.0 {
            self.now.set(self.now.get() + delta_ms);
        }
    }

    /// Sets the clock to an absolute reading — including *backwards*, which
    /// is exactly how clock-skew faults are injected.
    pub fn set(&self, now_ms: f64) {
        self.now.set(now_ms);
    }
}

impl VirtualClock for SimClock {
    fn now_ms(&self) -> f64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(3.0);
        b.advance(2.0);
        assert_eq!(a.now_ms(), 5.0);
        assert_eq!(b.now_ms(), 5.0);
        a.set(1.0);
        assert_eq!(b.now_ms(), 1.0);
    }

    #[test]
    fn sim_clock_ignores_bogus_advances() {
        let c = SimClock::new();
        c.advance(-5.0);
        c.advance(f64::NAN);
        c.advance(f64::INFINITY);
        assert_eq!(c.now_ms(), 0.0);
    }
}
