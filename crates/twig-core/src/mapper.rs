use crate::TwigError;
use twig_sim::{Assignment, CoreId, Frequency};

/// The Twig mapper module (Section III-B3): turns per-service
/// `(core count, DVFS)` requests into concrete core assignments.
///
/// - **Cache locality**: each service draws from its own region of the
///   socket, preferring every other core first (the paper's example: on 16
///   cores, sv-1 gets 0, 2, 4 and sv-2 gets 10, 12, 14, 16), so colocated
///   services share as little of the cache hierarchy as possible.
/// - **Arbitration** (Section IV): when requests exceed the socket, the
///   spill-over cores are taken from other services' regions — those cores
///   end up claimed by two services and are time-shared by the platform at
///   the highest requested DVFS state.
/// - Unused cores are left unassigned; the platform parks them at the
///   lowest DVFS state to conserve power.
///
/// # Examples
///
/// ```
/// use twig_core::Mapper;
/// use twig_sim::Frequency;
///
/// let mapper = Mapper::new(16).unwrap();
/// let f = Frequency::from_mhz(1600);
/// let a = mapper.assign(&[(3, f), (4, f)]).unwrap();
/// assert_eq!(a[0].cores.iter().map(|c| c.index()).collect::<Vec<_>>(), vec![0, 2, 4]);
/// assert_eq!(a[1].cores.iter().map(|c| c.index()).collect::<Vec<_>>(), vec![8, 10, 12, 14]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapper {
    total_cores: usize,
}

impl Mapper {
    /// Creates a mapper for a socket with `total_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] when `total_cores == 0`.
    pub fn new(total_cores: usize) -> Result<Self, TwigError> {
        if total_cores == 0 {
            return Err(TwigError::InvalidConfig {
                detail: "zero cores".into(),
            });
        }
        Ok(Mapper { total_cores })
    }

    /// The socket size.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Maps each service's `(cores, freq)` request to concrete cores.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] when a single request exceeds
    /// the socket or requests no cores.
    pub fn assign(&self, requests: &[(usize, Frequency)]) -> Result<Vec<Assignment>, TwigError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for &(n, _) in requests {
            if n == 0 || n > self.total_cores {
                return Err(TwigError::InvalidConfig {
                    detail: format!(
                        "request for {n} cores on a {}-core socket",
                        self.total_cores
                    ),
                });
            }
        }
        let k = requests.len();
        let region = self.total_cores / k.max(1);
        let mut assignments = Vec::with_capacity(k);
        for (svc, &(n, freq)) in requests.iter().enumerate() {
            let start = svc * region;
            let order = self.preference_order(start);
            let cores: Vec<CoreId> = order.into_iter().take(n).map(CoreId).collect();
            assignments.push(Assignment::new(cores, freq));
        }
        Ok(assignments)
    }

    /// The core preference order for a service whose region begins at
    /// `start`: even-stride cores from the region onward (wrapping), then
    /// the odd-stride remainder.
    fn preference_order(&self, start: usize) -> Vec<usize> {
        let n = self.total_cores;
        let mut order = Vec::with_capacity(n);
        for offset in [0usize, 1] {
            let mut i = offset;
            while i < n {
                order.push((start + i) % n);
                i += 2;
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use twig_stats::rng::{Rng, Xoshiro256};

    fn f() -> Frequency {
        Frequency::from_mhz(1600)
    }

    #[test]
    fn paper_example_locality() {
        // Section III-B3: two services on 16 cores requesting 3 and 4 cores
        // get stride-2 allocations out of disjoint regions.
        let mapper = Mapper::new(16).unwrap();
        let a = mapper.assign(&[(3, f()), (4, f())]).unwrap();
        let c0: Vec<usize> = a[0].cores.iter().map(|c| c.index()).collect();
        let c1: Vec<usize> = a[1].cores.iter().map(|c| c.index()).collect();
        assert_eq!(c0, vec![0, 2, 4]);
        assert_eq!(c1, vec![8, 10, 12, 14]);
    }

    #[test]
    fn disjoint_when_capacity_suffices() {
        let mapper = Mapper::new(18).unwrap();
        let a = mapper.assign(&[(8, f()), (9, f())]).unwrap();
        let s0: BTreeSet<_> = a[0].cores.iter().collect();
        let s1: BTreeSet<_> = a[1].cores.iter().collect();
        assert!(s0.is_disjoint(&s1), "{s0:?} overlaps {s1:?}");
    }

    #[test]
    fn overflow_creates_time_shared_overlap() {
        let mapper = Mapper::new(10).unwrap();
        // Section IV example: sv-1 wants 8, sv-2 wants 5 on 10 cores.
        let a = mapper
            .assign(&[(8, f()), (5, Frequency::from_mhz(2000))])
            .unwrap();
        let s0: BTreeSet<_> = a[0].cores.iter().collect();
        let s1: BTreeSet<_> = a[1].cores.iter().collect();
        let overlap = s0.intersection(&s1).count();
        assert_eq!(overlap, 3, "13 requested on 10 cores -> 3 shared");
    }

    #[test]
    fn rejects_invalid_requests() {
        let mapper = Mapper::new(8).unwrap();
        assert!(mapper.assign(&[(0, f())]).is_err());
        assert!(mapper.assign(&[(9, f())]).is_err());
        assert!(Mapper::new(0).is_err());
    }

    #[test]
    fn empty_request_list_is_empty() {
        let mapper = Mapper::new(8).unwrap();
        assert!(mapper.assign(&[]).unwrap().is_empty());
    }

    #[test]
    fn single_service_prefers_even_cores() {
        let mapper = Mapper::new(8).unwrap();
        let a = mapper.assign(&[(5, f())]).unwrap();
        let cores: Vec<usize> = a[0].cores.iter().map(|c| c.index()).collect();
        assert_eq!(cores, vec![0, 2, 4, 6, 1]);
    }

    #[test]
    fn assignment_counts_match_requests() {
        let mut rng = Xoshiro256::seed_from_u64(0xa551);
        let mapper = Mapper::new(18).unwrap();
        for _ in 0..200 {
            let n1 = rng.range_usize_inclusive(1, 18);
            let n2 = rng.range_usize_inclusive(1, 18);
            let n3 = rng.range_usize_inclusive(1, 18);
            let a = mapper.assign(&[(n1, f()), (n2, f()), (n3, f())]).unwrap();
            assert_eq!(a[0].core_count(), n1);
            assert_eq!(a[1].core_count(), n2);
            assert_eq!(a[2].core_count(), n3);
            // No service holds duplicate cores.
            for assignment in &a {
                let set: BTreeSet<_> = assignment.cores.iter().collect();
                assert_eq!(set.len(), assignment.core_count());
            }
        }
    }

    #[test]
    fn all_cores_valid() {
        let mapper = Mapper::new(10).unwrap();
        for n1 in 1usize..=10 {
            for n2 in 1usize..=10 {
                let a = mapper.assign(&[(n1, f()), (n2, f())]).unwrap();
                for assignment in &a {
                    for c in &assignment.cores {
                        assert!(c.index() < 10);
                    }
                }
            }
        }
    }
}
