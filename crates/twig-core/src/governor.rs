//! A graceful-degradation safety net around any [`TaskManager`].
//!
//! Learning-based managers fail in ways heuristic ones do not: a transient
//! learning error, a decision outside platform limits, or an epoch of
//! garbage telemetry can cascade into sustained QoS violations. The
//! [`SafetyGovernor`] wraps an inner manager and enforces four invariants:
//!
//! 1. **Decision validation** — every `decide()` output is checked against
//!    the platform limits (service count, ≥ 1 in-range core each, a ladder
//!    frequency); invalid output is replaced, never applied.
//! 2. **Last-known-good fallback** — recoverable errors and invalid
//!    decisions fall back to the most recent validated assignment (or the
//!    safe static allocation before one exists).
//! 3. **Watchdog** — after `watchdog_epochs` *consecutive* QoS-violation
//!    epochs the governor trips into the safe static allocation (every
//!    service on every core at max DVFS — the paper's static baseline,
//!    which meets QoS whenever QoS is meetable at all) and holds it for an
//!    exponentially backed-off re-entry window before giving the inner
//!    manager control again.
//! 4. **Replay hygiene** — epochs whose telemetry is flagged corrupted are
//!    routed to [`TaskManager::observe_degraded`], so a learning manager
//!    never trains on garbage observations.
//!
//! A [`Checkpointable`] inner manager can additionally be armed with
//! periodic crash-safe persistence ([`SafetyGovernor::arm_checkpointing`])
//! and restored through the recovery ladder
//! ([`SafetyGovernor::recover_from_store`]); a checkpoint write failure is
//! counted, never allowed to take down a healthy control loop.

use crate::{
    recover, CheckpointStore, Checkpointable, ManagerError, RecoveryReport, TaskManager, TwigError,
};
use twig_sim::{Assignment, DvfsLadder, EpochReport, ServiceSpec};
use twig_telemetry::Telemetry;

/// Configuration of a [`SafetyGovernor`].
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// The managed services (QoS targets drive the watchdog).
    pub services: Vec<ServiceSpec>,
    /// Socket size.
    pub cores: usize,
    /// The platform's DVFS ladder.
    pub dvfs: DvfsLadder,
    /// Consecutive QoS-violation epochs before the watchdog trips.
    pub watchdog_epochs: u32,
    /// Epochs spent in the safe static allocation after the first trip.
    pub initial_backoff_epochs: u64,
    /// Upper bound on the backoff window (doubles on every re-trip).
    pub max_backoff_epochs: u64,
    /// Healthy (violation-free) epochs after which the backoff resets to
    /// its initial value.
    pub backoff_reset_epochs: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            services: Vec::new(),
            cores: 18,
            dvfs: DvfsLadder::default(),
            watchdog_epochs: 5,
            initial_backoff_epochs: 8,
            max_backoff_epochs: 128,
            backoff_reset_epochs: 50,
        }
    }
}

/// Counters describing everything the governor intervened on (for
/// resilience evaluation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Decisions replaced because the inner manager returned a recoverable
    /// error.
    pub recoverable_errors: u64,
    /// Decisions replaced because they failed platform validation.
    pub invalid_decisions: u64,
    /// Total fallback decisions issued (last-known-good or safe static).
    pub fallback_decisions: u64,
    /// Epochs whose telemetry was corrupted (routed to
    /// [`TaskManager::observe_degraded`]).
    pub degraded_epochs: u64,
    /// Watchdog trips into the safe static allocation.
    pub watchdog_trips: u64,
    /// Epochs spent in the safe static allocation.
    pub safe_mode_epochs: u64,
    /// Degraded (`SafeFallback`-tier) decisions served from the inner
    /// manager's cheap path instead of the safe static allocation.
    pub degraded_decisions: u64,
}

/// Periodic-checkpoint wiring installed by
/// [`SafetyGovernor::arm_checkpointing`].
///
/// `encode` is a plain `fn` pointer (captured from the
/// [`Checkpointable`] impl at arming time) rather than a trait bound, so
/// the generic `TaskManager` impl — which cannot know about
/// checkpointability — can still drive the periodic writes, and the
/// governor stays `Clone`/`Debug` for free.
#[derive(Debug, Clone)]
struct CheckpointArm<M> {
    store: CheckpointStore,
    every_epochs: u64,
    encode: fn(&M) -> Result<Vec<u8>, TwigError>,
}

/// A supervisor wrapping any [`TaskManager`] with validation, fallback and
/// a QoS watchdog. See the module docs for the policy.
///
/// # Examples
///
/// ```
/// use twig_core::{GovernorConfig, SafetyGovernor, TaskManager, TwigBuilder};
/// use twig_sim::catalog;
///
/// let twig = TwigBuilder::new()
///     .services(vec![catalog::masstree()])
///     .seed(1)
///     .build()
///     .unwrap();
/// let config = GovernorConfig {
///     services: vec![catalog::masstree()],
///     ..GovernorConfig::default()
/// };
/// let mut governed = SafetyGovernor::new(twig, config).unwrap();
/// assert_eq!(governed.name(), "twig-s+governor");
/// assert!(governed.decide().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SafetyGovernor<M> {
    inner: M,
    config: GovernorConfig,
    name: String,
    last_good: Option<Vec<Assignment>>,
    violation_streak: u32,
    healthy_streak: u32,
    safe_remaining: u64,
    backoff: u64,
    stats: GovernorStats,
    telemetry: Telemetry,
    ckpt: Option<CheckpointArm<M>>,
    epochs_observed: u64,
}

/// Doubles a watchdog backoff without overflow: `current * 2` saturates at
/// `u64::MAX` before the cap is applied, so an extreme
/// `initial_backoff_epochs` (or enough consecutive trips) pins the backoff
/// at `max` instead of wrapping back to a tiny value — which would silently
/// hand an untrusted policy short safe-mode windows again.
fn next_backoff(current: u64, max: u64) -> u64 {
    current.saturating_mul(2).min(max)
}

impl<M: TaskManager> SafetyGovernor<M> {
    /// Wraps `inner` with the governor policy.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::Fatal`] for an empty service list, zero
    /// cores, a zero watchdog window or a zero backoff.
    pub fn new(inner: M, config: GovernorConfig) -> Result<Self, ManagerError> {
        if config.services.is_empty() {
            return Err(ManagerError::fatal("governor: no services"));
        }
        if config.cores == 0 {
            return Err(ManagerError::fatal("governor: zero cores"));
        }
        if config.watchdog_epochs == 0 {
            return Err(ManagerError::fatal("governor: zero watchdog window"));
        }
        if config.initial_backoff_epochs == 0 || config.max_backoff_epochs == 0 {
            return Err(ManagerError::fatal("governor: zero backoff window"));
        }
        let name = format!("{}+governor", inner.name());
        let backoff = config.initial_backoff_epochs;
        Ok(SafetyGovernor {
            inner,
            config,
            name,
            last_good: None,
            violation_streak: 0,
            healthy_streak: 0,
            safe_remaining: 0,
            backoff,
            stats: GovernorStats::default(),
            telemetry: Telemetry::disabled(),
            ckpt: None,
            epochs_observed: 0,
        })
    }

    /// Attaches a telemetry handle: every intervention (recoverable error,
    /// invalid decision, fallback, watchdog trip, safe-mode epoch,
    /// degraded-telemetry routing) is mirrored into `governor.*` counters,
    /// and the current re-entry backoff into a gauge. Note this does NOT
    /// forward the handle to the wrapped manager — attach one there
    /// directly (e.g. [`crate::Twig::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The wrapped manager.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The wrapped manager, mutably.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Intervention counters.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// `true` while the watchdog holds the safe static allocation.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_remaining > 0
    }

    /// The current re-entry backoff in epochs (doubles per trip).
    pub fn current_backoff_epochs(&self) -> u64 {
        self.backoff
    }

    /// The safe static allocation: every service on every core at the
    /// highest DVFS setting (the static baseline — maximum capacity,
    /// maximum power, no learning in the loop).
    pub fn safe_assignments(&self) -> Vec<Assignment> {
        let freq = self.config.dvfs.max();
        self.config
            .services
            .iter()
            .map(|_| Assignment::first_n(self.config.cores, freq))
            .collect()
    }

    /// The `SafeFallback` shed tier's decision: asks the inner manager for
    /// its degraded decide (Twig serves greedy fixed-point inference) and
    /// validates it against the platform limits exactly like a primary
    /// decision. Any failure — no degraded path, a recoverable error, an
    /// invalid assignment — lands on [`safe_assignments`]
    /// (Self::safe_assignments), so this is never less safe than the static
    /// allocation it replaces. While the watchdog holds safe mode the inner
    /// manager stays suspended and the static allocation is served
    /// directly.
    pub fn decide_fallback(&mut self) -> Vec<Assignment> {
        if self.in_safe_mode() {
            return self.safe_assignments();
        }
        match self.inner.decide_fallback() {
            Ok(assignments) if self.validate(&assignments).is_ok() => {
                self.stats.degraded_decisions += 1;
                self.telemetry.counter_add("governor.degraded_decisions", 1);
                assignments
            }
            Ok(_) => {
                self.stats.invalid_decisions += 1;
                self.telemetry.counter_add("governor.invalid_decisions", 1);
                self.safe_assignments()
            }
            Err(_) => self.safe_assignments(),
        }
    }

    /// Validates a decision against the platform limits.
    fn validate(&self, assignments: &[Assignment]) -> Result<(), String> {
        if assignments.len() != self.config.services.len() {
            return Err(format!(
                "{} assignments for {} services",
                assignments.len(),
                self.config.services.len()
            ));
        }
        for (svc, a) in assignments.iter().enumerate() {
            if a.cores.is_empty() {
                return Err(format!("service {svc}: zero cores"));
            }
            if a.cores.len() > self.config.cores {
                return Err(format!(
                    "service {svc}: {} cores on a {}-core socket",
                    a.cores.len(),
                    self.config.cores
                ));
            }
            for c in &a.cores {
                if c.index() >= self.config.cores {
                    return Err(format!("service {svc}: core {} out of range", c.index()));
                }
            }
            if self.config.dvfs.index_of(a.freq).is_err() {
                return Err(format!(
                    "service {svc}: frequency {} MHz off the ladder",
                    a.freq.mhz()
                ));
            }
        }
        Ok(())
    }

    fn fallback(&mut self) -> Vec<Assignment> {
        self.stats.fallback_decisions += 1;
        self.telemetry.counter_add("governor.fallback_decisions", 1);
        match &self.last_good {
            Some(a) => a.clone(),
            None => self.safe_assignments(),
        }
    }

    /// Writes one checkpoint generation when checkpointing is armed and the
    /// interval has elapsed. Write failures are counted
    /// (`ckpt.write_failed`) and swallowed: losing durability must not take
    /// down a healthy control loop.
    fn write_checkpoint_if_due(&mut self) {
        let Some(arm) = &self.ckpt else { return };
        if !self.epochs_observed.is_multiple_of(arm.every_epochs) {
            return;
        }
        let written = (arm.encode)(&self.inner).and_then(|bytes| {
            arm.store
                .write(&bytes)
                .map(|_| ())
                .map_err(|e| TwigError::Io {
                    detail: e.to_string(),
                })
        });
        match written {
            Ok(()) => self.telemetry.counter_add("ckpt.write", 1),
            Err(_) => self.telemetry.counter_add("ckpt.write_failed", 1),
        }
    }

    fn any_violation(&self, report: &EpochReport) -> bool {
        report
            .services
            .iter()
            .zip(&self.config.services)
            .any(|(svc, spec)| {
                // Idle services cannot violate; corrupted latency readings
                // count as violations (we cannot prove health from them).
                let active = svc.offered_rps > 0.0 || svc.completed > 0;
                active && !(svc.p99_ms.is_finite() && svc.p99_ms <= spec.qos_ms)
            })
    }
}

impl<M: TaskManager + Checkpointable> SafetyGovernor<M> {
    /// Arms crash-safe persistence: after every `every_epochs` fully
    /// observed epochs the inner manager's state is serialized and written
    /// atomically to `store` (counter `ckpt.write`; a failed write counts
    /// `ckpt.write_failed` and never interrupts the loop).
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::Fatal`] for a zero interval.
    pub fn arm_checkpointing(
        &mut self,
        store: CheckpointStore,
        every_epochs: u64,
    ) -> Result<(), ManagerError> {
        if every_epochs == 0 {
            return Err(ManagerError::fatal("governor: zero checkpoint interval"));
        }
        self.ckpt = Some(CheckpointArm {
            store,
            every_epochs,
            encode: <M as Checkpointable>::checkpoint_bytes,
        });
        Ok(())
    }

    /// The armed checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref().map(|arm| &arm.store)
    }

    /// Runs the recovery ladder ([`recover`]) over the armed store: the
    /// newest generation first, one rung back per corrupt or mismatched
    /// checkpoint, cold start when every generation is exhausted. The
    /// governor's own health tracking (last-known-good decision, violation
    /// and healthy streaks) is reset — it described the pre-crash regime.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::Fatal`] when checkpointing was never armed.
    pub fn recover_from_store(&mut self) -> Result<RecoveryReport, ManagerError> {
        let Some(arm) = &self.ckpt else {
            return Err(ManagerError::fatal("governor: checkpointing not armed"));
        };
        let store = arm.store.clone();
        let report = recover(&store, &mut self.inner, &self.telemetry);
        self.last_good = None;
        self.violation_streak = 0;
        self.healthy_streak = 0;
        Ok(report)
    }

    /// Serializes the inner manager's full state as a **federation-round
    /// snapshot** — the byte-exact image a federation plane captures
    /// before applying merged weights, so a quorum failure or a
    /// post-merge divergence can roll the replica back to exactly its
    /// pre-round state.
    ///
    /// # Errors
    ///
    /// Propagates the inner manager's serialization error.
    pub fn round_snapshot(&self) -> Result<Vec<u8>, TwigError> {
        <M as Checkpointable>::checkpoint_bytes(&self.inner)
    }

    /// Restores the inner manager from round bytes — either merged
    /// weights being adopted after a committed federation round, or a
    /// [`round_snapshot`](Self::round_snapshot) being rolled back after a
    /// failed one. The governor's own health tracking (last-known-good
    /// decision, violation and healthy streaks) is reset: it described a
    /// policy that no longer exists.
    ///
    /// # Errors
    ///
    /// Propagates the inner manager's restore error; the inner manager
    /// guarantees it is left usable (at worst unchanged) in that case,
    /// and the governor's health tracking is then left untouched too.
    pub fn restore_round_snapshot(&mut self, bytes: &[u8]) -> Result<(), TwigError> {
        <M as Checkpointable>::restore_checkpoint(&mut self.inner, bytes)?;
        self.last_good = None;
        self.violation_streak = 0;
        self.healthy_streak = 0;
        Ok(())
    }
}

impl<M: TaskManager> TaskManager for SafetyGovernor<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError> {
        if self.in_safe_mode() {
            // The inner manager is suspended: its policy caused (or could
            // not prevent) the violation streak, so run the known-safe
            // configuration until the backoff expires.
            return Ok(self.safe_assignments());
        }
        match self.inner.decide() {
            Ok(assignments) => match self.validate(&assignments) {
                Ok(()) => {
                    self.last_good = Some(assignments.clone());
                    Ok(assignments)
                }
                Err(detail) => {
                    self.stats.invalid_decisions += 1;
                    self.telemetry.counter_add("governor.invalid_decisions", 1);
                    let _ = detail;
                    Ok(self.fallback())
                }
            },
            Err(e) if e.is_recoverable() => {
                self.stats.recoverable_errors += 1;
                self.telemetry.counter_add("governor.recoverable_errors", 1);
                Ok(self.fallback())
            }
            Err(fatal) => Err(fatal),
        }
    }

    fn observe(&mut self, report: &EpochReport) -> Result<(), ManagerError> {
        // Watchdog accounting runs on every epoch, including safe-mode ones
        // (ground-truth p99 in the report is unaffected by telemetry
        // faults).
        if self.any_violation(report) {
            self.violation_streak += 1;
            self.healthy_streak = 0;
        } else {
            self.violation_streak = 0;
            self.healthy_streak = self.healthy_streak.saturating_add(1);
            if self.healthy_streak >= self.config.backoff_reset_epochs {
                self.backoff = self.config.initial_backoff_epochs;
            }
        }

        if self.in_safe_mode() {
            self.stats.safe_mode_epochs += 1;
            self.telemetry.counter_add("governor.safe_mode_epochs", 1);
            self.safe_remaining -= 1;
            if self.safe_remaining == 0 {
                // Hand control back with a clean slate: the violations that
                // tripped the watchdog belong to the previous regime.
                self.violation_streak = 0;
            }
        } else if self.violation_streak >= self.config.watchdog_epochs {
            self.stats.watchdog_trips += 1;
            self.telemetry.counter_add("governor.watchdog_trips", 1);
            self.safe_remaining = self.backoff;
            self.backoff = next_backoff(self.backoff, self.config.max_backoff_epochs);
            // The policy that produced this streak is not to be trusted:
            // its last decision is no longer "known good".
            self.last_good = None;
            self.violation_streak = 0;
        }
        self.telemetry
            .gauge_set("governor.backoff_epochs", self.backoff as f64);

        let degraded = report.telemetry.degraded();
        if degraded {
            self.stats.degraded_epochs += 1;
            self.telemetry.counter_add("governor.degraded_epochs", 1);
        }
        let result = if degraded {
            self.inner.observe_degraded(report)
        } else {
            self.inner.observe(report)
        };
        let outcome = match result {
            Ok(()) => Ok(()),
            Err(e) if e.is_recoverable() => {
                // A transient observation failure must not kill the loop;
                // the decision path already has its fallback.
                self.stats.recoverable_errors += 1;
                self.telemetry.counter_add("governor.recoverable_errors", 1);
                Ok(())
            }
            Err(fatal) => Err(fatal),
        };
        self.epochs_observed += 1;
        if outcome.is_ok() {
            // One full epoch has been absorbed: this is the
            // crash-consistent point to persist the learner.
            self.write_checkpoint_if_due();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecoveryOutcome;
    use twig_sim::fault::{AppliedAssignment, TelemetryHealth};
    use twig_sim::{catalog, CoreId, Frequency, PmcSample, ServiceEpoch};

    /// Scriptable inner manager for exercising the governor policy.
    struct Scripted {
        decisions: Vec<Result<Vec<Assignment>, ManagerError>>,
        decide_calls: usize,
        observe_calls: usize,
        degraded_calls: usize,
    }

    impl Scripted {
        fn new(decisions: Vec<Result<Vec<Assignment>, ManagerError>>) -> Self {
            Scripted {
                decisions,
                decide_calls: 0,
                observe_calls: 0,
                degraded_calls: 0,
            }
        }

        fn good() -> Vec<Assignment> {
            vec![Assignment::first_n(4, DvfsLadder::default().max())]
        }
    }

    impl TaskManager for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }

        fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError> {
            let i = self.decide_calls.min(self.decisions.len() - 1);
            self.decide_calls += 1;
            self.decisions[i].clone()
        }

        fn observe(&mut self, _report: &EpochReport) -> Result<(), ManagerError> {
            self.observe_calls += 1;
            Ok(())
        }

        fn observe_degraded(&mut self, _report: &EpochReport) -> Result<(), ManagerError> {
            self.degraded_calls += 1;
            Ok(())
        }
    }

    fn config() -> GovernorConfig {
        GovernorConfig {
            services: vec![catalog::masstree()],
            watchdog_epochs: 3,
            initial_backoff_epochs: 4,
            max_backoff_epochs: 16,
            ..GovernorConfig::default()
        }
    }

    fn report(p99_ms: f64, degraded: bool) -> EpochReport {
        let spec = catalog::masstree();
        let mut telemetry = TelemetryHealth::clean(1);
        if degraded {
            telemetry.pmc_faults[0] = Some(twig_sim::PmcFaultKind::Nan);
        }
        EpochReport {
            time_s: 0,
            services: vec![ServiceEpoch {
                name: spec.name,
                offered_rps: 100.0,
                load_fraction: 0.5,
                p99_ms,
                mean_ms: p99_ms / 2.0,
                completed: 100,
                dropped: 0,
                queue_len: 0,
                pmcs: PmcSample::zero(),
                core_count: 4,
                freq: DvfsLadder::default().max(),
                migrated_cores: 0,
            }],
            power_w: 50.0,
            true_power_w: 50.0,
            energy_j: 50.0,
            migrations: 0,
            actuation: vec![AppliedAssignment::verbatim(
                (0..4).map(CoreId).collect(),
                DvfsLadder::default().max(),
            )],
            telemetry,
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mk = || Scripted::new(vec![Ok(Scripted::good())]);
        assert!(SafetyGovernor::new(
            mk(),
            GovernorConfig {
                services: vec![],
                ..config()
            }
        )
        .is_err());
        assert!(SafetyGovernor::new(
            mk(),
            GovernorConfig {
                cores: 0,
                ..config()
            }
        )
        .is_err());
        assert!(SafetyGovernor::new(
            mk(),
            GovernorConfig {
                watchdog_epochs: 0,
                ..config()
            }
        )
        .is_err());
    }

    #[test]
    fn valid_decisions_pass_through_and_become_lkg() {
        let inner = Scripted::new(vec![
            Ok(Scripted::good()),
            Err(ManagerError::recoverable("hiccup")),
        ]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        let a = gov.decide().unwrap();
        assert_eq!(a, Scripted::good());
        // The recoverable error falls back to the validated decision.
        let b = gov.decide().unwrap();
        assert_eq!(b, Scripted::good());
        assert_eq!(gov.stats().recoverable_errors, 1);
        assert_eq!(gov.stats().fallback_decisions, 1);
    }

    #[test]
    fn recoverable_error_without_lkg_uses_safe_static() {
        let inner = Scripted::new(vec![Err(ManagerError::recoverable("cold"))]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        let a = gov.decide().unwrap();
        assert_eq!(a, gov.safe_assignments());
        assert_eq!(a[0].core_count(), 18);
        assert_eq!(a[0].freq, DvfsLadder::default().max());
    }

    #[test]
    fn fatal_error_propagates() {
        let inner = Scripted::new(vec![Err(ManagerError::fatal("broken wiring"))]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        assert!(gov.decide().is_err());
    }

    #[test]
    fn invalid_decisions_are_replaced() {
        let out_of_range = vec![Assignment::new(
            vec![CoreId(99)],
            DvfsLadder::default().max(),
        )];
        let off_ladder = vec![Assignment::first_n(4, Frequency::from_mhz(1234))];
        let empty = vec![Assignment::new(vec![], DvfsLadder::default().max())];
        let wrong_count = vec![];
        for bad in [out_of_range, off_ladder, empty, wrong_count] {
            let inner = Scripted::new(vec![Ok(bad)]);
            let mut gov = SafetyGovernor::new(inner, config()).unwrap();
            let a = gov.decide().unwrap();
            assert_eq!(a, gov.safe_assignments());
            assert_eq!(gov.stats().invalid_decisions, 1);
        }
    }

    #[test]
    fn degraded_decide_validates_or_lands_safe() {
        // Scripted keeps the trait default (no degraded path) → safe static.
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        assert_eq!(gov.decide_fallback(), gov.safe_assignments());
        assert_eq!(gov.stats().degraded_decisions, 0);

        struct Degraded(Vec<Assignment>);
        impl TaskManager for Degraded {
            fn name(&self) -> &str {
                "degraded"
            }
            fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError> {
                Ok(self.0.clone())
            }
            fn observe(&mut self, _report: &EpochReport) -> Result<(), ManagerError> {
                Ok(())
            }
            fn decide_fallback(&mut self) -> Result<Vec<Assignment>, ManagerError> {
                Ok(self.0.clone())
            }
        }

        // A valid degraded decision is served and counted.
        let mut gov = SafetyGovernor::new(Degraded(Scripted::good()), config()).unwrap();
        assert_eq!(gov.decide_fallback(), Scripted::good());
        assert_eq!(gov.stats().degraded_decisions, 1);

        // An invalid one is replaced by the safe static allocation.
        let bad = vec![Assignment::new(
            vec![CoreId(99)],
            DvfsLadder::default().max(),
        )];
        let mut gov = SafetyGovernor::new(Degraded(bad), config()).unwrap();
        assert_eq!(gov.decide_fallback(), gov.safe_assignments());
        assert_eq!(gov.stats().invalid_decisions, 1);
        assert_eq!(gov.stats().degraded_decisions, 0);
    }

    #[test]
    fn watchdog_trips_after_consecutive_violations() {
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        let qos = catalog::masstree().qos_ms;
        // Two violations then a healthy epoch: streak resets, no trip.
        for _ in 0..2 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        gov.decide().unwrap();
        gov.observe(&report(qos * 0.5, false)).unwrap();
        assert!(!gov.in_safe_mode());
        // Three consecutive violations: the watchdog trips.
        for _ in 0..3 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert!(gov.in_safe_mode());
        assert_eq!(gov.stats().watchdog_trips, 1);
        // Safe mode issues the static allocation without consulting the
        // inner manager.
        let calls_before = gov.inner().decide_calls;
        let a = gov.decide().unwrap();
        assert_eq!(a, gov.safe_assignments());
        assert_eq!(gov.inner().decide_calls, calls_before);
    }

    #[test]
    fn backoff_doubles_per_trip_and_expires() {
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        let qos = catalog::masstree().qos_ms;
        assert_eq!(gov.current_backoff_epochs(), 4);
        // First trip: 4 safe epochs, next backoff 8.
        for _ in 0..3 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert!(gov.in_safe_mode());
        assert_eq!(gov.current_backoff_epochs(), 8);
        for _ in 0..4 {
            assert!(gov.in_safe_mode());
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert!(!gov.in_safe_mode(), "backoff window expired");
        // Immediate re-trip holds for 8 epochs and caps at 16.
        for _ in 0..3 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert!(gov.in_safe_mode());
        assert_eq!(gov.current_backoff_epochs(), 16);
        assert_eq!(gov.stats().watchdog_trips, 2);
        for _ in 0..8 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert!(!gov.in_safe_mode());
        assert_eq!(gov.current_backoff_epochs(), 16, "capped at max");
        assert_eq!(gov.stats().safe_mode_epochs, 12);
    }

    #[test]
    fn backoff_doubling_saturates_instead_of_wrapping() {
        // 100 doublings would overflow u64 63 times over; the helper must
        // pin at the cap, never wrap back to a small window.
        let mut backoff = 1_u64;
        for _ in 0..100 {
            let next = next_backoff(backoff, u64::MAX);
            assert!(
                next >= backoff,
                "backoff went backwards: {backoff} -> {next}"
            );
            backoff = next;
        }
        assert_eq!(backoff, u64::MAX);
        // With a finite cap the same walk pins at the cap.
        let mut capped = 3_u64;
        for _ in 0..100 {
            capped = next_backoff(capped, 1000);
        }
        assert_eq!(capped, 1000);
        assert_eq!(next_backoff(0, 16), 0, "zero backoff stays zero");
    }

    #[test]
    fn extreme_backoff_config_survives_repeated_trips() {
        // Regression: `backoff * 2` used to be unchecked, so a config with
        // initial backoff in the top bit wrapped to zero on the first trip
        // (debug builds panicked instead). Saturation keeps it at the cap.
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(
            inner,
            GovernorConfig {
                initial_backoff_epochs: 1 << 63,
                max_backoff_epochs: u64::MAX,
                ..config()
            },
        )
        .unwrap();
        let qos = catalog::masstree().qos_ms;
        let mut last = gov.current_backoff_epochs();
        for _ in 0..3 {
            // Trip the watchdog (3 consecutive violations)...
            for _ in 0..3 {
                gov.decide().unwrap();
                gov.observe(&report(qos * 2.0, false)).unwrap();
            }
            let now = gov.current_backoff_epochs();
            assert!(now >= last, "backoff wrapped: {last} -> {now}");
            last = now;
            // ...then force the safe window shut so the next round can trip
            // again (windows this long never expire naturally in a test).
            gov.safe_remaining = 0;
        }
        assert_eq!(last, u64::MAX);
    }

    #[test]
    fn healthy_run_resets_backoff() {
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(
            inner,
            GovernorConfig {
                backoff_reset_epochs: 5,
                ..config()
            },
        )
        .unwrap();
        let qos = catalog::masstree().qos_ms;
        for _ in 0..3 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        for _ in 0..4 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 2.0, false)).unwrap();
        }
        assert_eq!(gov.current_backoff_epochs(), 8);
        for _ in 0..5 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 0.5, false)).unwrap();
        }
        assert_eq!(gov.current_backoff_epochs(), 4, "reset after healthy run");
    }

    #[test]
    fn degraded_telemetry_routes_to_observe_degraded() {
        let inner = Scripted::new(vec![Ok(Scripted::good())]);
        let mut gov = SafetyGovernor::new(inner, config()).unwrap();
        let qos = catalog::masstree().qos_ms;
        gov.decide().unwrap();
        gov.observe(&report(qos * 0.5, true)).unwrap();
        gov.decide().unwrap();
        gov.observe(&report(qos * 0.5, false)).unwrap();
        assert_eq!(gov.inner().degraded_calls, 1);
        assert_eq!(gov.inner().observe_calls, 1);
        assert_eq!(gov.stats().degraded_epochs, 1);
    }

    /// Checkpointable inner manager: one counter bumped per observed epoch,
    /// serialized as 8 little-endian bytes.
    struct Persistable {
        value: u64,
    }

    impl TaskManager for Persistable {
        fn name(&self) -> &str {
            "persistable"
        }

        fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError> {
            Ok(Scripted::good())
        }

        fn observe(&mut self, _report: &EpochReport) -> Result<(), ManagerError> {
            self.value += 1;
            Ok(())
        }
    }

    impl Checkpointable for Persistable {
        fn checkpoint_bytes(&self) -> Result<Vec<u8>, TwigError> {
            Ok(self.value.to_le_bytes().to_vec())
        }

        fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), TwigError> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| TwigError::Io {
                detail: "bad checkpoint length".into(),
            })?;
            self.value = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("twig-gov-ckpt-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::create(&dir, keep).unwrap()
    }

    #[test]
    fn armed_governor_writes_periodically_and_recovers() {
        let store = temp_store("roundtrip", 3);
        let qos = catalog::masstree().qos_ms;

        let mut gov = SafetyGovernor::new(Persistable { value: 0 }, config()).unwrap();
        gov.set_telemetry(Telemetry::enabled());
        gov.arm_checkpointing(store.clone(), 2).unwrap();
        assert!(gov.checkpoint_store().is_some());
        for _ in 0..6 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 0.5, false)).unwrap();
        }
        // Writes after epochs 2, 4 and 6.
        assert_eq!(gov.telemetry.counter("ckpt.write"), 3);
        assert_eq!(store.generations().unwrap().len(), 3);

        // A fresh (crashed-and-restarted) governor recovers the newest
        // generation: the counter state after epoch 6.
        let mut fresh = SafetyGovernor::new(Persistable { value: 0 }, config()).unwrap();
        fresh.set_telemetry(Telemetry::enabled());
        fresh.arm_checkpointing(store.clone(), 2).unwrap();
        let rec = fresh.recover_from_store().unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Restored { generation: 0 });
        assert_eq!(fresh.inner().value, 6);

        // With the newest generation corrupted the ladder falls back one
        // rung to the epoch-4 state.
        let gens = store.generations().unwrap();
        std::fs::write(&gens[0], [0xFF; 3]).unwrap();
        let mut again = SafetyGovernor::new(Persistable { value: 0 }, config()).unwrap();
        again.set_telemetry(Telemetry::enabled());
        again.arm_checkpointing(store.clone(), 2).unwrap();
        let rec = again.recover_from_store().unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Restored { generation: 1 });
        assert_eq!(rec.corrupt_generations, 1);
        assert_eq!(again.inner().value, 4);
        assert_eq!(again.telemetry.counter("ckpt.corrupt"), 1);
        assert_eq!(again.telemetry.counter("ckpt.fallback"), 1);
        assert_eq!(again.telemetry.counter("ckpt.load"), 1);

        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn round_snapshot_roundtrips_and_resets_health_tracking() {
        let qos = catalog::masstree().qos_ms;
        let mut gov = SafetyGovernor::new(Persistable { value: 0 }, config()).unwrap();
        for _ in 0..4 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 0.5, false)).unwrap();
        }
        let snapshot = gov.round_snapshot().unwrap();
        assert_eq!(gov.inner().value, 4);
        // Two violation epochs arm a streak; the restore must clear it so
        // the watchdog never charges a restored policy for its
        // predecessor's violations.
        gov.observe(&report(qos * 4.0, false)).unwrap();
        gov.observe(&report(qos * 4.0, false)).unwrap();
        gov.observe(&report(qos * 0.5, false)).unwrap();
        gov.observe(&report(qos * 0.5, false)).unwrap();
        assert_eq!(gov.inner().value, 8);
        gov.restore_round_snapshot(&snapshot).unwrap();
        assert_eq!(gov.inner().value, 4, "state rolled back byte-exactly");
        assert!(gov.last_good.is_none());
        assert_eq!(gov.violation_streak, 0);
        assert_eq!(gov.healthy_streak, 0);
        // A failed restore leaves the inner manager and health untouched.
        gov.observe(&report(qos * 0.5, false)).unwrap();
        assert!(gov.restore_round_snapshot(&[1, 2, 3]).is_err());
        assert_eq!(gov.inner().value, 5);
    }

    #[test]
    fn checkpoint_arming_validation_and_write_failures() {
        let store = temp_store("failures", 2);
        let qos = catalog::masstree().qos_ms;

        let mut gov = SafetyGovernor::new(Persistable { value: 0 }, config()).unwrap();
        assert!(
            gov.recover_from_store().is_err(),
            "recovery requires an armed store"
        );
        assert!(gov.arm_checkpointing(store.clone(), 0).is_err());
        assert!(gov.checkpoint_store().is_none());

        // Deleting the directory out from under an armed store makes the
        // write fail; the loop must keep running and count the failure.
        gov.set_telemetry(Telemetry::enabled());
        gov.arm_checkpointing(store.clone(), 1).unwrap();
        std::fs::remove_dir_all(store.dir()).unwrap();
        for _ in 0..2 {
            gov.decide().unwrap();
            gov.observe(&report(qos * 0.5, false)).unwrap();
        }
        assert_eq!(gov.telemetry.counter("ckpt.write"), 0);
        assert_eq!(gov.telemetry.counter("ckpt.write_failed"), 2);
        assert_eq!(gov.inner().value, 2, "inner manager kept observing");

        // Recovery over the now-empty store is an explicit cold start.
        let rec = gov.recover_from_store().unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::ColdStart);
    }

    #[test]
    fn governed_twig_survives_faults_and_recovers() {
        use crate::TwigBuilder;
        use twig_rl::{EpsilonSchedule, MaBdqConfig};
        use twig_sim::fault::{FaultConfig, FaultPlan};
        use twig_sim::{Server, ServerConfig};

        // The acceptance scenario: 10% PMC corruption + 5% actuation
        // rejection. The governed Twig must keep producing valid, finite
        // decisions throughout and meet QoS again once the faults stop.
        let spec = catalog::masstree();
        let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 31).unwrap();
        server.set_load_fraction(0, 0.4).unwrap();
        server.set_fault_plan(
            FaultPlan::new(
                FaultConfig {
                    pmc_corrupt_rate: 0.10,
                    actuation_reject_rate: 0.05,
                    ..FaultConfig::default()
                },
                77,
            )
            .unwrap(),
        );
        let twig = TwigBuilder::new()
            .services(vec![spec.clone()])
            .agent(MaBdqConfig {
                trunk_hidden: vec![32, 24],
                head_hidden: 16,
                dropout: 0.0,
                batch_size: 8,
                buffer_capacity: 2048,
                ..MaBdqConfig::default()
            })
            .epsilon(EpsilonSchedule::scaled(60))
            .seed(13)
            .build()
            .unwrap();
        let mut gov = SafetyGovernor::new(
            twig,
            GovernorConfig {
                services: vec![spec.clone()],
                ..GovernorConfig::default()
            },
        )
        .unwrap();

        let probe = vec![vec![0.5_f32; twig_sim::NUM_COUNTERS]];
        for epoch in 0..80 {
            let a = gov.decide().unwrap();
            assert_eq!(a.len(), 1);
            assert!((1..=18).contains(&a[0].core_count()));
            let r = server.step(&a).unwrap();
            gov.observe(&r).unwrap();
            if epoch % 10 == 9 {
                // Q-values stay finite while training on faulted telemetry.
                let q = gov.inner().agent().clone().q_values(&probe).unwrap();
                assert!(q.iter().flatten().flatten().all(|v| v.is_finite()));
            }
        }
        assert!(gov.stats().degraded_epochs > 0, "faults should have fired");

        // Fault window over: drive to steady state and check recovery.
        server.clear_fault_plan();
        let mut met = 0;
        for _ in 0..40 {
            let a = gov.decide().unwrap();
            let r = server.step(&a).unwrap();
            if r.services[0].p99_ms <= spec.qos_ms {
                met += 1;
            }
            gov.observe(&r).unwrap();
        }
        assert!(met >= 30, "recovered QoS in only {met}/40 epochs");
    }
}
