use crate::{
    Checkpointable, Eq2PowerModel, ManagerError, Mapper, RewardConfig, SystemMonitor, TwigError,
};
use twig_rl::{
    decode_checkpoint, encode_checkpoint, EpsilonSchedule, MaBdq, MaBdqConfig, MultiTransition,
    QuarantineConfig, RlError,
};
use twig_sim::{Assignment, DvfsLadder, EpochReport, ServiceSpec};
use twig_telemetry::{Phase, Telemetry};

/// Common interface of every task manager in this workspace (Twig and the
/// baselines), so experiments can drive them interchangeably:
/// [`decide`](Self::decide) produces the next epoch's assignments,
/// [`observe`](Self::observe) feeds back what the platform measured.
///
/// Errors are structured ([`ManagerError`]): `Recoverable` failures let a
/// supervisor (see [`SafetyGovernor`](crate::SafetyGovernor)) substitute a
/// fallback decision and keep the control loop alive, `Fatal` ones abort.
pub trait TaskManager {
    /// The manager's display name (used in experiment output).
    fn name(&self) -> &str;

    /// Chooses the resource assignment for the next epoch, one per service.
    ///
    /// # Errors
    ///
    /// [`ManagerError::Recoverable`] for transient failures a supervisor
    /// can ride through, [`ManagerError::Fatal`] otherwise.
    fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError>;

    /// Consumes the epoch's measurements (tail latency, counters, power).
    ///
    /// # Errors
    ///
    /// [`ManagerError::Recoverable`] for transient failures a supervisor
    /// can ride through, [`ManagerError::Fatal`] otherwise.
    fn observe(&mut self, report: &EpochReport) -> Result<(), ManagerError>;

    /// Consumes an epoch whose telemetry is known to be corrupted
    /// (`report.telemetry` flags a PMC fault). The default forwards to
    /// [`observe`](Self::observe); learning managers override it to keep
    /// their clocks and internal state consistent *without* training on the
    /// garbage observation.
    ///
    /// # Errors
    ///
    /// Same contract as [`observe`](Self::observe).
    fn observe_degraded(&mut self, report: &EpochReport) -> Result<(), ManagerError> {
        self.observe(report)
    }

    /// Degraded decision path for the `SafeFallback` shed tier: a cheaper
    /// decide a manager can still serve when the epoch budget is exhausted.
    /// [`Twig`] overrides it with greedy selection on its fixed-point
    /// network snapshot; the default reports `Recoverable` so a supervisor
    /// (see [`SafetyGovernor`](crate::SafetyGovernor)) substitutes the safe
    /// static allocation.
    ///
    /// # Errors
    ///
    /// [`ManagerError::Recoverable`] when no degraded path exists or it
    /// cannot serve this epoch; same contract as [`decide`](Self::decide)
    /// otherwise.
    fn decide_fallback(&mut self) -> Result<Vec<Assignment>, ManagerError> {
        Err(ManagerError::recoverable(
            "manager has no degraded decision path",
        ))
    }
}

/// Configuration of a [`Twig`] manager.
#[derive(Debug, Clone, PartialEq)]
pub struct TwigConfig {
    /// The managed services (Twig-S for one, Twig-C for several).
    pub services: Vec<ServiceSpec>,
    /// Socket size.
    pub cores: usize,
    /// The platform's DVFS ladder.
    pub dvfs: DvfsLadder,
    /// PMC smoothing window η (Section III-B1; the paper uses 5).
    pub eta: usize,
    /// The ε-annealing schedule (Section IV).
    pub epsilon: EpsilonSchedule,
    /// The Eq. 1 reward parameters.
    pub reward: RewardConfig,
    /// The Eq. 2 per-service power model used inside the reward.
    pub power_model: Eq2PowerModel,
    /// Peak (stress-benchmark) power used to normalise the power reward.
    pub peak_power_w: f64,
    /// Learning-agent overrides (network sizes, lr, PER, …). `agents`,
    /// `state_dim` and `branches` are derived from the platform and
    /// overwritten.
    pub agent: MaBdqConfig,
    /// When `true`, skip gradient descent and run pure exploitation — the
    /// paper's recommendation once the agent "has seen sufficient
    /// experiences" (Section V, Overhead).
    pub pure_exploitation: bool,
    /// Gradient steps per decision epoch. The paper takes one step per
    /// second over a 10 000 s learning phase; shortened experiments keep
    /// the same total step budget by replaying the buffer more per epoch.
    pub train_steps_per_epoch: u32,
    /// Action hysteresis (not in the paper; 0 disables): when exploiting,
    /// keep the previous action on a branch unless the greedy action's
    /// Q-value exceeds the previous action's by this fraction of the Q
    /// range. Damps policy oscillation between near-tied allocations, whose
    /// migration costs otherwise snowball under time-varying load.
    pub action_stickiness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwigConfig {
    fn default() -> Self {
        TwigConfig {
            services: Vec::new(),
            cores: 18,
            dvfs: DvfsLadder::default(),
            eta: 5,
            epsilon: EpsilonSchedule::paper(),
            reward: RewardConfig::default(),
            power_model: Eq2PowerModel::default(),
            peak_power_w: 130.0,
            agent: MaBdqConfig::default(),
            pure_exploitation: false,
            train_steps_per_epoch: 1,
            action_stickiness: 0.0,
            seed: 0,
        }
    }
}

/// Builder for [`Twig`].
///
/// # Examples
///
/// ```
/// use twig_core::{TaskManager, TwigBuilder};
/// use twig_rl::EpsilonSchedule;
/// use twig_sim::catalog;
///
/// let twig = TwigBuilder::new()
///     .services(vec![catalog::moses(), catalog::masstree()])
///     .epsilon(EpsilonSchedule::scaled(500))
///     .seed(1)
///     .build()
///     .unwrap();
/// assert_eq!(twig.name(), "twig-c");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwigBuilder {
    config: TwigConfig,
    telemetry: Telemetry,
}

impl TwigBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle to the built manager (kept outside
    /// [`TwigConfig`], which stays plain comparable data). Equivalent to
    /// calling [`Twig::set_telemetry`] after [`build`](Self::build).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the managed services.
    pub fn services(mut self, services: Vec<ServiceSpec>) -> Self {
        self.config.services = services;
        self
    }

    /// Sets the socket size.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets the DVFS ladder.
    pub fn dvfs(mut self, dvfs: DvfsLadder) -> Self {
        self.config.dvfs = dvfs;
        self
    }

    /// Sets the ε schedule (use [`EpsilonSchedule::scaled`] for shortened
    /// experiments).
    pub fn epsilon(mut self, epsilon: EpsilonSchedule) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the reward parameters.
    pub fn reward(mut self, reward: RewardConfig) -> Self {
        self.config.reward = reward;
        self
    }

    /// Sets the Eq. 2 power model (e.g. from [`crate::fit_power_model`]).
    pub fn power_model(mut self, model: Eq2PowerModel) -> Self {
        self.config.power_model = model;
        self
    }

    /// Sets the stress-benchmark peak power.
    pub fn peak_power(mut self, watts: f64) -> Self {
        self.config.peak_power_w = watts;
        self
    }

    /// Overrides learning-agent settings (network width, lr, PER, …).
    pub fn agent(mut self, agent: MaBdqConfig) -> Self {
        self.config.agent = agent;
        self
    }

    /// Enables pure exploitation (no gradient descent).
    pub fn pure_exploitation(mut self, on: bool) -> Self {
        self.config.pure_exploitation = on;
        self
    }

    /// Sets the number of gradient steps per decision epoch (replay ratio).
    pub fn train_steps_per_epoch(mut self, steps: u32) -> Self {
        self.config.train_steps_per_epoch = steps;
        self
    }

    /// Sets the action-hysteresis margin (see
    /// [`TwigConfig::action_stickiness`]).
    pub fn action_stickiness(mut self, margin: f64) -> Self {
        self.config.action_stickiness = margin;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Builds the manager.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] when no services are configured
    /// or the platform/agent configuration is invalid.
    pub fn build(self) -> Result<Twig, TwigError> {
        let mut twig = Twig::new(self.config)?;
        if self.telemetry.is_enabled() {
            twig.set_telemetry(self.telemetry);
        }
        Ok(twig)
    }
}

/// The Twig task manager (Algorithm 1): one multi-agent BDQ managing every
/// latency-critical service on the socket.
///
/// Call [`decide`](Self::decide) at the start of each epoch and
/// [`observe`](Self::observe) with the platform's measurements at its end.
/// See the crate docs for a full example.
#[derive(Debug, Clone)]
pub struct Twig {
    config: TwigConfig,
    agent: MaBdq,
    monitor: SystemMonitor,
    mapper: Mapper,
    name: String,
    time: u64,
    pending: Option<Pending>,
    last_actions: Option<Vec<Vec<usize>>>,
    /// Reused Q-value buffer for the stickiness check (allocation-free in
    /// steady state; see `MaBdq::q_values_into`).
    q_scratch: Vec<Vec<Vec<f32>>>,
    telemetry: Telemetry,
}

#[derive(Debug, Clone)]
struct Pending {
    states: Vec<Vec<f32>>,
    actions: Vec<Vec<usize>>,
}

impl Twig {
    /// Creates a manager from a full configuration (see [`TwigBuilder`]).
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] for an empty service list or an
    /// invalid platform/agent configuration.
    pub fn new(config: TwigConfig) -> Result<Self, TwigError> {
        if config.services.is_empty() {
            return Err(TwigError::InvalidConfig {
                detail: "no services".into(),
            });
        }
        for s in &config.services {
            s.validate().map_err(TwigError::Sim)?;
        }
        if config.cores == 0 {
            return Err(TwigError::InvalidConfig {
                detail: "zero cores".into(),
            });
        }
        let k = config.services.len();
        let agent_config = MaBdqConfig {
            agents: k,
            state_dim: twig_sim::NUM_COUNTERS,
            branches: vec![config.cores, config.dvfs.len()],
            seed: config.seed,
            ..config.agent.clone()
        };
        let agent = MaBdq::new(agent_config).map_err(TwigError::Learning)?;
        let monitor = SystemMonitor::new(k, config.eta, config.cores)?;
        let mapper = Mapper::new(config.cores)?;
        let name = if k == 1 {
            "twig-s".to_string()
        } else {
            "twig-c".to_string()
        };
        Ok(Twig {
            config,
            agent,
            monitor,
            mapper,
            name,
            time: 0,
            pending: None,
            last_actions: None,
            q_scratch: Vec::new(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: [`decide`](Self::decide) and
    /// [`observe`](Self::observe) then record phase timings (PMC read,
    /// inference, mapping, reward update, learn step), the exploration
    /// rate, and degraded-epoch counts. The handle is forwarded to the
    /// learning agent for its own metrics. Telemetry never feeds back into
    /// decisions, so the policy is identical with or without it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.agent.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The configuration.
    pub fn config(&self) -> &TwigConfig {
        &self.config
    }

    /// Decision epochs elapsed.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon.value_at(self.time)
    }

    /// The learning agent (for inspection).
    pub fn agent(&self) -> &MaBdq {
        &self.agent
    }

    /// Mutable access to the learning agent, for drivers that manage the
    /// learning phase themselves — e.g. a deadline scheduler issuing
    /// resumable micro-batches via `MaBdq::train_step_budgeted` while the
    /// manager runs with `TwigBuilder::pure_exploitation(true)` so
    /// `observe` never takes the full gradient step itself.
    pub fn agent_mut(&mut self) -> &mut MaBdq {
        &mut self.agent
    }

    /// Forwards a per-agent quarantine configuration to the learning agent
    /// (see [`QuarantineConfig`]): divergence detection, last-known-good
    /// rollback and probation for individual agents while the rest of the
    /// fleet keeps training.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::Learning`] for invalid thresholds.
    pub fn set_quarantine(&mut self, quarantine: QuarantineConfig) -> Result<(), TwigError> {
        self.agent
            .set_quarantine(quarantine)
            .map_err(TwigError::Learning)
    }

    /// Serializes the learner's full state (network, optimizer moments,
    /// anneal counters, replay priorities) with the twig-rl versioned
    /// binary codec. Restore with
    /// [`restore_checkpoint_bytes`](Self::restore_checkpoint_bytes).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        encode_checkpoint(&self.agent.save_checkpoint())
    }

    /// Restores the learner from codec bytes, validating integrity (CRC)
    /// and architecture against the live configuration. In-flight epoch
    /// state (pending transition, sticky actions) is discarded, and when
    /// the checkpoint carries trained weights the ε schedule resumes at
    /// the exploitation point instead of re-exploring from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::Learning`] wrapping
    /// [`RlError::CorruptCheckpoint`] or [`RlError::CheckpointMismatch`];
    /// the manager is left unchanged in that case.
    pub fn restore_checkpoint_bytes(&mut self, bytes: &[u8]) -> Result<(), TwigError> {
        let ckpt = decode_checkpoint(bytes).map_err(TwigError::Learning)?;
        let trained = ckpt.steps > 0;
        self.agent
            .load_checkpoint(&ckpt)
            .map_err(TwigError::Learning)?;
        self.pending = None;
        self.last_actions = None;
        if trained {
            let restart = self.config.epsilon.learning_phase_end();
            self.time = self.time.max(restart);
        }
        Ok(())
    }

    /// Switches to pure exploitation (drops gradient descent), reducing the
    /// per-epoch overhead as recommended in Section V.
    pub fn set_pure_exploitation(&mut self, on: bool) {
        self.config.pure_exploitation = on;
    }

    /// Algorithm 1 lines 7–8: choose the mapping configuration for the next
    /// epoch, ε-greedily over the (core count, DVFS) branches of each
    /// agent, and resolve it to concrete cores via the mapper.
    ///
    /// # Errors
    ///
    /// Propagates learning and mapping errors.
    pub fn decide(&mut self) -> Result<Vec<Assignment>, TwigError> {
        let mut stopwatch = self.telemetry.stopwatch();
        let states = self.monitor.states()?;
        self.telemetry
            .phase_add(self.time, Phase::PmcRead, stopwatch.lap_ms());
        let epsilon = self.epsilon();
        self.telemetry.gauge_set("twig.epsilon", epsilon);
        let mut actions = self
            .agent
            .select_actions(&states, epsilon)
            .map_err(TwigError::Learning)?;
        if self.config.action_stickiness > 0.0 {
            if self.last_actions.is_some() {
                self.agent
                    .q_values_into(&states, &mut self.q_scratch)
                    .map_err(TwigError::Learning)?;
            }
            if let Some(previous) = &self.last_actions {
                let q = &self.q_scratch;
                for (k, agent_actions) in actions.iter_mut().enumerate() {
                    for (d, action) in agent_actions.iter_mut().enumerate() {
                        let prev = previous[k][d];
                        if prev == *action {
                            continue;
                        }
                        let row = &q[k][d];
                        let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
                        let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        let margin = (self.config.action_stickiness * f64::from(hi - lo)) as f32;
                        // Keep the previous choice unless the new one is a
                        // clear improvement (never overrides exploration
                        // moves that beat it by the margin).
                        if row[*action] - row[prev] < margin {
                            *action = prev;
                        }
                    }
                }
            }
        }
        self.last_actions = Some(actions.clone());
        self.telemetry
            .phase_add(self.time, Phase::Inference, stopwatch.lap_ms());
        let mut requests: Vec<(usize, twig_sim::Frequency)> = Vec::with_capacity(actions.len());
        for a in &actions {
            let cores = a[0] + 1; // branch 0: 1..=cores
            let freq = self
                .config
                .dvfs
                .frequency_at(a[1])
                .map_err(TwigError::Sim)?;
            requests.push((cores.min(self.config.cores), freq));
        }
        let assignments = self.mapper.assign(&requests)?;
        self.telemetry
            .phase_add(self.time, Phase::Mapping, stopwatch.lap_ms());
        self.pending = Some(Pending { states, actions });
        Ok(assignments)
    }

    /// Arms (or refreshes) the fixed-point inference snapshot behind
    /// [`decide_fallback`](Self::decide_fallback). Once armed, the agent
    /// re-quantizes it in place on every target-network sync, so calling
    /// this once after construction (and after checkpoint restores) keeps
    /// the shed tier's network at most one sync interval stale with zero
    /// steady-state allocations.
    ///
    /// # Errors
    ///
    /// Propagates learning errors (a network too wide to quantize).
    pub fn prepare_fallback(&mut self) -> Result<(), TwigError> {
        self.agent.refresh_quantized().map_err(TwigError::Learning)
    }

    /// Degraded decide for the `SafeFallback` shed tier: greedy per-branch
    /// selection on the agent's fixed-point (i16×i16→i32) snapshot instead
    /// of the full f32 network. Deliberately austere — no exploration, no
    /// action stickiness, no pending transition (shed epochs are never
    /// trained on), and no draw from the ε RNG stream, so a shed epoch
    /// cannot perturb the primary policy's behaviour.
    ///
    /// # Errors
    ///
    /// Propagates learning and mapping errors.
    pub fn decide_fallback(&mut self) -> Result<Vec<Assignment>, TwigError> {
        let mut stopwatch = self.telemetry.stopwatch();
        let states = self.monitor.states()?;
        self.telemetry
            .phase_add(self.time, Phase::PmcRead, stopwatch.lap_ms());
        let actions = self
            .agent
            .select_actions_quantized(&states)
            .map_err(TwigError::Learning)?;
        self.telemetry
            .phase_add(self.time, Phase::Inference, stopwatch.lap_ms());
        let mut requests: Vec<(usize, twig_sim::Frequency)> = Vec::with_capacity(actions.len());
        for a in &actions {
            let cores = a[0] + 1; // branch 0: 1..=cores
            let freq = self
                .config
                .dvfs
                .frequency_at(a[1])
                .map_err(TwigError::Sim)?;
            requests.push((cores.min(self.config.cores), freq));
        }
        let assignments = self.mapper.assign(&requests)?;
        self.telemetry
            .phase_add(self.time, Phase::Mapping, stopwatch.lap_ms());
        self.telemetry.counter_add("twig.fallback_decides", 1);
        Ok(assignments)
    }

    /// Algorithm 1 lines 10–13: observe the new per-service states, compute
    /// the Eq. 1 rewards, store the transition and run one gradient step
    /// (unless in pure exploitation).
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] when the report's service count
    /// differs, and propagates learning errors.
    pub fn observe(&mut self, report: &EpochReport) -> Result<(), TwigError> {
        let k = self.config.services.len();
        if report.services.len() != k {
            return Err(TwigError::ReportMismatch {
                detail: format!("report has {} services, manager {k}", report.services.len()),
            });
        }
        let mut stopwatch = self.telemetry.stopwatch();
        for (i, svc) in report.services.iter().enumerate() {
            self.monitor.update(i, &svc.pmcs)?;
        }
        let next_states = self.monitor.states()?;

        if let Some(pending) = self.pending.take() {
            let mut rewards = Vec::with_capacity(k);
            for (i, svc) in report.services.iter().enumerate() {
                let spec = &self.config.services[i];
                let dvfs_idx = pending.actions[i][1];
                let cores = pending.actions[i][0] + 1;
                let est = self
                    .config
                    .power_model
                    .estimate(svc.load_fraction, cores, dvfs_idx);
                let power_rew = self
                    .config
                    .reward
                    .power_reward(self.config.peak_power_w, est);
                rewards.push(
                    self.config
                        .reward
                        .reward(svc.p99_ms, spec.qos_ms, power_rew) as f32,
                );
            }
            match self.agent.observe(MultiTransition {
                states: pending.states,
                actions: pending.actions,
                rewards,
                next_states,
            }) {
                Ok(()) => {}
                // A non-finite state or reward slipped past the monitor
                // (e.g. corrupted telemetry the platform did not flag):
                // drop the transition rather than abort the epoch — the
                // buffer must never hold it, but the control loop goes on.
                Err(RlError::NonFinite { .. }) => {
                    self.telemetry.counter_add("twig.dropped_transitions", 1);
                }
                Err(e) => return Err(TwigError::Learning(e)),
            }
            self.telemetry
                .phase_add(self.time, Phase::RewardUpdate, stopwatch.lap_ms());
            if !self.config.pure_exploitation {
                for _ in 0..self.config.train_steps_per_epoch.max(1) {
                    self.agent.train_step().map_err(TwigError::Learning)?;
                }
            }
            self.telemetry
                .phase_add(self.time, Phase::LearnStep, stopwatch.lap_ms());
        }
        self.time += 1;
        Ok(())
    }

    /// Transfer learning (Section IV): when service `index` is swapped for a
    /// new one at runtime, re-initialise the final network layers (keeping
    /// the trunk's shared representation), clear that service's monitor
    /// history and resume with a short re-exploration phase.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] for an unknown service and
    /// [`TwigError::Sim`] for an invalid spec.
    pub fn transfer_service(&mut self, index: usize, spec: ServiceSpec) -> Result<(), TwigError> {
        if index >= self.config.services.len() {
            return Err(TwigError::ReportMismatch {
                detail: format!("service {index}"),
            });
        }
        spec.validate().map_err(TwigError::Sim)?;
        self.config.services[index] = spec;
        self.monitor.reset_service(index)?;
        self.agent.transfer_reset();
        self.pending = None;
        self.last_actions = None;
        // Resume with a brief exploratory burst: restart the ε clock at the
        // 10%-exploration point rather than from scratch.
        let restart = self.config.epsilon.learning_phase_end();
        self.time = self.time.max(restart);
        Ok(())
    }

    /// Restarts the ε schedule from zero (learning from scratch).
    pub fn reset_exploration(&mut self) {
        self.time = 0;
    }

    /// Consumes an epoch with known-corrupted telemetry: the monitor is
    /// still updated (it substitutes last-known-good values for non-finite
    /// counters) and the epoch clock advances, but the pending transition
    /// is discarded so the replay buffer never stores a transition built on
    /// a garbage observation.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] when the report's service
    /// count differs.
    pub fn observe_degraded(&mut self, report: &EpochReport) -> Result<(), TwigError> {
        let k = self.config.services.len();
        if report.services.len() != k {
            return Err(TwigError::ReportMismatch {
                detail: format!("report has {} services, manager {k}", report.services.len()),
            });
        }
        for (i, svc) in report.services.iter().enumerate() {
            self.monitor.update(i, &svc.pmcs)?;
        }
        self.pending = None;
        self.telemetry.counter_add("twig.degraded_epochs", 1);
        self.time += 1;
        Ok(())
    }
}

impl Checkpointable for Twig {
    fn checkpoint_bytes(&self) -> Result<Vec<u8>, TwigError> {
        Ok(Twig::checkpoint_bytes(self))
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), TwigError> {
        self.restore_checkpoint_bytes(bytes)
    }
}

impl TaskManager for Twig {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self) -> Result<Vec<Assignment>, ManagerError> {
        Ok(Twig::decide(self)?)
    }

    fn observe(&mut self, report: &EpochReport) -> Result<(), ManagerError> {
        Ok(Twig::observe(self, report)?)
    }

    fn observe_degraded(&mut self, report: &EpochReport) -> Result<(), ManagerError> {
        Ok(Twig::observe_degraded(self, report)?)
    }

    fn decide_fallback(&mut self) -> Result<Vec<Assignment>, ManagerError> {
        Ok(Twig::decide_fallback(self)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{catalog, Server, ServerConfig};

    fn small_agent() -> MaBdqConfig {
        MaBdqConfig {
            trunk_hidden: vec![32, 24],
            head_hidden: 16,
            dropout: 0.0,
            batch_size: 8,
            buffer_capacity: 2048,
            ..MaBdqConfig::default()
        }
    }

    fn build_twig(services: Vec<ServiceSpec>) -> Twig {
        TwigBuilder::new()
            .services(services)
            .agent(small_agent())
            .epsilon(EpsilonSchedule::scaled(100))
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_services() {
        assert!(TwigBuilder::new().build().is_err());
    }

    #[test]
    fn names_follow_variant() {
        assert_eq!(build_twig(vec![catalog::masstree()]).name(), "twig-s");
        assert_eq!(
            build_twig(vec![catalog::masstree(), catalog::moses()]).name(),
            "twig-c"
        );
    }

    #[test]
    fn decide_produces_valid_assignments() {
        let mut twig = build_twig(vec![catalog::masstree(), catalog::xapian()]);
        let a = Twig::decide(&mut twig).unwrap();
        assert_eq!(a.len(), 2);
        for assignment in &a {
            assert!((1..=18).contains(&assignment.core_count()));
            assert!(twig.config.dvfs.index_of(assignment.freq).is_ok());
        }
    }

    #[test]
    fn full_loop_against_simulator() {
        let spec = catalog::masstree();
        let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 3).unwrap();
        server.set_load_fraction(0, 0.5).unwrap();
        let mut twig = build_twig(vec![spec]);
        for _ in 0..30 {
            let a = Twig::decide(&mut twig).unwrap();
            let report = server.step(&a).unwrap();
            Twig::observe(&mut twig, &report).unwrap();
        }
        assert_eq!(twig.time(), 30);
        assert!(twig.agent().buffer_len() > 0);
        assert!(twig.agent().steps() > 0, "training should have started");
    }

    #[test]
    fn pure_exploitation_skips_training() {
        let spec = catalog::masstree();
        let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 4).unwrap();
        let mut twig = build_twig(vec![spec]);
        twig.set_pure_exploitation(true);
        for _ in 0..20 {
            let a = Twig::decide(&mut twig).unwrap();
            let report = server.step(&a).unwrap();
            Twig::observe(&mut twig, &report).unwrap();
        }
        assert_eq!(twig.agent().steps(), 0);
    }

    #[test]
    fn epsilon_follows_schedule() {
        let mut twig = build_twig(vec![catalog::moses()]);
        assert_eq!(twig.epsilon(), 1.0);
        let mut server = Server::new(ServerConfig::default(), vec![catalog::moses()], 5).unwrap();
        for _ in 0..100 {
            let a = Twig::decide(&mut twig).unwrap();
            let report = server.step(&a).unwrap();
            Twig::observe(&mut twig, &report).unwrap();
        }
        assert!((twig.epsilon() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn observe_rejects_mismatched_report() {
        let mut twig = build_twig(vec![catalog::masstree(), catalog::moses()]);
        let mut server =
            Server::new(ServerConfig::default(), vec![catalog::masstree()], 6).unwrap();
        let report = server
            .step(&[twig_sim::Assignment::first_n(
                4,
                DvfsLadder::default().max(),
            )])
            .unwrap();
        assert!(Twig::observe(&mut twig, &report).is_err());
    }

    #[test]
    fn transfer_service_resets_monitor_and_bumps_time() {
        let mut twig = build_twig(vec![catalog::moses(), catalog::masstree()]);
        let mut server = Server::new(
            ServerConfig::default(),
            vec![catalog::moses(), catalog::masstree()],
            7,
        )
        .unwrap();
        for _ in 0..10 {
            let a = Twig::decide(&mut twig).unwrap();
            let report = server.step(&a).unwrap();
            Twig::observe(&mut twig, &report).unwrap();
        }
        twig.transfer_service(0, catalog::xapian()).unwrap();
        assert_eq!(twig.config().services[0].name, "xapian");
        // Time jumps to the end of the learning phase => epsilon at 0.1.
        assert!((twig.epsilon() - 0.1).abs() < 1e-9);
        assert!(twig.transfer_service(5, catalog::xapian()).is_err());
    }

    #[test]
    fn action_stickiness_damps_oscillation() {
        let spec = catalog::masstree();
        let run = |stickiness: f64| {
            let mut twig = TwigBuilder::new()
                .services(vec![spec.clone()])
                .agent(small_agent())
                .epsilon(EpsilonSchedule::new(0.1, 0.0, 1, 2)) // exploit from the start
                .action_stickiness(stickiness)
                .seed(21)
                .build()
                .unwrap();
            let mut server = Server::new(ServerConfig::default(), vec![spec.clone()], 22).unwrap();
            server.set_load_fraction(0, 0.5).unwrap();
            let mut changes = 0;
            let mut prev_cores = None;
            for _ in 0..60 {
                let a = Twig::decide(&mut twig).unwrap();
                if let Some(p) = prev_cores {
                    if p != a[0].core_count() {
                        changes += 1;
                    }
                }
                prev_cores = Some(a[0].core_count());
                let r = server.step(&a).unwrap();
                Twig::observe(&mut twig, &r).unwrap();
            }
            changes
        };
        let free = run(0.0);
        let sticky = run(0.25);
        assert!(
            sticky <= free,
            "hysteresis should not increase switching ({sticky} vs {free})"
        );
    }

    #[test]
    fn trait_object_usable() {
        let twig = build_twig(vec![catalog::masstree()]);
        let mut boxed: Box<dyn TaskManager> = Box::new(twig);
        assert_eq!(boxed.name(), "twig-s");
        assert!(boxed.decide().is_ok());
    }
}
