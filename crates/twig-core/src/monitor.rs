use crate::TwigError;
use std::collections::VecDeque;
use twig_sim::pmc::{calibration_maxima, CounterId, PmcSample, NUM_COUNTERS};
use twig_stats::{MaxNormScaler, Pca};

/// The Twig system monitor (Section III-B1): per service it keeps the last
/// η raw counter samples, reduces noise with a weighted sum (recent samples
/// weigh more), and feature-scales the result to `[0, 1]` with max-value
/// normalisation against the microbenchmark calibration maxima.
///
/// # Examples
///
/// ```
/// use twig_core::SystemMonitor;
/// use twig_sim::PmcSample;
///
/// let mut mon = SystemMonitor::new(2, 5, 18).unwrap();
/// mon.update(0, &PmcSample::zero()).unwrap();
/// let state = mon.state(0).unwrap();
/// assert_eq!(state.len(), twig_sim::NUM_COUNTERS);
/// assert!(state.iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
#[derive(Debug, Clone)]
pub struct SystemMonitor {
    histories: Vec<VecDeque<PmcSample>>,
    last_good: Vec<PmcSample>,
    degraded: Vec<bool>,
    eta: usize,
    scaler: MaxNormScaler,
}

impl SystemMonitor {
    /// Creates a monitor for `services` services with smoothing window
    /// `eta` (the paper uses η = 5) on a platform with `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::InvalidConfig`] for zero services, window or
    /// cores.
    pub fn new(services: usize, eta: usize, cores: usize) -> Result<Self, TwigError> {
        if services == 0 || eta == 0 {
            return Err(TwigError::InvalidConfig {
                detail: format!("{services} services, eta {eta}"),
            });
        }
        let maxima = calibration_maxima(cores).map_err(TwigError::Sim)?;
        let scaler = MaxNormScaler::new(maxima.to_vec()).map_err(TwigError::Stats)?;
        Ok(SystemMonitor {
            histories: vec![VecDeque::with_capacity(eta); services],
            last_good: vec![PmcSample::zero(); services],
            degraded: vec![false; services],
            eta,
            scaler,
        })
    }

    /// Number of monitored services.
    pub fn services(&self) -> usize {
        self.histories.len()
    }

    /// Records one epoch's raw counters for service `index`.
    ///
    /// Non-finite counter readings (NaN/Inf from a dropped or corrupted PMC
    /// read) never enter the history: each bad entry is replaced with that
    /// counter's last-known-good value and the service is flagged degraded
    /// until a fully clean sample arrives.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] for an unknown service.
    pub fn update(&mut self, index: usize, sample: &PmcSample) -> Result<(), TwigError> {
        let history = self
            .histories
            .get_mut(index)
            .ok_or_else(|| TwigError::ReportMismatch {
                detail: format!("service {index}"),
            })?;
        let mut clean = *sample;
        let mut any_bad = false;
        for (i, &v) in sample.as_array().iter().enumerate() {
            if !v.is_finite() {
                any_bad = true;
                clean.set(CounterId::ALL[i], self.last_good[index].as_array()[i]);
            }
        }
        self.degraded[index] = any_bad;
        if !any_bad {
            self.last_good[index] = clean;
        }
        if history.len() == self.eta {
            history.pop_front();
        }
        history.push_back(clean);
        Ok(())
    }

    /// Whether service `index`'s most recent sample contained corrupted
    /// (non-finite) counter readings that had to be patched.
    pub fn is_degraded(&self, index: usize) -> bool {
        self.degraded.get(index).copied().unwrap_or(false)
    }

    /// Per-service degraded flags, in index order.
    pub fn degraded_flags(&self) -> &[bool] {
        &self.degraded
    }

    /// The smoothed, scaled state vector for service `index` — the MDP state
    /// of Table I. All zeros until the first update.
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] for an unknown service.
    pub fn state(&self, index: usize) -> Result<Vec<f32>, TwigError> {
        let history = self
            .histories
            .get(index)
            .ok_or_else(|| TwigError::ReportMismatch {
                detail: format!("service {index}"),
            })?;
        if history.is_empty() {
            return Ok(vec![0.0; NUM_COUNTERS]);
        }
        // Weighted sum over the window: weight i+1 for the i-th oldest,
        // normalised — recent samples dominate, old noise decays.
        let total_weight: f64 = (1..=history.len()).map(|w| w as f64).sum();
        let mut smoothed = [0.0f64; NUM_COUNTERS];
        for (i, sample) in history.iter().enumerate() {
            let w = (i + 1) as f64 / total_weight;
            for (acc, &v) in smoothed.iter_mut().zip(sample.as_array()) {
                *acc += w * v;
            }
        }
        let scaled = self.scaler.scale(&smoothed).map_err(TwigError::Stats)?;
        // Belt and braces: max_norm_scale already clamps to [0, 1] and maps
        // NaN to 0, so the MDP state can never carry a non-finite feature.
        Ok(scaled
            .into_iter()
            .map(|v| (v as f32).clamp(0.0, 1.0))
            .collect())
    }

    /// All services' states, in index order.
    ///
    /// # Errors
    ///
    /// Propagates [`state`](Self::state) errors.
    pub fn states(&self) -> Result<Vec<Vec<f32>>, TwigError> {
        (0..self.services()).map(|i| self.state(i)).collect()
    }

    /// Clears the history of one service (used when a service is swapped
    /// out at runtime).
    ///
    /// # Errors
    ///
    /// Returns [`TwigError::ReportMismatch`] for an unknown service.
    pub fn reset_service(&mut self, index: usize) -> Result<(), TwigError> {
        let history = self
            .histories
            .get_mut(index)
            .ok_or_else(|| TwigError::ReportMismatch {
                detail: format!("service {index}"),
            })?;
        history.clear();
        Ok(())
    }
}

/// One counter's rank in the selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRanking {
    /// The counter.
    pub counter: CounterId,
    /// Importance score (higher = more vital), from the PCA loadings.
    pub importance: f64,
    /// Absolute Pearson correlation with tail latency.
    pub latency_correlation: f64,
}

/// The counter-selection methodology of Section III-B1 (after Malik et al.):
/// gather all counters while sweeping load/cores/DVFS, correlate each with
/// tail latency (Pearson), run PCA keeping components covering ≥ 95 % of the
/// co-variance, and rank counters by their PCA loading importance. This is
/// what produces the Table I "importance" column.
///
/// `profile` pairs each epoch's raw counters with its measured tail latency.
///
/// # Errors
///
/// Returns [`TwigError::InvalidConfig`] for fewer than 3 profile points, and
/// propagates statistics errors.
///
/// # Examples
///
/// ```
/// use twig_core::select_counters;
/// use twig_sim::PmcSample;
///
/// let profile: Vec<(PmcSample, f64)> = (0..50)
///     .map(|i| {
///         let mut s = PmcSample::zero();
///         let load = i as f64;
///         for c in twig_sim::CounterId::ALL {
///             s.set(c, load * (1.0 + c.index() as f64));
///         }
///         (s, load * 0.1)
///     })
///     .collect();
/// let ranking = select_counters(&profile, 0.95).unwrap();
/// assert_eq!(ranking.len(), twig_sim::NUM_COUNTERS);
/// ```
pub fn select_counters(
    profile: &[(PmcSample, f64)],
    covariance_threshold: f64,
) -> Result<Vec<CounterRanking>, TwigError> {
    if profile.len() < 3 {
        return Err(TwigError::InvalidConfig {
            detail: format!("{} profile points (need at least 3)", profile.len()),
        });
    }
    let latencies: Vec<f64> = profile.iter().map(|(_, l)| *l).collect();
    let columns: Vec<Vec<f64>> = (0..NUM_COUNTERS)
        .map(|c| profile.iter().map(|(s, _)| s.as_array()[c]).collect())
        .collect();

    // Pearson correlation of each counter with tail latency; dead counters
    // get zero.
    let correlations: Vec<f64> = columns
        .iter()
        .map(|col| {
            twig_stats::pearson(col, &latencies)
                .map(f64::abs)
                .unwrap_or(0.0)
        })
        .collect();

    // PCA over the (max-scaled) counter matrix.
    let maxima: Vec<f64> = columns
        .iter()
        .map(|col| col.iter().cloned().fold(0.0, f64::max).max(1e-12))
        .collect();
    let samples: Vec<Vec<f64>> = profile
        .iter()
        .map(|(s, _)| {
            s.as_array()
                .iter()
                .zip(&maxima)
                .map(|(&v, &m)| v / m)
                .collect()
        })
        .collect();
    let model = Pca::new().fit(&samples).map_err(TwigError::Stats)?;
    let k = model.components_for_covariance(covariance_threshold);
    let importance = model.feature_importance(k);

    // Blend PCA importance with latency correlation so counters that are
    // vital *and* latency-relevant rank first (Malik et al.'s intent).
    let mut ranking: Vec<CounterRanking> = CounterId::ALL
        .iter()
        .map(|&counter| {
            let i = counter.index();
            CounterRanking {
                counter,
                importance: importance[i] * correlations[i].max(1e-6),
                latency_correlation: correlations[i],
            }
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .expect("NaN importance")
    });
    Ok(ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::pmc::{synthesize, Activity};
    use twig_stats::rng::Xoshiro256;

    #[test]
    fn rejects_bad_config() {
        assert!(SystemMonitor::new(0, 5, 18).is_err());
        assert!(SystemMonitor::new(2, 0, 18).is_err());
        assert!(SystemMonitor::new(2, 5, 0).is_err());
    }

    #[test]
    fn state_zero_before_first_update() {
        let mon = SystemMonitor::new(1, 5, 18).unwrap();
        assert_eq!(mon.state(0).unwrap(), vec![0.0; NUM_COUNTERS]);
    }

    #[test]
    fn window_slides_and_weights_recent_samples() {
        let mut mon = SystemMonitor::new(1, 3, 18).unwrap();
        let mut hi = PmcSample::zero();
        hi.set(CounterId::InstructionRetired, 1.0e9);
        let lo = PmcSample::zero();
        // Fill with high values, then push lows; state must decay.
        for _ in 0..3 {
            mon.update(0, &hi).unwrap();
        }
        let s_full = mon.state(0).unwrap()[CounterId::InstructionRetired.index()];
        mon.update(0, &lo).unwrap();
        let s_one_lo = mon.state(0).unwrap()[CounterId::InstructionRetired.index()];
        mon.update(0, &lo).unwrap();
        mon.update(0, &lo).unwrap();
        let s_all_lo = mon.state(0).unwrap()[CounterId::InstructionRetired.index()];
        assert!(s_full > s_one_lo, "{s_full} vs {s_one_lo}");
        assert!(s_one_lo > s_all_lo);
        assert_eq!(s_all_lo, 0.0);
    }

    #[test]
    fn recent_sample_outweighs_old_one() {
        let mut mon = SystemMonitor::new(1, 2, 18).unwrap();
        let mut hi = PmcSample::zero();
        hi.set(CounterId::LlcMisses, 1.0e8);
        let lo = PmcSample::zero();
        // old = hi, new = lo  vs  old = lo, new = hi
        mon.update(0, &hi).unwrap();
        mon.update(0, &lo).unwrap();
        let hi_then_lo = mon.state(0).unwrap()[CounterId::LlcMisses.index()];
        let mut mon2 = SystemMonitor::new(1, 2, 18).unwrap();
        mon2.update(0, &lo).unwrap();
        mon2.update(0, &hi).unwrap();
        let lo_then_hi = mon2.state(0).unwrap()[CounterId::LlcMisses.index()];
        assert!(lo_then_hi > hi_then_lo);
    }

    #[test]
    fn unknown_service_errors() {
        let mut mon = SystemMonitor::new(1, 2, 18).unwrap();
        assert!(mon.update(1, &PmcSample::zero()).is_err());
        assert!(mon.state(1).is_err());
        assert!(mon.reset_service(1).is_err());
    }

    #[test]
    fn reset_clears_history() {
        let mut mon = SystemMonitor::new(1, 2, 18).unwrap();
        let mut s = PmcSample::zero();
        s.set(CounterId::UopsRetired, 1e9);
        mon.update(0, &s).unwrap();
        mon.reset_service(0).unwrap();
        assert_eq!(mon.state(0).unwrap(), vec![0.0; NUM_COUNTERS]);
    }

    #[test]
    fn select_counters_needs_data() {
        assert!(select_counters(&[], 0.95).is_err());
    }

    #[test]
    fn non_finite_samples_fall_back_to_last_known_good() {
        let mut mon = SystemMonitor::new(1, 2, 18).unwrap();
        let mut good = PmcSample::zero();
        good.set(CounterId::InstructionRetired, 1.0e9);
        mon.update(0, &good).unwrap();
        assert!(!mon.is_degraded(0));
        let clean_state = mon.state(0).unwrap();

        let mut bad = good;
        bad.set(CounterId::InstructionRetired, f64::NAN);
        bad.set(CounterId::LlcMisses, f64::INFINITY);
        mon.update(0, &bad).unwrap();
        assert!(mon.is_degraded(0));
        let state = mon.state(0).unwrap();
        assert!(state.iter().all(|v| v.is_finite()));
        assert!(state.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The NaN counter was patched with the last-known-good reading, so
        // the smoothed state is unchanged for that feature.
        assert_eq!(
            state[CounterId::InstructionRetired.index()],
            clean_state[CounterId::InstructionRetired.index()]
        );

        // A clean sample clears the degraded flag.
        mon.update(0, &good).unwrap();
        assert!(!mon.is_degraded(0));
    }

    #[test]
    fn all_nan_first_sample_stays_finite() {
        let mut mon = SystemMonitor::new(1, 3, 18).unwrap();
        let mut bad = PmcSample::zero();
        for c in CounterId::ALL {
            bad.set(c, f64::NAN);
        }
        mon.update(0, &bad).unwrap();
        assert!(mon.is_degraded(0));
        let state = mon.state(0).unwrap();
        assert_eq!(state, vec![0.0; NUM_COUNTERS]);
    }

    #[test]
    fn select_counters_ranks_latency_tracking_counters_first() {
        // Build a synthetic profile where activity (and latency) vary with
        // load; all counters correlate, but noise-only dead counters rank
        // last.
        let spec = twig_sim::catalog::masstree();
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut profile = Vec::new();
        for i in 0..200 {
            let load = 0.1 + 0.8 * (i % 20) as f64 / 20.0;
            let act = Activity {
                weighted_busy_core_s: 10.0 * load,
                busy_core_s: 10.0 * load,
                cpu_work_ms: 8000.0 * load,
                mem_work_ms: 3000.0 * load,
                cache_pressure: 0.0,
                clock_ghz: 2.0,
            };
            let mut sample = synthesize(&spec, &act, &mut rng);
            // Make one counter pure noise.
            sample.set(CounterId::UnhaltedReferenceCycles, (i % 7) as f64);
            let latency = 0.3 + 2.0 * load * load;
            profile.push((sample, latency));
        }
        let ranking = select_counters(&profile, 0.95).unwrap();
        assert_eq!(ranking.len(), NUM_COUNTERS);
        // The noise counter must not win.
        assert_ne!(ranking[0].counter, CounterId::UnhaltedReferenceCycles);
        // Importances are sorted descending.
        for w in ranking.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
        // The top counter genuinely tracks latency.
        assert!(ranking[0].latency_correlation > 0.5);
    }
}
