/// Piecewise-linear annealing of a scalar between anchor points.
///
/// Used for the prioritised-replay β (0.4 → 1.0).
///
/// # Examples
///
/// ```
/// use twig_rl::LinearAnneal;
///
/// let b = LinearAnneal::new(0.4, 1.0, 100);
/// assert_eq!(b.value_at(0), 0.4);
/// assert!((b.value_at(50) - 0.7).abs() < 1e-9);
/// assert_eq!(b.value_at(1000), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearAnneal {
    start: f64,
    end: f64,
    steps: u64,
}

impl LinearAnneal {
    /// Anneals from `start` to `end` over `steps` steps, then holds `end`.
    pub fn new(start: f64, end: f64, steps: u64) -> Self {
        LinearAnneal { start, end, steps }
    }

    /// Value at step `t`.
    pub fn value_at(&self, t: u64) -> f64 {
        if self.steps == 0 || t >= self.steps {
            return self.end;
        }
        let frac = t as f64 / self.steps as f64;
        self.start + (self.end - self.start) * frac
    }
}

/// The paper's two-phase ε schedule (Section IV): ε starts at 1, "drops to
/// 0.1 over a period of 10 000 s and drops to 0.01 in 25 000 s", linearly in
/// each phase, then holds the floor.
///
/// # Examples
///
/// ```
/// use twig_rl::EpsilonSchedule;
///
/// let eps = EpsilonSchedule::paper();
/// assert_eq!(eps.value_at(0), 1.0);
/// assert!((eps.value_at(10_000) - 0.1).abs() < 1e-9);
/// assert!((eps.value_at(25_000) - 0.01).abs() < 1e-9);
/// assert_eq!(eps.value_at(1_000_000), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    phase1: LinearAnneal,
    phase2: LinearAnneal,
    phase1_steps: u64,
    phase2_steps: u64,
}

impl EpsilonSchedule {
    /// Builds a two-phase schedule: `1 → mid` over `phase1_steps`, then
    /// `mid → floor` by `phase2_steps` (absolute).
    ///
    /// # Panics
    ///
    /// Panics if `phase2_steps < phase1_steps`.
    pub fn new(mid: f64, floor: f64, phase1_steps: u64, phase2_steps: u64) -> Self {
        assert!(
            phase2_steps >= phase1_steps,
            "phase 2 ({phase2_steps}) ends before phase 1 ({phase1_steps})"
        );
        EpsilonSchedule {
            phase1: LinearAnneal::new(1.0, mid, phase1_steps),
            phase2: LinearAnneal::new(mid, floor, phase2_steps - phase1_steps),
            phase1_steps,
            phase2_steps,
        }
    }

    /// The paper's hyper-parameters: 1 → 0.1 over 10 000 steps, → 0.01 at
    /// 25 000 steps.
    pub fn paper() -> Self {
        Self::new(0.1, 0.01, 10_000, 25_000)
    }

    /// A proportionally scaled schedule for shortened (`--fast`)
    /// experiments: the same shape compressed so phase 1 ends at
    /// `learning_steps`.
    pub fn scaled(learning_steps: u64) -> Self {
        Self::new(
            0.1,
            0.01,
            learning_steps,
            learning_steps.saturating_mul(5) / 2,
        )
    }

    /// ε at step `t`.
    pub fn value_at(&self, t: u64) -> f64 {
        if t < self.phase1_steps {
            self.phase1.value_at(t)
        } else {
            self.phase2.value_at(t - self.phase1_steps)
        }
    }

    /// The step at which the exploratory phase 1 ends (the paper calls the
    /// first 10 000 s the "learning phase").
    pub fn learning_phase_end(&self) -> u64 {
        self.phase1_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::{Rng, Xoshiro256};

    #[test]
    fn zero_steps_is_constant_end() {
        let a = LinearAnneal::new(5.0, 1.0, 0);
        assert_eq!(a.value_at(0), 1.0);
    }

    #[test]
    fn paper_schedule_anchors() {
        let e = EpsilonSchedule::paper();
        assert_eq!(e.value_at(0), 1.0);
        assert!((e.value_at(5_000) - 0.55).abs() < 1e-9);
        assert!((e.value_at(10_000) - 0.1).abs() < 1e-9);
        assert!((e.value_at(17_500) - 0.055).abs() < 1e-9);
        assert_eq!(e.learning_phase_end(), 10_000);
    }

    #[test]
    fn scaled_schedule_preserves_shape() {
        let e = EpsilonSchedule::scaled(1000);
        assert_eq!(e.value_at(0), 1.0);
        assert!((e.value_at(1000) - 0.1).abs() < 1e-9);
        assert!((e.value_at(2500) - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "phase 2")]
    fn rejects_inverted_phases() {
        EpsilonSchedule::new(0.1, 0.01, 100, 50);
    }

    #[test]
    fn epsilon_monotone_nonincreasing() {
        let e = EpsilonSchedule::paper();
        let mut rng = Xoshiro256::seed_from_u64(0xe5);
        for _ in 0..500 {
            let t1 = rng.next_u64() % 30_000;
            let t2 = rng.next_u64() % 30_000;
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            assert!(e.value_at(lo) >= e.value_at(hi) - 1e-12);
        }
    }

    #[test]
    fn epsilon_bounded() {
        let e = EpsilonSchedule::paper();
        let mut rng = Xoshiro256::seed_from_u64(0xeb);
        for _ in 0..500 {
            let t = rng.next_u64() % 1_000_000;
            let v = e.value_at(t);
            assert!((0.01..=1.0).contains(&v), "epsilon({t}) = {v}");
        }
    }
}
