use crate::{MaBdq, MaBdqConfig, MultiTransition, RlError, TrainStats};

/// Single-agent branching dueling Q-network — the network behind Twig-S and
/// the classic architecture of Tavakoli et al. (Figure 2 of the paper).
///
/// This is exactly a [`MaBdq`] with one agent, wrapped so single-service
/// callers don't juggle one-element vectors.
///
/// # Examples
///
/// ```
/// use twig_rl::{Bdq, MaBdqConfig};
///
/// let config = MaBdqConfig {
///     state_dim: 4,
///     branches: vec![6, 3],
///     trunk_hidden: vec![16],
///     ..MaBdqConfig::default()
/// };
/// let mut bdq = Bdq::new(config).unwrap();
/// let actions = bdq.select_actions(&[0.1, 0.2, 0.3, 0.4], 0.0).unwrap();
/// assert_eq!(actions.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Bdq {
    inner: MaBdq,
}

impl Bdq {
    /// Builds a single-agent BDQ; `config.agents` is forced to 1.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: MaBdqConfig) -> Result<Self, RlError> {
        Ok(Bdq {
            inner: MaBdq::new(MaBdqConfig {
                agents: 1,
                ..config
            })?,
        })
    }

    /// ε-greedy per-branch action selection: `actions[d]`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly sized state.
    pub fn select_actions(&mut self, state: &[f32], epsilon: f64) -> Result<Vec<usize>, RlError> {
        let mut actions = self.inner.select_actions(&[state.to_vec()], epsilon)?;
        Ok(actions.remove(0))
    }

    /// Q-values for one state: `q[d][a]`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly sized state.
    pub fn q_values(&mut self, state: &[f32]) -> Result<Vec<Vec<f32>>, RlError> {
        let mut q = self.inner.q_values(&[state.to_vec()])?;
        Ok(q.remove(0))
    }

    /// Arms the fixed-point fallback snapshot (see
    /// [`MaBdq::refresh_quantized`]).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] when the network is too wide
    /// to quantize.
    pub fn refresh_quantized(&mut self) -> Result<(), RlError> {
        self.inner.refresh_quantized()
    }

    /// Greedy action selection on the fixed-point snapshot (see
    /// [`MaBdq::select_actions_quantized_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly sized state.
    pub fn select_actions_quantized(&mut self, state: &[f32]) -> Result<Vec<usize>, RlError> {
        let mut actions = self.inner.select_actions_quantized(&[state.to_vec()])?;
        Ok(actions.remove(0))
    }

    /// Stores one transition.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly shaped
    /// transition.
    pub fn observe(
        &mut self,
        state: &[f32],
        actions: &[usize],
        reward: f32,
        next_state: &[f32],
    ) -> Result<(), RlError> {
        self.inner.observe(MultiTransition {
            states: vec![state.to_vec()],
            actions: vec![actions.to_vec()],
            rewards: vec![reward],
            next_states: vec![next_state.to_vec()],
        })
    }

    /// One gradient step (see [`MaBdq::train_step`]).
    ///
    /// # Errors
    ///
    /// Propagates replay-buffer errors.
    pub fn train_step(&mut self) -> Result<Option<TrainStats>, RlError> {
        self.inner.train_step()
    }

    /// Transfer learning: re-initialise the final layers (see
    /// [`MaBdq::transfer_reset`]).
    pub fn transfer_reset(&mut self) {
        self.inner.transfer_reset();
    }

    /// The underlying multi-agent implementation.
    pub fn as_multi_agent(&self) -> &MaBdq {
        &self.inner
    }

    /// Completed gradient steps.
    pub fn steps(&self) -> u64 {
        self.inner.steps()
    }

    /// Transitions currently buffered.
    pub fn buffer_len(&self) -> usize {
        self.inner.buffer_len()
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    /// Section V-B1 memory metric (online + target networks).
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MaBdqConfig {
        MaBdqConfig {
            state_dim: 2,
            branches: vec![4, 3],
            trunk_hidden: vec![16],
            head_hidden: 12,
            dropout: 0.0,
            gamma: 0.0,
            batch_size: 8,
            buffer_capacity: 512,
            seed: 3,
            ..MaBdqConfig::default()
        }
    }

    #[test]
    fn forces_single_agent() {
        let bdq = Bdq::new(MaBdqConfig {
            agents: 7,
            ..config()
        })
        .unwrap();
        assert_eq!(bdq.as_multi_agent().config().agents, 1);
    }

    #[test]
    fn action_and_q_shapes() {
        let mut bdq = Bdq::new(config()).unwrap();
        let a = bdq.select_actions(&[0.0, 1.0], 0.0).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a[0] < 4 && a[1] < 3);
        let q = bdq.q_values(&[0.0, 1.0]).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].len(), 4);
        assert_eq!(q[1].len(), 3);
    }

    #[test]
    fn observe_and_train_roundtrip() {
        let mut bdq = Bdq::new(config()).unwrap();
        for i in 0..8 {
            bdq.observe(&[i as f32, 0.0], &[0, 0], 1.0, &[i as f32, 0.0])
                .unwrap();
        }
        assert_eq!(bdq.buffer_len(), 8);
        assert!(bdq.train_step().unwrap().is_some());
        assert_eq!(bdq.steps(), 1);
    }

    #[test]
    fn wrong_state_dim_rejected() {
        let mut bdq = Bdq::new(config()).unwrap();
        assert!(bdq.select_actions(&[0.0], 0.0).is_err());
        assert!(bdq.observe(&[0.0], &[0, 0], 0.0, &[0.0, 0.0]).is_err());
    }
}
