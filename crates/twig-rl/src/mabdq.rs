use crate::{EpsilonSchedule, MaBdqCheckpoint, PerBatch, PrioritizedReplay, RlError};
use twig_nn::{Adam, Dense, Dropout, Mlp, QuantizedMlp, Relu, Tensor};
use twig_stats::rng::{Rng, Xoshiro256};
use twig_telemetry::Telemetry;

/// Configuration of a [`MaBdq`] agent.
///
/// [`MaBdqConfig::paper`] reproduces Section IV exactly (512/256 trunk,
/// 128-unit branch layers, dropout 0.5, Adam lr 0.0025, batch 64, γ 0.99,
/// target sync every 150 steps, PER 10⁶/α 0.6/β 0.4 → 1). The `Default`
/// instance keeps the same learning hyper-parameters but a smaller network
/// and milder dropout, which trains orders of magnitude faster at the same
/// qualitative behaviour — the experiment harness notes wherever it relies
/// on this.
#[derive(Debug, Clone, PartialEq)]
pub struct MaBdqConfig {
    /// Number of learning agents (colocated services), `K`.
    pub agents: usize,
    /// State dimensionality per agent (11 PMCs for Twig).
    pub state_dim: usize,
    /// Discrete action count per branch (e.g. `[18, 9]`: cores × DVFS).
    pub branches: Vec<usize>,
    /// Hidden-layer widths of the shared representation trunk.
    pub trunk_hidden: Vec<usize>,
    /// Hidden width of each value/advantage head.
    pub head_hidden: usize,
    /// Dropout probability after each fully connected layer.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Steps between target-network synchronisations.
    pub target_update_every: u64,
    /// Prioritised-replay capacity.
    pub buffer_capacity: usize,
    /// PER priority exponent α.
    pub per_alpha: f64,
    /// PER importance-sampling exponent β at step 0.
    pub per_beta0: f64,
    /// Steps over which β anneals to 1.
    pub per_beta_steps: u64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// RNG seed.
    pub seed: u64,
    /// Per-agent divergence quarantine (disabled by default; see
    /// [`QuarantineConfig`]).
    pub quarantine: QuarantineConfig,
}

impl Default for MaBdqConfig {
    fn default() -> Self {
        MaBdqConfig {
            agents: 1,
            state_dim: 11,
            branches: vec![18, 9],
            trunk_hidden: vec![96, 64],
            head_hidden: 48,
            dropout: 0.05,
            lr: 0.0025,
            gamma: 0.99,
            batch_size: 64,
            target_update_every: 150,
            buffer_capacity: 1_000_000,
            per_alpha: 0.6,
            per_beta0: 0.4,
            per_beta_steps: 100_000,
            grad_clip: 10.0,
            seed: 0,
            quarantine: QuarantineConfig::default(),
        }
    }
}

impl MaBdqConfig {
    /// The exact architecture and hyper-parameters of Section IV.
    pub fn paper() -> Self {
        MaBdqConfig {
            trunk_hidden: vec![512, 256],
            head_hidden: 128,
            dropout: 0.5,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), RlError> {
        let fail = |detail: String| Err(RlError::InvalidConfig { detail });
        if self.agents == 0 {
            return fail("zero agents".into());
        }
        if self.state_dim == 0 {
            return fail("zero state dim".into());
        }
        if self.branches.is_empty() || self.branches.contains(&0) {
            return fail(format!("branches {:?}", self.branches));
        }
        if self.trunk_hidden.is_empty() || self.trunk_hidden.contains(&0) {
            return fail(format!("trunk hidden {:?}", self.trunk_hidden));
        }
        if self.head_hidden == 0 || self.batch_size == 0 || self.buffer_capacity == 0 {
            return fail("zero head width, batch size or buffer capacity".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return fail(format!("dropout {}", self.dropout));
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return fail(format!("gamma {}", self.gamma));
        }
        self.quarantine.validate()?;
        Ok(())
    }
}

/// Per-agent divergence quarantine — the multi-agent analogue of the
/// governor's fallback. Each agent's batch-mean |TD error| and value-head
/// gradient norm are tracked against EWMA baselines; when a signal goes
/// non-finite (or, after warm-up, blows past `trip_multiple` × its
/// baseline), that agent's value head is rolled back to its last-known-good
/// snapshot and its learning is frozen for `probation_steps` train calls
/// while the other K−1 agents keep training. After probation the agent is
/// re-admitted with fresh baselines and a fresh snapshot.
///
/// Disabled by default. While no agent is quarantined the detector only
/// reads already-computed quantities — it draws no randomness and performs
/// no extra float operations in the gradient path, so learning trajectories
/// are bit-identical to a run without it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineConfig {
    /// Master switch.
    pub enabled: bool,
    /// Trip when a signal exceeds this multiple of its EWMA baseline.
    pub trip_multiple: f64,
    /// Baseline samples required before the multiple test arms
    /// (non-finite or overflow-scale signals trip immediately regardless).
    pub warmup_steps: u64,
    /// Train calls an offending agent stays frozen before re-admission.
    pub probation_steps: u64,
    /// Healthy train calls between last-known-good snapshots.
    pub snapshot_every: u64,
    /// EWMA smoothing factor for the baselines, in (0, 1].
    pub baseline_alpha: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            enabled: false,
            trip_multiple: 8.0,
            warmup_steps: 100,
            probation_steps: 200,
            snapshot_every: 50,
            baseline_alpha: 0.05,
        }
    }
}

impl QuarantineConfig {
    /// A copy of `self` with the master switch on.
    pub fn armed(mut self) -> Self {
        self.enabled = true;
        self
    }

    fn validate(&self) -> Result<(), RlError> {
        if !self.enabled {
            return Ok(());
        }
        let fail = |detail: String| Err(RlError::InvalidConfig { detail });
        if !self.trip_multiple.is_finite() || self.trip_multiple <= 1.0 {
            return fail(format!("quarantine trip multiple {}", self.trip_multiple));
        }
        if self.probation_steps == 0 || self.snapshot_every == 0 {
            return fail("quarantine probation/snapshot interval must be positive".into());
        }
        if !(self.baseline_alpha > 0.0 && self.baseline_alpha <= 1.0) {
            return fail(format!("quarantine baseline alpha {}", self.baseline_alpha));
        }
        Ok(())
    }
}

/// Aggregate quarantine counters, see [`MaBdq::quarantine_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineStats {
    /// Divergence trips (rollback + freeze events) across all agents.
    pub trips: u64,
    /// Agents re-admitted after serving probation.
    pub readmissions: u64,
    /// Agents currently frozen.
    pub frozen_agents: usize,
}

/// A TD error at or beyond this magnitude would overflow the f32 squared
/// loss, so it trips quarantine immediately even before baseline warm-up.
const QUARANTINE_HARD_TD_LIMIT: f64 = 1e18;
/// Baselines never shrink below this floor when forming trip thresholds, so
/// a near-zero warm-up baseline cannot make ordinary noise look divergent.
const QUARANTINE_BASELINE_FLOOR: f64 = 1e-8;

/// Per-agent divergence-detection state (only populated while quarantine is
/// enabled).
#[derive(Debug, Clone)]
struct AgentGuard {
    /// EWMA of the agent's batch-mean |TD error|.
    td_baseline: f64,
    /// EWMA of the agent's value-head gradient norm.
    grad_baseline: f64,
    /// Healthy samples folded into the baselines so far.
    baseline_samples: u64,
    /// Train-clock value at which probation ends; 0 = not frozen.
    frozen_until: u64,
    /// Last-known-good flat value-head parameters.
    snapshot: Vec<f32>,
    /// Healthy train calls since the snapshot was refreshed.
    snapshot_age: u64,
}

/// One multi-agent transition: everything all `K` agents observed and did in
/// one decision epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTransition {
    /// Per-agent state at decision time (`K × state_dim`).
    pub states: Vec<Vec<f32>>,
    /// Per-agent, per-branch action indices (`K × D`).
    pub actions: Vec<Vec<usize>>,
    /// Per-agent reward (`K`).
    pub rewards: Vec<f32>,
    /// Per-agent next state (`K × state_dim`).
    pub next_states: Vec<Vec<f32>>,
}

/// Diagnostics of one gradient step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Weighted TD loss of the minibatch.
    pub loss: f32,
    /// Mean absolute TD error (fed back as PER priority).
    pub mean_abs_td: f32,
    /// Global gradient norm before clipping.
    pub grad_norm: f32,
    /// `true` when the step was skipped because the loss or gradients were
    /// non-finite (no weights were updated).
    pub skipped: bool,
}

/// Progress of a resumable micro-batched gradient step (see
/// [`MaBdq::train_step_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetedProgress {
    /// The replay buffer holds fewer than `batch_size` transitions; no step
    /// was started.
    NotReady,
    /// A micro-batch of per-agent head passes was consumed; call again to
    /// continue the step.
    InProgress {
        /// Agents whose head passes have completed so far.
        agents_done: usize,
        /// Total agents in the step.
        agents_total: usize,
    },
    /// The step completed (weights applied, or skipped by the NaN guard)
    /// with these diagnostics.
    Done(TrainStats),
}

/// The networks: a shared trunk, one state-value head per agent, and one
/// advantage head per branch whose weights are shared across agents
/// (Section III-A).
#[derive(Debug, Clone)]
struct Net {
    trunk: Mlp,
    value_heads: Vec<Mlp>,
    adv_heads: Vec<Mlp>,
}

impl Net {
    fn new(config: &MaBdqConfig, rng: &mut Xoshiro256) -> Self {
        let mut trunk = Mlp::new();
        let mut prev = config.agents * config.state_dim;
        for (i, &h) in config.trunk_hidden.iter().enumerate() {
            trunk = trunk
                .push(Dense::new(prev, h, rng))
                .push(Relu::new())
                .push(Dropout::new(
                    config.dropout,
                    config.seed.wrapping_add(i as u64),
                ));
            prev = h;
        }
        let head_input = prev + config.state_dim;
        let head = |out: usize, rng: &mut Xoshiro256, seed: u64| {
            Mlp::new()
                .push(Dense::new(head_input, config.head_hidden, rng))
                .push(Relu::new())
                .push(Dropout::new(config.dropout, seed))
                .push(Dense::new(config.head_hidden, out, rng))
        };
        let value_heads = (0..config.agents)
            .map(|k| head(1, rng, config.seed.wrapping_add(100 + k as u64)))
            .collect();
        let adv_heads = config
            .branches
            .iter()
            .enumerate()
            .map(|(d, &n)| head(n, rng, config.seed.wrapping_add(200 + d as u64)))
            .collect();
        Net {
            trunk,
            value_heads,
            adv_heads,
        }
    }

    fn zero_grads(&mut self) {
        self.trunk.zero_grads();
        for h in self.value_heads.iter_mut().chain(self.adv_heads.iter_mut()) {
            h.zero_grads();
        }
    }

    fn grad_sq_norm(&self) -> f32 {
        self.trunk.grad_sq_norm()
            + self
                .value_heads
                .iter()
                .chain(self.adv_heads.iter())
                .map(Mlp::grad_sq_norm)
                .sum::<f32>()
    }

    fn scale_all_grads(&mut self, factor: f32) {
        self.trunk.scale_grads(factor);
        for h in self.value_heads.iter_mut().chain(self.adv_heads.iter_mut()) {
            h.scale_grads(factor);
        }
    }

    fn apply(&mut self, adam: &mut Adam) {
        let mut base = self.trunk.apply_with_base(adam, 0);
        for h in self.value_heads.iter_mut().chain(self.adv_heads.iter_mut()) {
            base = h.apply_with_base(adam, base);
        }
    }

    fn copy_weights_from(&mut self, other: &Net) {
        self.trunk
            .copy_weights_from(&other.trunk)
            .expect("same architecture");
        for (dst, src) in self
            .value_heads
            .iter_mut()
            .zip(&other.value_heads)
            .chain(self.adv_heads.iter_mut().zip(&other.adv_heads))
        {
            dst.copy_weights_from(src).expect("same architecture");
        }
    }

    fn param_count(&self) -> usize {
        self.trunk.param_count()
            + self
                .value_heads
                .iter()
                .chain(self.adv_heads.iter())
                .map(Mlp::param_count)
                .sum::<usize>()
    }

    /// Q-values for a batch whose joint state is already packed into `x`
    /// (`B × K*state_dim`, agent `k` in columns `k*state_dim..`). Results
    /// land in `scratch.q[k][d]` (`B × n_d` tensors); everything — trunk
    /// activations, per-agent head inputs, outputs — reuses preallocated
    /// buffers, so steady-state evaluation is allocation-free. Purely
    /// forward; dropout controlled by `train`.
    fn q_values_into(&mut self, x: &Tensor, state_dim: usize, train: bool, scratch: &mut QScratch) {
        let batch = x.rows();
        let num_branches = self.adv_heads.len();
        let Net {
            trunk,
            value_heads,
            adv_heads,
        } = self;
        let trunk_out = trunk.forward_scratch(x, train);
        let QScratch {
            agent_state,
            input_k,
            q,
            ..
        } = scratch;
        q.resize_with(value_heads.len(), Vec::new);
        for (k, (vh, branches)) in value_heads.iter_mut().zip(q.iter_mut()).enumerate() {
            agent_state.resize_zeroed(batch, state_dim);
            for b in 0..batch {
                agent_state
                    .row_mut(b)
                    .copy_from_slice(&x.row(b)[k * state_dim..(k + 1) * state_dim]);
            }
            trunk_out
                .concat_cols_into(agent_state, input_k)
                .expect("same batch");
            let v = vh.forward_scratch(input_k, train);
            branches.resize_with(num_branches, Tensor::default);
            for (head, qd) in adv_heads.iter_mut().zip(branches.iter_mut()) {
                let adv = head.forward_scratch(input_k, train);
                dueling_combine_into(v, adv, qd);
            }
        }
    }

    /// Fused evaluation-mode sibling of [`q_values_into`](Self::q_values_into):
    /// instead of `K` per-agent head loops, the `K` head inputs are stacked
    /// k-major into one `K·B × (trunk_dim + state_dim)` matrix and each
    /// *shared* advantage head runs exactly once over all of it — one
    /// cache-blocked GEMM per branch per layer instead of `K` single-row
    /// forwards. Value heads keep per-agent weights, so they stay `B`-row
    /// forwards, but read their rows straight out of the stack.
    ///
    /// Results are bit-identical to the per-agent path with `train = false`:
    /// the blocked GEMM accumulates `k`-contributions per output element in
    /// ascending order and rows are fully independent, bias/ReLU/dueling
    /// arithmetic is per-row in the same order, and the batched layer path
    /// never touches dropout RNG streams or activation caches (so an
    /// in-flight budgeted training step cannot be perturbed).
    fn q_values_fused_into(&mut self, x: &Tensor, state_dim: usize, scratch: &mut QScratch) {
        let batch = x.rows();
        let num_branches = self.adv_heads.len();
        let agents = self.value_heads.len();
        let Net {
            trunk,
            value_heads,
            adv_heads,
        } = self;
        let trunk_out = trunk.forward_batch_scratch(x);
        let trunk_dim = trunk_out.cols();
        let QScratch {
            input_k,
            stacked,
            v_all,
            q,
            ..
        } = scratch;
        stacked.resize_zeroed(agents * batch, trunk_dim + state_dim);
        for k in 0..agents {
            for b in 0..batch {
                let row = stacked.row_mut(k * batch + b);
                row[..trunk_dim].copy_from_slice(trunk_out.row(b));
                row[trunk_dim..].copy_from_slice(&x.row(b)[k * state_dim..(k + 1) * state_dim]);
            }
        }
        v_all.clear();
        for (k, vh) in value_heads.iter_mut().enumerate() {
            input_k.resize_zeroed(batch, trunk_dim + state_dim);
            for b in 0..batch {
                input_k
                    .row_mut(b)
                    .copy_from_slice(stacked.row(k * batch + b));
            }
            let v = vh.forward_batch_scratch(input_k);
            for b in 0..batch {
                v_all.push(v[(b, 0)]);
            }
        }
        q.resize_with(agents, Vec::new);
        for branches in q.iter_mut() {
            branches.resize_with(num_branches, Tensor::default);
        }
        for (d, head) in adv_heads.iter_mut().enumerate() {
            let adv = head.forward_batch_scratch(stacked);
            let n_d = adv.cols();
            let n = n_d as f32;
            for (k, branches) in q.iter_mut().enumerate() {
                let qd = &mut branches[d];
                qd.resize_zeroed(batch, n_d);
                for b in 0..batch {
                    // Same arithmetic order as `dueling_combine_into`: copy
                    // the advantage row, then add `V - mean(A)` per element.
                    let arow = adv.row(k * batch + b);
                    let mean: f32 = arow.iter().sum::<f32>() / n;
                    let base = v_all[k * batch + b] - mean;
                    let qrow = qd.row_mut(b);
                    qrow.copy_from_slice(arow);
                    for x in qrow {
                        *x += base;
                    }
                }
            }
        }
    }

    /// Fully per-agent evaluation reference for the fused path: every agent
    /// forwards the shared trunk *itself* (`K` trunk passes over the joint
    /// state instead of one) and runs its own single-batch head forwards —
    /// the naive loop a per-agent implementation of the paper's
    /// architecture would execute, with no cross-agent reuse at all.
    /// Deterministic eval forwards make the recomputed trunk rows
    /// bit-identical, so results match [`q_values_fused_into`]
    /// (Self::q_values_fused_into) bit-for-bit; the twin-run tests assert
    /// it and `bench_decide` measures what the fusion buys against it.
    fn q_values_per_agent_into(&mut self, x: &Tensor, state_dim: usize, scratch: &mut QScratch) {
        let batch = x.rows();
        let num_branches = self.adv_heads.len();
        let Net {
            trunk,
            value_heads,
            adv_heads,
        } = self;
        let QScratch {
            agent_state,
            input_k,
            q,
            ..
        } = scratch;
        q.resize_with(value_heads.len(), Vec::new);
        for (k, (vh, branches)) in value_heads.iter_mut().zip(q.iter_mut()).enumerate() {
            // The per-agent trunk pass this loop exists to measure: same
            // input, same weights, stateless eval forward — identical bits
            // every iteration.
            let trunk_out = trunk.forward_batch_scratch(x);
            agent_state.resize_zeroed(batch, state_dim);
            for b in 0..batch {
                agent_state
                    .row_mut(b)
                    .copy_from_slice(&x.row(b)[k * state_dim..(k + 1) * state_dim]);
            }
            trunk_out
                .concat_cols_into(agent_state, input_k)
                .expect("same batch");
            let v = vh.forward_batch_scratch(input_k);
            branches.resize_with(num_branches, Tensor::default);
            for (head, qd) in adv_heads.iter_mut().zip(branches.iter_mut()) {
                let adv = head.forward_batch_scratch(input_k);
                dueling_combine_into(v, adv, qd);
            }
        }
    }
}

/// Reusable output/intermediate buffers for [`Net::q_values_into`] and
/// [`Net::q_values_fused_into`].
#[derive(Debug, Clone, Default)]
struct QScratch {
    agent_state: Tensor,
    input_k: Tensor,
    /// Fused path: k-major stacked head input (`K·B × (trunk_dim +
    /// state_dim)`, row `k·B + b` = `[trunk(b) | state_k(b)]`).
    stacked: Tensor,
    /// Fused path: per-agent state values, flattened `k·B + b`.
    v_all: Vec<f32>,
    /// `q[k][d]`: agent `k`'s Q-values on branch `d` (`B × n_d`).
    q: Vec<Vec<Tensor>>,
}

/// `Q(a) = V + (A(a) − mean_a A(a))` per batch row.
#[cfg(test)]
fn dueling_combine(v: &Tensor, adv: &Tensor) -> Tensor {
    let mut q = Tensor::zeros(0, 0);
    dueling_combine_into(v, adv, &mut q);
    q
}

/// [`dueling_combine`] into a reusable tensor; identical arithmetic.
fn dueling_combine_into(v: &Tensor, adv: &Tensor, q: &mut Tensor) {
    q.copy_from(adv);
    let n = adv.cols() as f32;
    for b in 0..adv.rows() {
        let mean: f32 = adv.row(b).iter().sum::<f32>() / n;
        let base = v[(b, 0)] - mean;
        for x in q.row_mut(b) {
            *x += base;
        }
    }
}

/// The paper's multi-agent branching dueling Q-network (Section III-A).
///
/// One instance manages all `K` colocated services: each agent contributes
/// an 11-dimensional PMC state, the concatenation feeds a shared
/// representation, per-agent state-value heads and per-branch advantage
/// heads (shared across agents) produce per-agent per-branch Q-values, and
/// training applies the paper's gradient rescaling — 1/K into the deepest
/// advantage layers, 1/D into the shared representation.
///
/// See the crate-level example for usage; [`Bdq`](crate::Bdq) wraps the
/// single-agent case.
#[derive(Debug, Clone)]
pub struct MaBdq {
    config: MaBdqConfig,
    online: Net,
    target: Net,
    adam: Adam,
    buffer: PrioritizedReplay<MultiTransition>,
    rng: Xoshiro256,
    steps: u64,
    skipped_steps: u64,
    telemetry: Telemetry,
    scratch: MaBdqScratch,
    /// Per-agent quarantine guards; empty unless quarantine is enabled.
    guards: Vec<AgentGuard>,
    quarantine_trips: u64,
    quarantine_readmissions: u64,
    /// In-flight budgeted gradient step, if any (see
    /// [`train_step_budgeted`](Self::train_step_budgeted)).
    budgeted: Option<Box<BudgetedStep>>,
    /// Fixed-point snapshot of the online net for the `SafeFallback` shed
    /// tier, if [`refresh_quantized`](Self::refresh_quantized) has run.
    quantized: Option<Box<QuantizedNet>>,
}

/// Fixed-point (i16 weights, i32 accumulate) snapshot of [`Net`] plus the
/// scratch its forward passes reuse, powering
/// [`MaBdq::select_actions_quantized_into`]. A snapshot is intentionally
/// allowed to lag the online weights — degraded-mode decisions trade
/// freshness for cost — and is re-synced without allocation on every target
/// network sync once built.
#[derive(Debug, Clone)]
struct QuantizedNet {
    trunk: QuantizedMlp,
    value_heads: Vec<QuantizedMlp>,
    adv_heads: Vec<QuantizedMlp>,
    // Scratch tensors (sized on first use, reused afterwards).
    trunk_out: Tensor,
    input_k: Tensor,
    v: Tensor,
    adv: Tensor,
}

impl QuantizedNet {
    fn from_net(net: &Net) -> Result<Self, RlError> {
        let quantize = |m: &Mlp| {
            m.quantize().map_err(|e| RlError::DimensionMismatch {
                detail: e.to_string(),
            })
        };
        Ok(QuantizedNet {
            trunk: quantize(&net.trunk)?,
            value_heads: net
                .value_heads
                .iter()
                .map(quantize)
                .collect::<Result<_, _>>()?,
            adv_heads: net
                .adv_heads
                .iter()
                .map(quantize)
                .collect::<Result<_, _>>()?,
            trunk_out: Tensor::default(),
            input_k: Tensor::default(),
            v: Tensor::default(),
            adv: Tensor::default(),
        })
    }

    /// Re-snapshots all weights from `net` in place; allocation-free.
    fn refresh_from(&mut self, net: &Net) -> Result<(), RlError> {
        let remap = |e: twig_nn::NnError| RlError::DimensionMismatch {
            detail: e.to_string(),
        };
        net.trunk.requantize_into(&mut self.trunk).map_err(remap)?;
        for (dst, src) in self
            .value_heads
            .iter_mut()
            .zip(&net.value_heads)
            .chain(self.adv_heads.iter_mut().zip(&net.adv_heads))
        {
            src.requantize_into(dst).map_err(remap)?;
        }
        Ok(())
    }
}

/// Preallocated working memory for the decide/learn hot path. Every buffer
/// is sized on first use and reused afterwards, so steady-state
/// [`MaBdq::select_actions`], [`MaBdq::q_values`] and [`MaBdq::train_step`]
/// calls perform no heap allocation. Holds no learner state — clearing it
/// at any point would not change a single result.
#[derive(Debug, Clone, Default)]
struct MaBdqScratch {
    /// Joint current-state batch (`B × K*state_dim`).
    x: Tensor,
    /// Joint next-state batch.
    x_next: Tensor,
    /// Online-network evaluations (action selection + double-DQN argmax).
    q_eval: QScratch,
    /// Target-network evaluations.
    q_target: QScratch,
    /// Reused PER sample (indices + importance weights).
    batch: PerBatch,
    /// TD targets, flattened `b * agents + k`.
    targets: Vec<f32>,
    /// Per-sample mean |TD| fed back as priorities.
    abs_td: Vec<f64>,
    /// Per-agent summed |TD| this step (quarantine signal; unused when
    /// quarantine is disabled).
    agent_td: Vec<f64>,
    /// Per-agent value-head squared gradient norm this step (quarantine
    /// signal).
    agent_vgrad: Vec<f64>,
    agent_state: Tensor,
    input_k: Tensor,
    v_grad: Tensor,
    adv_grad: Tensor,
    input_grad: Tensor,
    trunk_grad: Tensor,
    to_trunk: Tensor,
    to_state: Tensor,
}

/// State of one in-flight budgeted gradient step (see
/// [`MaBdq::train_step_budgeted`]). Owns copies of everything the deferred
/// chunks and epilogue need, because between chunk calls the caller may run
/// eval-mode inference (which clobbers the shared [`MaBdqScratch`] and every
/// network's activation caches) or push new transitions (which may overwrite
/// sampled replay slots).
#[derive(Debug, Clone)]
struct BudgetedStep {
    /// Joint current-state batch (`B × K*state_dim`).
    x: Tensor,
    /// Sampled replay indices (for the priority write-back).
    indices: Vec<usize>,
    /// PER importance weights, aligned with `indices`.
    weights: Vec<f32>,
    /// Sampled actions, flattened `(b * agents + k) * num_branches + d`.
    actions: Vec<usize>,
    /// TD targets, flattened `b * agents + k`.
    targets: Vec<f32>,
    /// Train-mode trunk activations for the sampled batch.
    trunk_out: Tensor,
    /// Trunk dropout RNG streams snapshotted *before* the trunk forward, so
    /// the epilogue can recompute that forward (rebuilding the activation
    /// caches backward needs) with bit-identical masks.
    trunk_rng: Vec<Xoshiro256>,
    /// Trunk gradient accumulated across completed agent passes.
    trunk_grad: Tensor,
    /// Per-sample mean |TD| accumulated so far.
    abs_td: Vec<f64>,
    /// Per-agent summed |TD| (quarantine signal).
    agent_td: Vec<f64>,
    /// Per-agent value-head squared gradient norm (quarantine signal).
    agent_vgrad: Vec<f64>,
    /// Weighted TD loss accumulated so far.
    loss: f32,
    /// Next agent index to process; `agents` means only the epilogue is
    /// left.
    next_agent: usize,
}

impl MaBdq {
    /// Builds the online and target networks.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: MaBdqConfig) -> Result<Self, RlError> {
        config.validate()?;
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let online = Net::new(&config, &mut rng);
        let mut target = Net::new(&config, &mut rng);
        target.copy_weights_from(&online);
        let adam = Adam::new(config.lr);
        let buffer = PrioritizedReplay::new(
            config.buffer_capacity,
            config.per_alpha,
            config.per_beta0,
            config.per_beta_steps,
        );
        let mut agent = MaBdq {
            config,
            online,
            target,
            adam,
            buffer,
            rng,
            steps: 0,
            skipped_steps: 0,
            telemetry: Telemetry::disabled(),
            scratch: MaBdqScratch::default(),
            guards: Vec::new(),
            quarantine_trips: 0,
            quarantine_readmissions: 0,
            budgeted: None,
            quantized: None,
        };
        agent.rebuild_guards();
        Ok(agent)
    }

    /// Attaches a telemetry handle: [`observe`](Self::observe) and
    /// [`train_step`](Self::train_step) then record learner health (loss,
    /// TD error, gradient norm, buffer occupancy, rejected non-finite
    /// transitions). Telemetry never feeds back into training, so learning
    /// trajectories are identical with or without it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration.
    pub fn config(&self) -> &MaBdqConfig {
        &self.config
    }

    /// Completed gradient steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Gradient steps skipped because the loss or gradients went
    /// non-finite (the NaN guard — no weights were touched on those
    /// steps).
    pub fn skipped_steps(&self) -> u64 {
        self.skipped_steps
    }

    /// Transitions currently buffered.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Replaces the quarantine configuration at runtime, validating it and
    /// resetting every agent's baselines, snapshot and probation state.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for invalid thresholds.
    pub fn set_quarantine(&mut self, quarantine: QuarantineConfig) -> Result<(), RlError> {
        quarantine.validate()?;
        self.config.quarantine = quarantine;
        self.rebuild_guards();
        Ok(())
    }

    /// Aggregate quarantine counters (trips, re-admissions, currently
    /// frozen agents).
    pub fn quarantine_stats(&self) -> QuarantineStats {
        QuarantineStats {
            trips: self.quarantine_trips,
            readmissions: self.quarantine_readmissions,
            frozen_agents: self.guards.iter().filter(|g| g.frozen_until > 0).count(),
        }
    }

    /// Rebuilds per-agent guards with fresh snapshots of the current value
    /// heads (or drops them entirely when quarantine is disabled).
    fn rebuild_guards(&mut self) {
        if !self.config.quarantine.enabled {
            self.guards.clear();
            return;
        }
        self.guards = self
            .online
            .value_heads
            .iter()
            .map(|vh| AgentGuard {
                td_baseline: 0.0,
                grad_baseline: 0.0,
                baseline_samples: 0,
                frozen_until: 0,
                snapshot: vh.export_parameters(),
                snapshot_age: 0,
            })
            .collect();
    }

    /// The monotone clock probation is measured against: it advances on
    /// applied *and* skipped train calls, so a fleet stuck behind the
    /// global NaN guard still serves out probation windows.
    fn train_clock(&self) -> u64 {
        self.steps + self.skipped_steps
    }

    /// Re-admits agents whose probation has expired: unfreeze, restart
    /// baselines, and take a fresh last-known-good snapshot.
    fn quarantine_readmit(&mut self) {
        let clock = self.train_clock();
        let MaBdq {
            guards,
            online,
            quarantine_readmissions,
            telemetry,
            ..
        } = self;
        for (k, guard) in guards.iter_mut().enumerate() {
            if guard.frozen_until > 0 && clock >= guard.frozen_until {
                guard.frozen_until = 0;
                guard.baseline_samples = 0;
                guard.td_baseline = 0.0;
                guard.grad_baseline = 0.0;
                guard.snapshot_age = 0;
                online.value_heads[k].export_parameters_into(&mut guard.snapshot);
                *quarantine_readmissions += 1;
                telemetry.counter_add("quarantine.readmitted", 1);
            }
        }
    }

    /// Divergence scan over this step's per-agent signals (runs on applied
    /// and skipped steps alike). A tripped agent's value head is rolled
    /// back to its last-known-good snapshot and frozen until
    /// `clock + probation_steps`; healthy agents fold their signals into
    /// the EWMA baselines and refresh their snapshot on schedule.
    fn quarantine_scan(&mut self) {
        if !self.config.quarantine.enabled {
            return;
        }
        let q = self.config.quarantine.clone();
        let clock = self.train_clock();
        let denom = (self.config.batch_size * self.config.branches.len()) as f64;
        let mut frozen_now = 0usize;
        let MaBdq {
            guards,
            online,
            scratch,
            quarantine_trips,
            telemetry,
            ..
        } = self;
        for (k, guard) in guards.iter_mut().enumerate() {
            if guard.frozen_until > 0 {
                frozen_now += 1;
                continue;
            }
            let td = scratch.agent_td[k] / denom;
            let grad = scratch.agent_vgrad[k].sqrt();
            let warmed = guard.baseline_samples >= q.warmup_steps;
            let td_limit = q.trip_multiple * guard.td_baseline.max(QUARANTINE_BASELINE_FLOOR);
            let grad_limit = q.trip_multiple * guard.grad_baseline.max(QUARANTINE_BASELINE_FLOOR);
            let blown = !td.is_finite()
                || !grad.is_finite()
                || td > QUARANTINE_HARD_TD_LIMIT
                || (warmed && (td > td_limit || grad > grad_limit));
            if blown {
                online.value_heads[k]
                    .import_parameters(&guard.snapshot)
                    .expect("snapshot taken from this head");
                guard.frozen_until = clock + q.probation_steps;
                *quarantine_trips += 1;
                telemetry.counter_add("quarantine.trips", 1);
                frozen_now += 1;
                continue;
            }
            if guard.baseline_samples == 0 {
                guard.td_baseline = td;
                guard.grad_baseline = grad;
            } else {
                guard.td_baseline += q.baseline_alpha * (td - guard.td_baseline);
                guard.grad_baseline += q.baseline_alpha * (grad - guard.grad_baseline);
            }
            guard.baseline_samples += 1;
            guard.snapshot_age += 1;
            if guard.snapshot_age >= q.snapshot_every {
                online.value_heads[k].export_parameters_into(&mut guard.snapshot);
                guard.snapshot_age = 0;
            }
        }
        telemetry.gauge_set("quarantine.frozen_agents", frozen_now as f64);
    }

    /// Trainable parameters across trunk and heads.
    pub fn param_count(&self) -> usize {
        self.online.param_count()
    }

    /// Approximate bytes of the online + target networks (4 bytes per
    /// parameter) — the Section V-B1 memory metric.
    pub fn memory_bytes(&self) -> usize {
        2 * self.param_count() * std::mem::size_of::<f32>()
    }

    fn check_states(&self, states: &[Vec<f32>]) -> Result<(), RlError> {
        if states.len() != self.config.agents
            || states.iter().any(|s| s.len() != self.config.state_dim)
        {
            return Err(RlError::DimensionMismatch {
                detail: format!(
                    "expected {} agents x {} dims",
                    self.config.agents, self.config.state_dim
                ),
            });
        }
        Ok(())
    }

    /// ε-greedy per-branch action selection for all agents:
    /// `actions[k][d]` is agent `k`'s choice on branch `d`.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn select_actions(
        &mut self,
        states: &[Vec<f32>],
        epsilon: f64,
    ) -> Result<Vec<Vec<usize>>, RlError> {
        let mut out = Vec::with_capacity(self.config.agents);
        self.select_actions_into(states, epsilon, &mut out)?;
        Ok(out)
    }

    /// [`select_actions`](Self::select_actions) into a reusable buffer:
    /// inner vectors keep their capacity across calls, so steady-state
    /// selection is allocation-free. Identical RNG draws and results.
    ///
    /// Inference runs on the fused batched path
    /// ([`Net::q_values_fused_into`]): all `K` agents' shared-weight
    /// advantage-head forwards execute as one cache-blocked GEMM per branch.
    /// Actions and Q-values are bit-identical to the per-agent reference
    /// path, which stays available as
    /// [`select_actions_unfused_into`](Self::select_actions_unfused_into)
    /// for the twin-run tests and the `bench_decide` speedup measurement.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn select_actions_into(
        &mut self,
        states: &[Vec<f32>],
        epsilon: f64,
        out: &mut Vec<Vec<usize>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        self.online.q_values_fused_into(
            &self.scratch.x,
            self.config.state_dim,
            &mut self.scratch.q_eval,
        );
        self.greedy_with_epsilon(epsilon, out);
        Ok(())
    }

    /// Per-agent reference implementation of
    /// [`select_actions_into`](Self::select_actions_into): every agent
    /// forwards the shared trunk itself and runs one head forward per
    /// branch — no batching, no cross-agent reuse
    /// ([`Net::q_values_per_agent_into`]). Draws the same RNG stream and
    /// returns bit-identical actions — the twin-run tests assert this, and
    /// `bench_decide` measures the fused path's speedup against it.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn select_actions_unfused_into(
        &mut self,
        states: &[Vec<f32>],
        epsilon: f64,
        out: &mut Vec<Vec<usize>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        self.online.q_values_per_agent_into(
            &self.scratch.x,
            self.config.state_dim,
            &mut self.scratch.q_eval,
        );
        self.greedy_with_epsilon(epsilon, out);
        Ok(())
    }

    /// Shared ε-greedy draw over `scratch.q_eval`: agents outer, branches
    /// inner, one `next_f64` per (agent, branch) — the draw order both
    /// selection paths share, so their RNG streams stay in lockstep.
    fn greedy_with_epsilon(&mut self, epsilon: f64, out: &mut Vec<Vec<usize>>) {
        out.resize_with(self.config.agents, Vec::new);
        for (branches, agent_actions) in self.scratch.q_eval.q.iter().zip(out.iter_mut()) {
            agent_actions.clear();
            for (d, qd) in branches.iter().enumerate() {
                let n = self.config.branches[d];
                let a = if self.rng.next_f64() < epsilon {
                    self.rng.range_usize(0, n)
                } else {
                    argmax(qd.row(0))
                };
                agent_actions.push(a);
            }
        }
    }

    /// Builds (or refreshes in place) the fixed-point snapshot of the online
    /// network used by [`select_actions_quantized_into`](Self::select_actions_quantized_into).
    /// The first call allocates; later calls requantize into the existing
    /// buffers and are allocation-free. Once built, the snapshot is also
    /// re-synced automatically on every target-network sync, so degraded-mode
    /// decisions lag the policy by at most `target_update_every` steps.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] when a layer exceeds the
    /// fixed-point accumulator headroom (`in_dim > 8192`).
    pub fn refresh_quantized(&mut self) -> Result<(), RlError> {
        match &mut self.quantized {
            Some(qn) => qn.refresh_from(&self.online),
            slot => {
                *slot = Some(Box::new(QuantizedNet::from_net(&self.online)?));
                Ok(())
            }
        }
    }

    /// Whether a fixed-point snapshot exists (see
    /// [`refresh_quantized`](Self::refresh_quantized)).
    pub fn quantized_ready(&self) -> bool {
        self.quantized.is_some()
    }

    /// In-place snapshot re-sync on target-network updates: allocation-free,
    /// and a no-op until [`refresh_quantized`](Self::refresh_quantized) has
    /// armed the fallback. Architecture cannot drift from the online net it
    /// was built from, so failure is unreachable; `expect` keeps that loud.
    fn resync_quantized(&mut self) {
        if let Some(qn) = &mut self.quantized {
            qn.refresh_from(&self.online)
                .expect("quantized snapshot tracks the online architecture");
        }
    }

    /// Greedy action selection on the fixed-point snapshot — the
    /// `SafeFallback` shed tier's decision path. Lazily builds the snapshot
    /// on first use (that call allocates; arm it up front with
    /// [`refresh_quantized`](Self::refresh_quantized) to keep the shed path
    /// allocation-free).
    ///
    /// Deliberately greedy with no ε-exploration: a degraded epoch takes no
    /// exploration risk, and drawing nothing from the RNG means a shed epoch
    /// cannot perturb the primary path's ε stream. Because the dueling
    /// combine `Q = V + A − mean(A)` only shifts each branch row by a
    /// per-agent constant, `argmax Q = argmax A`, so the fallback skips the
    /// per-agent value heads entirely — the cost is one quantized trunk
    /// forward plus `K·D` quantized advantage rows.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states or a
    /// network too wide to quantize.
    pub fn select_actions_quantized_into(
        &mut self,
        states: &[Vec<f32>],
        out: &mut Vec<Vec<usize>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        if self.quantized.is_none() {
            self.quantized = Some(Box::new(QuantizedNet::from_net(&self.online)?));
        }
        let state_dim = self.config.state_dim;
        let agents = self.config.agents;
        let qn = self.quantized.as_mut().expect("built above");
        let QuantizedNet {
            trunk,
            adv_heads,
            trunk_out,
            input_k,
            adv,
            ..
        } = qn.as_mut();
        trunk.forward_into(&self.scratch.x, trunk_out);
        let trunk_dim = trunk_out.cols();
        out.resize_with(agents, Vec::new);
        for (k, agent_actions) in out.iter_mut().enumerate() {
            input_k.resize_zeroed(1, trunk_dim + state_dim);
            let row = input_k.row_mut(0);
            row[..trunk_dim].copy_from_slice(trunk_out.row(0));
            row[trunk_dim..]
                .copy_from_slice(&self.scratch.x.row(0)[k * state_dim..(k + 1) * state_dim]);
            agent_actions.clear();
            for head in adv_heads.iter_mut() {
                head.forward_into(input_k, adv);
                agent_actions.push(argmax(adv.row(0)));
            }
        }
        Ok(())
    }

    /// Allocating wrapper around
    /// [`select_actions_quantized_into`](Self::select_actions_quantized_into).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn select_actions_quantized(
        &mut self,
        states: &[Vec<f32>],
    ) -> Result<Vec<Vec<usize>>, RlError> {
        let mut out = Vec::with_capacity(self.config.agents);
        self.select_actions_quantized_into(states, &mut out)?;
        Ok(out)
    }

    /// Full fixed-point Q-values `q[k][d][a]` (value heads included), for
    /// the divergence-bound test and diagnostics. Lazily builds the snapshot
    /// like [`select_actions_quantized_into`](Self::select_actions_quantized_into).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn q_values_quantized_into(
        &mut self,
        states: &[Vec<f32>],
        out: &mut Vec<Vec<Vec<f32>>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        if self.quantized.is_none() {
            self.quantized = Some(Box::new(QuantizedNet::from_net(&self.online)?));
        }
        let state_dim = self.config.state_dim;
        let agents = self.config.agents;
        let qn = self.quantized.as_mut().expect("built above");
        let QuantizedNet {
            trunk,
            value_heads,
            adv_heads,
            trunk_out,
            input_k,
            v,
            adv,
        } = qn.as_mut();
        trunk.forward_into(&self.scratch.x, trunk_out);
        let trunk_dim = trunk_out.cols();
        out.resize_with(agents, Vec::new);
        for (k, (vh, branches_out)) in value_heads.iter_mut().zip(out.iter_mut()).enumerate() {
            input_k.resize_zeroed(1, trunk_dim + state_dim);
            let row = input_k.row_mut(0);
            row[..trunk_dim].copy_from_slice(trunk_out.row(0));
            row[trunk_dim..]
                .copy_from_slice(&self.scratch.x.row(0)[k * state_dim..(k + 1) * state_dim]);
            vh.forward_into(input_k, v);
            let value = v[(0, 0)];
            branches_out.resize_with(adv_heads.len(), Vec::new);
            for (head, dst) in adv_heads.iter_mut().zip(branches_out.iter_mut()) {
                head.forward_into(input_k, adv);
                let arow = adv.row(0);
                let mean: f32 = arow.iter().sum::<f32>() / arow.len() as f32;
                let base = value - mean;
                dst.clear();
                dst.extend(arow.iter().map(|a| a + base));
            }
        }
        Ok(())
    }

    /// Analytic upper bound on `|Q_quantized − Q_f32|` for per-counter state
    /// inputs bounded by `input_max_abs`, composed from the per-network
    /// fixed-point error bounds: trunk error propagates into each head as
    /// input error, and the dueling combine contributes `|ΔV| + |ΔA| +
    /// mean|ΔA| ≤ E_v + 2·E_a`. `None` until a snapshot exists.
    pub fn quantized_q_error_bound(&self, input_max_abs: f32) -> Option<f32> {
        let qn = self.quantized.as_ref()?;
        let trunk_err = qn.trunk.worst_case_error(input_max_abs);
        let trunk_max = qn.trunk.output_bound_given(input_max_abs, 0.0);
        let head_in_max = trunk_max.max(input_max_abs);
        let head_err = |h: &QuantizedMlp| h.worst_case_error_given(head_in_max, trunk_err);
        let e_v = qn.value_heads.iter().map(head_err).fold(0.0f32, f32::max);
        let e_a = qn.adv_heads.iter().map(head_err).fold(0.0f32, f32::max);
        Some(e_v + 2.0 * e_a)
    }

    /// Q-values for one joint state: `q[k][d][a]`. Dropout disabled.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn q_values(&mut self, states: &[Vec<f32>]) -> Result<Vec<Vec<Vec<f32>>>, RlError> {
        let mut out = Vec::with_capacity(self.config.agents);
        self.q_values_into(states, &mut out)?;
        Ok(out)
    }

    /// [`q_values`](Self::q_values) into a reusable nested buffer; the
    /// allocation-free sibling used by the per-epoch control loop. Runs on
    /// the fused batched path, bit-identical to
    /// [`q_values_unfused_into`](Self::q_values_unfused_into).
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn q_values_into(
        &mut self,
        states: &[Vec<f32>],
        out: &mut Vec<Vec<Vec<f32>>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        self.online.q_values_fused_into(
            &self.scratch.x,
            self.config.state_dim,
            &mut self.scratch.q_eval,
        );
        self.export_q_eval(out);
        Ok(())
    }

    /// Per-agent reference implementation of
    /// [`q_values_into`](Self::q_values_into) — per-agent trunk passes and
    /// single-batch head forwards ([`Net::q_values_per_agent_into`]) — kept
    /// for the twin-run bit-identity tests and the `bench_decide` baseline.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for wrongly shaped states.
    pub fn q_values_unfused_into(
        &mut self,
        states: &[Vec<f32>],
        out: &mut Vec<Vec<Vec<f32>>>,
    ) -> Result<(), RlError> {
        self.check_states(states)?;
        self.pack_joint_state(states);
        self.online.q_values_per_agent_into(
            &self.scratch.x,
            self.config.state_dim,
            &mut self.scratch.q_eval,
        );
        self.export_q_eval(out);
        Ok(())
    }

    /// Copies `scratch.q_eval` row 0 into the nested public buffer.
    fn export_q_eval(&self, out: &mut Vec<Vec<Vec<f32>>>) {
        out.resize_with(self.config.agents, Vec::new);
        for (branches, branches_out) in self.scratch.q_eval.q.iter().zip(out.iter_mut()) {
            branches_out.resize_with(branches.len(), Vec::new);
            for (t, dst) in branches.iter().zip(branches_out.iter_mut()) {
                dst.clear();
                dst.extend_from_slice(t.row(0));
            }
        }
    }

    /// Packs one joint state (`K` per-agent vectors) into the single-row
    /// scratch tensor consumed by [`Net::q_values_into`].
    fn pack_joint_state(&mut self, states: &[Vec<f32>]) {
        let state_dim = self.config.state_dim;
        self.scratch
            .x
            .resize_zeroed(1, self.config.agents * state_dim);
        let row = self.scratch.x.row_mut(0);
        for (k, s) in states.iter().enumerate() {
            row[k * state_dim..(k + 1) * state_dim].copy_from_slice(s);
        }
    }

    /// Stores one transition in the prioritised replay buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly shaped
    /// transition.
    pub fn observe(&mut self, transition: MultiTransition) -> Result<(), RlError> {
        self.check_states(&transition.states)?;
        self.check_states(&transition.next_states)?;
        if transition.actions.len() != self.config.agents
            || transition.rewards.len() != self.config.agents
            || transition
                .actions
                .iter()
                .any(|a| a.len() != self.config.branches.len())
        {
            return Err(RlError::DimensionMismatch {
                detail: "transition actions/rewards shape".into(),
            });
        }
        for (a, &n) in transition.actions.iter().flatten().zip(
            transition
                .actions
                .iter()
                .flat_map(|_| &self.config.branches),
        ) {
            if *a >= n {
                return Err(RlError::DimensionMismatch {
                    detail: format!("action {a} out of range {n}"),
                });
            }
        }
        // NaN guard: a corrupted observation must never enter the replay
        // buffer — one non-finite state or reward poisons every minibatch
        // it is sampled into.
        let finite_states = transition
            .states
            .iter()
            .chain(&transition.next_states)
            .flatten()
            .all(|v| v.is_finite());
        if !finite_states || !transition.rewards.iter().all(|r| r.is_finite()) {
            self.telemetry.counter_add("rl.nonfinite_rejected", 1);
            return Err(RlError::NonFinite {
                detail: "transition state or reward".into(),
            });
        }
        self.buffer.push(transition);
        self.telemetry
            .gauge_set("rl.buffer_len", self.buffer.len() as f64);
        Ok(())
    }

    /// One gradient step on a prioritised minibatch (Algorithm 1 line 13).
    /// Returns `None` when the buffer has fewer than `batch_size`
    /// transitions.
    ///
    /// Steady-state allocation-free: sampled transitions are read from the
    /// buffer in place (never cloned), and every tensor — joint states,
    /// head inputs, gradients, targets — lives in the reused
    /// [`MaBdqScratch`]. Results are bit-identical to the historical
    /// allocating implementation: same RNG draw order, same per-element
    /// float accumulation order.
    ///
    /// # Errors
    ///
    /// Propagates replay-buffer errors.
    pub fn train_step(&mut self) -> Result<Option<TrainStats>, RlError> {
        // A full step supersedes any half-finished budgeted one: discard its
        // partial gradients rather than mixing two minibatches.
        self.abort_budgeted_step();
        if self.buffer.len() < self.config.batch_size {
            return Ok(None);
        }
        let batch_size = self.config.batch_size;
        let agents = self.config.agents;
        let num_branches = self.config.branches.len();
        let gamma = self.config.gamma;
        let state_dim = self.config.state_dim;
        let quarantine_on = self.config.quarantine.enabled;
        if quarantine_on {
            self.quarantine_readmit();
        }

        self.buffer
            .sample_into(batch_size, &mut self.rng, &mut self.scratch.batch)?;

        // Pack joint current/next states straight from the buffer.
        self.scratch.x.resize_zeroed(batch_size, agents * state_dim);
        self.scratch
            .x_next
            .resize_zeroed(batch_size, agents * state_dim);
        for (b, &idx) in self.scratch.batch.indices.iter().enumerate() {
            let t = self.buffer.get(idx).expect("sampled index valid");
            let row = self.scratch.x.row_mut(b);
            for (k, s) in t.states.iter().enumerate() {
                row[k * state_dim..(k + 1) * state_dim].copy_from_slice(s);
            }
            let row = self.scratch.x_next.row_mut(b);
            for (k, s) in t.next_states.iter().enumerate() {
                row[k * state_dim..(k + 1) * state_dim].copy_from_slice(s);
            }
        }

        // --- Targets: double-DQN style, averaged over branches. ---
        self.online.q_values_into(
            &self.scratch.x_next,
            state_dim,
            false,
            &mut self.scratch.q_eval,
        );
        self.target.q_values_into(
            &self.scratch.x_next,
            state_dim,
            false,
            &mut self.scratch.q_target,
        );
        // y[b * agents + k]
        self.scratch.targets.clear();
        self.scratch.targets.resize(batch_size * agents, 0.0);
        for k in 0..agents {
            for b in 0..batch_size {
                let mut acc = 0.0;
                for d in 0..num_branches {
                    let a_star = argmax(self.scratch.q_eval.q[k][d].row(b));
                    acc += self.scratch.q_target.q[k][d][(b, a_star)];
                }
                let reward = self
                    .buffer
                    .get(self.scratch.batch.indices[b])
                    .expect("sampled index valid")
                    .rewards[k];
                self.scratch.targets[b * agents + k] = reward + gamma * acc / num_branches as f32;
            }
        }

        // --- Online forward + manual backward with gradient rescaling. ---
        self.online.zero_grads();
        let Net {
            trunk,
            value_heads,
            adv_heads,
        } = &mut self.online;
        let trunk_out = trunk.forward_scratch(&self.scratch.x, true);
        let trunk_dim = trunk_out.cols();
        self.scratch.trunk_grad.resize_zeroed(batch_size, trunk_dim);
        self.scratch.abs_td.clear();
        self.scratch.abs_td.resize(batch_size, 0.0);
        self.scratch.agent_td.clear();
        self.scratch.agent_td.resize(agents, 0.0);
        self.scratch.agent_vgrad.clear();
        self.scratch.agent_vgrad.resize(agents, 0.0);
        let mut loss = 0.0f32;
        let norm = (batch_size * agents * num_branches) as f32;

        for (k, vh) in value_heads.iter_mut().enumerate() {
            // A quarantined agent contributes nothing this step: no
            // forward, no loss term, no gradient, no replay priority. The
            // remaining K−1 agents train exactly as usual (probation is
            // time-based, so nothing needs measuring here either).
            if quarantine_on && self.guards[k].frozen_until > 0 {
                continue;
            }
            self.scratch
                .agent_state
                .resize_zeroed(batch_size, state_dim);
            for b in 0..batch_size {
                self.scratch
                    .agent_state
                    .row_mut(b)
                    .copy_from_slice(&self.scratch.x.row(b)[k * state_dim..(k + 1) * state_dim]);
            }
            trunk_out
                .concat_cols_into(&self.scratch.agent_state, &mut self.scratch.input_k)
                .expect("same batch");
            let v = vh.forward_scratch(&self.scratch.input_k, true);
            self.scratch.v_grad.resize_zeroed(batch_size, 1);
            self.scratch
                .input_grad
                .resize_zeroed(batch_size, self.scratch.input_k.cols());

            for (d, head) in adv_heads.iter_mut().enumerate() {
                let adv = head.forward_scratch(&self.scratch.input_k, true);
                let n = adv.cols();
                self.scratch.adv_grad.resize_zeroed(batch_size, n);
                for b in 0..batch_size {
                    let a = self
                        .buffer
                        .get(self.scratch.batch.indices[b])
                        .expect("sampled index valid")
                        .actions[k][d];
                    let row = adv.row(b);
                    let mean: f32 = row.iter().sum::<f32>() / n as f32;
                    let q = v[(b, 0)] + row[a] - mean;
                    let delta = q - self.scratch.targets[b * agents + k];
                    self.scratch.abs_td[b] += (delta.abs() / (agents * num_branches) as f32) as f64;
                    if quarantine_on {
                        self.scratch.agent_td[k] += f64::from(delta.abs());
                    }
                    let w = self.scratch.batch.weights[b];
                    loss += w * delta * delta / norm;
                    let g = 2.0 * w * delta / norm;
                    let grow = self.scratch.adv_grad.row_mut(b);
                    for (j, gj) in grow.iter_mut().enumerate() {
                        let indicator = if j == a { 1.0 } else { 0.0 };
                        *gj = g * (indicator - 1.0 / n as f32);
                    }
                    self.scratch.v_grad[(b, 0)] += g;
                }
                let gin = head.backward_scratch(&self.scratch.adv_grad);
                self.scratch.input_grad.add_assign(gin).expect("same shape");
            }
            let gin_v = vh.backward_scratch(&self.scratch.v_grad);
            self.scratch
                .input_grad
                .add_assign(gin_v)
                .expect("same shape");
            if quarantine_on {
                self.scratch.agent_vgrad[k] = f64::from(vh.grad_sq_norm());
            }
            self.scratch.input_grad.split_cols_into(
                trunk_dim,
                &mut self.scratch.to_trunk,
                &mut self.scratch.to_state,
            );
            self.scratch
                .trunk_grad
                .add_assign(&self.scratch.to_trunk)
                .expect("same shape");
        }

        // Section III-A rescaling: 1/K into the deepest advantage layers,
        // 1/D into the shared representation.
        for head in adv_heads.iter_mut() {
            head.scale_grads(1.0 / agents as f32);
        }
        self.scratch.trunk_grad.scale(1.0 / num_branches as f32);
        trunk.backward_scratch(&self.scratch.trunk_grad);

        // NaN guard: a numerically blown-up minibatch (non-finite loss or
        // gradients) must not reach the weights — one bad Adam step can
        // permanently poison the network. Skip the update and report it.
        let grad_norm = self.online.grad_sq_norm().sqrt();
        if !loss.is_finite() || !grad_norm.is_finite() {
            self.online.zero_grads();
            self.skipped_steps += 1;
            // The scan runs on skipped steps too: the agent whose TD blew
            // up trips and freezes here, so subsequent minibatch losses
            // become finite again and the other K−1 agents resume training
            // instead of being starved by the global guard forever.
            self.quarantine_scan();
            let stats = TrainStats {
                loss,
                mean_abs_td: (self.scratch.abs_td.iter().sum::<f64>() / batch_size as f64) as f32,
                grad_norm,
                skipped: true,
            };
            self.record_train_stats(&stats);
            return Ok(Some(stats));
        }

        // Global-norm clipping, then Adam.
        if self.config.grad_clip > 0.0 && grad_norm > self.config.grad_clip {
            self.online
                .scale_all_grads(self.config.grad_clip / grad_norm);
        }
        self.online.apply(&mut self.adam);

        self.buffer
            .update_priorities(&self.scratch.batch.indices, &self.scratch.abs_td);
        self.steps += 1;
        if self.steps.is_multiple_of(self.config.target_update_every) {
            self.target.copy_weights_from(&self.online);
            self.resync_quantized();
        }
        self.quarantine_scan();
        let stats = TrainStats {
            loss,
            mean_abs_td: (self.scratch.abs_td.iter().sum::<f64>() / batch_size as f64) as f32,
            grad_norm,
            skipped: false,
        };
        self.record_train_stats(&stats);
        Ok(Some(stats))
    }

    /// Whether a budgeted gradient step is currently in flight (started by
    /// [`train_step_budgeted`](Self::train_step_budgeted) but not yet
    /// `Done`).
    pub fn budgeted_step_in_flight(&self) -> bool {
        self.budgeted.is_some()
    }

    /// Drops any in-flight budgeted step, zeroing its partial gradients.
    /// Called by every operation that would invalidate the deferred state
    /// (a full [`train_step`](Self::train_step), a checkpoint restore, a
    /// transfer reset).
    fn abort_budgeted_step(&mut self) {
        if self.budgeted.take().is_some() {
            self.online.zero_grads();
        }
    }

    /// [`train_step`](Self::train_step) split into resumable micro-batches
    /// for deadline-aware scheduling: each call runs the per-agent head
    /// passes for up to `max_agents` agents (at least one), then returns.
    /// The first call samples the minibatch, computes targets and runs the
    /// trunk forward; the call that finishes the last agent also runs the
    /// epilogue (gradient rescaling, trunk backward, NaN guard, clip, Adam,
    /// priority write-back, target sync, quarantine scan) and returns
    /// [`BudgetedProgress::Done`].
    ///
    /// Between chunk calls the caller may freely run eval-mode inference
    /// ([`select_actions`](Self::select_actions) /
    /// [`q_values`](Self::q_values)) and [`observe`](Self::observe): the
    /// step owns copies of everything it still needs, and eval-mode
    /// forwards never advance dropout RNG streams, so a step driven to
    /// completion produces **bit-identical** weights, optimizer state, RNG
    /// streams and replay priorities to one unbudgeted
    /// [`train_step`](Self::train_step) — the property
    /// `tests/budgeted_training.rs` proves. Unlike `train_step`, this path
    /// allocates (the deferred state is heap-owned); it trades the
    /// zero-allocation discipline for bounded per-call latency.
    ///
    /// A [`train_step`](Self::train_step), checkpoint restore or transfer
    /// reset while a step is in flight aborts the partial step (its
    /// gradients are discarded; no weights were touched).
    ///
    /// # Errors
    ///
    /// Propagates replay-buffer errors from the initial sample.
    pub fn train_step_budgeted(&mut self, max_agents: usize) -> Result<BudgetedProgress, RlError> {
        let mut step = match self.budgeted.take() {
            Some(step) => step,
            None => match self.begin_budgeted_step()? {
                Some(step) => step,
                None => return Ok(BudgetedProgress::NotReady),
            },
        };
        let batch_size = self.config.batch_size;
        let agents = self.config.agents;
        let num_branches = self.config.branches.len();
        let state_dim = self.config.state_dim;
        let quarantine_on = self.config.quarantine.enabled;
        let norm = (batch_size * agents * num_branches) as f32;
        let trunk_dim = step.trunk_out.cols();

        let end = (step.next_agent + max_agents.max(1)).min(agents);
        while step.next_agent < end {
            let k = step.next_agent;
            step.next_agent += 1;
            // Same skip rule as `train_step`: a quarantined agent
            // contributes nothing, but still counts as processed.
            if quarantine_on && self.guards[k].frozen_until > 0 {
                continue;
            }
            let Net {
                value_heads,
                adv_heads,
                ..
            } = &mut self.online;
            let vh = &mut value_heads[k];
            self.scratch
                .agent_state
                .resize_zeroed(batch_size, state_dim);
            for b in 0..batch_size {
                self.scratch
                    .agent_state
                    .row_mut(b)
                    .copy_from_slice(&step.x.row(b)[k * state_dim..(k + 1) * state_dim]);
            }
            step.trunk_out
                .concat_cols_into(&self.scratch.agent_state, &mut self.scratch.input_k)
                .expect("same batch");
            let v = vh.forward_scratch(&self.scratch.input_k, true);
            self.scratch.v_grad.resize_zeroed(batch_size, 1);
            self.scratch
                .input_grad
                .resize_zeroed(batch_size, self.scratch.input_k.cols());

            for (d, head) in adv_heads.iter_mut().enumerate() {
                let adv = head.forward_scratch(&self.scratch.input_k, true);
                let n = adv.cols();
                self.scratch.adv_grad.resize_zeroed(batch_size, n);
                for b in 0..batch_size {
                    let a = step.actions[(b * agents + k) * num_branches + d];
                    let row = adv.row(b);
                    let mean: f32 = row.iter().sum::<f32>() / n as f32;
                    let q = v[(b, 0)] + row[a] - mean;
                    let delta = q - step.targets[b * agents + k];
                    step.abs_td[b] += (delta.abs() / (agents * num_branches) as f32) as f64;
                    if quarantine_on {
                        step.agent_td[k] += f64::from(delta.abs());
                    }
                    let w = step.weights[b];
                    step.loss += w * delta * delta / norm;
                    let g = 2.0 * w * delta / norm;
                    let grow = self.scratch.adv_grad.row_mut(b);
                    for (j, gj) in grow.iter_mut().enumerate() {
                        let indicator = if j == a { 1.0 } else { 0.0 };
                        *gj = g * (indicator - 1.0 / n as f32);
                    }
                    self.scratch.v_grad[(b, 0)] += g;
                }
                let gin = head.backward_scratch(&self.scratch.adv_grad);
                self.scratch.input_grad.add_assign(gin).expect("same shape");
            }
            let gin_v = vh.backward_scratch(&self.scratch.v_grad);
            self.scratch
                .input_grad
                .add_assign(gin_v)
                .expect("same shape");
            if quarantine_on {
                step.agent_vgrad[k] = f64::from(vh.grad_sq_norm());
            }
            self.scratch.input_grad.split_cols_into(
                trunk_dim,
                &mut self.scratch.to_trunk,
                &mut self.scratch.to_state,
            );
            step.trunk_grad
                .add_assign(&self.scratch.to_trunk)
                .expect("same shape");
        }

        if step.next_agent < agents {
            let agents_done = step.next_agent;
            self.budgeted = Some(step);
            return Ok(BudgetedProgress::InProgress {
                agents_done,
                agents_total: agents,
            });
        }
        Ok(BudgetedProgress::Done(self.finish_budgeted_step(*step)))
    }

    /// Starts a budgeted step: samples the minibatch, packs states, computes
    /// double-DQN targets, zeroes gradients and runs the trunk forward —
    /// copying everything later chunks need into an owned [`BudgetedStep`].
    /// Returns `None` when the buffer is below `batch_size`.
    fn begin_budgeted_step(&mut self) -> Result<Option<Box<BudgetedStep>>, RlError> {
        if self.buffer.len() < self.config.batch_size {
            return Ok(None);
        }
        let batch_size = self.config.batch_size;
        let agents = self.config.agents;
        let num_branches = self.config.branches.len();
        let gamma = self.config.gamma;
        let state_dim = self.config.state_dim;
        if self.config.quarantine.enabled {
            self.quarantine_readmit();
        }

        self.buffer
            .sample_into(batch_size, &mut self.rng, &mut self.scratch.batch)?;

        self.scratch.x.resize_zeroed(batch_size, agents * state_dim);
        self.scratch
            .x_next
            .resize_zeroed(batch_size, agents * state_dim);
        for (b, &idx) in self.scratch.batch.indices.iter().enumerate() {
            let t = self.buffer.get(idx).expect("sampled index valid");
            let row = self.scratch.x.row_mut(b);
            for (k, s) in t.states.iter().enumerate() {
                row[k * state_dim..(k + 1) * state_dim].copy_from_slice(s);
            }
            let row = self.scratch.x_next.row_mut(b);
            for (k, s) in t.next_states.iter().enumerate() {
                row[k * state_dim..(k + 1) * state_dim].copy_from_slice(s);
            }
        }

        // Targets: identical arithmetic and evaluation order to
        // `train_step` (double-DQN, averaged over branches).
        self.online.q_values_into(
            &self.scratch.x_next,
            state_dim,
            false,
            &mut self.scratch.q_eval,
        );
        self.target.q_values_into(
            &self.scratch.x_next,
            state_dim,
            false,
            &mut self.scratch.q_target,
        );
        self.scratch.targets.clear();
        self.scratch.targets.resize(batch_size * agents, 0.0);
        for k in 0..agents {
            for b in 0..batch_size {
                let mut acc = 0.0;
                for d in 0..num_branches {
                    let a_star = argmax(self.scratch.q_eval.q[k][d].row(b));
                    acc += self.scratch.q_target.q[k][d][(b, a_star)];
                }
                let reward = self
                    .buffer
                    .get(self.scratch.batch.indices[b])
                    .expect("sampled index valid")
                    .rewards[k];
                self.scratch.targets[b * agents + k] = reward + gamma * acc / num_branches as f32;
            }
        }

        self.online.zero_grads();
        // Snapshot the trunk dropout streams *before* the train forward, so
        // the epilogue can replay the forward (and its masks) exactly.
        let mut trunk_rng = Vec::new();
        self.online.trunk.dropout_rng_states_into(&mut trunk_rng);
        let mut trunk_out = Tensor::default();
        trunk_out.copy_from(self.online.trunk.forward_scratch(&self.scratch.x, true));
        let mut trunk_grad = Tensor::default();
        trunk_grad.resize_zeroed(batch_size, trunk_out.cols());

        // Own copies of sampled actions: `observe` pushes between chunks
        // may overwrite sampled replay slots in the ring buffer.
        let indices = self.scratch.batch.indices.clone();
        let mut actions = Vec::with_capacity(batch_size * agents * num_branches);
        for &idx in &indices {
            let t = self.buffer.get(idx).expect("sampled index valid");
            for k in 0..agents {
                for d in 0..num_branches {
                    actions.push(t.actions[k][d]);
                }
            }
        }
        let mut x = Tensor::default();
        x.copy_from(&self.scratch.x);
        Ok(Some(Box::new(BudgetedStep {
            x,
            indices,
            weights: self.scratch.batch.weights.clone(),
            actions,
            targets: self.scratch.targets.clone(),
            trunk_out,
            trunk_rng,
            trunk_grad,
            abs_td: vec![0.0; batch_size],
            agent_td: vec![0.0; agents],
            agent_vgrad: vec![0.0; agents],
            loss: 0.0,
            next_agent: 0,
        })))
    }

    /// Epilogue of a budgeted step: gradient rescaling, trunk backward over
    /// recomputed activations, NaN guard, clipping, Adam, priority
    /// write-back, target sync and quarantine scan — the exact tail of
    /// [`train_step`](Self::train_step).
    fn finish_budgeted_step(&mut self, step: BudgetedStep) -> TrainStats {
        let batch_size = self.config.batch_size;
        let agents = self.config.agents;
        let num_branches = self.config.branches.len();
        let mut trunk_grad = step.trunk_grad;

        for head in self.online.adv_heads.iter_mut() {
            head.scale_grads(1.0 / agents as f32);
        }
        trunk_grad.scale(1.0 / num_branches as f32);
        // Interleaved eval forwards clobbered the trunk's activation
        // caches; restore the pre-forward dropout snapshot and recompute
        // the train forward so backward sees the original masks and
        // activations — and the post-step RNG state matches the unbudgeted
        // path (one net advance).
        self.online
            .trunk
            .set_dropout_rng_states(&step.trunk_rng)
            .expect("snapshot taken from this trunk");
        self.online.trunk.forward_scratch(&step.x, true);
        self.online.trunk.backward_scratch(&trunk_grad);

        // The quarantine scan reads its per-agent signals from the shared
        // scratch; surface the step-owned accumulators there.
        self.scratch.abs_td.clear();
        self.scratch.abs_td.extend_from_slice(&step.abs_td);
        self.scratch.agent_td.clear();
        self.scratch.agent_td.extend_from_slice(&step.agent_td);
        self.scratch.agent_vgrad.clear();
        self.scratch
            .agent_vgrad
            .extend_from_slice(&step.agent_vgrad);

        let loss = step.loss;
        let mean_abs_td = (step.abs_td.iter().sum::<f64>() / batch_size as f64) as f32;
        let grad_norm = self.online.grad_sq_norm().sqrt();
        if !loss.is_finite() || !grad_norm.is_finite() {
            self.online.zero_grads();
            self.skipped_steps += 1;
            self.quarantine_scan();
            let stats = TrainStats {
                loss,
                mean_abs_td,
                grad_norm,
                skipped: true,
            };
            self.record_train_stats(&stats);
            return stats;
        }

        if self.config.grad_clip > 0.0 && grad_norm > self.config.grad_clip {
            self.online
                .scale_all_grads(self.config.grad_clip / grad_norm);
        }
        self.online.apply(&mut self.adam);

        self.buffer.update_priorities(&step.indices, &step.abs_td);
        self.steps += 1;
        if self.steps.is_multiple_of(self.config.target_update_every) {
            self.target.copy_weights_from(&self.online);
            self.resync_quantized();
        }
        self.quarantine_scan();
        let stats = TrainStats {
            loss,
            mean_abs_td,
            grad_norm,
            skipped: false,
        };
        self.record_train_stats(&stats);
        stats
    }

    /// Feeds one gradient step's diagnostics into the attached telemetry
    /// handle. No-op when telemetry is disabled.
    fn record_train_stats(&self, stats: &TrainStats) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let tl = &self.telemetry;
        if stats.skipped {
            tl.counter_add("rl.skipped_steps", 1);
        } else {
            tl.counter_add("rl.train_steps", 1);
        }
        // LogHistogram drops non-finite samples itself, so a blown-up loss
        // is counted but cannot poison the digest.
        tl.record("rl.loss", stats.loss as f64);
        tl.record("rl.td_error", stats.mean_abs_td as f64);
        tl.record("rl.grad_norm", stats.grad_norm as f64);
        tl.gauge_set("rl.buffer_len", self.buffer.len() as f64);
    }

    /// Transfer learning (Section IV): re-initialise the final (most
    /// task-specific) layer of every head with random weights, reset the
    /// optimiser state and re-sync the target network. The trunk's learned
    /// shared representation is kept.
    pub fn transfer_reset(&mut self) {
        self.abort_budgeted_step();
        for head in self
            .online
            .value_heads
            .iter_mut()
            .chain(self.online.adv_heads.iter_mut())
        {
            head.reinitialize_last_dense(&mut self.rng);
        }
        self.adam.reset_state();
        self.target.copy_weights_from(&self.online);
    }

    /// Flattened weights of the online trunk (for transfer-learning tests).
    pub fn trunk_weights(&self) -> Vec<f32> {
        self.online.trunk.export_weights()
    }

    /// Snapshots the full learner state into a structured
    /// [`MaBdqCheckpoint`]: architecture fingerprint, flat online
    /// parameters (trunk, value heads, advantage heads, in order), Adam
    /// moments, step counters, PER anneal state and priorities. Serialize
    /// with [`encode_checkpoint`](crate::encode_checkpoint); restore with
    /// [`load_checkpoint`](Self::load_checkpoint) on an agent built from
    /// the same configuration.
    ///
    /// The RNG stream and buffered transitions are deliberately *not*
    /// checkpointed: a restored process starts with an empty buffer and a
    /// fresh exploration stream, so post-restore trajectories legitimately
    /// differ from an uninterrupted run.
    pub fn save_checkpoint(&self) -> MaBdqCheckpoint {
        let mut params = self.online.trunk.export_parameters();
        for head in self
            .online
            .value_heads
            .iter()
            .chain(self.online.adv_heads.iter())
        {
            params.extend(head.export_parameters());
        }
        MaBdqCheckpoint {
            agents: self.config.agents,
            state_dim: self.config.state_dim,
            branches: self.config.branches.clone(),
            trunk_hidden: self.config.trunk_hidden.clone(),
            head_hidden: self.config.head_hidden,
            params,
            adam: self.adam.export_state(),
            steps: self.steps,
            skipped_steps: self.skipped_steps,
            per_step: self.buffer.anneal_step(),
            per_max_priority: self.buffer.max_priority(),
            priorities: self.buffer.priorities(),
        }
    }

    /// Restores the full learner state from a checkpoint produced by
    /// [`save_checkpoint`](Self::save_checkpoint): online network, Adam
    /// moments, step counters and PER anneal state; the target network is
    /// re-synced to the restored online weights. Quarantine guards are
    /// rebuilt with fresh snapshots of the restored heads.
    ///
    /// Replay priorities are restored for however many transitions the
    /// live buffer holds — after a crash the buffer restarts empty, so the
    /// priority vector typically applies only once the buffer refills.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::CheckpointMismatch`] when the checkpoint's
    /// recorded architecture (agents, state dim, branches, trunk, head
    /// width), parameter count, or optimizer-moment layout does not match
    /// this agent.
    pub fn load_checkpoint(&mut self, ckpt: &MaBdqCheckpoint) -> Result<(), RlError> {
        let mismatch = |detail: String| Err(RlError::CheckpointMismatch { detail });
        let c = &self.config;
        if ckpt.agents != c.agents
            || ckpt.state_dim != c.state_dim
            || ckpt.branches != c.branches
            || ckpt.trunk_hidden != c.trunk_hidden
            || ckpt.head_hidden != c.head_hidden
        {
            return mismatch(format!(
                "checkpoint shape ({} agents, state {}, branches {:?}, trunk {:?}, head {}) \
                 does not match config ({} agents, state {}, branches {:?}, trunk {:?}, head {})",
                ckpt.agents,
                ckpt.state_dim,
                ckpt.branches,
                ckpt.trunk_hidden,
                ckpt.head_hidden,
                c.agents,
                c.state_dim,
                c.branches,
                c.trunk_hidden,
                c.head_hidden,
            ));
        }
        if ckpt.params.len() != self.param_count() {
            return mismatch(format!(
                "checkpoint has {} parameters, agent has {}",
                ckpt.params.len(),
                self.param_count()
            ));
        }
        if ckpt.adam.slots.iter().any(|s| s.m.len() != s.v.len()) {
            return mismatch("optimizer moment vectors m/v differ in length".into());
        }
        let moment_elems: usize = ckpt.adam.slots.iter().map(|s| s.m.len()).sum();
        if moment_elems != 0 && moment_elems != self.param_count() {
            return mismatch(format!(
                "optimizer moments cover {moment_elems} of {} parameters",
                self.param_count()
            ));
        }
        // Validation passed — the restore proceeds, so any half-finished
        // budgeted step is now meaningless.
        self.abort_budgeted_step();
        let mut offset = self.online.trunk.param_count();
        self.online
            .trunk
            .import_parameters(&ckpt.params[..offset])
            .expect("length checked");
        for head in self
            .online
            .value_heads
            .iter_mut()
            .chain(self.online.adv_heads.iter_mut())
        {
            let n = head.param_count();
            head.import_parameters(&ckpt.params[offset..offset + n])
                .expect("length checked");
            offset += n;
        }
        self.adam.import_state(&ckpt.adam);
        self.steps = ckpt.steps;
        self.skipped_steps = ckpt.skipped_steps;
        self.buffer.set_anneal_step(ckpt.per_step);
        self.buffer.set_max_priority(ckpt.per_max_priority);
        self.buffer.restore_priorities(&ckpt.priorities);
        self.target.copy_weights_from(&self.online);
        self.rebuild_guards();
        Ok(())
    }

    /// Convenience: the paper's ε schedule aligned to this agent.
    pub fn paper_epsilon_schedule() -> EpsilonSchedule {
        EpsilonSchedule::paper()
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(agents: usize) -> MaBdqConfig {
        MaBdqConfig {
            agents,
            state_dim: 2,
            branches: vec![3, 2],
            trunk_hidden: vec![24, 16],
            head_hidden: 16,
            dropout: 0.0,
            lr: 0.01,
            gamma: 0.0,
            batch_size: 16,
            target_update_every: 20,
            buffer_capacity: 4096,
            per_beta_steps: 100,
            seed: 42,
            ..MaBdqConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        for bad in [
            MaBdqConfig {
                agents: 0,
                ..tiny_config(1)
            },
            MaBdqConfig {
                state_dim: 0,
                ..tiny_config(1)
            },
            MaBdqConfig {
                branches: vec![],
                ..tiny_config(1)
            },
            MaBdqConfig {
                branches: vec![3, 0],
                ..tiny_config(1)
            },
            MaBdqConfig {
                trunk_hidden: vec![],
                ..tiny_config(1)
            },
            MaBdqConfig {
                dropout: 1.0,
                ..tiny_config(1)
            },
            MaBdqConfig {
                gamma: 1.5,
                ..tiny_config(1)
            },
            MaBdqConfig {
                batch_size: 0,
                ..tiny_config(1)
            },
        ] {
            assert!(MaBdq::new(bad).is_err());
        }
    }

    #[test]
    fn action_shapes_and_ranges() {
        let mut agent = MaBdq::new(tiny_config(3)).unwrap();
        let states = vec![vec![0.0, 0.0]; 3];
        for eps in [0.0, 0.5, 1.0] {
            let acts = agent.select_actions(&states, eps).unwrap();
            assert_eq!(acts.len(), 3);
            for a in &acts {
                assert_eq!(a.len(), 2);
                assert!(a[0] < 3 && a[1] < 2);
            }
        }
    }

    #[test]
    fn rejects_wrong_state_shape() {
        let mut agent = MaBdq::new(tiny_config(2)).unwrap();
        assert!(agent.select_actions(&[vec![0.0, 0.0]], 0.0).is_err());
        assert!(agent
            .select_actions(&[vec![0.0], vec![0.0, 0.0]], 0.0)
            .is_err());
    }

    #[test]
    fn observe_validates_transition() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        let good = MultiTransition {
            states: vec![vec![0.0, 0.0]],
            actions: vec![vec![1, 1]],
            rewards: vec![1.0],
            next_states: vec![vec![0.0, 0.0]],
        };
        agent.observe(good.clone()).unwrap();
        let bad_action = MultiTransition {
            actions: vec![vec![5, 0]],
            ..good.clone()
        };
        assert!(agent.observe(bad_action).is_err());
        let bad_reward = MultiTransition {
            rewards: vec![],
            ..good
        };
        assert!(agent.observe(bad_reward).is_err());
    }

    #[test]
    fn observe_rejects_non_finite_transitions() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        let good = MultiTransition {
            states: vec![vec![0.0, 0.0]],
            actions: vec![vec![1, 1]],
            rewards: vec![1.0],
            next_states: vec![vec![0.0, 0.0]],
        };
        let nan_state = MultiTransition {
            states: vec![vec![f32::NAN, 0.0]],
            ..good.clone()
        };
        let inf_next = MultiTransition {
            next_states: vec![vec![0.0, f32::INFINITY]],
            ..good.clone()
        };
        let nan_reward = MultiTransition {
            rewards: vec![f32::NAN],
            ..good.clone()
        };
        for bad in [nan_state, inf_next, nan_reward] {
            assert!(matches!(agent.observe(bad), Err(RlError::NonFinite { .. })));
        }
        assert_eq!(agent.buffer_len(), 0, "nothing poisoned the buffer");
        agent.observe(good).unwrap();
        assert_eq!(agent.buffer_len(), 1);
    }

    #[test]
    fn non_finite_loss_skips_weight_update() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        // Rewards large enough that the squared TD error overflows f32:
        // the loss goes infinite and the NaN guard must refuse the step.
        for _ in 0..agent.config().batch_size {
            agent
                .observe(MultiTransition {
                    states: vec![vec![0.1, 0.2]],
                    actions: vec![vec![0, 0]],
                    rewards: vec![1.0e30],
                    next_states: vec![vec![0.1, 0.2]],
                })
                .unwrap();
        }
        let probe = vec![vec![0.1, 0.2]];
        let before = agent.q_values(&probe).unwrap();
        let stats = agent.train_step().unwrap().expect("batch available");
        assert!(stats.skipped, "blown-up loss must be skipped");
        assert!(!stats.loss.is_finite());
        assert_eq!(agent.steps(), 0);
        assert_eq!(agent.skipped_steps(), 1);
        let after = agent.q_values(&probe).unwrap();
        assert_eq!(before, after, "weights untouched by the skipped step");
        assert!(after.iter().flatten().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn train_step_none_until_batch_full() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        assert_eq!(agent.train_step().unwrap(), None);
        for _ in 0..agent.config().batch_size {
            agent
                .observe(MultiTransition {
                    states: vec![vec![0.1, 0.2]],
                    actions: vec![vec![0, 0]],
                    rewards: vec![0.5],
                    next_states: vec![vec![0.1, 0.2]],
                })
                .unwrap();
        }
        let stats = agent.train_step().unwrap().expect("batch available");
        assert!(stats.loss >= 0.0);
        assert_eq!(agent.steps(), 1);
    }

    /// A contextual bandit each agent can solve: with state s, branch 0
    /// pays for action (s>0) and branch 1 pays for the opposite parity.
    fn bandit_reward(state: f32, a0: usize, a1: usize) -> f32 {
        let want0 = usize::from(state > 0.0);
        let want1 = usize::from(state <= 0.0);
        let mut r = 0.0;
        if a0 == want0 {
            r += 1.0;
        }
        if a1 == want1 {
            r += 1.0;
        }
        r
    }

    #[test]
    fn learns_contextual_bandit_single_agent() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(9);
        for step in 0..600 {
            let s = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
            let state = vec![vec![s, 0.5]];
            let eps = (1.0 - step as f64 / 300.0).max(0.05);
            let acts = agent.select_actions(&state, eps).unwrap();
            let r = bandit_reward(s, acts[0][0], acts[0][1]);
            agent
                .observe(MultiTransition {
                    states: state.clone(),
                    actions: acts,
                    rewards: vec![r],
                    next_states: state,
                })
                .unwrap();
            agent.train_step().unwrap();
        }
        // Greedy policy should now be optimal for both contexts.
        for s in [1.0f32, -1.0] {
            let acts = agent.select_actions(&[vec![s, 0.5]], 0.0).unwrap();
            let r = bandit_reward(s, acts[0][0], acts[0][1]);
            assert_eq!(r, 2.0, "state {s}: suboptimal actions {acts:?}");
        }
    }

    #[test]
    fn learns_with_two_agents_distinct_contexts() {
        let mut agent = MaBdq::new(tiny_config(2)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(10);
        for step in 0..900 {
            let s0 = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
            let s1 = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
            let states = vec![vec![s0, 0.0], vec![s1, 0.0]];
            let eps = (1.0 - step as f64 / 450.0).max(0.05);
            let acts = agent.select_actions(&states, eps).unwrap();
            let rewards = vec![
                bandit_reward(s0, acts[0][0], acts[0][1]),
                bandit_reward(s1, acts[1][0], acts[1][1]),
            ];
            agent
                .observe(MultiTransition {
                    states: states.clone(),
                    actions: acts,
                    rewards,
                    next_states: states,
                })
                .unwrap();
            agent.train_step().unwrap();
        }
        let mut total = 0.0;
        for (s0, s1) in [(1.0f32, -1.0f32), (-1.0, 1.0), (1.0, 1.0), (-1.0, -1.0)] {
            let acts = agent
                .select_actions(&[vec![s0, 0.0], vec![s1, 0.0]], 0.0)
                .unwrap();
            total += bandit_reward(s0, acts[0][0], acts[0][1])
                + bandit_reward(s1, acts[1][0], acts[1][1]);
        }
        assert!(total >= 14.0, "joint policy too weak: {total}/16");
    }

    #[test]
    fn target_network_syncs_on_schedule() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        for _ in 0..64 {
            agent
                .observe(MultiTransition {
                    states: vec![vec![1.0, 0.0]],
                    actions: vec![vec![0, 0]],
                    rewards: vec![1.0],
                    next_states: vec![vec![1.0, 0.0]],
                })
                .unwrap();
        }
        for _ in 0..20 {
            agent.train_step().unwrap();
        }
        // After exactly target_update_every steps, weights match.
        assert_eq!(
            agent.online.trunk.export_weights(),
            agent.target.trunk.export_weights()
        );
    }

    #[test]
    fn transfer_reset_keeps_trunk() {
        let mut agent = MaBdq::new(tiny_config(1)).unwrap();
        let trunk_before = agent.trunk_weights();
        let head_before = agent.online.adv_heads[0].export_weights();
        agent.transfer_reset();
        assert_eq!(agent.trunk_weights(), trunk_before);
        assert_ne!(agent.online.adv_heads[0].export_weights(), head_before);
    }

    #[test]
    fn memory_metrics_scale_with_architecture() {
        let small = MaBdq::new(tiny_config(1)).unwrap();
        let paper = MaBdq::new(MaBdqConfig {
            state_dim: 11,
            ..MaBdqConfig::paper()
        })
        .unwrap();
        assert!(paper.param_count() > small.param_count());
        assert!(
            paper.memory_bytes() < 5_000_000,
            "paper net must fit in 5 MB"
        );
    }

    #[test]
    fn checkpoint_roundtrip_preserves_policy() {
        let mut agent = MaBdq::new(tiny_config(2)).unwrap();
        // Perturb weights via a couple of training steps.
        for _ in 0..20 {
            agent
                .observe(MultiTransition {
                    states: vec![vec![0.3, -0.4]; 2],
                    actions: vec![vec![1, 0]; 2],
                    rewards: vec![1.0, -1.0],
                    next_states: vec![vec![0.3, -0.4]; 2],
                })
                .unwrap();
        }
        agent.train_step().unwrap();
        let checkpoint = agent.save_checkpoint();
        assert_eq!(checkpoint.params.len(), agent.param_count());
        assert_eq!(checkpoint.steps, 1);
        assert!(!checkpoint.adam.slots.is_empty());
        let states = vec![vec![0.3, -0.4], vec![-0.9, 0.1]];
        let q_before = agent.q_values(&states).unwrap();

        let mut restored = MaBdq::new(MaBdqConfig {
            seed: 99,
            ..tiny_config(2)
        })
        .unwrap();
        assert_ne!(restored.q_values(&states).unwrap(), q_before);
        restored.load_checkpoint(&checkpoint).unwrap();
        assert_eq!(restored.q_values(&states).unwrap(), q_before);
        assert_eq!(restored.steps(), agent.steps());
        assert_eq!(restored.skipped_steps(), agent.skipped_steps());
        // The restored optimizer carries the same moments, so identical
        // training inputs take identical Adam steps from here on.
        assert_eq!(restored.save_checkpoint().adam, checkpoint.adam);
    }

    #[test]
    fn load_checkpoint_rejects_truncated_params() {
        let agent = MaBdq::new(tiny_config(2)).unwrap();
        let mut ckpt = agent.save_checkpoint();
        ckpt.params.pop();
        let mut restored = MaBdq::new(tiny_config(2)).unwrap();
        assert!(matches!(
            restored.load_checkpoint(&ckpt),
            Err(RlError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn load_checkpoint_rejects_permuted_branches_with_same_param_count() {
        // [3, 2] and [2, 3] branch layouts have identical total parameter
        // counts (the advantage heads are symmetric under permutation), so
        // a flat length check cannot tell them apart — the shape
        // fingerprint must.
        let donor = MaBdq::new(tiny_config(1)).unwrap();
        let mut receiver = MaBdq::new(MaBdqConfig {
            branches: vec![2, 3],
            ..tiny_config(1)
        })
        .unwrap();
        assert_eq!(donor.param_count(), receiver.param_count());
        assert!(matches!(
            receiver.load_checkpoint(&donor.save_checkpoint()),
            Err(RlError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn load_checkpoint_rejects_inconsistent_moments() {
        let donor = MaBdq::new(tiny_config(1)).unwrap();
        let mut ckpt = donor.save_checkpoint();
        ckpt.adam.slots.push(twig_nn::AdamSlot {
            id: 0,
            steps: 1,
            m: vec![0.0; 3],
            v: vec![0.0; 3],
        });
        let mut receiver = MaBdq::new(tiny_config(1)).unwrap();
        assert!(matches!(
            receiver.load_checkpoint(&ckpt),
            Err(RlError::CheckpointMismatch { .. })
        ));
    }

    fn quarantine_test_config(agents: usize) -> MaBdqConfig {
        MaBdqConfig {
            quarantine: QuarantineConfig {
                trip_multiple: 4.0,
                warmup_steps: 10,
                probation_steps: 30,
                snapshot_every: 5,
                ..QuarantineConfig::default()
            }
            .armed(),
            ..tiny_config(agents)
        }
    }

    fn normal_transition(agents: usize) -> MultiTransition {
        MultiTransition {
            states: vec![vec![0.2, -0.3]; agents],
            actions: vec![vec![0, 1]; agents],
            rewards: vec![0.5; agents],
            next_states: vec![vec![0.2, -0.3]; agents],
        }
    }

    #[test]
    fn quarantine_inactive_is_bit_identical_to_disabled() {
        // An armed quarantine that never trips must not change a single
        // weight bit relative to a run without it.
        let mut plain = MaBdq::new(tiny_config(2)).unwrap();
        let mut guarded = MaBdq::new(MaBdqConfig {
            quarantine: QuarantineConfig {
                trip_multiple: 1e12,
                warmup_steps: 1_000_000,
                ..QuarantineConfig::default()
            }
            .armed(),
            ..tiny_config(2)
        })
        .unwrap();
        let mut rng = Xoshiro256::seed_from_u64(17);
        for _ in 0..80 {
            let s = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
            let t = MultiTransition {
                states: vec![vec![s, 0.1]; 2],
                actions: vec![vec![1, 0]; 2],
                rewards: vec![s, -s],
                next_states: vec![vec![s, 0.1]; 2],
            };
            plain.observe(t.clone()).unwrap();
            guarded.observe(t).unwrap();
            plain.train_step().unwrap();
            guarded.train_step().unwrap();
        }
        assert_eq!(guarded.quarantine_stats().trips, 0);
        let a = plain.save_checkpoint();
        let b = guarded.save_checkpoint();
        for (x, y) in a.params.iter().zip(&b.params) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn quarantine_contains_diverging_agent_and_readmits() {
        let mut agent = MaBdq::new(quarantine_test_config(2)).unwrap();
        // Warm up baselines with well-behaved data.
        for _ in 0..30 {
            agent.observe(normal_transition(2)).unwrap();
            agent.train_step().unwrap();
        }
        assert_eq!(agent.quarantine_stats().trips, 0);
        let steps_before = agent.steps();
        // Poison agent 0 only: a reward spike whose squared TD overflows
        // f32, so the global NaN guard starts skipping every step.
        for _ in 0..4 {
            agent
                .observe(MultiTransition {
                    rewards: vec![1.0e30, 0.5],
                    ..normal_transition(2)
                })
                .unwrap();
            agent.train_step().unwrap();
        }
        let stats = agent.quarantine_stats();
        assert!(stats.trips >= 1, "poisoned agent must trip: {stats:?}");
        assert_eq!(stats.frozen_agents, 1, "only agent 0 frozen: {stats:?}");
        // With agent 0 quarantined the loss is finite again, so the other
        // agent keeps accumulating applied (non-skipped) train steps even
        // though the poisoned transitions are still in the buffer.
        let skipped_before = agent.skipped_steps();
        for _ in 0..10 {
            agent.observe(normal_transition(2)).unwrap();
            agent.train_step().unwrap();
        }
        assert!(
            agent.steps() > steps_before,
            "fleet still training after containment"
        );
        assert_eq!(
            agent.skipped_steps(),
            skipped_before,
            "no further skipped steps once the divergent agent is frozen"
        );
        // Probation is 30 train calls: keep training until re-admission.
        for _ in 0..40 {
            agent.observe(normal_transition(2)).unwrap();
            agent.train_step().unwrap();
        }
        let stats = agent.quarantine_stats();
        assert!(
            stats.readmissions >= 1,
            "agent must be re-admitted after probation: {stats:?}"
        );
        // Q-values stay finite throughout.
        let q = agent.q_values(&vec![vec![0.2, -0.3]; 2]).unwrap();
        assert!(q.iter().flatten().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn quarantine_config_validation() {
        for bad in [
            QuarantineConfig {
                trip_multiple: 0.5,
                ..QuarantineConfig::default()
            }
            .armed(),
            QuarantineConfig {
                probation_steps: 0,
                ..QuarantineConfig::default()
            }
            .armed(),
            QuarantineConfig {
                snapshot_every: 0,
                ..QuarantineConfig::default()
            }
            .armed(),
            QuarantineConfig {
                baseline_alpha: 0.0,
                ..QuarantineConfig::default()
            }
            .armed(),
        ] {
            let config = MaBdqConfig {
                quarantine: bad.clone(),
                ..tiny_config(1)
            };
            assert!(MaBdq::new(config).is_err(), "accepted {bad:?}");
            // The same thresholds are fine while disabled.
            let dormant = MaBdqConfig {
                quarantine: QuarantineConfig {
                    enabled: false,
                    ..bad
                },
                ..tiny_config(1)
            };
            assert!(MaBdq::new(dormant).is_ok());
        }
    }

    #[test]
    fn dueling_combine_centres_advantages() {
        let v = Tensor::from_rows(&[vec![2.0]]).unwrap();
        let adv = Tensor::from_rows(&[vec![1.0, 3.0]]).unwrap();
        let q = dueling_combine(&v, &adv);
        // mean adv = 2 => q = [2 + (1-2), 2 + (3-2)] = [1, 3]
        assert_eq!(q.as_slice(), &[1.0, 3.0]);
    }
}
