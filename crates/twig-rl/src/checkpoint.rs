//! Versioned binary checkpoint codec for [`MaBdq`](crate::MaBdq) state.
//!
//! Zero-dependency wire format, little-endian throughout:
//!
//! ```text
//! magic      8 B   b"TWIGCKPT"
//! version    u32   currently 1
//! shape header     agents u32 · state_dim u32 · head_hidden u32
//!                  · branches (count u32, entries u32…)
//!                  · trunk_hidden (count u32, entries u32…)
//! section WEIGHTS  tag u32 = 1 · count u64 · f32 × count
//! section MOMENTS  tag u32 = 2 · slots u64 · per slot:
//!                  id u64 · steps u64 · len u64 · m f32 × len · v f32 × len
//! section ANNEAL   tag u32 = 3 · steps u64 · skipped u64 · per_step u64
//!                  · per_max_priority f64
//! section PRIOS    tag u32 = 4 · count u64 · f64 × count
//! footer     u32   CRC32 (IEEE) over every preceding byte
//! ```
//!
//! [`decode_checkpoint`] verifies the CRC before parsing anything, so any
//! single-byte corruption — torn write, bit flip, truncation — yields
//! [`RlError::CorruptCheckpoint`] deterministically rather than a
//! half-parsed state.

use crate::RlError;
use twig_nn::{AdamSlot, AdamState};

/// File magic prefix.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TWIGCKPT";
/// Current format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const TAG_WEIGHTS: u32 = 1;
const TAG_MOMENTS: u32 = 2;
const TAG_ANNEAL: u32 = 3;
const TAG_PRIORITIES: u32 = 4;

/// Complete serializable learner state for a [`MaBdq`](crate::MaBdq)
/// agent fleet: architecture fingerprint, flat network weights, optimizer
/// moments, step/anneal counters, and replay priorities.
///
/// Produced by [`MaBdq::save_checkpoint`](crate::MaBdq::save_checkpoint),
/// consumed by [`MaBdq::load_checkpoint`](crate::MaBdq::load_checkpoint),
/// serialized by [`encode_checkpoint`] / [`decode_checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaBdqCheckpoint {
    /// Number of agents (services) the network was built for.
    pub agents: usize,
    /// Per-service state vector width.
    pub state_dim: usize,
    /// Action branch cardinalities.
    pub branches: Vec<usize>,
    /// Trunk hidden-layer widths.
    pub trunk_hidden: Vec<usize>,
    /// Head hidden-layer width.
    pub head_hidden: usize,
    /// Flat online-network parameters: trunk, then value heads in agent
    /// order, then advantage heads in branch order.
    pub params: Vec<f32>,
    /// Adam moment buffers keyed by parameter id.
    pub adam: AdamState,
    /// Applied train steps.
    pub steps: u64,
    /// Train steps skipped by the non-finite guard.
    pub skipped_steps: u64,
    /// PER β-anneal step counter.
    pub per_step: u64,
    /// PER running maximum priority.
    pub per_max_priority: f64,
    /// PER sum-tree leaves (α-exponentiated), in buffer order.
    pub priorities: Vec<f64>,
}

/// IEEE CRC32 (reflected, polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize_list(out: &mut Vec<u8>, list: &[usize]) {
    put_u32(out, list.len() as u32);
    for &v in list {
        put_u32(out, v as u32);
    }
}

/// Serializes a checkpoint into the versioned binary format described in
/// the module docs, CRC32 footer included.
pub fn encode_checkpoint(ckpt: &MaBdqCheckpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + 4 * ckpt.params.len()
            + ckpt
                .adam
                .slots
                .iter()
                .map(|s| 24 + 8 * s.m.len())
                .sum::<usize>()
            + 8 * ckpt.priorities.len(),
    );
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u32(&mut out, CHECKPOINT_VERSION);
    put_u32(&mut out, ckpt.agents as u32);
    put_u32(&mut out, ckpt.state_dim as u32);
    put_u32(&mut out, ckpt.head_hidden as u32);
    put_usize_list(&mut out, &ckpt.branches);
    put_usize_list(&mut out, &ckpt.trunk_hidden);

    put_u32(&mut out, TAG_WEIGHTS);
    put_u64(&mut out, ckpt.params.len() as u64);
    for &p in &ckpt.params {
        put_f32(&mut out, p);
    }

    put_u32(&mut out, TAG_MOMENTS);
    put_u64(&mut out, ckpt.adam.slots.len() as u64);
    for slot in &ckpt.adam.slots {
        put_u64(&mut out, slot.id as u64);
        put_u64(&mut out, slot.steps);
        put_u64(&mut out, slot.m.len() as u64);
        for &x in &slot.m {
            put_f32(&mut out, x);
        }
        for &x in &slot.v {
            put_f32(&mut out, x);
        }
    }

    put_u32(&mut out, TAG_ANNEAL);
    put_u64(&mut out, ckpt.steps);
    put_u64(&mut out, ckpt.skipped_steps);
    put_u64(&mut out, ckpt.per_step);
    put_f64(&mut out, ckpt.per_max_priority);

    put_u32(&mut out, TAG_PRIORITIES);
    put_u64(&mut out, ckpt.priorities.len() as u64);
    for &p in &ckpt.priorities {
        put_f64(&mut out, p);
    }

    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Cheaply checks that `bytes` is a plausible checkpoint — minimum
/// length, magic, version, and CRC32 footer — without materializing the
/// payload.
///
/// This is the guard a transfer path runs on received bytes before
/// handing them to a live agent: corruption in flight is caught here at
/// wire-scan cost instead of surfacing mid-restore.
///
/// # Errors
///
/// Returns [`RlError::CorruptCheckpoint`] when the buffer is too short,
/// fails the CRC, carries the wrong magic, or an unsupported version.
pub fn validate_checkpoint_bytes(bytes: &[u8]) -> Result<(), RlError> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(footer.try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(corrupt(format!(
            "CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    if body[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    Ok(())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(detail: impl Into<String>) -> RlError {
    RlError::CorruptCheckpoint {
        detail: detail.into(),
    }
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RlError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("section extends past end of buffer"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RlError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, RlError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, RlError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, RlError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a u64 element count and checks `count * elem_size` fits in the
    /// remaining bytes, so corrupted counts cannot trigger huge allocations.
    fn count(&mut self, elem_size: usize) -> Result<usize, RlError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| corrupt("element count overflows usize"))?;
        let bytes = n
            .checked_mul(elem_size)
            .ok_or_else(|| corrupt("element count overflows usize"))?;
        if self
            .pos
            .checked_add(bytes)
            .filter(|&e| e <= self.buf.len())
            .is_none()
        {
            return Err(corrupt(format!(
                "element count {n} exceeds remaining buffer"
            )));
        }
        Ok(n)
    }

    fn usize_list(&mut self) -> Result<Vec<usize>, RlError> {
        let n = self.u32()? as usize;
        if self.pos + 4 * n > self.buf.len() {
            return Err(corrupt("shape list exceeds remaining buffer"));
        }
        (0..n).map(|_| Ok(self.u32()? as usize)).collect()
    }

    fn tag(&mut self, expected: u32) -> Result<(), RlError> {
        let tag = self.u32()?;
        if tag != expected {
            return Err(corrupt(format!("expected section {expected}, found {tag}")));
        }
        Ok(())
    }
}

/// Deserializes a checkpoint, verifying the CRC32 footer before any field
/// is parsed.
///
/// # Errors
///
/// Returns [`RlError::CorruptCheckpoint`] when the buffer is truncated,
/// fails the CRC, carries the wrong magic, an unsupported version, or an
/// inconsistent section layout.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<MaBdqCheckpoint, RlError> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(footer.try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(corrupt(format!(
            "CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(8)? != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let agents = r.u32()? as usize;
    let state_dim = r.u32()? as usize;
    let head_hidden = r.u32()? as usize;
    let branches = r.usize_list()?;
    let trunk_hidden = r.usize_list()?;

    r.tag(TAG_WEIGHTS)?;
    let n = r.count(4)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(r.f32()?);
    }

    r.tag(TAG_MOMENTS)?;
    let slots_n = r.count(24)?;
    let mut slots = Vec::with_capacity(slots_n);
    for _ in 0..slots_n {
        let id = usize::try_from(r.u64()?).map_err(|_| corrupt("slot id overflows usize"))?;
        let steps = r.u64()?;
        let len = r.count(8)?;
        let mut m = Vec::with_capacity(len);
        for _ in 0..len {
            m.push(r.f32()?);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(r.f32()?);
        }
        slots.push(AdamSlot { id, steps, m, v });
    }

    r.tag(TAG_ANNEAL)?;
    let steps = r.u64()?;
    let skipped_steps = r.u64()?;
    let per_step = r.u64()?;
    let per_max_priority = r.f64()?;

    r.tag(TAG_PRIORITIES)?;
    let n = r.count(8)?;
    let mut priorities = Vec::with_capacity(n);
    for _ in 0..n {
        priorities.push(r.f64()?);
    }

    if r.pos != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after last section",
            body.len() - r.pos
        )));
    }

    Ok(MaBdqCheckpoint {
        agents,
        state_dim,
        branches,
        trunk_hidden,
        head_hidden,
        params,
        adam: AdamState { slots },
        steps,
        skipped_steps,
        per_step,
        per_max_priority,
        priorities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> MaBdqCheckpoint {
        MaBdqCheckpoint {
            agents: 2,
            state_dim: 3,
            branches: vec![4, 2],
            trunk_hidden: vec![8, 6],
            head_hidden: 5,
            params: vec![0.5, -1.25, 3.75, f32::MIN_POSITIVE],
            adam: AdamState {
                slots: vec![
                    AdamSlot {
                        id: 0,
                        steps: 7,
                        m: vec![0.1, 0.2],
                        v: vec![0.3, 0.4],
                    },
                    AdamSlot {
                        id: 5,
                        steps: 9,
                        m: vec![-0.5],
                        v: vec![0.25],
                    },
                ],
            },
            steps: 41,
            skipped_steps: 2,
            per_step: 40,
            per_max_priority: 2.5,
            priorities: vec![1.0, 0.125, 7.75],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let ckpt = sample_checkpoint();
        let bytes = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn crc_checked_before_parsing() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        // Flip one bit in every byte position: all must fail with
        // CorruptCheckpoint, never panic or succeed.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match decode_checkpoint(&bad) {
                Err(RlError::CorruptCheckpoint { .. }) => {}
                other => panic!("byte {i}: expected CorruptCheckpoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        for n in 0..bytes.len() {
            assert!(
                matches!(
                    decode_checkpoint(&bytes[..n]),
                    Err(RlError::CorruptCheckpoint { .. })
                ),
                "truncation to {n} bytes must be rejected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        // A CRC-valid buffer with wrong magic.
        let mut body = b"NOTACKPT".to_vec();
        put_u32(&mut body, CHECKPOINT_VERSION);
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        assert!(matches!(
            decode_checkpoint(&body),
            Err(RlError::CorruptCheckpoint { .. })
        ));

        let mut body = CHECKPOINT_MAGIC.to_vec();
        put_u32(&mut body, 999);
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        let err = decode_checkpoint(&body).unwrap_err();
        assert!(err.to_string().contains("version 999"), "{err}");
    }

    #[test]
    fn validate_accepts_good_and_rejects_corrupt() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        validate_checkpoint_bytes(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(
                    validate_checkpoint_bytes(&bad),
                    Err(RlError::CorruptCheckpoint { .. })
                ),
                "flip at byte {i} must fail validation"
            );
        }
        for n in 0..bytes.len() {
            assert!(validate_checkpoint_bytes(&bytes[..n]).is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_state_roundtrips() {
        let ckpt = MaBdqCheckpoint {
            agents: 1,
            state_dim: 1,
            branches: vec![],
            trunk_hidden: vec![],
            head_hidden: 1,
            params: vec![],
            adam: AdamState::default(),
            steps: 0,
            skipped_steps: 0,
            per_step: 0,
            per_max_priority: 1.0,
            priorities: vec![],
        };
        let back = decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap();
        assert_eq!(back, ckpt);
    }
}
