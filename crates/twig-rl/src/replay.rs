use crate::RlError;
use twig_stats::rng::Rng;

/// Fixed-capacity uniform experience-replay ring buffer.
///
/// # Examples
///
/// ```
/// use twig_stats::rng::Xoshiro256;
/// use twig_rl::ReplayBuffer;
///
/// let mut buf = ReplayBuffer::new(3);
/// for i in 0..5 {
///     buf.push(i);
/// }
/// assert_eq!(buf.len(), 3); // oldest evicted
/// let mut rng = Xoshiro256::seed_from_u64(0);
/// let batch = buf.sample(2, &mut rng).unwrap();
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    next: usize,
}

impl<T> ReplayBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
        }
    }

    /// Adds an item, evicting the oldest once at capacity.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples `n` items uniformly with replacement.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::NotEnoughData`] when the buffer is empty.
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Result<Vec<&T>, RlError> {
        if self.items.is_empty() {
            return Err(RlError::NotEnoughData {
                needed: n,
                available: 0,
            });
        }
        Ok((0..n)
            .map(|_| &self.items[rng.range_usize(0, self.items.len())])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::Xoshiro256;

    #[test]
    fn fills_then_wraps() {
        let mut b = ReplayBuffer::new(2);
        assert!(b.is_empty());
        b.push(1);
        b.push(2);
        b.push(3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 2);
        // After wrap the oldest (1) is gone.
        let mut rng = Xoshiro256::seed_from_u64(0);
        for _ in 0..20 {
            let s = b.sample(1, &mut rng).unwrap();
            assert!(*s[0] == 2 || *s[0] == 3);
        }
    }

    #[test]
    fn sample_empty_errors() {
        let b: ReplayBuffer<u8> = ReplayBuffer::new(4);
        let mut rng = Xoshiro256::seed_from_u64(0);
        assert!(matches!(
            b.sample(1, &mut rng),
            Err(RlError::NotEnoughData { available: 0, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::<u8>::new(0);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..7 {
            b.push(i);
        }
        // Items 4, 5, 6 remain.
        let mut rng = Xoshiro256::seed_from_u64(1);
        let all: Vec<i32> = (0..100)
            .map(|_| **b.sample(1, &mut rng).unwrap().first().unwrap())
            .collect();
        assert!(all.iter().all(|&v| (4..=6).contains(&v)));
    }
}
