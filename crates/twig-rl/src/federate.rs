//! Federated weight aggregation for fleets of [`MaBdq`](crate::MaBdq)
//! agents.
//!
//! The cluster's federation plane (in `twig-cluster`) periodically
//! collects checkpoint-codec payloads from every eligible replica and
//! merges them into one policy per service. This module holds the pure
//! math and the screening ladder that payloads must climb before their
//! weights may touch a merge:
//!
//! 1. **Integrity** — [`decode_payload`]: CRC + format validation via the
//!    PR-4 codec ([`FedError::CorruptPayload`]);
//! 2. **Shape** — [`check_shape`]: architecture fingerprint against the
//!    round's reference ([`FedError::ShapeMismatch`]);
//! 3. **Finiteness** — [`check_finite`]: every weight a real number
//!    ([`FedError::NonFinitePayload`]);
//! 4. **Eligibility** — [`check_eligible`]: contributors with quarantined
//!    agents never contribute ([`FedError::QuarantinedContributor`]);
//! 5. **Byzantine screen** — [`ByzantineScreen`]: payloads whose weights
//!    sit implausibly far from the round consensus are rejected before
//!    the merge ([`FedError::DivergentPayload`]).
//!
//! What survives is merged by [`merge_round`]: a capacity-weighted mean
//! of the contributors' flat parameter vectors, accumulated in `f64`
//! over contributions **sorted by contributor id**, so the result is
//! bit-identical under any permutation of the input order. A single
//! contributor is special-cased to an exact copy (the IEEE quotient
//! `(w·x)/w` is not exact in general), which is what makes cold-server
//! policy transfer through a one-donor round byte-faithful.

use crate::checkpoint::{decode_checkpoint, validate_checkpoint_bytes, MaBdqCheckpoint};
use std::error::Error;
use std::fmt;
use twig_nn::AdamState;

/// Error produced by the federated-aggregation ladder. Every rejection a
/// payload can suffer on its way to a merge is a distinct variant, so the
/// cluster's federation plane can count them separately.
///
/// # Examples
///
/// ```
/// use twig_rl::federate::{decode_payload, FedError};
///
/// assert!(matches!(
///     decode_payload(b"not a checkpoint"),
///     Err(FedError::CorruptPayload { .. })
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FedError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// A payload failed CRC or format validation (bad magic, truncation,
    /// bit flips).
    CorruptPayload {
        /// Human-readable description.
        detail: String,
    },
    /// A payload decoded cleanly but its architecture fingerprint does
    /// not match the round's reference shape.
    ShapeMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// A payload carried NaN or infinite weights.
    NonFinitePayload {
        /// Human-readable description.
        detail: String,
    },
    /// A payload's weights diverge implausibly from the round consensus
    /// (Byzantine screen).
    DivergentPayload {
        /// Human-readable description.
        detail: String,
    },
    /// The contributor has quarantined (frozen) agents and is barred
    /// from the round.
    QuarantinedContributor {
        /// Agents currently frozen on the contributor.
        frozen_agents: usize,
    },
    /// Too few accepted contributions to merge.
    QuorumNotMet {
        /// Accepted contributions.
        got: usize,
        /// Minimum required.
        need: usize,
    },
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            FedError::CorruptPayload { detail } => write!(f, "corrupt payload: {detail}"),
            FedError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            FedError::NonFinitePayload { detail } => {
                write!(f, "non-finite payload: {detail}")
            }
            FedError::DivergentPayload { detail } => {
                write!(f, "divergent payload: {detail}")
            }
            FedError::QuarantinedContributor { frozen_agents } => {
                write!(f, "contributor has {frozen_agents} quarantined agents")
            }
            FedError::QuorumNotMet { got, need } => {
                write!(f, "quorum not met: {got} of {need} required contributions")
            }
        }
    }
}

impl Error for FedError {}

/// One eligible, screened weight contribution to a federation round.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Contributing node's index — the canonical sort key that makes the
    /// merge permutation-invariant.
    pub contributor: usize,
    /// Capacity weight (e.g. cores × max MHz); must be nonzero.
    pub weight: u64,
    /// The contributor's decoded checkpoint.
    pub checkpoint: MaBdqCheckpoint,
}

/// Rung 1 of the screening ladder: CRC + format validation, then decode.
///
/// # Errors
///
/// Returns [`FedError::CorruptPayload`] for any byte-level damage.
pub fn decode_payload(bytes: &[u8]) -> Result<MaBdqCheckpoint, FedError> {
    let corrupt = |e: crate::RlError| FedError::CorruptPayload {
        detail: e.to_string(),
    };
    validate_checkpoint_bytes(bytes).map_err(corrupt)?;
    decode_checkpoint(bytes).map_err(corrupt)
}

/// Rung 2: the candidate's architecture fingerprint must match the
/// round's reference shape exactly — heterogeneous platforms produce
/// different branch cardinalities, and averaging across shapes is
/// meaningless.
///
/// # Errors
///
/// Returns [`FedError::ShapeMismatch`] on any fingerprint difference.
pub fn check_shape(
    candidate: &MaBdqCheckpoint,
    reference: &MaBdqCheckpoint,
) -> Result<(), FedError> {
    if candidate.agents != reference.agents
        || candidate.state_dim != reference.state_dim
        || candidate.branches != reference.branches
        || candidate.trunk_hidden != reference.trunk_hidden
        || candidate.head_hidden != reference.head_hidden
        || candidate.params.len() != reference.params.len()
    {
        return Err(FedError::ShapeMismatch {
            detail: format!(
                "candidate ({} agents, state {}, branches {:?}, trunk {:?}, head {}, \
                 {} params) vs reference ({} agents, state {}, branches {:?}, trunk {:?}, \
                 head {}, {} params)",
                candidate.agents,
                candidate.state_dim,
                candidate.branches,
                candidate.trunk_hidden,
                candidate.head_hidden,
                candidate.params.len(),
                reference.agents,
                reference.state_dim,
                reference.branches,
                reference.trunk_hidden,
                reference.head_hidden,
                reference.params.len(),
            ),
        });
    }
    Ok(())
}

/// Rung 3: every weight must be a real number — a single NaN in a merge
/// poisons every recipient.
///
/// # Errors
///
/// Returns [`FedError::NonFinitePayload`] naming the first bad index.
pub fn check_finite(candidate: &MaBdqCheckpoint) -> Result<(), FedError> {
    if let Some(at) = candidate.params.iter().position(|p| !p.is_finite()) {
        return Err(FedError::NonFinitePayload {
            detail: format!("parameter {at} is {}", candidate.params[at]),
        });
    }
    Ok(())
}

/// Rung 4: a contributor with quarantined agents is in an untrusted
/// regime (its divergence tripped PR-4's guards) and must not contribute
/// this round.
///
/// # Errors
///
/// Returns [`FedError::QuarantinedContributor`] when any agent is frozen.
pub fn check_eligible(frozen_agents: usize) -> Result<(), FedError> {
    if frozen_agents > 0 {
        return Err(FedError::QuarantinedContributor { frozen_agents });
    }
    Ok(())
}

/// Knobs of the [`ByzantineScreen`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenConfig {
    /// Absolute per-weight magnitude limit; a candidate with any weight
    /// beyond it is rejected outright, even before the baseline warms up.
    pub hard_limit: f64,
    /// A candidate whose RMS distance to the round centroid exceeds
    /// `trip_multiple ×` the EWMA baseline (after warm-up) is rejected.
    pub trip_multiple: f64,
    /// Rounds observed before the EWMA baseline is trusted to trip.
    pub warmup_rounds: u32,
    /// EWMA smoothing factor in `(0, 1]`.
    pub alpha: f64,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig {
            hard_limit: 1e6,
            trip_multiple: 8.0,
            warmup_rounds: 3,
            alpha: 0.2,
        }
    }
}

/// Distances below this floor never arm the divergence trip: honest
/// replicas trained from the same seed can agree to within noise, and a
/// near-zero baseline must not turn that agreement into a tripwire.
const BASELINE_FLOOR: f64 = 1e-3;

/// Rung 5: the per-round Byzantine screen.
///
/// Each round, candidates are compared against the **round centroid** —
/// the coordinate-wise *median* of every candidate that passes the hard
/// magnitude limit, so a minority of adversarial payloads cannot drag
/// the reference point toward themselves the way a mean would. A
/// candidate is rejected when any weight exceeds the hard limit, or —
/// once the screen has observed `warmup_rounds` rounds — when its RMS
/// distance to the centroid exceeds `trip_multiple ×` the EWMA baseline
/// of accepted distances. Accepted distances feed the baseline, so the
/// screen tracks the fleet's honest drift.
#[derive(Debug, Clone)]
pub struct ByzantineScreen {
    config: ScreenConfig,
    baseline: f64,
    rounds_observed: u32,
}

impl ByzantineScreen {
    /// Builds a screen.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for a non-positive or
    /// non-finite hard limit, a trip multiple ≤ 1, or α outside `(0, 1]`.
    pub fn new(config: ScreenConfig) -> Result<Self, FedError> {
        if !config.hard_limit.is_finite() || config.hard_limit <= 0.0 {
            return Err(FedError::InvalidConfig {
                detail: format!("hard_limit must be positive, got {}", config.hard_limit),
            });
        }
        if !config.trip_multiple.is_finite() || config.trip_multiple <= 1.0 {
            return Err(FedError::InvalidConfig {
                detail: format!("trip_multiple must exceed 1, got {}", config.trip_multiple),
            });
        }
        if !(config.alpha.is_finite() && config.alpha > 0.0 && config.alpha <= 1.0) {
            return Err(FedError::InvalidConfig {
                detail: format!("alpha must be in (0, 1], got {}", config.alpha),
            });
        }
        Ok(ByzantineScreen {
            config,
            baseline: 0.0,
            rounds_observed: 0,
        })
    }

    /// The current EWMA distance baseline (0 before any round).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Rounds whose accepted distances fed the baseline.
    pub fn rounds_observed(&self) -> u32 {
        self.rounds_observed
    }

    /// Screens one round of candidate parameter vectors, returning one
    /// verdict per candidate in input order. All candidates must share a
    /// length (the caller has already shape-checked them).
    pub fn screen(&mut self, candidates: &[&[f32]]) -> Vec<Result<(), FedError>> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let dim = candidates[0].len();
        // Hard pass: reject outright anything with an implausible or
        // non-finite weight, and build the centroid from the rest.
        let hard_ok: Vec<bool> = candidates
            .iter()
            .map(|p| {
                p.len() == dim
                    && p.iter()
                        .all(|&w| w.is_finite() && f64::from(w).abs() <= self.config.hard_limit)
            })
            .collect();
        let survivors = hard_ok.iter().filter(|&&ok| ok).count();
        if survivors == 0 || dim == 0 {
            return candidates
                .iter()
                .map(|_| {
                    Err(FedError::DivergentPayload {
                        detail: "no candidate passed the hard magnitude limit".into(),
                    })
                })
                .collect();
        }
        // Coordinate-wise median over the hard survivors: robust to a
        // minority of adversarial payloads, unlike a mean centroid.
        let mut column = Vec::with_capacity(survivors);
        let mut centroid = vec![0.0f64; dim];
        for (j, c) in centroid.iter_mut().enumerate() {
            column.clear();
            for (p, _) in candidates.iter().zip(&hard_ok).filter(|(_, &ok)| ok) {
                column.push(f64::from(p[j]));
            }
            column.sort_by(f64::total_cmp);
            *c = if survivors % 2 == 1 {
                column[survivors / 2]
            } else {
                (column[survivors / 2 - 1] + column[survivors / 2]) / 2.0
            };
        }
        let rms = |p: &[f32]| -> f64 {
            let sum: f64 = p
                .iter()
                .zip(&centroid)
                .map(|(&w, &c)| {
                    let d = f64::from(w) - c;
                    d * d
                })
                .sum();
            (sum / dim as f64).sqrt()
        };
        let warm = self.rounds_observed >= self.config.warmup_rounds;
        let threshold = self.config.trip_multiple * self.baseline.max(BASELINE_FLOOR);
        let mut accepted_sum = 0.0f64;
        let mut accepted_n = 0usize;
        let verdicts: Vec<Result<(), FedError>> = candidates
            .iter()
            .zip(&hard_ok)
            .map(|(p, &ok)| {
                if !ok {
                    return Err(FedError::DivergentPayload {
                        detail: format!(
                            "a weight exceeds the hard magnitude limit {}",
                            self.config.hard_limit
                        ),
                    });
                }
                let d = rms(p);
                if warm && d > threshold {
                    return Err(FedError::DivergentPayload {
                        detail: format!(
                            "RMS distance {d:.6} to the round centroid exceeds \
                             {:.6} ({}× baseline)",
                            threshold, self.config.trip_multiple
                        ),
                    });
                }
                accepted_sum += d;
                accepted_n += 1;
                Ok(())
            })
            .collect();
        if accepted_n > 0 {
            let mean = accepted_sum / accepted_n as f64;
            self.baseline = if self.rounds_observed == 0 {
                mean
            } else {
                self.config.alpha * mean + (1.0 - self.config.alpha) * self.baseline
            };
            self.rounds_observed += 1;
        }
        verdicts
    }
}

/// Capacity-weighted mean of the contributors' flat parameter vectors.
///
/// Contributions are sorted by contributor id before a fixed-order `f64`
/// accumulation, so the result is **bit-identical under permutation** of
/// the input. A single contributor returns an exact copy of its
/// parameters (the IEEE quotient `(w·x)/w` is not exact in general).
///
/// # Errors
///
/// - [`FedError::QuorumNotMet`] for an empty contribution list;
/// - [`FedError::InvalidConfig`] for a zero weight or duplicate
///   contributor ids;
/// - [`FedError::ShapeMismatch`] when parameter lengths disagree.
pub fn weighted_mean_params(contributions: &[Contribution]) -> Result<Vec<f32>, FedError> {
    if contributions.is_empty() {
        return Err(FedError::QuorumNotMet { got: 0, need: 1 });
    }
    let mut order: Vec<usize> = (0..contributions.len()).collect();
    order.sort_unstable_by_key(|&i| contributions[i].contributor);
    for pair in order.windows(2) {
        if contributions[pair[0]].contributor == contributions[pair[1]].contributor {
            return Err(FedError::InvalidConfig {
                detail: format!(
                    "duplicate contributor {}",
                    contributions[pair[0]].contributor
                ),
            });
        }
    }
    let dim = contributions[0].checkpoint.params.len();
    for c in contributions {
        if c.weight == 0 {
            return Err(FedError::InvalidConfig {
                detail: format!("contributor {} has zero weight", c.contributor),
            });
        }
        if c.checkpoint.params.len() != dim {
            return Err(FedError::ShapeMismatch {
                detail: format!(
                    "contributor {} has {} params, expected {dim}",
                    c.contributor,
                    c.checkpoint.params.len()
                ),
            });
        }
    }
    if contributions.len() == 1 {
        return Ok(contributions[0].checkpoint.params.clone());
    }
    let total: f64 = order.iter().map(|&i| contributions[i].weight as f64).sum();
    let mut acc = vec![0.0f64; dim];
    for &i in &order {
        let c = &contributions[i];
        let w = c.weight as f64;
        for (a, &p) in acc.iter_mut().zip(&c.checkpoint.params) {
            *a += w * f64::from(p);
        }
    }
    Ok(acc.into_iter().map(|a| (a / total) as f32).collect())
}

/// Builds the merged checkpoint a recipient adopts after a round: the
/// recipient's own checkpoint with its parameters replaced by the
/// capacity-weighted mean, its optimizer moments cleared (moments of
/// averaged weights are meaningless — Adam re-warms), and its step
/// counter raised to the most-trained contributor's so a cold recipient
/// inherits trained status (ε resumes at the exploitation point, zero
/// cold-start learning epochs).
///
/// # Errors
///
/// Propagates [`weighted_mean_params`] errors, plus
/// [`FedError::ShapeMismatch`] when a contribution does not match the
/// recipient's shape.
pub fn merge_round(
    recipient: &MaBdqCheckpoint,
    contributions: &[Contribution],
) -> Result<MaBdqCheckpoint, FedError> {
    for c in contributions {
        check_shape(&c.checkpoint, recipient)?;
    }
    let params = weighted_mean_params(contributions)?;
    let steps = contributions
        .iter()
        .map(|c| c.checkpoint.steps)
        .fold(recipient.steps, u64::max);
    let mut merged = recipient.clone();
    merged.params = params;
    merged.adam = AdamState::default();
    merged.steps = steps;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::encode_checkpoint;
    use twig_stats::rng::{Rng, Xoshiro256};

    fn ckpt(params: Vec<f32>, steps: u64) -> MaBdqCheckpoint {
        MaBdqCheckpoint {
            agents: 1,
            state_dim: 2,
            branches: vec![3],
            trunk_hidden: vec![4],
            head_hidden: 2,
            params,
            adam: AdamState::default(),
            steps,
            skipped_steps: 0,
            per_step: 0,
            per_max_priority: 1.0,
            priorities: vec![],
        }
    }

    fn contribution(id: usize, weight: u64, params: Vec<f32>) -> Contribution {
        Contribution {
            contributor: id,
            weight,
            checkpoint: ckpt(params, 10),
        }
    }

    fn random_params(rng: &mut Xoshiro256, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
            .collect()
    }

    #[test]
    fn mean_is_permutation_invariant() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for trial in 0..50 {
            let n = 2 + (trial % 5);
            let dim = 1 + (trial % 17);
            let mut contributions: Vec<Contribution> = (0..n)
                .map(|i| contribution(i, 1 + rng.next_u64() % 1000, random_params(&mut rng, dim)))
                .collect();
            let reference = weighted_mean_params(&contributions).unwrap();
            // A deterministic shuffle per trial.
            for i in (1..contributions.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                contributions.swap(i, j);
            }
            let shuffled = weighted_mean_params(&contributions).unwrap();
            assert_eq!(
                reference.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                shuffled.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "trial {trial}: permutation changed the merged bits"
            );
        }
    }

    #[test]
    fn single_contributor_is_exact_identity() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for trial in 0..50 {
            let dim = 1 + (trial % 23);
            let params = random_params(&mut rng, dim);
            let weight = 1 + rng.next_u64() % 10_000;
            let merged = weighted_mean_params(&[contribution(4, weight, params.clone())]).unwrap();
            assert_eq!(
                params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                merged.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "trial {trial}: one-donor merge must be byte-faithful"
            );
        }
    }

    #[test]
    fn excluded_contributor_has_no_influence() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        for trial in 0..50 {
            let dim = 1 + (trial % 13);
            let kept: Vec<Contribution> = (0..3)
                .map(|i| contribution(i, 1 + rng.next_u64() % 100, random_params(&mut rng, dim)))
                .collect();
            let excluded = contribution(9, 1 + rng.next_u64() % 100, random_params(&mut rng, dim));
            let without = weighted_mean_params(&kept).unwrap();
            // The excluded agent never enters the list — dropping it is
            // the exclusion mechanism — so any list equal to `kept` up to
            // permutation merges identically no matter what the excluded
            // agent's weights were.
            let mut reordered = kept.clone();
            reordered.rotate_left(trial % 3);
            let again = weighted_mean_params(&reordered).unwrap();
            assert_eq!(without, again);
            drop(excluded);
        }
    }

    #[test]
    fn weighted_mean_matches_f64_reference() {
        let contributions = vec![
            contribution(0, 1, vec![1.0, -2.0]),
            contribution(1, 3, vec![5.0, 6.0]),
        ];
        let merged = weighted_mean_params(&contributions).unwrap();
        assert_eq!(merged, vec![4.0, 4.0]);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let bytes = encode_checkpoint(&ckpt(vec![1.0, 2.0], 1));
        decode_payload(&bytes).unwrap();
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0xFF;
        assert!(matches!(
            decode_payload(&bad),
            Err(FedError::CorruptPayload { .. })
        ));
        assert!(matches!(
            decode_payload(&bytes[..bytes.len() - 3]),
            Err(FedError::CorruptPayload { .. })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let reference = ckpt(vec![1.0, 2.0], 1);
        let mut other = reference.clone();
        other.branches = vec![5];
        assert!(matches!(
            check_shape(&other, &reference),
            Err(FedError::ShapeMismatch { .. })
        ));
        let mut other = reference.clone();
        other.params.push(0.0);
        assert!(matches!(
            check_shape(&other, &reference),
            Err(FedError::ShapeMismatch { .. })
        ));
        check_shape(&reference.clone(), &reference).unwrap();
    }

    #[test]
    fn non_finite_payload_rejected() {
        let good = ckpt(vec![1.0, 2.0], 1);
        check_finite(&good).unwrap();
        assert!(matches!(
            check_finite(&ckpt(vec![1.0, f32::NAN], 1)),
            Err(FedError::NonFinitePayload { .. })
        ));
        assert!(matches!(
            check_finite(&ckpt(vec![f32::INFINITY], 1)),
            Err(FedError::NonFinitePayload { .. })
        ));
    }

    #[test]
    fn quarantined_contributor_rejected() {
        check_eligible(0).unwrap();
        assert_eq!(
            check_eligible(2),
            Err(FedError::QuarantinedContributor { frozen_agents: 2 })
        );
    }

    #[test]
    fn quorum_and_config_rejections() {
        assert_eq!(
            weighted_mean_params(&[]),
            Err(FedError::QuorumNotMet { got: 0, need: 1 })
        );
        let dup = vec![contribution(3, 1, vec![1.0]), contribution(3, 1, vec![2.0])];
        assert!(matches!(
            weighted_mean_params(&dup),
            Err(FedError::InvalidConfig { .. })
        ));
        let zero = vec![contribution(0, 0, vec![1.0])];
        assert!(matches!(
            weighted_mean_params(&zero),
            Err(FedError::InvalidConfig { .. })
        ));
        let ragged = vec![
            contribution(0, 1, vec![1.0]),
            contribution(1, 1, vec![1.0, 2.0]),
        ];
        assert!(matches!(
            weighted_mean_params(&ragged),
            Err(FedError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn screen_rejects_hard_limit_and_ewma_divergence() {
        let mut screen = ByzantineScreen::new(ScreenConfig {
            warmup_rounds: 2,
            ..ScreenConfig::default()
        })
        .unwrap();
        // Garbage magnitudes are rejected from round one.
        let honest_a = vec![0.5f32; 8];
        let honest_b = vec![0.6f32; 8];
        let garbage = vec![1e9f32; 8];
        let verdicts = screen.screen(&[&honest_a, &honest_b, &garbage]);
        assert!(verdicts[0].is_ok() && verdicts[1].is_ok());
        assert!(matches!(
            verdicts[2],
            Err(FedError::DivergentPayload { .. })
        ));
        // Warm the baseline with honest rounds…
        for _ in 0..3 {
            let v = screen.screen(&[&honest_a, &honest_b]);
            assert!(v.iter().all(Result::is_ok));
        }
        assert!(screen.rounds_observed() >= 2);
        // …then an in-range but offset payload trips the EWMA screen.
        let offset = vec![500.0f32; 8];
        let verdicts = screen.screen(&[&honest_a, &honest_b, &offset]);
        assert!(verdicts[0].is_ok() && verdicts[1].is_ok());
        assert!(matches!(
            verdicts[2],
            Err(FedError::DivergentPayload { .. })
        ));
    }

    #[test]
    fn screen_rejects_everything_when_no_hard_survivor() {
        let mut screen = ByzantineScreen::new(ScreenConfig::default()).unwrap();
        let bad = vec![f32::NAN; 4];
        let verdicts = screen.screen(&[&bad]);
        assert!(matches!(
            verdicts[0],
            Err(FedError::DivergentPayload { .. })
        ));
        assert_eq!(screen.rounds_observed(), 0);
    }

    #[test]
    fn screen_config_validated() {
        for bad in [
            ScreenConfig {
                hard_limit: 0.0,
                ..ScreenConfig::default()
            },
            ScreenConfig {
                trip_multiple: 1.0,
                ..ScreenConfig::default()
            },
            ScreenConfig {
                alpha: 0.0,
                ..ScreenConfig::default()
            },
            ScreenConfig {
                alpha: f64::NAN,
                ..ScreenConfig::default()
            },
        ] {
            assert!(matches!(
                ByzantineScreen::new(bad),
                Err(FedError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn merge_round_clears_moments_and_inherits_steps() {
        let mut recipient = ckpt(vec![0.0, 0.0], 0);
        recipient.adam = AdamState {
            slots: vec![twig_nn::AdamSlot {
                id: 0,
                steps: 3,
                m: vec![0.1, 0.2],
                v: vec![0.3, 0.4],
            }],
        };
        let contributions = vec![
            Contribution {
                contributor: 0,
                weight: 1,
                checkpoint: ckpt(vec![2.0, 4.0], 120),
            },
            Contribution {
                contributor: 1,
                weight: 1,
                checkpoint: ckpt(vec![4.0, 8.0], 80),
            },
        ];
        let merged = merge_round(&recipient, &contributions).unwrap();
        assert_eq!(merged.params, vec![3.0, 6.0]);
        assert!(merged.adam.slots.is_empty(), "moments must be cleared");
        assert_eq!(merged.steps, 120, "most-trained contributor wins");
        // Everything else is the recipient's own bookkeeping.
        assert_eq!(merged.per_max_priority, recipient.per_max_priority);
        // The merged checkpoint still round-trips the wire format.
        decode_payload(&encode_checkpoint(&merged)).unwrap();
    }

    #[test]
    fn merge_round_shape_checks_against_recipient() {
        let recipient = ckpt(vec![0.0, 0.0], 0);
        let mut foreign = ckpt(vec![1.0, 2.0], 5);
        foreign.head_hidden = 9;
        let contributions = vec![Contribution {
            contributor: 0,
            weight: 1,
            checkpoint: foreign,
        }];
        assert!(matches!(
            merge_round(&recipient, &contributions),
            Err(FedError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn errors_display_and_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FedError>();
        for e in [
            FedError::InvalidConfig { detail: "a".into() },
            FedError::CorruptPayload { detail: "b".into() },
            FedError::ShapeMismatch { detail: "c".into() },
            FedError::NonFinitePayload { detail: "d".into() },
            FedError::DivergentPayload { detail: "e".into() },
            FedError::QuarantinedContributor { frozen_agents: 1 },
            FedError::QuorumNotMet { got: 1, need: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
