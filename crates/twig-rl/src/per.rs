use crate::{LinearAnneal, RlError};
use twig_stats::rng::Rng;

/// Prioritised experience replay (Schaul et al. 2015), as used by the paper:
/// buffer size 10⁶, `pr_α = 0.6`, `pr_β` annealed linearly from 0.4 to 1.
///
/// Priorities are stored in a sum tree for O(log n) proportional sampling;
/// [`sample`](Self::sample) returns importance-sampling weights normalised
/// by the batch maximum, and [`update_priorities`](Self::update_priorities)
/// feeds TD errors back after each train step.
///
/// # Examples
///
/// ```
/// use twig_stats::rng::Xoshiro256;
/// use twig_rl::PrioritizedReplay;
///
/// let mut per = PrioritizedReplay::new(8, 0.6, 0.4, 100);
/// for i in 0..6 {
///     per.push(i);
/// }
/// let mut rng = Xoshiro256::seed_from_u64(0);
/// let batch = per.sample(4, &mut rng).unwrap();
/// assert_eq!(batch.indices.len(), 4);
/// assert!(batch.weights.iter().all(|&w| w > 0.0 && w <= 1.0 + 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<T> {
    items: Vec<T>,
    tree: SumTree,
    capacity: usize,
    next: usize,
    alpha: f64,
    beta: LinearAnneal,
    step: u64,
    max_priority: f64,
}

/// One prioritised sample batch: buffer indices and importance weights.
///
/// Reusable: pass the same instance to
/// [`PrioritizedReplay::sample_into`] every step and the contained vectors
/// keep their capacity, making steady-state sampling allocation-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerBatch {
    /// Indices into the buffer (pass back to `update_priorities`).
    pub indices: Vec<usize>,
    /// Importance-sampling weights, normalised to max 1.
    pub weights: Vec<f32>,
}

impl<T> PrioritizedReplay<T> {
    /// Creates a prioritised buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, alpha: f64, beta0: f64, beta_steps: u64) -> Self {
        assert!(capacity > 0, "PER capacity must be positive");
        PrioritizedReplay {
            items: Vec::new(),
            tree: SumTree::new(capacity),
            capacity,
            next: 0,
            alpha,
            beta: LinearAnneal::new(beta0, 1.0, beta_steps),
            step: 0,
            max_priority: 1.0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an item with the current maximum priority (so new experiences
    /// are replayed at least once).
    pub fn push(&mut self, item: T) {
        let slot = if self.items.len() < self.capacity {
            self.items.push(item);
            self.items.len() - 1
        } else {
            let slot = self.next;
            self.items[slot] = item;
            self.next = (self.next + 1) % self.capacity;
            slot
        };
        self.tree.set(slot, self.max_priority.powf(self.alpha));
    }

    /// Reads an item by buffer index.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.items.get(index)
    }

    /// Samples `n` indices proportionally to priority and advances the β
    /// annealing by one step.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::NotEnoughData`] when the buffer is empty.
    pub fn sample<R: Rng>(&mut self, n: usize, rng: &mut R) -> Result<PerBatch, RlError> {
        let mut batch = PerBatch::default();
        self.sample_into(n, rng, &mut batch)?;
        Ok(batch)
    }

    /// Samples `n` indices into a reusable [`PerBatch`], clearing it first.
    /// Identical draws and arithmetic to [`sample`](Self::sample) (which
    /// delegates here), but allocation-free once `batch` has capacity.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::NotEnoughData`] when the buffer is empty.
    pub fn sample_into<R: Rng>(
        &mut self,
        n: usize,
        rng: &mut R,
        batch: &mut PerBatch,
    ) -> Result<(), RlError> {
        batch.indices.clear();
        batch.weights.clear();
        if self.items.is_empty() {
            return Err(RlError::NotEnoughData {
                needed: n,
                available: 0,
            });
        }
        let beta = self.beta.value_at(self.step);
        self.step += 1;
        let total = self.tree.total();
        let len = self.items.len() as f64;
        for _ in 0..n {
            let target = rng.range_f64(0.0, total.max(f64::MIN_POSITIVE));
            let idx = self.tree.find(target).min(self.items.len() - 1);
            let p = self.tree.get(idx) / total;
            let w = (len * p).powf(-beta);
            batch.indices.push(idx);
            batch.weights.push(w as f32);
        }
        let max_w = batch
            .weights
            .iter()
            .cloned()
            .fold(f32::MIN_POSITIVE, f32::max);
        for w in &mut batch.weights {
            *w /= max_w;
        }
        Ok(())
    }

    /// Updates priorities after a train step. `errors` are absolute TD
    /// errors aligned with `indices`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn update_priorities(&mut self, indices: &[usize], errors: &[f64]) {
        assert_eq!(
            indices.len(),
            errors.len(),
            "indices/errors length mismatch"
        );
        const EPS: f64 = 1e-6;
        for (&idx, &err) in indices.iter().zip(errors) {
            if idx >= self.items.len() {
                continue;
            }
            let p = err.abs() + EPS;
            self.max_priority = self.max_priority.max(p);
            self.tree.set(idx, p.powf(self.alpha));
        }
    }

    /// The β-anneal step counter (advances once per sample call).
    pub fn anneal_step(&self) -> u64 {
        self.step
    }

    /// Restores the β-anneal step counter from a checkpoint.
    pub fn set_anneal_step(&mut self, step: u64) {
        self.step = step;
    }

    /// The running maximum raw priority assigned to new items.
    pub fn max_priority(&self) -> f64 {
        self.max_priority
    }

    /// Restores the running maximum priority from a checkpoint. Non-finite
    /// or non-positive values are ignored (the default of 1.0 is kept).
    pub fn set_max_priority(&mut self, p: f64) {
        if p.is_finite() && p > 0.0 {
            self.max_priority = p;
        }
    }

    /// The stored (already α-exponentiated) sampling weight of every item,
    /// in buffer order — the exact sum-tree leaves, so a
    /// [`restore_priorities`](Self::restore_priorities) round trip is
    /// lossless.
    pub fn priorities(&self) -> Vec<f64> {
        (0..self.items.len()).map(|i| self.tree.get(i)).collect()
    }

    /// Restores sum-tree leaves saved by [`priorities`](Self::priorities).
    /// Entries beyond the current item count are ignored (after a crash the
    /// buffer restarts empty, so a checkpointed priority vector may be
    /// longer than the live buffer).
    pub fn restore_priorities(&mut self, priorities: &[f64]) {
        for (i, &p) in priorities.iter().enumerate().take(self.items.len()) {
            self.tree.set(i, p);
        }
    }
}

/// Flat-array binary sum tree over `capacity` leaves.
#[derive(Debug, Clone)]
struct SumTree {
    nodes: Vec<f64>,
    leaves: usize,
}

impl SumTree {
    fn new(capacity: usize) -> Self {
        let leaves = capacity.next_power_of_two();
        SumTree {
            nodes: vec![0.0; 2 * leaves],
            leaves,
        }
    }

    fn total(&self) -> f64 {
        self.nodes[1]
    }

    fn get(&self, leaf: usize) -> f64 {
        self.nodes[self.leaves + leaf]
    }

    fn set(&mut self, leaf: usize, value: f64) {
        let mut i = self.leaves + leaf;
        self.nodes[i] = value;
        while i > 1 {
            i /= 2;
            self.nodes[i] = self.nodes[2 * i] + self.nodes[2 * i + 1];
        }
    }

    /// Finds the leaf where the prefix sum reaches `target`.
    fn find(&self, mut target: f64) -> usize {
        let mut i = 1;
        while i < self.leaves {
            let left = self.nodes[2 * i];
            if target < left {
                i *= 2;
            } else {
                target -= left;
                i = 2 * i + 1;
            }
        }
        i - self.leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::Xoshiro256;

    #[test]
    fn sum_tree_total_tracks_sets() {
        let mut t = SumTree::new(5);
        t.set(0, 1.0);
        t.set(3, 2.0);
        assert_eq!(t.total(), 3.0);
        t.set(0, 0.5);
        assert_eq!(t.total(), 2.5);
        assert_eq!(t.get(3), 2.0);
    }

    #[test]
    fn sum_tree_find_respects_proportions() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 3.0);
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 1);
        assert_eq!(t.find(3.9), 1);
    }

    #[test]
    fn high_priority_items_sampled_more() {
        let mut per = PrioritizedReplay::new(16, 1.0, 0.4, 10);
        for i in 0..10 {
            per.push(i);
        }
        // Give item 7 overwhelming priority.
        per.update_priorities(&[7], &[100.0]);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut count7 = 0;
        let mut total = 0;
        for _ in 0..50 {
            let b = per.sample(8, &mut rng).unwrap();
            count7 += b.indices.iter().filter(|&&i| i == 7).count();
            total += b.indices.len();
        }
        assert!(
            count7 as f64 / total as f64 > 0.8,
            "item 7 sampled only {count7}/{total}"
        );
    }

    #[test]
    fn weights_penalise_frequent_samples() {
        let mut per = PrioritizedReplay::new(8, 1.0, 1.0, 1);
        for i in 0..4 {
            per.push(i);
        }
        per.update_priorities(&[0, 1, 2, 3], &[10.0, 1.0, 1.0, 1.0]);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let b = per.sample(64, &mut rng).unwrap();
        // The high-priority item must carry the smallest IS weight.
        let mut w_hi = f32::INFINITY;
        let mut w_lo = 0.0f32;
        for (&i, &w) in b.indices.iter().zip(&b.weights) {
            if i == 0 {
                w_hi = w_hi.min(w);
            } else {
                w_lo = w_lo.max(w);
            }
        }
        assert!(w_hi < w_lo, "w_hi {w_hi} vs w_lo {w_lo}");
    }

    #[test]
    fn eviction_reuses_slots() {
        let mut per = PrioritizedReplay::new(2, 0.6, 0.4, 10);
        per.push("a");
        per.push("b");
        per.push("c"); // evicts slot 0
        assert_eq!(per.len(), 2);
        assert_eq!(per.get(0), Some(&"c"));
        assert_eq!(per.get(1), Some(&"b"));
        assert_eq!(per.get(2), None);
    }

    #[test]
    fn empty_sample_errors() {
        let mut per: PrioritizedReplay<u8> = PrioritizedReplay::new(4, 0.6, 0.4, 10);
        let mut rng = Xoshiro256::seed_from_u64(0);
        assert!(per.sample(2, &mut rng).is_err());
    }

    #[test]
    fn update_ignores_stale_indices() {
        let mut per = PrioritizedReplay::new(4, 0.6, 0.4, 10);
        per.push(1);
        per.update_priorities(&[3], &[5.0]); // index 3 does not exist yet
        assert_eq!(per.len(), 1);
    }

    #[test]
    fn find_always_in_range() {
        use twig_stats::rng::Rng;
        let mut rng = Xoshiro256::seed_from_u64(0xf1ad);
        for _ in 0..200 {
            let n = rng.range_usize(1, 20);
            let prios: Vec<f64> = (0..n).map(|_| rng.range_f64(0.01, 10.0)).collect();
            let frac = rng.next_f64();
            let mut t = SumTree::new(prios.len());
            for (i, &p) in prios.iter().enumerate() {
                t.set(i, p);
            }
            let idx = t.find(frac * t.total() * 0.999);
            assert!(idx < prios.len());
        }
    }

    #[test]
    fn priorities_roundtrip_is_lossless() {
        let mut per = PrioritizedReplay::new(8, 0.6, 0.4, 10);
        for i in 0..5 {
            per.push(i);
        }
        per.update_priorities(&[1, 3], &[2.5, 9.0]);
        let saved = per.priorities();
        assert_eq!(saved.len(), 5);
        let mut restored = PrioritizedReplay::new(8, 0.6, 0.4, 10);
        for i in 0..5 {
            restored.push(i);
        }
        restored.set_anneal_step(per.anneal_step());
        restored.set_max_priority(per.max_priority());
        restored.restore_priorities(&saved);
        assert_eq!(restored.priorities(), saved);
        assert_eq!(restored.max_priority(), per.max_priority());
    }

    #[test]
    fn restore_priorities_ignores_excess_entries() {
        let mut per = PrioritizedReplay::new(8, 0.6, 0.4, 10);
        per.push(0);
        per.restore_priorities(&[2.0, 3.0, 4.0]);
        assert_eq!(per.priorities(), vec![2.0]);
    }

    #[test]
    fn set_max_priority_rejects_invalid() {
        let mut per: PrioritizedReplay<u8> = PrioritizedReplay::new(4, 0.6, 0.4, 10);
        per.set_max_priority(f64::NAN);
        assert_eq!(per.max_priority(), 1.0);
        per.set_max_priority(-2.0);
        assert_eq!(per.max_priority(), 1.0);
        per.set_max_priority(3.0);
        assert_eq!(per.max_priority(), 3.0);
    }

    #[test]
    fn weights_bounded_by_one() {
        for seed in 0u64..100 {
            let mut per = PrioritizedReplay::new(32, 0.6, 0.4, 50);
            for i in 0..20 {
                per.push(i);
            }
            per.update_priorities(&[1, 5], &[3.0, 7.0]);
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let b = per.sample(16, &mut rng).unwrap();
            for &w in &b.weights {
                assert!(w > 0.0 && w <= 1.0 + 1e-6, "seed {seed}: weight {w}");
            }
        }
    }
}
