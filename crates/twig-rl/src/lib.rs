//! Deep reinforcement learning substrate for the Twig reproduction.
//!
//! The paper's learning machinery, reimplemented from scratch on top of
//! `twig-nn`:
//!
//! - [`EpsilonSchedule`] / [`LinearAnneal`] — the ε-annealing of Section IV
//!   (1 → 0.1 over 10 000 s, → 0.01 at 25 000 s) and the PER β annealing;
//! - [`ReplayBuffer`] and [`PrioritizedReplay`] — uniform and prioritised
//!   experience replay (sum-tree, α = 0.6, β₀ = 0.4 → 1);
//! - [`QTable`] — tabular Q-learning, the state-action representation used
//!   by Hipster and the memory-complexity strawman of Section V-B1;
//! - [`MaBdq`] — the paper's contribution: a **multi-agent branching dueling
//!   Q-network** with a shared state representation, per-agent state-value
//!   heads, per-branch advantage heads shared across agents, and the 1/K
//!   (agents) and 1/D (branches) gradient rescaling of Section III-A;
//! - [`Bdq`] — the single-agent special case (Twig-S);
//! - [`Dqn`] — the vanilla joint-action DQN of Section II-B1 (the
//!   combinatorial-explosion strawman the BDQ replaces);
//! - [`memory`] — the memory-complexity accounting behind the paper's
//!   Hipster-vs-Twig comparison;
//! - [`federate`] — the fleet-side aggregation math: the payload screening
//!   ladder (CRC, shape, finiteness, quarantine eligibility, Byzantine
//!   EWMA screen) and the permutation-invariant capacity-weighted merge.
//!
//! # Examples
//!
//! Drive a tiny multi-agent BDQ on a synthetic two-agent problem:
//!
//! ```
//! use twig_rl::{MaBdq, MaBdqConfig, MultiTransition};
//!
//! let config = MaBdqConfig {
//!     agents: 2,
//!     state_dim: 3,
//!     branches: vec![4, 5],
//!     trunk_hidden: vec![16, 8],
//!     ..MaBdqConfig::default()
//! };
//! let mut agent = MaBdq::new(config).unwrap();
//! let states = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
//! let actions = agent.select_actions(&states, 0.1).unwrap();
//! assert_eq!(actions.len(), 2);       // one action set per agent
//! assert_eq!(actions[0].len(), 2);    // one action per branch
//! assert!(actions[0][0] < 4 && actions[0][1] < 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod bdq;
pub mod checkpoint;
mod dqn;
mod error;
pub mod federate;
mod mabdq;
pub mod memory;
mod per;
mod replay;
mod tabular;

pub use anneal::{EpsilonSchedule, LinearAnneal};
pub use bdq::Bdq;
pub use checkpoint::{
    crc32, decode_checkpoint, encode_checkpoint, validate_checkpoint_bytes, MaBdqCheckpoint,
};
pub use dqn::{Dqn, DqnConfig};
pub use error::RlError;
pub use federate::{ByzantineScreen, Contribution, FedError, ScreenConfig};
pub use mabdq::{
    BudgetedProgress, MaBdq, MaBdqConfig, MultiTransition, QuarantineConfig, QuarantineStats,
    TrainStats,
};
pub use per::{PerBatch, PrioritizedReplay};
pub use replay::ReplayBuffer;
pub use tabular::QTable;
