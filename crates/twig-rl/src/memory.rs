//! Memory-complexity accounting for the Hipster-vs-Twig comparison
//! (Section V-B1 of the paper).
//!
//! The paper's headline: scaling a tabular manager to "three action
//! dimensions (D = 3) and each dimension containing 30 discrete actions
//! (N = 30)" with the load quantised into 25 buckets needs memory "in the
//! order of TBs", while Twig's function approximator stays "under 5 MB".
//!
//! Two views are provided:
//!
//! - [`table_entries`] — the standard joint-action table,
//!   `buckets × Π_d N_d` entries. For D = 3, N = 30 this is 25 × 27 000
//!   entries (≈ 5.4 MB): already large, and it grows *exponentially in D*.
//! - [`table_entries_state_counters`] — the table a counter-driven tabular
//!   manager would need: quantising each of the 11 PMCs into the same 25
//!   buckets multiplies the state space to 25¹¹, which is where the
//!   combinatorial explosion the paper describes (Section II-B) truly
//!   lives. This is the configuration that reaches TB-and-beyond scale.
//!
//! [`bdq_parameter_count`] counts the Twig network's trainable parameters
//! for the same action space, demonstrating the linear-in-branches growth
//! the paper claims.

/// Entries in a dense tabular Q representation with `state_buckets` discrete
/// states and `actions_per_dim` joint action dimensions
/// (`state_buckets × Π N_d`). Saturates at `u128::MAX`.
///
/// # Examples
///
/// ```
/// // Hipster on the paper's platform: 25 load buckets, 18 cores x 9 DVFS.
/// let entries = twig_rl::memory::table_entries(25, &[18, 9]);
/// assert_eq!(entries, 25 * 18 * 9);
/// ```
pub fn table_entries(state_buckets: u128, actions_per_dim: &[u128]) -> u128 {
    actions_per_dim
        .iter()
        .fold(state_buckets, |acc, &n| acc.saturating_mul(n))
}

/// Entries for a tabular manager whose *state* is a vector of `counters`
/// hardware counters, each quantised into `buckets` buckets
/// (`buckets^counters × Π N_d`) — the configuration that explodes
/// combinatorially. Saturates at `u128::MAX`.
///
/// # Examples
///
/// ```
/// // 11 counters x 25 buckets each, 3 action dimensions of 30 actions.
/// let entries = twig_rl::memory::table_entries_state_counters(25, 11, &[30, 30, 30]);
/// assert!(entries > 1u128 << 60); // far beyond TB scale at 8 bytes/entry
/// ```
pub fn table_entries_state_counters(
    buckets: u128,
    counters: u32,
    actions_per_dim: &[u128],
) -> u128 {
    let mut states: u128 = 1;
    for _ in 0..counters {
        states = states.saturating_mul(buckets);
    }
    table_entries(states, actions_per_dim)
}

/// Bytes for `entries` 8-byte Q-values, saturating.
pub fn table_bytes(entries: u128) -> u128 {
    entries.saturating_mul(8)
}

/// Trainable parameters of a Twig-style (multi-agent) BDQ for the given
/// architecture: trunk `input → hidden[0] → hidden[1] …`, one value head and
/// one advantage head per branch, each with a single hidden layer of
/// `head_hidden` units. Mirrors [`crate::MaBdq`]'s construction.
///
/// # Examples
///
/// ```
/// // Twig-S with the paper's architecture: 11 counters, branches 18 and 9.
/// let params = twig_rl::memory::bdq_parameter_count(11, 1, &[512, 256], 128, &[18, 9]);
/// // Under 5 MB at 4 bytes per f32 parameter (Section V-B1).
/// assert!(params * 4 < 5_000_000);
/// ```
pub fn bdq_parameter_count(
    state_dim: usize,
    agents: usize,
    trunk_hidden: &[usize],
    head_hidden: usize,
    branches: &[usize],
) -> usize {
    let dense = |i: usize, o: usize| i * o + o;
    let mut params = 0;
    let mut prev = state_dim * agents;
    for &h in trunk_hidden {
        params += dense(prev, h);
        prev = h;
    }
    let head_input = prev + state_dim;
    // One value head per agent.
    params += agents * (dense(head_input, head_hidden) + dense(head_hidden, 1));
    // One advantage head per branch, shared across agents.
    for &n in branches {
        params += dense(head_input, head_hidden) + dense(head_hidden, n);
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_table_grows_multiplicatively() {
        assert_eq!(table_entries(25, &[30]), 750);
        assert_eq!(table_entries(25, &[30, 30]), 22_500);
        assert_eq!(table_entries(25, &[30, 30, 30]), 675_000);
    }

    #[test]
    fn counter_state_table_is_astronomical() {
        let entries = table_entries_state_counters(25, 11, &[30, 30, 30]);
        let bytes = table_bytes(entries);
        // 25^11 * 27000 * 8 bytes ≈ 5e20 — hundreds of exabytes.
        assert!(bytes > 1u128 << 68);
    }

    #[test]
    fn saturation_does_not_overflow() {
        let entries = table_entries_state_counters(u128::MAX, 3, &[2]);
        assert_eq!(entries, u128::MAX);
        assert_eq!(table_bytes(entries), u128::MAX);
    }

    #[test]
    fn bdq_grows_linearly_with_branches() {
        let base = bdq_parameter_count(11, 1, &[512, 256], 128, &[30]);
        let two = bdq_parameter_count(11, 1, &[512, 256], 128, &[30, 30]);
        let three = bdq_parameter_count(11, 1, &[512, 256], 128, &[30, 30, 30]);
        let delta1 = two - base;
        let delta2 = three - two;
        assert_eq!(delta1, delta2, "branch cost should be constant");
    }

    #[test]
    fn paper_memory_claim_holds() {
        // Twig with 3 action dimensions of 30 actions stays under 5 MB
        // while the counter-state table needs TBs (Section V-B1).
        let twig_bytes = bdq_parameter_count(11, 1, &[512, 256], 128, &[30, 30, 30]) * 4;
        assert!(twig_bytes < 5_000_000, "{twig_bytes} bytes");
        let hipster_bytes = table_bytes(table_entries_state_counters(25, 11, &[30, 30, 30]));
        assert!(hipster_bytes > 1_000_000_000_000u128);
    }
}
