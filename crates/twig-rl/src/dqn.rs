use crate::{PrioritizedReplay, RlError};
use twig_nn::{Adam, Dense, Dropout, Mlp, Relu, Tensor};
use twig_stats::rng::{Rng, Xoshiro256};

/// Configuration of a vanilla [`Dqn`].
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// State dimensionality.
    pub state_dim: usize,
    /// Number of (joint) discrete actions.
    pub actions: usize,
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Dropout probability.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Steps between target-network synchronisations.
    pub target_update_every: u64,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// PER priority exponent α (0 = uniform).
    pub per_alpha: f64,
    /// PER importance exponent β at step 0.
    pub per_beta0: f64,
    /// Steps over which β anneals to 1.
    pub per_beta_steps: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            state_dim: 11,
            actions: 162,
            hidden: vec![96, 64],
            dropout: 0.05,
            lr: 0.0025,
            gamma: 0.99,
            batch_size: 64,
            target_update_every: 150,
            buffer_capacity: 1_000_000,
            per_alpha: 0.6,
            per_beta0: 0.4,
            per_beta_steps: 100_000,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct JointTransition {
    state: Vec<f32>,
    action: usize,
    reward: f32,
    next_state: Vec<f32>,
}

/// A vanilla deep Q-network over a *joint* discrete action space —
/// the architecture Section II-B1 describes and rejects: "deploying vanilla
/// DQNs means that a single instance requires combinations of actions,
/// leading to an action-space combinatorial explosion".
///
/// Provided so the branching-vs-joint design choice can be ablated (the
/// `ablation` experiment) and so downstream users have a baseline learner.
///
/// # Examples
///
/// ```
/// use twig_rl::{Dqn, DqnConfig};
///
/// let mut dqn = Dqn::new(DqnConfig {
///     state_dim: 2,
///     actions: 4,
///     hidden: vec![16],
///     ..DqnConfig::default()
/// }).unwrap();
/// let a = dqn.select_action(&[0.1, 0.9], 0.0).unwrap();
/// assert!(a < 4);
/// ```
#[derive(Debug, Clone)]
pub struct Dqn {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    adam: Adam,
    buffer: PrioritizedReplay<JointTransition>,
    rng: Xoshiro256,
    steps: u64,
}

impl Dqn {
    /// Builds the online and target networks.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: DqnConfig) -> Result<Self, RlError> {
        if config.state_dim == 0 || config.actions == 0 || config.batch_size == 0 {
            return Err(RlError::InvalidConfig {
                detail: format!(
                    "state {} actions {} batch {}",
                    config.state_dim, config.actions, config.batch_size
                ),
            });
        }
        if config.hidden.is_empty() || config.hidden.contains(&0) {
            return Err(RlError::InvalidConfig {
                detail: format!("hidden {:?}", config.hidden),
            });
        }
        if !(0.0..1.0).contains(&config.dropout) {
            return Err(RlError::InvalidConfig {
                detail: format!("dropout {}", config.dropout),
            });
        }
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let build = |rng: &mut Xoshiro256| {
            let mut net = Mlp::new();
            let mut prev = config.state_dim;
            for (i, &h) in config.hidden.iter().enumerate() {
                net = net
                    .push(Dense::new(prev, h, rng))
                    .push(Relu::new())
                    .push(Dropout::new(
                        config.dropout,
                        config.seed.wrapping_add(i as u64),
                    ));
                prev = h;
            }
            net.push(Dense::new(prev, config.actions, rng))
        };
        let online = build(&mut rng);
        let mut target = build(&mut rng);
        target
            .copy_weights_from(&online)
            .expect("same architecture");
        let adam = Adam::new(config.lr);
        let buffer = PrioritizedReplay::new(
            config.buffer_capacity,
            config.per_alpha,
            config.per_beta0,
            config.per_beta_steps,
        );
        Ok(Dqn {
            config,
            online,
            target,
            adam,
            buffer,
            rng,
            steps: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Completed gradient steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Buffered transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Trainable parameter count — grows with the *product* of the action
    /// dimensions, the explosion the BDQ avoids.
    pub fn param_count(&self) -> usize {
        self.online.param_count()
    }

    fn check_state(&self, state: &[f32]) -> Result<(), RlError> {
        if state.len() != self.config.state_dim {
            return Err(RlError::DimensionMismatch {
                detail: format!("state {} != {}", state.len(), self.config.state_dim),
            });
        }
        Ok(())
    }

    /// Q-values for one state.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly sized state.
    pub fn q_values(&mut self, state: &[f32]) -> Result<Vec<f32>, RlError> {
        self.check_state(state)?;
        Ok(self
            .online
            .forward(&Tensor::from_row(state), false)
            .row(0)
            .to_vec())
    }

    /// ε-greedy action selection over the joint action space.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly sized state.
    pub fn select_action(&mut self, state: &[f32], epsilon: f64) -> Result<usize, RlError> {
        self.check_state(state)?;
        if self.rng.next_f64() < epsilon {
            return Ok(self.rng.range_usize(0, self.config.actions));
        }
        let q = self.q_values(state)?;
        Ok(argmax(&q))
    }

    /// Stores one transition.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::DimensionMismatch`] for a wrongly shaped
    /// transition.
    pub fn observe(
        &mut self,
        state: &[f32],
        action: usize,
        reward: f32,
        next_state: &[f32],
    ) -> Result<(), RlError> {
        self.check_state(state)?;
        self.check_state(next_state)?;
        if action >= self.config.actions {
            return Err(RlError::DimensionMismatch {
                detail: format!("action {action} out of {}", self.config.actions),
            });
        }
        self.buffer.push(JointTransition {
            state: state.to_vec(),
            action,
            reward,
            next_state: next_state.to_vec(),
        });
        Ok(())
    }

    /// One double-DQN gradient step; `None` until a full batch is buffered.
    ///
    /// # Errors
    ///
    /// Propagates replay errors.
    pub fn train_step(&mut self) -> Result<Option<f32>, RlError> {
        if self.buffer.len() < self.config.batch_size {
            return Ok(None);
        }
        let batch_size = self.config.batch_size;
        let batch = self.buffer.sample(batch_size, &mut self.rng)?;
        let transitions: Vec<JointTransition> = batch
            .indices
            .iter()
            .map(|&i| self.buffer.get(i).expect("sampled index").clone())
            .collect();

        let next = Tensor::from_rows(
            &transitions
                .iter()
                .map(|t| t.next_state.clone())
                .collect::<Vec<_>>(),
        )
        .expect("rectangular batch");
        let q_next_online = self.online.forward(&next, false);
        let q_next_target = self.target.forward(&next, false);
        let x = Tensor::from_rows(
            &transitions
                .iter()
                .map(|t| t.state.clone())
                .collect::<Vec<_>>(),
        )
        .expect("rectangular batch");
        let q = self.online.forward(&x, true);

        let mut grad = Tensor::zeros(batch_size, self.config.actions);
        let mut loss = 0.0f32;
        let mut abs_td = Vec::with_capacity(batch_size);
        for (b, t) in transitions.iter().enumerate() {
            let a_star = argmax(q_next_online.row(b));
            let y = t.reward + self.config.gamma * q_next_target[(b, a_star)];
            let delta = q[(b, t.action)] - y;
            let w = batch.weights[b];
            loss += w * delta * delta / batch_size as f32;
            grad[(b, t.action)] = 2.0 * w * delta / batch_size as f32;
            abs_td.push(delta.abs() as f64);
        }
        self.online.zero_grads();
        self.online.backward(&grad);
        self.online.apply(&mut self.adam);
        self.buffer.update_priorities(&batch.indices, &abs_td);
        self.steps += 1;
        if self.steps.is_multiple_of(self.config.target_update_every) {
            self.target
                .copy_weights_from(&self.online)
                .expect("same architecture");
        }
        Ok(Some(loss))
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DqnConfig {
        DqnConfig {
            state_dim: 2,
            actions: 4,
            hidden: vec![24],
            dropout: 0.0,
            lr: 0.01,
            gamma: 0.0,
            batch_size: 16,
            buffer_capacity: 2048,
            seed: 5,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(Dqn::new(DqnConfig {
            state_dim: 0,
            ..tiny()
        })
        .is_err());
        assert!(Dqn::new(DqnConfig {
            actions: 0,
            ..tiny()
        })
        .is_err());
        assert!(Dqn::new(DqnConfig {
            hidden: vec![],
            ..tiny()
        })
        .is_err());
        assert!(Dqn::new(DqnConfig {
            dropout: 1.0,
            ..tiny()
        })
        .is_err());
        assert!(Dqn::new(DqnConfig {
            batch_size: 0,
            ..tiny()
        })
        .is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut dqn = Dqn::new(tiny()).unwrap();
        assert!(dqn.select_action(&[0.0], 0.0).is_err());
        assert!(dqn.observe(&[0.0, 0.0], 9, 0.0, &[0.0, 0.0]).is_err());
        assert!(dqn.observe(&[0.0], 0, 0.0, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn learns_contextual_bandit() {
        let mut dqn = Dqn::new(tiny()).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(1);
        // Action = context (0..4) pays off.
        for step in 0..800 {
            let ctx = rng.range_usize(0, 4);
            let state = vec![(ctx % 2) as f32, (ctx / 2) as f32];
            let eps = (1.0 - step as f64 / 400.0).max(0.05);
            let a = dqn.select_action(&state, eps).unwrap();
            let r = if a == ctx { 1.0 } else { 0.0 };
            dqn.observe(&state, a, r, &state).unwrap();
            dqn.train_step().unwrap();
        }
        for ctx in 0..4usize {
            let state = vec![(ctx % 2) as f32, (ctx / 2) as f32];
            assert_eq!(
                dqn.select_action(&state, 0.0).unwrap(),
                ctx,
                "wrong greedy action for context {ctx}"
            );
        }
    }

    #[test]
    fn joint_action_space_costs_more_parameters_than_branching() {
        // The Section II-B1 argument in numbers: same hidden sizes, joint
        // 18x9 output vs branched 18+9 outputs.
        let dqn = Dqn::new(DqnConfig {
            state_dim: 11,
            actions: 18 * 9,
            hidden: vec![96, 64],
            ..DqnConfig::default()
        })
        .unwrap();
        let bdq = crate::MaBdq::new(crate::MaBdqConfig::default()).unwrap();
        assert!(dqn.param_count() > 0);
        // The BDQ's output layers scale with 18 + 9, the DQN's with 162.
        let dqn_out_params = 64 * 162 + 162;
        let bdq_out_params = 48 * (18 + 9) + 27;
        assert!(dqn_out_params > 5 * bdq_out_params);
        let _ = bdq.param_count();
    }

    #[test]
    fn train_none_until_batch() {
        let mut dqn = Dqn::new(tiny()).unwrap();
        assert_eq!(dqn.train_step().unwrap(), None);
        for _ in 0..16 {
            dqn.observe(&[0.0, 0.0], 0, 1.0, &[0.0, 0.0]).unwrap();
        }
        assert!(dqn.train_step().unwrap().is_some());
        assert_eq!(dqn.steps(), 1);
    }
}
