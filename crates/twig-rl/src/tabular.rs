use crate::RlError;
use twig_stats::rng::Rng;

/// Tabular Q-learning over discrete states and actions.
///
/// This is the representation used by Hipster (HPCA 2017), the paper's main
/// RL baseline: the state is the quantised request rate, the action a
/// (cores, DVFS) mapping, and Q-values live in a dense `states × actions`
/// table. Its memory footprint is the subject of the paper's
/// memory-complexity comparison (Section V-B1, see [`crate::memory`]).
///
/// # Examples
///
/// ```
/// use twig_stats::rng::Xoshiro256;
/// use twig_rl::QTable;
///
/// let mut q = QTable::new(4, 2, 0.6, 0.9).unwrap();
/// let mut rng = Xoshiro256::seed_from_u64(0);
/// // Reward action 1 in state 0 a few times.
/// for _ in 0..100 {
///     q.update(0, 1, 1.0, 0);
/// }
/// assert_eq!(q.select(0, 0.0, &mut rng), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTable {
    states: usize,
    actions: usize,
    q: Vec<f64>,
    learning_rate: f64,
    discount: f64,
}

impl QTable {
    /// Creates a zero-initialised table.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::InvalidConfig`] for zero states/actions, a
    /// learning rate outside `(0, 1]` or a discount outside `[0, 1)`.
    pub fn new(
        states: usize,
        actions: usize,
        learning_rate: f64,
        discount: f64,
    ) -> Result<Self, RlError> {
        if states == 0 || actions == 0 {
            return Err(RlError::InvalidConfig {
                detail: format!("{states} states x {actions} actions"),
            });
        }
        if !(0.0..=1.0).contains(&learning_rate) || learning_rate == 0.0 {
            return Err(RlError::InvalidConfig {
                detail: format!("learning rate {learning_rate}"),
            });
        }
        if !(0.0..1.0).contains(&discount) {
            return Err(RlError::InvalidConfig {
                detail: format!("discount {discount}"),
            });
        }
        Ok(QTable {
            states,
            actions,
            q: vec![0.0; states * actions],
            learning_rate,
            discount,
        })
    }

    /// Number of discrete states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of discrete actions.
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// The Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        assert!(
            state < self.states && action < self.actions,
            "q index out of range"
        );
        self.q[state * self.actions + action]
    }

    /// ε-greedy action selection.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn select<R: Rng>(&self, state: usize, epsilon: f64, rng: &mut R) -> usize {
        assert!(state < self.states, "state {state} out of range");
        if rng.next_f64() < epsilon {
            return rng.range_usize(0, self.actions);
        }
        self.greedy(state)
    }

    /// The greedy action for `state` (lowest index wins ties).
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn greedy(&self, state: usize) -> usize {
        assert!(state < self.states, "state {state} out of range");
        let row = &self.q[state * self.actions..(state + 1) * self.actions];
        row.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN q-value"))
            .map(|(i, _)| i)
            .expect("non-empty action row")
    }

    /// One Q-learning backup:
    /// `Q(s,a) += lr (r + γ max_a' Q(s',a') − Q(s,a))`.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        assert!(
            state < self.states && action < self.actions && next_state < self.states,
            "update index out of range"
        );
        let best_next = self.q_value(next_state, self.greedy(next_state));
        let idx = state * self.actions + action;
        let td = reward + self.discount * best_next - self.q[idx];
        self.q[idx] += self.learning_rate * td;
    }

    /// Bytes the dense table occupies (the memory-complexity metric of
    /// Section V-B1).
    pub fn memory_bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_stats::rng::Xoshiro256;

    #[test]
    fn rejects_bad_config() {
        assert!(QTable::new(0, 2, 0.5, 0.9).is_err());
        assert!(QTable::new(2, 0, 0.5, 0.9).is_err());
        assert!(QTable::new(2, 2, 0.0, 0.9).is_err());
        assert!(QTable::new(2, 2, 1.5, 0.9).is_err());
        assert!(QTable::new(2, 2, 0.5, 1.0).is_err());
    }

    #[test]
    fn learns_simple_chain() {
        // Two states; action 1 in state 0 leads to reward.
        let mut q = QTable::new(2, 2, 0.5, 0.9).unwrap();
        for _ in 0..50 {
            q.update(0, 1, 1.0, 1);
            q.update(0, 0, 0.0, 0);
            q.update(1, 0, 0.0, 0);
            q.update(1, 1, 0.0, 0);
        }
        assert_eq!(q.greedy(0), 1);
        assert!(q.q_value(0, 1) > 1.0); // discounted future adds on top
    }

    #[test]
    fn epsilon_one_is_uniform_random() {
        let q = QTable::new(1, 4, 0.5, 0.9).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[q.select(0, 1.0, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn memory_bytes_is_dense_table() {
        let q = QTable::new(25, 162, 0.6, 0.9).unwrap();
        assert_eq!(q.memory_bytes(), 25 * 162 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_checks_bounds() {
        let mut q = QTable::new(2, 2, 0.5, 0.9).unwrap();
        q.update(2, 0, 0.0, 0);
    }
}
