use std::error::Error;
use std::fmt;

/// Error produced by the reinforcement-learning components.
///
/// # Examples
///
/// ```
/// use twig_rl::{MaBdq, MaBdqConfig, RlError};
///
/// let bad = MaBdqConfig { agents: 0, ..MaBdqConfig::default() };
/// assert!(matches!(MaBdq::new(bad), Err(RlError::InvalidConfig { .. })));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// An input had the wrong dimensionality for the configured network.
    DimensionMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// An operation needed data the buffer does not yet hold.
    NotEnoughData {
        /// Items required.
        needed: usize,
        /// Items available.
        available: usize,
    },
    /// An input contained a non-finite (NaN or infinite) value.
    NonFinite {
        /// Human-readable description.
        detail: String,
    },
    /// A checkpoint's recorded architecture does not match the live
    /// configuration it is being loaded into.
    CheckpointMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// A serialized checkpoint failed integrity or format validation
    /// (bad CRC, truncated buffer, unknown magic or version).
    CorruptCheckpoint {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            RlError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            RlError::NotEnoughData { needed, available } => {
                write!(f, "need {needed} samples but only {available} available")
            }
            RlError::NonFinite { detail } => {
                write!(f, "non-finite input: {detail}")
            }
            RlError::CheckpointMismatch { detail } => {
                write!(f, "checkpoint mismatch: {detail}")
            }
            RlError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
        }
    }
}

impl Error for RlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            RlError::InvalidConfig { detail: "x".into() },
            RlError::DimensionMismatch { detail: "y".into() },
            RlError::NotEnoughData {
                needed: 2,
                available: 1,
            },
            RlError::NonFinite { detail: "z".into() },
            RlError::CheckpointMismatch { detail: "c".into() },
            RlError::CorruptCheckpoint { detail: "d".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RlError>();
    }
}
