//! Twin-run proofs for the fused batched inference path.
//!
//! `MaBdq::select_actions_into` routes through the fused path (all shared
//! advantage-head forwards stacked into one cache-blocked GEMM per branch);
//! `select_actions_unfused_into` is the per-agent reference loop. These
//! tests run both on clones of the same agent — identical weights, identical
//! RNG streams — and assert the actions and Q-values are bit-identical for
//! K ∈ {1, 3, 8}, with dropout layers present, after training, and with a
//! quarantine-frozen agent in the batch. A frozen agent still produces
//! Q-values at decide time; freezing must not perturb anyone's bits.
//!
//! Also holds the degraded-tier contract: the fixed-point fallback's
//! Q-values stay inside the analytic divergence bound, and its greedy
//! selection is deterministic and draws nothing from the ε stream.

use twig_rl::{MaBdq, MaBdqConfig, MultiTransition, QuarantineConfig};
use twig_stats::rng::{Rng, Xoshiro256};

fn config(agents: usize) -> MaBdqConfig {
    MaBdqConfig {
        agents,
        state_dim: 5,
        branches: vec![4, 3, 2],
        trunk_hidden: vec![24, 16],
        head_hidden: 16,
        // Dropout layers present so the twin run also proves the batched
        // path leaves their RNG streams untouched (eval mode is identity).
        dropout: 0.25,
        lr: 0.01,
        gamma: 0.5,
        batch_size: 8,
        target_update_every: 10,
        buffer_capacity: 1024,
        seed: 1234,
        ..MaBdqConfig::default()
    }
}

fn random_states(rng: &mut Xoshiro256, agents: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..agents)
        .map(|_| (0..dim).map(|_| rng.range_f32(-1.0, 1.0)).collect())
        .collect()
}

fn train_some(agent: &mut MaBdq, rng: &mut Xoshiro256, steps: usize) {
    let cfg = agent.config().clone();
    for i in 0..(cfg.batch_size.max(steps)) {
        let t = MultiTransition {
            states: random_states(rng, cfg.agents, cfg.state_dim),
            actions: (0..cfg.agents)
                .map(|k| cfg.branches.iter().map(|&n| (i + k) % n).collect())
                .collect(),
            rewards: (0..cfg.agents).map(|k| (i + k) as f32 * 0.1).collect(),
            next_states: random_states(rng, cfg.agents, cfg.state_dim),
        };
        agent.observe(t).unwrap();
    }
    for _ in 0..steps {
        agent.train_step().unwrap().expect("batch available");
    }
}

/// Runs `rounds` of fused-vs-unfused selection and Q evaluation on two
/// clones of `agent` and asserts bit-identity throughout.
fn assert_twin_runs_identical(agent: &MaBdq, rounds: usize, seed: u64) {
    let mut fused = agent.clone();
    let mut unfused = agent.clone();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let agents = agent.config().agents;
    let dim = agent.config().state_dim;
    let mut a_f: Vec<Vec<usize>> = Vec::new();
    let mut a_u: Vec<Vec<usize>> = Vec::new();
    let mut q_f: Vec<Vec<Vec<f32>>> = Vec::new();
    let mut q_u: Vec<Vec<Vec<f32>>> = Vec::new();
    for round in 0..rounds {
        let states = random_states(&mut rng, agents, dim);
        // Mix of pure-greedy and exploring epsilons; both clones draw the
        // same RNG stream, so the ε branches must coincide too.
        let epsilon = match round % 3 {
            0 => 0.0,
            1 => 0.3,
            _ => 1.0,
        };
        fused
            .select_actions_into(&states, epsilon, &mut a_f)
            .unwrap();
        unfused
            .select_actions_unfused_into(&states, epsilon, &mut a_u)
            .unwrap();
        assert_eq!(a_f, a_u, "round {round}: actions diverged");
        fused.q_values_into(&states, &mut q_f).unwrap();
        unfused.q_values_unfused_into(&states, &mut q_u).unwrap();
        assert_eq!(q_f.len(), q_u.len());
        for (k, (bf, bu)) in q_f.iter().zip(&q_u).enumerate() {
            for (d, (rf, ru)) in bf.iter().zip(bu).enumerate() {
                assert_eq!(rf.len(), ru.len());
                for (i, (f, u)) in rf.iter().zip(ru).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        u.to_bits(),
                        "round {round}: q[{k}][{d}][{i}] {f} vs {u}"
                    );
                }
            }
        }
    }
}

#[test]
fn fused_select_bit_identical_to_per_agent_loop() {
    for agents in [1, 3, 8] {
        // Fresh (He-initialised) weights.
        let agent = MaBdq::new(config(agents)).unwrap();
        assert_twin_runs_identical(&agent, 12, 7 + agents as u64);

        // And after training, when weights are no longer symmetric and the
        // dueling means are non-trivial.
        let mut trained = MaBdq::new(config(agents)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(99);
        train_some(&mut trained, &mut rng, 25);
        assert_twin_runs_identical(&trained, 12, 31 + agents as u64);
    }
}

#[test]
fn frozen_agent_does_not_perturb_the_batch() {
    let mut agent = MaBdq::new(MaBdqConfig {
        quarantine: QuarantineConfig {
            trip_multiple: 4.0,
            warmup_steps: 10,
            probation_steps: 1_000,
            snapshot_every: 5,
            ..QuarantineConfig::default()
        }
        .armed(),
        ..config(3)
    })
    .unwrap();
    let mut rng = Xoshiro256::seed_from_u64(5);
    train_some(&mut agent, &mut rng, 8);

    // Poison agent 1 with an overflow-scale reward: its |TD| blows through
    // the hard quarantine limit and it freezes immediately.
    let poisoned = MultiTransition {
        states: random_states(&mut rng, 3, 5),
        actions: vec![vec![0, 0, 0]; 3],
        rewards: vec![0.1, 1e30, 0.1],
        next_states: random_states(&mut rng, 3, 5),
    };
    agent.observe(poisoned).unwrap();
    for _ in 0..6 {
        agent.train_step().unwrap();
    }
    assert!(
        agent.quarantine_stats().frozen_agents >= 1,
        "poisoned agent never froze: {:?}",
        agent.quarantine_stats()
    );

    // A frozen agent still contributes its state to the joint batch and
    // still gets Q-values; the fused stack must remain bit-identical.
    assert_twin_runs_identical(&agent, 12, 77);
}

#[test]
fn quantized_q_divergence_within_analytic_bound() {
    let mut agent = MaBdq::new(config(4)).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(11);
    train_some(&mut agent, &mut rng, 20);
    agent.refresh_quantized().unwrap();
    let bound = agent
        .quantized_q_error_bound(1.0)
        .expect("snapshot armed above");
    assert!(bound.is_finite() && bound > 0.0);

    let mut q_exact: Vec<Vec<Vec<f32>>> = Vec::new();
    let mut q_fixed: Vec<Vec<Vec<f32>>> = Vec::new();
    let mut max_div = 0.0f32;
    for _ in 0..10 {
        let states = random_states(&mut rng, 4, 5);
        agent.q_values_into(&states, &mut q_exact).unwrap();
        agent
            .q_values_quantized_into(&states, &mut q_fixed)
            .unwrap();
        for (bk, bq) in q_exact.iter().zip(&q_fixed) {
            for (rk, rq) in bk.iter().zip(bq) {
                for (e, a) in rk.iter().zip(rq) {
                    assert!(a.is_finite());
                    max_div = max_div.max((e - a).abs());
                }
            }
        }
    }
    assert!(
        max_div <= bound,
        "measured Q divergence {max_div} above analytic bound {bound}"
    );
}

#[test]
fn quantized_selection_is_deterministic_and_rng_free() {
    let mut agent = MaBdq::new(config(3)).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(23);
    train_some(&mut agent, &mut rng, 10);
    agent.refresh_quantized().unwrap();
    let states = random_states(&mut rng, 3, 5);

    // Deterministic: repeated calls agree, and actions are in range.
    let a1 = agent.select_actions_quantized(&states).unwrap();
    let a2 = agent.select_actions_quantized(&states).unwrap();
    assert_eq!(a1, a2);
    for agent_actions in &a1 {
        assert_eq!(agent_actions.len(), agent.config().branches.len());
        for (a, &n) in agent_actions.iter().zip(&agent.config().branches) {
            assert!(*a < n);
        }
    }

    // RNG-free: a clone that never runs the quantized path draws the exact
    // same ε stream afterwards — shed epochs cannot perturb exploration.
    let mut twin = agent.clone();
    for _ in 0..5 {
        let _ = agent.select_actions_quantized(&states).unwrap();
    }
    let mut out_a: Vec<Vec<usize>> = Vec::new();
    let mut out_b: Vec<Vec<usize>> = Vec::new();
    for _ in 0..6 {
        agent.select_actions_into(&states, 0.7, &mut out_a).unwrap();
        twin.select_actions_into(&states, 0.7, &mut out_b).unwrap();
        assert_eq!(out_a, out_b);
    }
}
