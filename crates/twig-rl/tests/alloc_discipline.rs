//! Proof that the learner's hot path is allocation-free in steady state.
//!
//! This binary installs the counting allocator from `twig-nn` as its global
//! allocator, warms the agent up (first calls size every scratch buffer),
//! then asserts that further `train_step` / `select_actions_into` /
//! `q_values_into` calls perform ZERO heap allocations. This is the
//! regression gate for the scratch-buffer work: any accidental `clone()`,
//! `Vec::new` or tensor materialisation on the hot path fails loudly here
//! long before it shows up in a profile.
//!
//! Kept as its own integration test so the `#[global_allocator]` does not
//! leak into other test binaries, and run single-threaded by construction
//! (one `#[test]`), so no concurrent test pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use twig_nn::count_alloc;
use twig_rl::{MaBdq, MaBdqConfig, MultiTransition};

/// Counting wrapper around the system allocator. The impl lives here (the
/// library crates forbid unsafe code) and reports into the process-wide
/// counter behind `twig_nn::count_alloc`.
struct CountingAlloc;

// SAFETY: defers every operation to `System`, only adding a relaxed atomic
// increment, so all `GlobalAlloc` contracts are inherited unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        twig_nn::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        twig_nn::note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        twig_nn::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn config() -> MaBdqConfig {
    MaBdqConfig {
        agents: 2,
        state_dim: 4,
        branches: vec![5, 3],
        trunk_hidden: vec![32, 24],
        head_hidden: 16,
        dropout: 0.1,
        batch_size: 16,
        // Small enough that the measured window crosses a target sync,
        // proving the sync path is also allocation-free.
        target_update_every: 3,
        buffer_capacity: 1024,
        seed: 7,
        ..MaBdqConfig::default()
    }
}

fn transition(step: usize) -> MultiTransition {
    let f = step as f32 * 0.01;
    MultiTransition {
        states: vec![vec![f, -f, 0.5, 1.0 - f]; 2],
        actions: vec![vec![step % 5, step % 3]; 2],
        rewards: vec![f.sin(), -f.sin()],
        next_states: vec![vec![f + 0.01, -f, 0.5, 0.99 - f]; 2],
    }
}

#[test]
fn hot_path_is_allocation_free_in_steady_state() {
    assert!(
        count_alloc::counter_armed(),
        "counting allocator not installed"
    );
    let mut agent = MaBdq::new(config()).unwrap();
    for i in 0..64 {
        agent.observe(transition(i)).unwrap();
    }

    // Warm-up: sizes every scratch buffer (NN scratch, PER batch, Adam
    // moment vectors, reusable action/Q output buffers) and arms the
    // fixed-point fallback snapshot, whose first build allocates.
    let mut actions: Vec<Vec<usize>> = Vec::new();
    let mut actions_unfused: Vec<Vec<usize>> = Vec::new();
    let mut actions_quant: Vec<Vec<usize>> = Vec::new();
    let mut q_out: Vec<Vec<Vec<f32>>> = Vec::new();
    let states = vec![vec![0.1, 0.2, 0.3, 0.4]; 2];
    agent.refresh_quantized().unwrap();
    for _ in 0..3 {
        agent.train_step().unwrap().expect("batch available");
        agent
            .select_actions_into(&states, 0.5, &mut actions)
            .unwrap();
        agent
            .select_actions_unfused_into(&states, 0.5, &mut actions_unfused)
            .unwrap();
        agent
            .select_actions_quantized_into(&states, &mut actions_quant)
            .unwrap();
        agent.q_values_into(&states, &mut q_out).unwrap();
    }

    // Steady state: ten epochs of learn + decide, zero allocations. The
    // window covers several target-network syncs (every 3 steps), each of
    // which also re-quantizes the armed fallback snapshot in place, plus
    // the fused, per-agent reference, and fixed-point decision paths.
    let start = count_alloc::allocation_count();
    for _ in 0..10 {
        agent.train_step().unwrap().expect("batch available");
        agent
            .select_actions_into(&states, 0.5, &mut actions)
            .unwrap();
        agent
            .select_actions_unfused_into(&states, 0.5, &mut actions_unfused)
            .unwrap();
        agent
            .select_actions_quantized_into(&states, &mut actions_quant)
            .unwrap();
        agent.q_values_into(&states, &mut q_out).unwrap();
    }
    let delta = count_alloc::allocations_since(start);
    assert_eq!(
        delta, 0,
        "hot path allocated {delta} times across 10 steady-state epochs"
    );

    // Sanity: the agent is still actually learning (steps advanced) and
    // the outputs are live.
    assert!(agent.steps() >= 13);
    assert_eq!(actions.len(), 2);
    assert_eq!(actions_quant.len(), 2);
    assert_eq!(q_out.len(), 2);
    assert!(agent.quantized_ready());
}
