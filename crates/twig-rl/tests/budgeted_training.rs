//! Bit-identity proof for the resumable budgeted training path.
//!
//! The deadline scheduler splits `MaBdq::train_step` into micro-batches via
//! `train_step_budgeted`, interleaving eval-mode inference between chunks.
//! These tests pin the contract that makes that safe: a budgeted step driven
//! to completion produces **bit-identical** weights, optimizer moments,
//! replay priorities and RNG streams to one unbudgeted `train_step` — even
//! with `q_values` calls clobbering every activation cache between chunks —
//! and any operation that would invalidate the deferred state (a full step,
//! a checkpoint restore, a transfer reset) aborts it cleanly.

use twig_rl::{encode_checkpoint, BudgetedProgress, MaBdq, MaBdqConfig, MultiTransition};
use twig_stats::rng::{Rng, Xoshiro256};

const AGENTS: usize = 3;
const STATE_DIM: usize = 3;

/// Dropout deliberately non-zero: the trunk forward is recomputed in the
/// budgeted epilogue, so identical masks (via the RNG snapshot) are exactly
/// what is under test.
fn config() -> MaBdqConfig {
    MaBdqConfig {
        agents: AGENTS,
        state_dim: STATE_DIM,
        branches: vec![4, 3],
        trunk_hidden: vec![16, 12],
        head_hidden: 8,
        dropout: 0.25,
        lr: 0.01,
        gamma: 0.9,
        batch_size: 8,
        target_update_every: 7,
        buffer_capacity: 4096,
        per_beta_steps: 50,
        seed: 7,
        ..MaBdqConfig::default()
    }
}

fn transition(rng: &mut Xoshiro256) -> MultiTransition {
    MultiTransition {
        states: (0..AGENTS)
            .map(|_| {
                (0..STATE_DIM)
                    .map(|_| rng.range_f64(-1.0, 1.0) as f32)
                    .collect()
            })
            .collect(),
        actions: (0..AGENTS)
            .map(|_| vec![rng.range_usize(0, 4), rng.range_usize(0, 3)])
            .collect(),
        rewards: (0..AGENTS)
            .map(|_| rng.range_f64(-0.5, 0.5) as f32)
            .collect(),
        next_states: (0..AGENTS)
            .map(|_| {
                (0..STATE_DIM)
                    .map(|_| rng.range_f64(-1.0, 1.0) as f32)
                    .collect()
            })
            .collect(),
    }
}

fn drive_to_done(agent: &mut MaBdq, max_agents: usize, evals_between: bool) -> BudgetedProgress {
    let probe = vec![vec![0.1_f32; STATE_DIM]; AGENTS];
    loop {
        match agent.train_step_budgeted(max_agents).unwrap() {
            BudgetedProgress::InProgress { .. } => {
                if evals_between {
                    // Eval-mode inference between chunks: clobbers the Mlp
                    // scratch buffers and every Dense activation cache, but
                    // never advances a dropout RNG stream.
                    let q = agent.q_values(&probe).unwrap();
                    assert!(q.iter().flatten().flatten().all(|v| v.is_finite()));
                }
            }
            done => return done,
        }
    }
}

#[test]
fn budgeted_step_is_bit_identical_to_train_step() {
    let mut full = MaBdq::new(config()).unwrap();
    let mut budgeted = MaBdq::new(config()).unwrap();
    let mut rng_a = Xoshiro256::seed_from_u64(9);
    let mut rng_b = Xoshiro256::seed_from_u64(9);
    for _ in 0..16 {
        full.observe(transition(&mut rng_a)).unwrap();
        budgeted.observe(transition(&mut rng_b)).unwrap();
    }
    for step in 0..25 {
        let stats_full = full.train_step().unwrap().expect("buffer warm");
        let done = drive_to_done(&mut budgeted, 1, true);
        let BudgetedProgress::Done(stats_b) = done else {
            panic!("budgeted step never completed: {done:?}");
        };
        assert_eq!(stats_full, stats_b, "stats diverged at step {step}");
        assert_eq!(
            encode_checkpoint(&full.save_checkpoint()),
            encode_checkpoint(&budgeted.save_checkpoint()),
            "weights/moments/priorities diverged at step {step}"
        );
        // Keep the observation streams aligned between steps (the window
        // crosses a target sync at step 7 and PER β keeps annealing).
        full.observe(transition(&mut rng_a)).unwrap();
        budgeted.observe(transition(&mut rng_b)).unwrap();
    }
    assert_eq!(full.steps(), 25);
    assert_eq!(budgeted.steps(), 25);
}

#[test]
fn one_call_with_large_budget_completes_in_one_go() {
    let mut full = MaBdq::new(config()).unwrap();
    let mut budgeted = MaBdq::new(config()).unwrap();
    let mut rng_a = Xoshiro256::seed_from_u64(3);
    let mut rng_b = Xoshiro256::seed_from_u64(3);
    for _ in 0..12 {
        full.observe(transition(&mut rng_a)).unwrap();
        budgeted.observe(transition(&mut rng_b)).unwrap();
    }
    let stats_full = full.train_step().unwrap().expect("buffer warm");
    match budgeted.train_step_budgeted(usize::MAX).unwrap() {
        BudgetedProgress::Done(stats) => assert_eq!(stats, stats_full),
        other => panic!("expected Done in a single call, got {other:?}"),
    }
    // max_agents == 0 is clamped to 1 — progress is always made.
    budgeted.observe(transition(&mut rng_b)).unwrap();
    match budgeted.train_step_budgeted(0).unwrap() {
        BudgetedProgress::InProgress {
            agents_done,
            agents_total,
        } => {
            assert_eq!((agents_done, agents_total), (1, AGENTS));
        }
        other => panic!("expected InProgress, got {other:?}"),
    }
}

#[test]
fn underfilled_buffer_reports_not_ready() {
    let mut agent = MaBdq::new(config()).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(1);
    for _ in 0..3 {
        agent.observe(transition(&mut rng)).unwrap();
    }
    assert_eq!(
        agent.train_step_budgeted(1).unwrap(),
        BudgetedProgress::NotReady
    );
    assert!(!agent.budgeted_step_in_flight());
}

#[test]
fn full_train_step_aborts_inflight_budgeted_step() {
    let mut agent = MaBdq::new(config()).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(5);
    for _ in 0..12 {
        agent.observe(transition(&mut rng)).unwrap();
    }
    assert!(matches!(
        agent.train_step_budgeted(1).unwrap(),
        BudgetedProgress::InProgress {
            agents_done: 1,
            agents_total: AGENTS
        }
    ));
    assert!(agent.budgeted_step_in_flight());
    // The full step discards the partial gradients and samples afresh.
    let stats = agent.train_step().unwrap().expect("buffer warm");
    assert!(!stats.skipped && stats.grad_norm.is_finite());
    assert!(!agent.budgeted_step_in_flight());
    assert_eq!(agent.steps(), 1);
    // A later budgeted step still drives cleanly to completion.
    match drive_to_done(&mut agent, 2, false) {
        BudgetedProgress::Done(s) => assert!(s.grad_norm.is_finite()),
        other => panic!("expected Done, got {other:?}"),
    }
    assert_eq!(agent.steps(), 2);
}

#[test]
fn checkpoint_restore_aborts_inflight_budgeted_step() {
    let mut agent = MaBdq::new(config()).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(6);
    for _ in 0..12 {
        agent.observe(transition(&mut rng)).unwrap();
    }
    let ckpt = agent.save_checkpoint();
    assert!(matches!(
        agent.train_step_budgeted(1).unwrap(),
        BudgetedProgress::InProgress { .. }
    ));
    agent.load_checkpoint(&ckpt).unwrap();
    assert!(!agent.budgeted_step_in_flight());
    assert_eq!(agent.steps(), 0);
    // transfer_reset likewise.
    assert!(matches!(
        agent.train_step_budgeted(1).unwrap(),
        BudgetedProgress::InProgress { .. }
    ));
    agent.transfer_reset();
    assert!(!agent.budgeted_step_in_flight());
}

#[test]
fn observe_between_chunks_survives_replay_overwrites() {
    // A tiny ring buffer plus pushes between every chunk: sampled slots are
    // overwritten mid-step, so the step must train from its own copies (the
    // actions it sampled, not whatever landed in the slot afterwards) and
    // never panic or index out of range.
    let cfg = MaBdqConfig {
        buffer_capacity: 9,
        ..config()
    };
    let mut agent = MaBdq::new(cfg).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(8);
    for _ in 0..9 {
        agent.observe(transition(&mut rng)).unwrap();
    }
    for _ in 0..10 {
        loop {
            match agent.train_step_budgeted(1).unwrap() {
                BudgetedProgress::InProgress { .. } => {
                    for _ in 0..3 {
                        agent.observe(transition(&mut rng)).unwrap();
                    }
                }
                BudgetedProgress::Done(stats) => {
                    assert!(stats.loss.is_finite() && stats.grad_norm.is_finite());
                    break;
                }
                BudgetedProgress::NotReady => panic!("buffer was warm"),
            }
        }
    }
    assert_eq!(agent.steps(), 10);
}
